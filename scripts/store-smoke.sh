#!/bin/sh
# store-smoke: end-to-end durability guard against the real binary.
#
# Runs the fault-injection campaign three ways and proves the durable
# result store never changes what a campaign reports:
#
#   1. reference     - no store, uninterrupted
#   2. crashed       - with -store and -checkpoint, SIGKILL'd mid-run,
#                      then restarted over the torn state with -resume
#   3. warm          - same store again, should execute ~nothing
#
# Asserts the recovered and warm runs are byte-identical to the
# reference and that the warm run's store hit rate is >= 99%. Store
# stats land in the output directory (default artifacts/) so CI can
# keep them. See README "Durability" and DESIGN.md "Durable result
# store".
set -eu

outdir=${1:-artifacts}
GO=${GO:-go}
mkdir -p "$outdir"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$GO" build -o "$work/mixpbench" ./cmd/mixpbench

cfg=configs/faulty.yaml
store=$work/state
journal=$work/campaign.jsonl
run() { "$work/mixpbench" -config "$cfg" -seed 42 -workers 4 "$@"; }

echo "store-smoke: reference run (no store)"
run > "$work/ref.json"

echo "store-smoke: stored run, SIGKILL mid-campaign"
run -store "$store" -checkpoint "$journal" > /dev/null 2>&1 &
pid=$!
sleep 0.1
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

echo "store-smoke: restart over the torn store + journal"
if [ -f "$journal" ]; then
    run -store "$store" -checkpoint "$journal" -resume "$journal" \
        -store-stats "$outdir/store-stats-resume.json" > "$work/resumed.json"
else
    # The kill landed before the journal was created; recover from the
    # store alone.
    run -store "$store" \
        -store-stats "$outdir/store-stats-resume.json" > "$work/resumed.json"
fi
cmp "$work/ref.json" "$work/resumed.json" || {
    echo "store-smoke: FAIL - recovered run diverges from reference" >&2
    exit 1
}

echo "store-smoke: warm re-run from the store"
run -store "$store" -store-stats "$outdir/store-stats-warm.json" > "$work/warm.json"
cmp "$work/ref.json" "$work/warm.json" || {
    echo "store-smoke: FAIL - warm run diverges from reference" >&2
    exit 1
}

rate=$(sed -n 's/.*"store_hit_rate": *\([0-9.eE+-]*\).*/\1/p' "$outdir/store-stats-warm.json")
awk -v r="${rate:-0}" 'BEGIN { exit (r >= 0.99) ? 0 : 1 }' || {
    echo "store-smoke: FAIL - warm store hit rate ${rate:-unreadable}, want >= 0.99" >&2
    cat "$outdir/store-stats-warm.json" >&2
    exit 1
}

echo "store-smoke: OK - byte-identical across crash/restart/warm, hit rate $rate"
