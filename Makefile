GO ?= go

.PHONY: build test race verify tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the gate for every change: vet plus the full test suite under
# the race detector (the telemetry determinism tests require -race to mean
# anything).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

tables:
	$(GO) run ./cmd/mptables
