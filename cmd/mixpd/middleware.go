package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// obs is the server's observability bundle: per-route request metrics
// on a server-level telemetry registry, plus structured (JSON lines)
// access logging. These measure the HTTP surface with real wall-clock
// time - unlike campaign telemetry, which runs on the simulated clock -
// so they live on their own recorder and never mix into campaign
// artifacts.
type obs struct {
	tel *telemetry.Recorder

	logMu sync.Mutex
	logW  io.Writer // nil disables access logging
}

// newObs builds the bundle; logW nil disables access logging.
func newObs(logW io.Writer) *obs {
	return &obs{tel: telemetry.New(nil), logW: logW}
}

// requestSecondsBuckets spans sub-millisecond status reads to
// minutes-long SSE streams.
var requestSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

// accessRecord is one access-log line.
type accessRecord struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote"`
}

// route wraps a handler with metrics and access logging under a fixed
// route label (the registration pattern, so cardinality stays bounded
// however clients spell their paths).
func (o *obs) route(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //mixplint:ignore simclock -- HTTP access latency is a property of the real server, not of any simulated campaign; this recorder never merges into campaign telemetry
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start) //mixplint:ignore simclock -- same wall-clock request timing as above
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		o.tel.Counter("mixpd_http_requests_total",
			"route", label, "code", strconv.Itoa(code)).Inc()
		o.tel.Histogram("mixpd_http_request_seconds", requestSecondsBuckets,
			"route", label).Observe(elapsed.Seconds())
		if o.logW == nil {
			return
		}
		line, err := json.Marshal(accessRecord{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Method:     r.Method,
			Path:       r.URL.Path,
			Route:      label,
			Status:     code,
			Bytes:      sw.bytes,
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Remote:     r.RemoteAddr,
		})
		if err != nil {
			return
		}
		o.logMu.Lock()
		o.logW.Write(append(line, '\n'))
		o.logMu.Unlock()
	}
}

// statusWriter captures the response status and size. It forwards
// Flush so SSE streaming (which asserts http.Flusher) keeps working
// through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status.
func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write counts the body bytes.
func (s *statusWriter) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(b)
	s.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
