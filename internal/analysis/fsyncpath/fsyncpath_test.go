package fsyncpath

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFsyncpath(t *testing.T) {
	analysistest.Run(t, Analyzer, "fsync")
}
