// Package keybad exercises the exemption-audit reports, asserted
// directly in keycheck_test.go (the diagnostics land on the directive
// comments themselves, where a // want comment cannot sit).
package keybad

type Model struct {
	Rate  float64
	Label string
}

//mixplint:keyexempt Model.Rate -- stale: the writer does mix Rate

//mixplint:keyexempt Model.Gone -- the struct changed under this exemption

//mixplint:key Model -- fingerprint must cover the model
func fingerprint(m Model) uint64 {
	_ = m.Label
	return uint64(m.Rate)
}

//mixplint:key Model -- not attached: no function follows

var unattached = 0
