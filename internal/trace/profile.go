package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PhaseTotal is one row of the profile's per-phase breakdown.
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	// Share is the phase's fraction of the campaign total (0 when the
	// total is zero).
	Share float64 `json:"share"`
}

// JobProfile is one job's aggregated time, a row of the critical-path
// table.
type JobProfile struct {
	Job       int     `json:"job"`
	Entry     string  `json:"entry"`
	Algorithm string  `json:"algorithm"`
	Seconds   float64 `json:"seconds"`
	Attempts  int     `json:"attempts"`
	Degraded  bool    `json:"degraded,omitempty"`
	Canceled  bool    `json:"canceled,omitempty"`
	Skipped   bool    `json:"skipped,omitempty"`
}

// Profile is the aggregated simulated-time report derived from a span
// tree: where the campaign's analysis seconds went, by phase and by
// job. TotalSeconds is the root span's duration and, by construction of
// the tree, exactly the sum of Phases[].Seconds - the invariant the
// acceptance test asserts against the campaign's reported analysis
// time.
type Profile struct {
	Campaign     string       `json:"campaign"`
	TotalSeconds float64      `json:"total_seconds"`
	Jobs         int          `json:"jobs"`
	Phases       []PhaseTotal `json:"phases"`
	// TopJobs is the critical-path table: the most expensive jobs in
	// descending simulated cost (ties broken by lower index), capped at
	// the top-N requested.
	TopJobs []JobProfile `json:"top_jobs"`
}

// BuildProfile aggregates the trace. Every leaf second is attributed to
// its phase; since leaves tile each attempt exactly and backoff tiles
// the gaps, the phase totals tile the root. topN caps the critical-path
// table (<=0 means all jobs).
func BuildProfile(t *Trace, topN int) *Profile {
	p := &Profile{Campaign: t.Campaign, Jobs: t.Jobs}
	byPhase := make(map[string]float64, len(PhaseOrder))
	var jobs []JobProfile
	for _, job := range t.Root.Children() {
		jp := JobProfile{
			Job:     intArg(job.Args, "job"),
			Entry:   strArg(job.Args, "entry"),
			Seconds: job.Duration(),
		}
		jp.Algorithm = strArg(job.Args, "algorithm")
		jp.Degraded = boolArg(job.Args, "degraded")
		jp.Canceled = boolArg(job.Args, "canceled")
		jp.Skipped = boolArg(job.Args, "skipped")
		job.Walk(func(s *Span) {
			switch s.Cat {
			case CatAttempt:
				jp.Attempts++
			case CatPhase:
				byPhase[s.Name] += s.Duration()
			}
		})
		jobs = append(jobs, jp)
	}
	// Phase rows in canonical order; totals derived by summation in that
	// same fixed order so the float result is deterministic.
	for _, name := range PhaseOrder {
		sec := byPhase[name]
		p.Phases = append(p.Phases, PhaseTotal{Phase: name, Seconds: sec})
		p.TotalSeconds += sec
	}
	if p.TotalSeconds > 0 {
		for i := range p.Phases {
			p.Phases[i].Share = p.Phases[i].Seconds / p.TotalSeconds
		}
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Seconds != jobs[k].Seconds {
			return jobs[i].Seconds > jobs[k].Seconds
		}
		return jobs[i].Job < jobs[k].Job
	})
	if topN > 0 && len(jobs) > topN {
		jobs = jobs[:topN]
	}
	p.TopJobs = jobs
	return p
}

// WriteProfile serialises the profile as indented JSON.
func WriteProfile(w io.Writer, p *Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteProfileText renders the profile as the human-readable table the
// README quickstart shows: phase breakdown, then the critical-path
// jobs.
func WriteProfileText(w io.Writer, p *Profile) error {
	if _, err := fmt.Fprintf(w, "campaign %s: %d jobs, %.2f simulated seconds\n\n",
		p.Campaign, p.Jobs, p.TotalSeconds); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %14s %7s\n", "phase", "seconds", "share")
	for _, ph := range p.Phases {
		fmt.Fprintf(w, "%-10s %14.2f %6.1f%%\n", ph.Phase, ph.Seconds, ph.Share*100)
	}
	fmt.Fprintf(w, "\n%-4s %-24s %-14s %14s %9s\n", "job", "entry", "algorithm", "seconds", "attempts")
	for _, j := range p.TopJobs {
		note := ""
		switch {
		case j.Canceled:
			note = "  (canceled)"
		case j.Skipped:
			note = "  (skipped)"
		case j.Degraded:
			note = "  (degraded)"
		}
		if _, err := fmt.Fprintf(w, "%-4d %-24s %-14s %14.2f %9d%s\n",
			j.Job, j.Entry, j.Algorithm, j.Seconds, j.Attempts, note); err != nil {
			return err
		}
	}
	return nil
}

func intArg(args map[string]any, key string) int {
	if v, ok := args[key].(int); ok {
		return v
	}
	return 0
}

func strArg(args map[string]any, key string) string {
	if v, ok := args[key].(string); ok {
		return v
	}
	return ""
}

func boolArg(args map[string]any, key string) bool {
	v, ok := args[key].(bool)
	return ok && v
}
