// Package yamlite is a from-scratch parser for the YAML subset the
// HPC-MixPBench harness configuration files use (the paper's Listing 4):
// nested block mappings by indentation, block sequences ("- item"), inline
// flow sequences ("[a, b]"), quoted and plain scalars, and '#' comments.
//
// It is deliberately not a general YAML implementation: anchors, aliases,
// multi-document streams, block scalars, and flow mappings are out of
// scope and rejected loudly rather than misparsed. The value model is
// plain Go: map[string]any, []any, string, int64, float64, bool, nil -
// with map key order preserved separately for deterministic harness
// output.
package yamlite

import (
	"fmt"
	"strconv"
	"strings"
)

// Map is a parsed mapping with preserved key order.
type Map struct {
	keys   []string
	values map[string]any
}

// NewMap returns an empty mapping.
func NewMap() *Map {
	return &Map{values: make(map[string]any)}
}

// Set inserts or replaces a key.
func (m *Map) Set(key string, v any) {
	if _, ok := m.values[key]; !ok {
		m.keys = append(m.keys, key)
	}
	m.values[key] = v
}

// Get returns the value for key and whether it exists.
func (m *Map) Get(key string) (any, bool) {
	v, ok := m.values[key]
	return v, ok
}

// Keys returns the keys in document order. The caller must not modify the
// returned slice.
func (m *Map) Keys() []string { return m.keys }

// Len returns the number of keys.
func (m *Map) Len() int { return len(m.keys) }

// GetMap returns the nested mapping at key, or an error naming the path.
func (m *Map) GetMap(key string) (*Map, error) {
	v, ok := m.values[key]
	if !ok {
		return nil, fmt.Errorf("yamlite: missing key %q", key)
	}
	mm, ok := v.(*Map)
	if !ok {
		return nil, fmt.Errorf("yamlite: key %q is %T, want mapping", key, v)
	}
	return mm, nil
}

// GetString returns the scalar string at key.
func (m *Map) GetString(key string) (string, error) {
	v, ok := m.values[key]
	if !ok {
		return "", fmt.Errorf("yamlite: missing key %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("yamlite: key %q is %T, want string", key, v)
	}
	return s, nil
}

// GetStrings returns the sequence of strings at key; a single string is
// accepted as a one-element sequence (matching the harness's permissive
// build/clean clauses).
func (m *Map) GetStrings(key string) ([]string, error) {
	v, ok := m.values[key]
	if !ok {
		return nil, fmt.Errorf("yamlite: missing key %q", key)
	}
	switch t := v.(type) {
	case string:
		return []string{t}, nil
	case []any:
		out := make([]string, len(t))
		for i, e := range t {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("yamlite: key %q element %d is %T, want string", key, i, e)
			}
			out[i] = s
		}
		return out, nil
	default:
		return nil, fmt.Errorf("yamlite: key %q is %T, want sequence", key, v)
	}
}

// line is one meaningful input line.
type line struct {
	num    int
	indent int
	text   string // content without indentation or trailing comment
}

// Parse parses a document whose root is a mapping.
func Parse(src string) (*Map, error) {
	lines, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lines: lines}
	m, err := p.parseMap(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yamlite: line %d: unexpected content %q", l.num, l.text)
	}
	return m, nil
}

// lex strips comments and blank lines and measures indentation.
func lex(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yamlite: line %d: tabs are not allowed in indentation", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		out = append(out, line{
			num:    i + 1,
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
		})
	}
	return out, nil
}

// stripComment removes a trailing '#' comment that is not inside quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

// parseMap parses a block mapping whose entries sit at exactly indent.
func (p *parser) parseMap(indent int) (*Map, error) {
	m := NewMap()
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			break // a sequence at this level belongs to the caller
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m.Get(key); dup {
			return nil, fmt.Errorf("yamlite: line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalarOrFlow(rest, l.num)
			if err != nil {
				return nil, err
			}
			m.Set(key, v)
			continue
		}
		// Value is the following indented block (or null if none).
		v, err := p.parseBlock(indent)
		if err != nil {
			return nil, err
		}
		m.Set(key, v)
	}
	if m.Len() == 0 {
		return nil, fmt.Errorf("yamlite: empty mapping")
	}
	return m, nil
}

// parseBlock parses whatever block follows a "key:" line indented deeper
// than parentIndent: a mapping, a sequence, or nothing (null).
func (p *parser) parseBlock(parentIndent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, nil
	}
	l := p.lines[p.pos]
	if l.indent <= parentIndent {
		return nil, nil
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSeq(l.indent)
	}
	return p.parseMap(l.indent)
}

// parseSeq parses a block sequence whose dashes sit at exactly indent.
func (p *parser) parseSeq(indent int) ([]any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		p.pos++
		if rest == "" {
			v, err := p.parseBlock(indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if strings.HasSuffix(rest, ":") || strings.Contains(rest, ": ") {
			return nil, fmt.Errorf("yamlite: line %d: mappings inside sequence items are not supported", l.num)
		}
		v, err := parseScalarOrFlow(rest, l.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitKey splits "key: value" or "key:"; keys may be quoted.
func splitKey(l line) (key, rest string, err error) {
	text := l.text
	var i int
	if len(text) > 0 && (text[0] == '\'' || text[0] == '"') {
		q := text[0]
		end := strings.IndexByte(text[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("yamlite: line %d: unterminated quoted key", l.num)
		}
		key = text[1 : 1+end]
		i = end + 2
		if i >= len(text) || text[i] != ':' {
			return "", "", fmt.Errorf("yamlite: line %d: expected ':' after quoted key", l.num)
		}
	} else {
		i = strings.IndexByte(text, ':')
		if i < 0 {
			return "", "", fmt.Errorf("yamlite: line %d: expected 'key: value'", l.num)
		}
		key = strings.TrimSpace(text[:i])
		if key == "" {
			return "", "", fmt.Errorf("yamlite: line %d: empty key", l.num)
		}
	}
	rest = strings.TrimSpace(text[i+1:])
	return key, rest, nil
}

// parseScalarOrFlow parses an inline value: a flow sequence or a scalar.
func parseScalarOrFlow(s string, lineNum int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yamlite: line %d: unterminated flow sequence", lineNum)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts, err := splitFlow(inner, lineNum)
		if err != nil {
			return nil, err
		}
		out := make([]any, len(parts))
		for i, part := range parts {
			v, err := parseScalarOrFlow(strings.TrimSpace(part), lineNum)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("yamlite: line %d: flow mappings are not supported", lineNum)
	}
	return parseScalar(s, lineNum)
}

// splitFlow splits flow-sequence items on commas outside quotes and
// brackets.
func splitFlow(s string, lineNum int) ([]string, error) {
	var parts []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[':
			if !inS && !inD {
				depth++
			}
		case ']':
			if !inS && !inD {
				depth--
			}
		case ',':
			if !inS && !inD && depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if inS || inD {
		return nil, fmt.Errorf("yamlite: line %d: unterminated quote in flow sequence", lineNum)
	}
	if depth != 0 {
		return nil, fmt.Errorf("yamlite: line %d: unbalanced brackets in flow sequence", lineNum)
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// parseScalar interprets a scalar token: quoted string, bool, null, int,
// float, or plain string.
func parseScalar(s string, lineNum int) (any, error) {
	if s == "" {
		// Only reachable through empty flow-sequence items ("[a, ]").
		return nil, fmt.Errorf("yamlite: line %d: empty flow-sequence item", lineNum)
	}
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1], nil
		}
	}
	if s[0] == '\'' || s[0] == '"' {
		return nil, fmt.Errorf("yamlite: line %d: unterminated quoted scalar", lineNum)
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~", "Null":
		return nil, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
