package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mixpbench "repro"
	"repro/internal/trace"
)

func TestListBenchmarks(t *testing.T) {
	var buf bytes.Buffer
	listBenchmarks(&buf)
	out := buf.String()
	for _, frag := range []string{"Kernels:", "Applications:", "hydro-1d", "LavaMD", "TV=195"} {
		if !strings.Contains(out, frag) {
			t.Errorf("listing missing %q", frag)
		}
	}
}

func TestExportSpaceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportSpaceJSON(&buf, "iccg"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"benchmark": "iccg"`) || !strings.Contains(out, `"clusters"`) {
		t.Errorf("space JSON malformed:\n%s", out)
	}
	if err := exportSpaceJSON(&buf, "nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestTuneOneWithEvalLog(t *testing.T) {
	var buf bytes.Buffer
	if _, err := tuneOne(context.Background(), &buf, "hydro-1d", "DD", 1e-8, 0, true, false, "", "", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"evaluation log:", "benchmark : hydro-1d", "speedup", "demoted"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tune output missing %q:\n%s", frag, out)
		}
	}
	if _, err := tuneOne(context.Background(), &buf, "hydro-1d", "annealing", 1e-8, 0, false, false, "", "", nil); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name      string
		workers   int
		threshold float64
		tune      string
		algorithm string
		wantErr   string
	}{
		{name: "negative workers", workers: -1, wantErr: "-workers"},
		{name: "negative threshold", threshold: -1e-8, wantErr: "-threshold"},
		{name: "unknown algorithm", tune: "hydro-1d", algorithm: "annealing", wantErr: "-algorithm"},
		{name: "ok defaults", algorithm: "DD"},
		{name: "ok long name", tune: "hydro-1d", algorithm: "ddebug"},
		{name: "algorithm ignored without tune", algorithm: "annealing"},
	}
	for _, c := range cases {
		err := validateFlags("", c.threshold, c.tune, c.algorithm, campaignFlags{workers: c.workers})
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want mention of %s", c.name, err, c.wantErr)
		}
	}
}

func TestTuneOneEmitsTelemetry(t *testing.T) {
	var events bytes.Buffer
	sink := mixpbench.NewJSONLSink(&events)
	tel := mixpbench.NewTelemetry(sink)
	var out bytes.Buffer
	if _, err := tuneOne(context.Background(), &out, "hydro-1d", "DD", 1e-8, 0, false, false, "", "", tel); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var metrics bytes.Buffer
	if err := tel.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# TYPE mixpbench_search_evaluations_total counter",
		`mixpbench_search_evaluations_total{bench="hydro-1d"}`,
		"mixpbench_search_speedup_bucket",
		`mixpbench_bench_runs_total{bench="hydro-1d",kind="reference"} 1`,
		"mixpbench_search_budget_fraction",
	} {
		if !strings.Contains(metrics.String(), frag) {
			t.Errorf("metrics snapshot missing %q:\n%s", frag, metrics.String())
		}
	}

	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("%d event lines, want at least search_start + evaluations", len(lines))
	}
	for i, line := range lines {
		var e mixpbench.TelemetryEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d invalid JSON: %v\n%s", i, err, line)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event line %d has seq %d", i, e.Seq)
		}
	}
	if !strings.Contains(lines[0], `"event":"search_start"`) {
		t.Errorf("first event is not search_start: %s", lines[0])
	}
}

func TestRunConfigTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.yaml")
	cfg := `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans']
  args: ''
`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	failed, err := runConfig(context.Background(), &buf, path, campaignFlags{workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed entries: %v", failed)
	}
	if !strings.Contains(buf.String(), "kmeans [DD @ 1e-03]") {
		t.Errorf("text report malformed:\n%s", buf.String())
	}
	buf.Reset()
	if _, err := runConfig(context.Background(), &buf, path, campaignFlags{workers: 1, jsonOut: true}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"algorithm": "DD"`) {
		t.Errorf("JSON report malformed:\n%s", buf.String())
	}
	if _, err := runConfig(context.Background(), &buf, filepath.Join(dir, "missing.yaml"), campaignFlags{workers: 1}, nil); err == nil {
		t.Error("expected error for missing config file")
	}
}

// multiEntryYAML drives three analyses in one campaign, enough for the
// scheduler to actually interleave work when the pool has spare workers.
const multiEntryYAML = `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans']
  args: ''

hydro:
  build_dir: 'hydro'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'greedy'
        threshold: 1e-8
  metric: 'MAE'
  bin: 'hydro-1d'
  copy: ['hydro']
  args: ''

iccg:
  build_dir: 'iccg'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'hierarchical'
        threshold: 1e-8
  metric: 'MAE'
  bin: 'iccg'
  copy: ['iccg']
  args: ''
`

// TestHarnessMetricsWorkerInvariant is the acceptance check of the
// telemetry determinism guarantee: the same seeded campaign produces
// byte-identical metric snapshots with -workers 1 and -workers 8.
func TestHarnessMetricsWorkerInvariant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.yaml")
	if err := os.WriteFile(path, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		tel := mixpbench.NewTelemetry(mixpbench.NewMemorySink())
		var out bytes.Buffer
		if _, err := runConfig(context.Background(), &out, path, campaignFlags{workers: workers, seed: 42}, tel); err != nil {
			t.Fatal(err)
		}
		var metrics bytes.Buffer
		if err := tel.WriteMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		return metrics.String()
	}
	one := run(1)
	eight := run(8)
	if one != eight {
		t.Errorf("metric snapshots differ between -workers 1 and -workers 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", one, eight)
	}
	for _, frag := range []string{
		"mixpbench_harness_jobs_total 3",
		"mixpbench_harness_jobs_completed_total 3",
		"mixpbench_harness_progress 1",
		`mixpbench_search_evaluations_total{bench="K-means"}`,
		`mixpbench_search_evaluations_total{bench="hydro-1d"}`,
	} {
		if !strings.Contains(one, frag) {
			t.Errorf("campaign snapshot missing %q:\n%s", frag, one)
		}
	}
}

// TestRunConfigReportsFailedEntries drives the campaign error contract:
// failing jobs do not abort the run, every entry still gets its report
// line, and the failed entries come back so main can exit non-zero.
func TestRunConfigReportsFailedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.yaml")
	if err := os.WriteFile(path, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// transient=1 with window=1 kills every attempt's first evaluation,
	// so all three entries degrade after the retry budget.
	failed, err := runConfig(context.Background(), &buf, path, campaignFlags{
		workers: 2, seed: 42, faultSpec: "transient=1,window=1,seed=1", retries: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 3 {
		t.Fatalf("failed = %v, want all three entries", failed)
	}
	out := buf.String()
	for _, frag := range []string{"kmeans", "hydro", "iccg", "DEGRADED after 2 attempts"} {
		if !strings.Contains(out, frag) {
			t.Errorf("campaign output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunConfigCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.yaml")
	if err := os.WriteFile(path, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(dir, "campaign.jsonl")
	var want bytes.Buffer
	if _, err := runConfig(context.Background(), &want, path, campaignFlags{workers: 2, seed: 42, checkpoint: journal}, nil); err != nil {
		t.Fatal(err)
	}
	// Keep the header and first record: the journal a killed campaign
	// leaves behind.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if err := os.WriteFile(journal, []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := runConfig(context.Background(), &got, path, campaignFlags{workers: 2, seed: 42, checkpoint: journal, resume: journal}, nil); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("resumed reports differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got.String(), want.String())
	}
}

func TestValidateFlagsFaultTolerance(t *testing.T) {
	for name, cf := range map[string]campaignFlags{
		"faults without config":     {faultSpec: "transient=0.5"},
		"checkpoint without config": {checkpoint: "j.jsonl"},
		"resume without config":     {resume: "j.jsonl"},
		"retries without config":    {retries: 2},
	} {
		if err := validateFlags("", 0, "", "DD", cf); err == nil || !strings.Contains(err.Error(), "requires -config") {
			t.Errorf("%s: error = %v", name, err)
		}
	}
	if err := validateFlags("cfg.yaml", 0, "", "DD", campaignFlags{faultSpec: "transient=2"}); err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Errorf("invalid fault spec accepted: %v", err)
	}
	if err := validateFlags("cfg.yaml", 0, "", "DD", campaignFlags{retries: -1}); err == nil || !strings.Contains(err.Error(), "-retries") {
		t.Errorf("negative retries accepted: %v", err)
	}
	if err := validateFlags("cfg.yaml", 0, "", "DD", campaignFlags{
		faultSpec: "transient=0.2,seed=7", retries: 2, checkpoint: "j.jsonl", resume: "j.jsonl",
	}); err != nil {
		t.Errorf("valid fault-tolerance flags rejected: %v", err)
	}
}

func TestOpenTelemetryWritesFiles(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	eventsPath := filepath.Join(dir, "events.jsonl")
	tel, closeTel, err := openTelemetry(metricsPath, eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := tuneOne(context.Background(), &out, "iccg", "GP", 1e-8, 0, false, false, "", "", tel); err != nil {
		t.Fatal(err)
	}
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "mixpbench_search_evaluations_total") {
		t.Errorf("metrics file malformed:\n%s", metrics)
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(events)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("events line %d is not valid JSON: %s", i, line)
		}
	}
}

func TestValidateFlagsTimeout(t *testing.T) {
	err := validateFlags("", 0, "", "DD", campaignFlags{timeout: -1})
	if err == nil || !strings.Contains(err.Error(), "-timeout") {
		t.Errorf("negative timeout: error = %v, want mention of -timeout", err)
	}
	if err := validateFlags("", 0, "", "DD", campaignFlags{timeout: 2.5}); err != nil {
		t.Errorf("positive timeout rejected: %v", err)
	}
}

// TestRunConfigExpiredDeadline runs a campaign under an already-expired
// context: every entry must come back failed as canceled or skipped
// (never silently succeeded), which is what main turns into exit code 4.
func TestRunConfigExpiredDeadline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.yaml")
	cfg := `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans']
  args: ''
`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	failed, err := runConfig(ctx, &buf, path, campaignFlags{workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 {
		t.Fatalf("failed entries = %v, want the single entry", failed)
	}
	out := buf.String()
	if !strings.Contains(out, "SKIPPED") && !strings.Contains(out, "CANCELED") {
		t.Errorf("report does not surface the expired deadline:\n%s", out)
	}
}

// TestValidateFlagsTraceOutputs drives the shared export-path
// validation: -trace/-profile need -config, explicitly empty paths are
// rejected, and two flags may not clobber one file.
func TestValidateFlagsTraceOutputs(t *testing.T) {
	cases := []struct {
		name    string
		config  string
		cf      campaignFlags
		wantErr string
	}{
		{
			name:    "trace without config",
			cf:      campaignFlags{tracePath: "t.json", outputs: map[string]string{"-trace": "t.json"}},
			wantErr: "-trace requires -config",
		},
		{
			name:    "profile without config",
			cf:      campaignFlags{profilePath: "p.json", outputs: map[string]string{"-profile": "p.json"}},
			wantErr: "-profile requires -config",
		},
		{
			name:    "explicit empty trace path",
			config:  "cfg.yaml",
			cf:      campaignFlags{outputs: map[string]string{"-trace": ""}},
			wantErr: "must not be empty",
		},
		{
			name:   "duplicate output path",
			config: "cfg.yaml",
			cf: campaignFlags{
				tracePath: "out.json", profilePath: "out.json",
				outputs: map[string]string{"-trace": "out.json", "-profile": "out.json"},
			},
			wantErr: "duplicate output path",
		},
		{
			name:   "distinct paths ok",
			config: "cfg.yaml",
			cf: campaignFlags{
				tracePath: "t.json", profilePath: "p.json",
				outputs: map[string]string{"-trace": "t.json", "-profile": "p.json"},
			},
		},
	}
	for _, c := range cases {
		err := validateFlags(c.config, 0, "", "DD", c.cf)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

// TestRunConfigTraceExports runs a campaign with -trace/-profile paths
// (one in a directory that does not exist yet) and checks the artifacts:
// the trace validates against the Chrome trace_event schema, the profile
// phases sum to its total, and the bytes do not depend on -workers.
func TestRunConfigTraceExports(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.yaml")
	if err := os.WriteFile(path, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	export := func(workers int, tag string) (traceBytes, profileBytes []byte) {
		cf := campaignFlags{
			workers:     workers,
			seed:        42,
			tracePath:   filepath.Join(dir, tag, "nested", "trace.json"),
			profilePath: filepath.Join(dir, tag, "profile.json"),
		}
		var out bytes.Buffer
		if _, err := runConfig(context.Background(), &out, path, cf, nil); err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(cf.tracePath)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := os.ReadFile(cf.profilePath)
		if err != nil {
			t.Fatal(err)
		}
		return tb, pb
	}
	trace1, prof1 := export(1, "w1")
	trace4, prof4 := export(4, "w4")
	if !bytes.Equal(trace1, trace4) {
		t.Error("trace bytes differ between -workers 1 and -workers 4")
	}
	if !bytes.Equal(prof1, prof4) {
		t.Error("profile bytes differ between -workers 1 and -workers 4")
	}
	if err := trace.ValidateChrome(bytes.NewReader(trace1)); err != nil {
		t.Errorf("exported trace does not validate: %v", err)
	}
	var p trace.Profile
	if err := json.Unmarshal(prof1, &p); err != nil {
		t.Fatalf("profile JSON malformed: %v", err)
	}
	if p.Campaign != "campaign" {
		t.Errorf("campaign name %q, want config base name", p.Campaign)
	}
	var sum float64
	for _, ph := range p.Phases {
		sum += ph.Seconds
	}
	if sum != p.TotalSeconds || p.TotalSeconds <= 0 {
		t.Errorf("profile phases sum %v, total %v", sum, p.TotalSeconds)
	}
}

// TestCLIExitCodes re-execs the test binary into main() to lock the
// command's exit-code contract for the export flags: misuse exits 1
// with a clear message, a good invocation exits 0 and leaves validating
// artifacts behind.
func TestCLIExitCodes(t *testing.T) {
	if os.Getenv("MIXPBENCH_RUN_MAIN") == "1" {
		flag.CommandLine = flag.NewFlagSet("mixpbench", flag.ExitOnError)
		os.Args = append([]string{"mixpbench"},
			strings.Split(os.Getenv("MIXPBENCH_ARGS"), "\x1f")...)
		main()
		os.Exit(0)
	}
	dir := t.TempDir()
	cfg := filepath.Join(dir, "cfg.yaml")
	if err := os.WriteFile(cfg, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	runMain := func(args ...string) (int, string) {
		cmd := exec.Command(os.Args[0], "-test.run", "TestCLIExitCodes")
		cmd.Env = append(os.Environ(),
			"MIXPBENCH_RUN_MAIN=1",
			"MIXPBENCH_ARGS="+strings.Join(args, "\x1f"))
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		return ee.ExitCode(), string(out)
	}

	if code, out := runMain("-trace", filepath.Join(dir, "t.json")); code != 1 || !strings.Contains(out, "requires -config") {
		t.Errorf("-trace without -config: code %d, output:\n%s", code, out)
	}
	if code, out := runMain("-config", cfg, "-trace", ""); code != 1 || !strings.Contains(out, "must not be empty") {
		t.Errorf("empty -trace: code %d, output:\n%s", code, out)
	}
	same := filepath.Join(dir, "same.json")
	if code, out := runMain("-config", cfg, "-trace", same, "-profile", same); code != 1 || !strings.Contains(out, "duplicate output path") {
		t.Errorf("duplicate outputs: code %d, output:\n%s", code, out)
	}

	tracePath := filepath.Join(dir, "artifacts", "trace.json")
	profilePath := filepath.Join(dir, "artifacts", "profile.json")
	code, out := runMain("-config", cfg, "-seed", "42", "-trace", tracePath, "-profile", profilePath)
	if code != 0 {
		t.Fatalf("good invocation: code %d, output:\n%s", code, out)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.ValidateChrome(f); err != nil {
		t.Errorf("exported trace does not validate: %v", err)
	}
	if _, err := os.Stat(profilePath); err != nil {
		t.Errorf("profile artifact missing: %v", err)
	}
}

// TestDeadlineContext checks the -timeout wiring: zero means no
// deadline, positive values install one.
func TestDeadlineContext(t *testing.T) {
	ctx, cancel := deadlineContext(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("timeout 0 installed a deadline")
	}
	ctx2, cancel2 := deadlineContext(0.001)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Error("positive timeout installed no deadline")
	}
	select {
	case <-ctx2.Done():
	case <-time.After(5 * time.Second):
		t.Error("1ms deadline never expired")
	}
}
