// Package good is a typedepcheck fixture whose declared graphs are
// fully witnessed: P2 (array co-location), P3 (fill binding), P4
// (alias axiom) in the kernel port, P1 (parameter web) in the app port.
package good

import (
	"repro/internal/mp"
	"repro/internal/typedep"
)

type kernelGood struct {
	name  string
	graph *typedep.Graph

	vA, vB, vS, vQ, vR mp.VarID
}

// NewKernelGood declares a kernel-shaped port: no parameter web, so
// every edge needs Run-body evidence or an alias axiom, and every
// variable must be exercised.
func NewKernelGood() *kernelGood {
	g := typedep.NewGraph()
	k := &kernelGood{name: "kernel-good", graph: g}
	k.vA = g.Add("a", "loop", typedep.ArrayVar)
	k.vB = g.Add("b", "loop", typedep.ArrayVar)
	k.vS = g.Add("s", "loop", typedep.Scalar)
	g.ConnectAll(k.vA, k.vB, k.vS)
	k.vQ = g.Add("q", "setup", typedep.Scalar)
	k.vR = g.Add("r", "setup", typedep.Scalar)
	//mixplint:alias -- q and r are coupled only in the original C setup routine
	g.Connect(k.vQ, k.vR)
	return k
}

func (k *kernelGood) Run(t *mp.Tape, seed int64) []float64 {
	a := t.NewArray(k.vA, 8)
	b := t.NewArray(k.vB, 8)
	s := t.Value(k.vS, 0.5)
	a.Fill(s) // P3: binds s to a
	q := t.Value(k.vQ, 0.25)
	r := t.Value(k.vR, 0.125)
	for i := 0; i < 8; i++ {
		b.Set(i, a.Get(i)*q+r) // P2: a and b meet in one store
	}
	return b.Snapshot()
}

type appGood struct {
	name  string
	graph *typedep.Graph

	vW mp.VarID
}

// NewAppGood declares an app-shaped port: the array is webbed to a
// call-site parameter, so its edges are self-witnessing (P1) and the
// unused-variable rule does not apply.
func NewAppGood() *appGood {
	g := typedep.NewGraph()
	a := &appGood{name: "app-good", graph: g}
	a.vW = g.Add("w", "main", typedep.ArrayVar)
	p := g.Add("w_p0", "kernel", typedep.Param)
	g.Connect(a.vW, p)
	return a
}

func (a *appGood) Run(t *mp.Tape, seed int64) []float64 {
	w := t.NewArray(a.vW, 4)
	w.Fill(1.0)
	return w.Snapshot()
}
