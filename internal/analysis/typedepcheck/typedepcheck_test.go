package typedepcheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestGood: fully witnessed graphs (P1 web, P2 co-location, P3 fill,
// P4 alias axiom) produce no diagnostics.
func TestGood(t *testing.T) {
	analysistest.Run(t, Analyzer, "good")
}

// TestBadMissing: Run dataflow that connects arrays the declared graph
// keeps apart is reported as a missing edge, including flow through a
// local temporary.
func TestBadMissing(t *testing.T) {
	analysistest.Run(t, Analyzer, "bad_missing")
}

// TestBadSpurious: declared-but-unwitnessed edges, idle declared
// variables, wrong Assign source lists, and kind mismatches are all
// reported.
func TestBadSpurious(t *testing.T) {
	analysistest.Run(t, Analyzer, "bad_spurious")
}
