// Package typedep reproduces the role Typeforge plays in the paper: an
// inter-procedural type-dependence analysis that partitions a program's
// floating-point variables into clusters that must change type together for
// the program to keep compiling.
//
// The paper's rule (Section II-C, Listing 1): an entity x is type-dependent
// on an entity y iff x's type may need to change as a consequence of a
// change to y's type. Pointer/array variables bound to pointer parameters
// share a base type with them, as do aliases established by pointer
// assignments; scalar-to-scalar assignments do NOT force a shared type
// because an implicit cast keeps the program valid. The analysis is purely
// type based and yields a true partition (disjoint type-change sets), so a
// union-find over the declared dependence edges computes it exactly.
//
// In the original tool chain the edges come from a C++ AST. The Go ports
// cannot parse the C sources they descend from, so each benchmark declares
// its variable inventory and dependence edges explicitly, mirroring the
// structure of the original source (the counts of Table II are reproduced
// exactly and tested). The search algorithms consume only the resulting
// partition, which is the same artifact FloatSmith receives from Typeforge
// via its JSON interchange format.
package typedep

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/mp"
)

// Kind classifies a tunable program location, following the location kinds
// the paper enumerates for source-level analysis.
type Kind uint8

const (
	// Scalar is a local or global scalar variable.
	Scalar Kind = iota
	// ArrayVar is an array or dynamically allocated buffer.
	ArrayVar
	// Param is a function parameter.
	Param
	// Pointer is a pointer-typed variable that is not itself a buffer.
	Pointer
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case ArrayVar:
		return "array"
	case Param:
		return "param"
	case Pointer:
		return "pointer"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Variable describes one tunable location.
type Variable struct {
	// ID is the dense index used by mp.Tape configurations.
	ID mp.VarID
	// Name is the source-level identifier, unique within Unit.
	Name string
	// Unit is the enclosing program component (function or module name).
	// The hierarchical search strategies group variables by Unit.
	Unit string
	// Kind classifies the location.
	Kind Kind
}

// Graph is a program's variable inventory plus its type-dependence edges.
// Build one with NewGraph, then declare variables and edges; Clusters and
// related queries may be called at any point and reflect the declarations
// so far.
type Graph struct {
	vars   []Variable
	parent []int // union-find forest over variable IDs
	byName map[string]mp.VarID
}

// NewGraph returns an empty dependence graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]mp.VarID)}
}

// Add declares a variable and returns its ID. The (unit, name) pair must be
// unique; Add panics on duplicates because a duplicate always indicates a
// benchmark declaration bug, never a runtime condition.
func (g *Graph) Add(name, unit string, kind Kind) mp.VarID {
	key := unit + "::" + name
	if _, dup := g.byName[key]; dup {
		panic(fmt.Sprintf("typedep: duplicate variable %s", key))
	}
	id := mp.VarID(len(g.vars))
	g.vars = append(g.vars, Variable{ID: id, Name: name, Unit: unit, Kind: kind})
	g.parent = append(g.parent, int(id))
	g.byName[key] = id
	return id
}

// Connect records that a and b are type-dependent: any configuration must
// assign them the same precision. Connecting a variable to itself is a
// no-op.
func (g *Graph) Connect(a, b mp.VarID) {
	ra, rb := g.find(int(a)), g.find(int(b))
	if ra != rb {
		if ra > rb { // union by smaller root keeps cluster order stable
			ra, rb = rb, ra
		}
		g.parent[rb] = ra
	}
}

// ConnectAll links every listed variable into one type-change set. It is a
// convenience for parameter lists threaded through several functions.
func (g *Graph) ConnectAll(ids ...mp.VarID) {
	for i := 1; i < len(ids); i++ {
		g.Connect(ids[0], ids[i])
	}
}

// find walks to the root without path compression: inventories are small
// (at most a few hundred variables) and a read-only find keeps concurrent
// queries from the harness worker pool race-free.
func (g *Graph) find(x int) int {
	for g.parent[x] != x {
		x = g.parent[x]
	}
	return x
}

// NumVars returns the Total Variables count (the paper's TV metric).
func (g *Graph) NumVars() int { return len(g.vars) }

// Var returns the declaration of variable id.
func (g *Graph) Var(id mp.VarID) Variable { return g.vars[id] }

// Vars returns all declarations in ID order. The caller must not modify the
// returned slice.
func (g *Graph) Vars() []Variable { return g.vars }

// Lookup resolves a (unit, name) pair to its variable ID.
func (g *Graph) Lookup(name, unit string) (mp.VarID, bool) {
	id, ok := g.byName[unit+"::"+name]
	return id, ok
}

// Cluster is one type-change set: variables that must share a precision.
type Cluster struct {
	// Index is the cluster's position in the deterministic cluster order.
	Index int
	// Members lists the variable IDs in ascending order.
	Members []mp.VarID
}

// Clusters returns the partition of all variables into type-change sets.
// The order is deterministic: clusters sorted by their smallest member ID.
// Its length is the Total Clusters count (the paper's TC metric).
func (g *Graph) Clusters() []Cluster {
	groups := make(map[int][]mp.VarID)
	for i := range g.vars {
		r := g.find(i)
		groups[r] = append(groups[r], mp.VarID(i))
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]Cluster, len(roots))
	for i, r := range roots {
		members := groups[r]
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		out[i] = Cluster{Index: i, Members: members}
	}
	return out
}

// NumClusters returns the Total Clusters count without materialising the
// partition.
func (g *Graph) NumClusters() int {
	n := 0
	for i := range g.vars {
		if g.find(i) == i {
			n++
		}
	}
	return n
}

// SameCluster reports whether a and b belong to the same type-change set.
func (g *Graph) SameCluster(a, b mp.VarID) bool {
	return g.find(int(a)) == g.find(int(b))
}

// Units returns the distinct Unit names in first-declaration order. The
// hierarchical search uses this as the middle level of the program tree.
func (g *Graph) Units() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range g.vars {
		if !seen[v.Unit] {
			seen[v.Unit] = true
			out = append(out, v.Unit)
		}
	}
	return out
}

// UnitVars returns the IDs of the variables declared in unit, in ID order.
func (g *Graph) UnitVars(unit string) []mp.VarID {
	var out []mp.VarID
	for _, v := range g.vars {
		if v.Unit == unit {
			out = append(out, v.ID)
		}
	}
	return out
}

// SearchSpaceSize returns p^loc, the number of points in the search space
// over loc locations with p precision levels (the paper's Section II). It
// uses big.Int because realistic inventories (CFD: 195 variables) overflow
// uint64 immediately.
func SearchSpaceSize(precLevels, locations int) *big.Int {
	return new(big.Int).Exp(big.NewInt(int64(precLevels)), big.NewInt(int64(locations)), nil)
}

// Valid reports whether a precision assignment respects the partition: all
// members of every cluster share one precision. Source-level search
// strategies that ignore clusters (the hierarchical family in CRAFT) can
// propose assignments that split a cluster; such a program does not
// compile, so the evaluation harness fails it without running.
func (g *Graph) Valid(precOf func(mp.VarID) mp.Prec) bool {
	root := make(map[int]mp.Prec)
	for i := range g.vars {
		r := g.find(i)
		p := precOf(mp.VarID(i))
		if have, ok := root[r]; ok {
			if have != p {
				return false
			}
		} else {
			root[r] = p
		}
	}
	return true
}
