package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// TestCrashMidAppend is the durability acceptance test: a child process
// appends records, fsyncs each, and ACKs them on stdout; the parent
// SIGKILLs it mid-append and reopens the store. Every ACK'd record must
// survive - the torn tail, if any, may only contain records that were
// never acknowledged. The child uses tiny segments so the kill also
// lands across rotations, exercising the rename + dir-fsync path.
func TestCrashMidAppend(t *testing.T) {
	if dir := os.Getenv("STORE_CRASH_CHILD"); dir != "" {
		crashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("re-exec crash test skipped in -short")
	}
	// Kill after a varying number of ACKs so the tear lands at different
	// phases: first segment, post-rotation, mid-stream.
	for _, after := range []int{3, 25, 90} {
		after := after
		t.Run(fmt.Sprintf("kill-after-%d", after), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "TestCrashMidAppend")
			cmd.Env = append(os.Environ(), "STORE_CRASH_CHILD="+dir)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			acked := 0
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if !strings.HasPrefix(line, "ACK ") {
					continue
				}
				n, err := strconv.Atoi(strings.TrimPrefix(line, "ACK "))
				if err != nil || n != acked {
					t.Fatalf("bad ACK line %q (want ACK %d)", line, acked)
				}
				acked++
				if acked >= after {
					break
				}
			}
			if acked < after {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("child exited after only %d ACKs (want %d)", acked, after)
			}
			// The child keeps appending while we kill it: the SIGKILL
			// lands mid-append with near certainty.
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()

			s, err := Open(dir, Options{Fingerprint: testFP})
			if err != nil {
				t.Fatalf("reopen after SIGKILL: %v", err)
			}
			defer s.Close()
			for i := 0; i < acked; i++ {
				got, ok := s.Get(crashKey(i))
				if !ok {
					t.Fatalf("ACK'd record %d lost after SIGKILL (stats: %+v)", i, s.Stats())
				}
				if want := crashVal(i); !bytes.Equal(got, want) {
					t.Fatalf("record %d corrupted after SIGKILL", i)
				}
			}
			st := s.Stats()
			if st.Quarantined != 0 {
				t.Fatalf("SIGKILL must only tear the active tail, never quarantine: %+v", st)
			}
			// The recovered store keeps working.
			s.Put([]byte("post-crash"), []byte("ok"))
			if err := s.Sync(); err != nil {
				t.Fatalf("post-crash Sync: %v", err)
			}
		})
	}
}

// crashChild runs in the re-exec'd process: append, fsync, ACK, forever
// (until the parent kills it).
func crashChild(dir string) {
	s, err := Open(dir, Options{Fingerprint: testFP, MaxSegmentBytes: 2 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(2)
	}
	for i := 0; ; i++ {
		s.Put(crashKey(i), crashVal(i))
		if err := s.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "child sync:", err)
			os.Exit(2)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

func crashKey(i int) []byte { return []byte(fmt.Sprintf("crash-%06d", i)) }

func crashVal(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8), 0xab}, 33)
}
