package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"traceEvents":[`+
		`{"name":"campaign","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"cat":"campaign"}`+
		`],"displayTimeUnit":"ms"}`), 0o644)
	if err := checkFile(good); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"X"}]}`), 0o644)
	if err := checkFile(bad); err == nil {
		t.Error("malformed trace accepted")
	}
	if err := checkFile(filepath.Join(dir, "missing.json")); err == nil || !strings.Contains(err.Error(), "missing.json") {
		t.Errorf("missing file: %v", err)
	}
}
