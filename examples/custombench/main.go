// Custombench: plug a brand-new program into the suite and tune it.
//
// The benchmark contract is three declarations: a type-dependence graph
// over the tunable variables (what a source-level tool could retype and
// which variables must change together), a quality metric, and a Run
// method that computes against a Tape - storing through tape-allocated
// arrays and Assign calls so that demoted variables round exactly as a
// recompiled mixed binary would and the machine model sees the work.
//
// The program here is a 2D Jacobi relaxation: two grids that must share a
// type (the solver swaps them), a float32-exact source term, and an
// independent damping factor.
//
//	go run ./examples/custombench
package main

import (
	"fmt"
	"log"
	"math/rand"

	mixpbench "repro"
)

// jacobi is a five-point Jacobi relaxation on an n x n grid.
type jacobi struct {
	graph        *mixpbench.Graph
	vGrid, vNext mixpbench.VarID
	vSrc, vDamp  mixpbench.VarID
}

const (
	jacobiN     = 64
	jacobiIters = 30
)

func newJacobi() *jacobi {
	g := mixpbench.NewGraph()
	j := &jacobi{graph: g}
	// grid and next are swapped every sweep, so they must share a type.
	j.vGrid = g.Add("grid", "solve", mixpbench.ArrayVar)
	j.vNext = g.Add("next", "solve", mixpbench.ArrayVar)
	g.Connect(j.vGrid, j.vNext)
	j.vSrc = g.Add("source", "setup", mixpbench.ArrayVar)
	j.vDamp = g.Add("damping", "setup", mixpbench.Scalar)
	return j
}

func (j *jacobi) Name() string                { return "jacobi2d" }
func (j *jacobi) Kind() mixpbench.ProgramKind { return mixpbench.Kernel }
func (j *jacobi) Description() string         { return "2D Jacobi relaxation" }
func (j *jacobi) Metric() mixpbench.Metric    { return mixpbench.RMSE }
func (j *jacobi) Graph() *mixpbench.Graph     { return j.graph }

func (j *jacobi) Run(t *mixpbench.Tape, seed int64) mixpbench.Output {
	rng := rand.New(rand.NewSource(seed))
	n := jacobiN
	grid := t.NewArray(j.vGrid, n*n)
	next := t.NewArray(j.vNext, n*n)
	src := t.NewArray(j.vSrc, n*n)
	for i := 0; i < n*n; i++ {
		src.Set(i, float64(rng.Float32())*0.0625) // float32-exact
	}
	damp := t.Value(j.vDamp, 0.8)

	for iter := 0; iter < jacobiIters; iter++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				i := r*n + c
				avg := 0.25 * (grid.Get(i-1) + grid.Get(i+1) + grid.Get(i-n) + grid.Get(i+n))
				next.Set(i, damp*avg+src.Get(i))
			}
		}
		grid, next = next, grid
	}
	t.AddFlops(t.Prec(j.vGrid), uint64(7*(n-2)*(n-2)*jacobiIters))
	return mixpbench.Output{Values: grid.Snapshot()}
}

func main() {
	b := newJacobi()
	fmt.Printf("custom benchmark %q: %d variables in %d clusters\n",
		b.Name(), b.Graph().NumVars(), b.Graph().NumClusters())

	// Sanity-check the port before searching: the original program must
	// be deterministic and finite.
	runner := mixpbench.NewRunner(7)
	ref := runner.Reference(b)
	fmt.Printf("reference run: %d values, modelled %.3g s\n",
		len(ref.Output.Values), ref.ModelTime)

	for _, threshold := range []float64{1e-6, 1e-10} {
		res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
			Algorithm: "CB", // the space is tiny: exhaustive search is exact
			Threshold: threshold,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("threshold %.0e: nothing demotable\n", threshold)
			continue
		}
		fmt.Printf("threshold %.0e: %d/%d variables single, speedup %.2fx, RMSE %.3g (evaluated %d)\n",
			threshold, res.Config.Singles(), b.Graph().NumVars(),
			res.Speedup, res.Error, res.Evaluated)
	}
}
