// Package simclock defines an analyzer that bans wall-clock reads in
// the repo's deterministic packages. The harness, search, engine,
// faults, and runcache layers all charge time to a simulated cluster
// clock so campaign results are byte-identical at any worker count; a
// single time.Now() in those paths silently breaks that guarantee (and
// every determinism test that relies on it) without failing any test
// until the schedule happens to shift.
package simclock

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// banned is the shared wall-clock table (astq.WallClock): the time
// package functions that observe or depend on the wall clock. Pure
// constructors and conversions (time.Duration, time.Unix, time.Date,
// ParseDuration) stay legal: they are deterministic given their inputs.
var banned = astq.WallClock

var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time in deterministic packages (use the simulated clock)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := astq.PkgFunc(pass.TypesInfo, call, "time"); ok && banned[name] {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; deterministic paths must charge the simulated clock instead", name)
			}
			return true
		})
	}
	return nil
}
