package search

// DeltaDebug is the paper's DD strategy (Precimonious lineage): a modified
// binary search over the list of clusters. It first tries to demote
// everything; on failure it recursively bisects the candidate list,
// keeping every half that can be demoted on top of what is already
// demoted, and descending into halves that cannot. It terminates at a
// local minimum where no remaining cluster can be converted.
//
// On a ladder with more than two rungs the bisection deepens in stages:
// stage r takes the clusters accepted at rung r-1 as candidates and
// bisects over raising them to rung r, on top of everything already
// accepted. The default ladder runs exactly one stage - the historical
// search.
//
// The paper's findings about DD fall out of this structure: at loose
// thresholds the whole program passes at once (two evaluations and done);
// as the threshold tightens, more bisection levels fail and the number of
// evaluated configurations grows, but the converged configuration
// consistently carries the most speedup of all strategies because every
// accepted half is re-validated in the context of everything accepted
// before it.
type DeltaDebug struct{}

// Name returns "DD".
func (DeltaDebug) Name() string { return "DD" }

// Mode returns ByCluster.
func (DeltaDebug) Mode() Mode { return ByCluster }

// Search runs the recursive bisection, once per ladder stage.
func (d DeltaDebug) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	p := e.Space().NumRungs()
	lowered := NewSet(n)
	var stopErr error

	for r := uint8(1); int(r) < p && stopErr == nil; r++ {
		// test evaluates lowered with the candidates raised to rung r and
		// accepts the candidates when the combined configuration passes.
		test := func(candidates []int) (bool, Result) {
			set := lowered.Clone()
			for _, i := range candidates {
				set.SetRung(i, r)
			}
			res, err := e.Evaluate(set)
			if err != nil {
				stopErr = err
				return false, res
			}
			return res.Passed, res
		}

		var descend func(candidates []int)
		descend = func(candidates []int) {
			if len(candidates) == 0 || stopErr != nil {
				return
			}
			ok, _ := test(candidates)
			if stopErr != nil {
				return
			}
			if ok {
				for _, i := range candidates {
					lowered.SetRung(i, r)
				}
				return
			}
			if len(candidates) == 1 {
				return // this cluster cannot be converted further
			}
			mid := len(candidates) / 2
			descend(candidates[:mid])
			descend(candidates[mid:])
		}

		// Stage candidates: the clusters sitting exactly one rung above
		// (at stage 1, every cluster).
		var all []int
		for i := 0; i < n; i++ {
			if lowered.Rung(i) == int(r)-1 {
				all = append(all, i)
			}
		}
		descend(all)
	}

	if stopErr != nil || lowered.Count() == 0 {
		return finish(d.Name(), e, Set{}, Result{}, false, stopErr)
	}
	r, err := e.Evaluate(lowered) // cached: the accepting test ran it
	if err != nil {
		return finish(d.Name(), e, Set{}, Result{}, false, err)
	}
	return finish(d.Name(), e, lowered, r, r.Passed, nil)
}
