// Package ladder is a typedepcheck fixture for the ladder era: the
// port's constructor parses a campaign ladder, validates it, and routes
// graph declaration through a ladder-parameterized helper. The
// interpreter must model mp.ParseLadder/DefaultLadder and the Ladder
// methods (Validate, IsDefault, Equal, String), including the err != nil
// branch on the parse result, to recover the declared inventory.
package ladder

import (
	"repro/internal/mp"
	"repro/internal/typedep"
)

type ladderPort struct {
	name  string
	graph *typedep.Graph

	vA, vB, vS mp.VarID
}

// NewLadderPort builds the port for the paper's three-rung extension
// ladder. Only this nullary constructor calls typedep.NewGraph; the
// helper takes the ladder as a parameter.
func NewLadderPort() *ladderPort {
	l, err := mp.ParseLadder("f64,f32,bf16")
	if err != nil {
		panic(err)
	}
	g := typedep.NewGraph()
	return newLadderPort(g, l)
}

func newLadderPort(g *typedep.Graph, ladder mp.Ladder) *ladderPort {
	if ladder.Validate() != nil {
		panic("invalid ladder")
	}
	suffix := "-" + ladder.String()
	if ladder.Equal(mp.DefaultLadder()) || ladder.IsDefault() {
		suffix = "-default"
	}
	p := &ladderPort{name: "ladder" + suffix, graph: g}
	p.vA = g.Add("a_"+ladder[0].Name(), "loop", typedep.ArrayVar)
	p.vB = g.Add("b", "loop", typedep.ArrayVar)
	p.vS = g.Add("s", "loop", typedep.Scalar)
	g.ConnectAll(p.vA, p.vB, p.vS)
	return p
}

func (p *ladderPort) Run(t *mp.Tape, seed int64) []float64 {
	a := t.NewArray(p.vA, 8)
	b := t.NewArray(p.vB, 8)
	s := t.Value(p.vS, 0.5)
	a.Fill(s) // P3: binds s to a
	for i := 0; i < 8; i++ {
		b.Set(i, a.Get(i)) // P2: a and b meet in one store
	}
	return b.Snapshot()
}
