package mp

// Cost meters the machine work of one benchmark execution, split by
// precision so the performance model can price double and single precision
// differently. All counters are exact tallies, not samples.
//
// The split matters because the two mechanisms the paper credits for
// mixed-precision speedups are (a) higher single-precision arithmetic
// throughput (wider vectors) and (b) halved memory footprint and traffic,
// which can move an array working set into a cache level it previously
// missed (the LavaMD effect). Casts are counted separately because a
// configuration that demotes only part of a dependence chain pays
// conversion instructions at every precision boundary, which is how a
// "smaller" configuration can end up slower than the original program.
type Cost struct {
	// Flops64, Flops32, and Flops16 count floating-point operations
	// retired at each precision.
	Flops64 uint64
	Flops32 uint64
	Flops16 uint64
	// Casts counts conversions between precisions introduced by the
	// configuration (format moves at assignment boundaries).
	Casts uint64
	// CastPairs splits the attributable part of Casts by the width-class
	// pair [from][to] of the conversion (0: 8-byte, 1: 4-byte, 2: 2-byte
	// containers). A machine model with a cast matrix prices each pair
	// separately; conversions recorded without pair attribution (AddCasts)
	// appear only in the Casts total.
	CastPairs [3][3]uint64
	// Bytes64, Bytes32, and Bytes16 count bytes of array traffic at each
	// element width (loads plus stores). Scalar variables live in
	// registers and do not contribute.
	Bytes64 uint64
	Bytes32 uint64
	Bytes16 uint64
	// Footprint64, Footprint32, and Footprint16 count bytes of array
	// storage allocated at each width; their sum is the resident working
	// set used to pick the cache level the traffic is served from.
	Footprint64 uint64
	Footprint32 uint64
	Footprint16 uint64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Flops64 += o.Flops64
	c.Flops32 += o.Flops32
	c.Flops16 += o.Flops16
	c.Casts += o.Casts
	for i := range c.CastPairs {
		for j := range c.CastPairs[i] {
			c.CastPairs[i][j] += o.CastPairs[i][j]
		}
	}
	c.Bytes64 += o.Bytes64
	c.Bytes32 += o.Bytes32
	c.Bytes16 += o.Bytes16
	c.Footprint64 += o.Footprint64
	c.Footprint32 += o.Footprint32
	c.Footprint16 += o.Footprint16
}

// Flops returns the total floating-point operation count at all precisions.
func (c Cost) Flops() uint64 { return c.Flops64 + c.Flops32 + c.Flops16 }

// Bytes returns the total array traffic in bytes at all element widths.
func (c Cost) Bytes() uint64 { return c.Bytes64 + c.Bytes32 + c.Bytes16 }

// Footprint returns the total resident array storage in bytes.
func (c Cost) Footprint() uint64 { return c.Footprint64 + c.Footprint32 + c.Footprint16 }
