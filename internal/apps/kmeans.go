package apps

import (
	"bytes"
	"fmt"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// kmeans is the data-mining clustering benchmark (Rodinia lineage): points
// are assigned to the nearest of K centres, centres are recomputed as the
// mean of their members, and the loop repeats until the assignment is
// stable. The output is the final cluster assignment of every point,
// scored with the misclassification rate (MCR) - the suite's one
// classification-quality benchmark.
//
// Inventory (Table II: TV=26, TC=15): the feature matrix, the centres,
// and the fresh-centre accumulators form three pointer webs; the
// convergence delta and the working distance travel through pointer
// out-params (two pairs); ten scalars are independent.
//
// Performance character: the paper's Table IV records essentially no
// benefit (0.96x) for the full single conversion and MCR 0. The blobs are
// well separated, so assignments never flip under rounding; and the
// assignment phase - index arithmetic, compares, branches - dominates the
// run and gains nothing from narrower data, so halving the feature traffic
// moves the total barely at all.
type kmeans struct {
	app
	vFeature, vClusters, vNewCenters mp.VarID
	vDelta, vDist                    mp.VarID
}

const (
	kmPoints = 1024
	kmDims   = 8
	kmK      = 5
	kmTol    = 1e-4
	kmMax    = 40
	kmScale  = 40
	// Per point-centre-dimension work of the assignment phase, charged at
	// double rate: the distance loop is dominated by index arithmetic,
	// compares, and branches that precision leaves untouched.
	kmAssignFlops = 16
)

// kmSingleNames are the ten independent scalars.
var kmSingleNames = []string{
	"min_dist", "threshold", "rmse", "sum", "tmp_dist",
	"obj", "fuzziness", "scale_factor", "delta_tmp", "timing",
}

// NewKMeans constructs the application.
func NewKMeans() bench.Benchmark {
	k := &kmeans{app: app{
		name:   "K-means",
		desc:   "K-means clustering of data objects into K sub-clusters",
		metric: verify.MCR,
		graph:  typedep.NewGraph(),
	}}
	g := k.graph
	k.vFeature = g.Add("feature", "main", typedep.ArrayVar)
	addAliases(g, k.vFeature, "kmeans_clustering", "feature", 3)
	k.vClusters = g.Add("clusters", "main", typedep.ArrayVar)
	addAliases(g, k.vClusters, "kmeans_clustering", "clusters", 3)
	k.vNewCenters = g.Add("new_centers", "kmeans_clustering", typedep.ArrayVar)
	addAliases(g, k.vNewCenters, "find_nearest_point", "new_centers", 3)
	pair := func(name string) mp.VarID {
		owner := g.Add(name, "kmeans_clustering", typedep.Scalar)
		param := g.Add(name+"_p", "find_nearest_point", typedep.Param)
		g.Connect(owner, param)
		return owner
	}
	k.vDelta = pair("delta")
	k.vDist = pair("dist")
	for _, n := range kmSingleNames {
		g.Add(n, "main", typedep.Scalar)
	}
	if g.NumVars() != 26 || g.NumClusters() != 15 {
		panic(fmt.Sprintf("kmeans: inventory %d/%d, want 26/15", g.NumVars(), g.NumClusters()))
	}
	return k
}

func (k *kmeans) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(kmScale)
	rng := t.Rand(seed)
	feature := t.NewArray(k.vFeature, kmPoints*kmDims)
	clusters := t.NewArray(k.vClusters, kmK*kmDims)
	newCenters := t.NewArray(k.vNewCenters, kmK*kmDims)

	// Well-separated blobs: blob centres on a coarse lattice, points
	// jittered tightly around them, so no rounding flips an assignment.
	// The data arrives through the runtime library's file path (the
	// paper's kdd_bin input, Listing 3): the file stores doubles, and
	// mp_fread converts to whatever width the configuration gives the
	// feature buffer.
	blobOf := make([]int, kmPoints)
	raw := make([]float64, kmPoints*kmDims)
	for i := 0; i < kmPoints; i++ {
		blob := rng.Intn(kmK)
		blobOf[i] = blob
		for d := 0; d < kmDims; d++ {
			center := float64((blob*7+d*3)%kmK) * 4.0
			raw[i*kmDims+d] = center + 0.3*(rng.Float64()-0.5)
		}
	}
	var inputFile bytes.Buffer
	if err := mp.WriteValues(&inputFile, mp.F64, raw); err != nil {
		panic("kmeans: writing input file: " + err.Error())
	}
	if err := mp.ReadInto(&inputFile, mp.F64, feature); err != nil {
		panic("kmeans: reading input file: " + err.Error())
	}
	// Initial centres: the first point of each blob (Rodinia seeds with
	// the first K points; blob-seeding keeps runs comparable).
	seeded := make(map[int]bool)
	for i := 0; i < kmPoints && len(seeded) < kmK; i++ {
		b := blobOf[i]
		if !seeded[b] {
			seeded[b] = true
			for d := 0; d < kmDims; d++ {
				clusters.Set(b*kmDims+d, feature.Get(i*kmDims+d))
			}
		}
	}

	membership := make([]int, kmPoints)
	for i := range membership {
		membership[i] = -1
	}
	counts := make([]int, kmK)
	iters := 0
	for iters < kmMax {
		delta := 0.0
		newCenters.Fill(0)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < kmPoints; i++ {
			best, bestDist := 0, 0.0
			for c := 0; c < kmK; c++ {
				dist := 0.0
				for d := 0; d < kmDims; d++ {
					diff := feature.Get(i*kmDims+d) - clusters.Get(c*kmDims+d)
					dist = t.Assign(k.vDist, dist+diff*diff, 3, k.vFeature, k.vClusters)
				}
				if c == 0 || dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if membership[i] != best {
				delta = t.Assign(k.vDelta, delta+1, 1)
				membership[i] = best
			}
			counts[best]++
			for d := 0; d < kmDims; d++ {
				idx := best*kmDims + d
				newCenters.Set(idx, newCenters.Get(idx)+feature.Get(i*kmDims+d))
			}
		}
		// Recompute centres and measure their movement.
		move := 0.0
		for c := 0; c < kmK; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < kmDims; d++ {
				idx := c*kmDims + d
				nc := newCenters.Get(idx) / float64(counts[c])
				diff := nc - clusters.Get(idx)
				move += diff * diff
				clusters.Set(idx, nc)
			}
		}
		iters++
		if delta == 0 && move < kmTol {
			break
		}
	}
	t.AddFlops(mp.F64, uint64(kmAssignFlops*kmPoints*kmK*kmDims*iters))

	labels := make([]float64, kmPoints)
	for i, m := range membership {
		labels[i] = float64(m)
	}
	return bench.Output{Values: labels}
}
