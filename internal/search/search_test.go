package search

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// fakeBench is a tiny benchmark with a controllable error surface: three
// clusters {a0,a1}, {b}, {c}; demoting each contributes a known error and
// a known amount of saved work.
type fakeBench struct {
	graph *typedep.Graph
	// errs maps cluster index -> error contribution when demoted.
	errs [3]float64
	// gain maps cluster index -> flops moved from f64 to f32.
	gain [3]uint64
}

func newFakeBench(errs [3]float64) *fakeBench {
	g := typedep.NewGraph()
	a0 := g.Add("a0", "f", typedep.ArrayVar)
	a1 := g.Add("a1", "f", typedep.Param)
	g.Connect(a0, a1)
	g.Add("b", "f", typedep.Scalar)
	g.Add("c", "g", typedep.Scalar)
	return &fakeBench{graph: g, errs: errs, gain: [3]uint64{6e6, 3e6, 1e6}}
}

func (f *fakeBench) Name() string          { return "fake" }
func (f *fakeBench) Kind() bench.Kind      { return bench.Kernel }
func (f *fakeBench) Description() string   { return "synthetic search target" }
func (f *fakeBench) Metric() verify.Metric { return verify.MAE }
func (f *fakeBench) Graph() *typedep.Graph { return f.graph }

func (f *fakeBench) Run(t *mp.Tape, seed int64) bench.Output {
	clusters := f.graph.Clusters()
	out := 1.0
	for i, c := range clusters {
		if t.Prec(c.Members[0]) == mp.F32 {
			out += f.errs[i]
			t.AddFlops(mp.F32, f.gain[i])
		} else {
			t.AddFlops(mp.F64, f.gain[i])
		}
	}
	return bench.Output{Values: []float64{out}}
}

func newEval(t *testing.T, b bench.Benchmark, mode Mode, threshold float64) *Evaluator {
	t.Helper()
	space := NewSpace(b.Graph(), mode)
	return NewEvaluator(space, bench.NewRunner(1), b, threshold)
}

func TestSpaceModes(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	byC := NewSpace(b.Graph(), ByCluster)
	if byC.NumUnits() != 3 {
		t.Errorf("cluster units = %d, want 3", byC.NumUnits())
	}
	byV := NewSpace(b.Graph(), ByVariable)
	if byV.NumUnits() != 4 {
		t.Errorf("variable units = %d, want 4", byV.NumUnits())
	}
}

func TestExpandValidity(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	byV := NewSpace(b.Graph(), ByVariable)
	// Selecting only a0 splits the {a0,a1} cluster.
	half := NewSet(4)
	half.Add(0)
	if _, valid := byV.Expand(half, false); valid {
		t.Error("cluster-splitting selection reported valid")
	}
	// With Typeforge expansion the same selection pulls a1 and compiles.
	cfg, valid := byV.Expand(half, true)
	if !valid {
		t.Error("expanded selection reported invalid")
	}
	if cfg[0] != mp.F32 || cfg[1] != mp.F32 {
		t.Error("expansion did not pull the cluster")
	}
}

func TestEvaluatorCachingAndEV(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	s := NewSet(3)
	s.Add(1)
	if _, err := e.Evaluate(s); err != nil {
		t.Fatal(err)
	}
	if e.Evaluated() != 1 {
		t.Fatalf("EV = %d after first eval", e.Evaluated())
	}
	spent := e.Spent()
	if _, err := e.Evaluate(s); err != nil {
		t.Fatal(err)
	}
	if e.Evaluated() != 1 {
		t.Errorf("cache hit incremented EV to %d", e.Evaluated())
	}
	if e.Spent() != spent {
		t.Errorf("cache hit charged budget")
	}
	// The empty selection is the pre-seeded baseline: free.
	if r, err := e.Evaluate(NewSet(3)); err != nil || !r.Passed || r.Speedup != 1.0 {
		t.Errorf("baseline eval = %+v, %v", r, err)
	}
	if e.Evaluated() != 1 {
		t.Errorf("baseline counted as EV")
	}
}

func TestEvaluatorBudget(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetBudget(e.Spent()) // nothing left
	s := NewSet(3)
	s.Add(0)
	if _, err := e.Evaluate(s); err != ErrBudgetExhausted {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestEvaluatorRejectsWrongCapacity(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-8)
	if _, err := e.Evaluate(NewSet(2)); err == nil {
		t.Error("expected capacity mismatch error")
	}
}

func TestInvalidSelectionCountsButFails(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByVariable, 1e-8)
	half := NewSet(4)
	half.Add(0) // splits {a0,a1}
	r, err := e.Evaluate(half)
	if err != nil {
		t.Fatal(err)
	}
	if r.Valid || r.Passed {
		t.Errorf("split-cluster result = %+v, want invalid fail", r)
	}
	if e.Evaluated() != 1 {
		t.Errorf("invalid selection not counted: EV = %d", e.Evaluated())
	}
}

// errsAllPass makes every demotion pass; errsOnlyB makes cluster 1 the
// only individually passing one.
var (
	errsAllPass = [3]float64{0, 0, 0}
	errsMixed   = [3]float64{1e-3, 0, 1e-3} // only cluster 1 passes at 1e-8
)

func TestCombinationalFindsGlobalBest(t *testing.T) {
	b := newFakeBench(errsMixed)
	e := newEval(t, b, ByCluster, 1e-8)
	out := Combinational{}.Search(e)
	if !out.Found {
		t.Fatal("CB found nothing")
	}
	// Only cluster 1 can be demoted; best must be exactly {1}.
	if out.Best.String() != "010" {
		t.Errorf("CB best = %s, want 010", out.Best)
	}
	if out.Evaluated != 7 {
		t.Errorf("CB EV = %d, want 7 (all non-empty subsets)", out.Evaluated)
	}
	if out.TimedOut {
		t.Error("CB timed out")
	}
}

func TestCombinationalAllPass(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByCluster, 1e-8)
	out := Combinational{}.Search(e)
	if !out.Found || out.Best.Count() != 3 {
		t.Errorf("CB best = %v (found=%v), want full set", out.Best, out.Found)
	}
	if out.BestResult.Speedup <= 1 {
		t.Errorf("full demotion speedup = %g", out.BestResult.Speedup)
	}
}

func TestDeltaDebugConvergesToMaximalSet(t *testing.T) {
	b := newFakeBench(errsMixed)
	e := newEval(t, b, ByCluster, 1e-8)
	out := DeltaDebug{}.Search(e)
	if !out.Found {
		t.Fatal("DD found nothing")
	}
	if out.Best.String() != "010" {
		t.Errorf("DD best = %s, want 010", out.Best)
	}
}

func TestDeltaDebugFastPathWhenAllPass(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByCluster, 1e-8)
	out := DeltaDebug{}.Search(e)
	if !out.Found || out.Best.Count() != 3 {
		t.Fatalf("DD best = %v", out.Best)
	}
	if out.Evaluated != 1 {
		t.Errorf("DD EV = %d, want 1 (whole program passes at once)", out.Evaluated)
	}
}

func TestCompositionalComposesPassing(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByVariable, 1e-8)
	out := Compositional{}.Search(e)
	if !out.Found {
		t.Fatal("CM found nothing")
	}
	// Everything passes individually and composes to the full program.
	if out.BestResult.Speedup <= 1 {
		t.Errorf("CM best speedup = %g", out.BestResult.Speedup)
	}
	cfg, _ := e.Space().Expand(out.Best, true)
	if cfg.Singles() != 4 {
		t.Errorf("CM best demotes %d vars, want 4", cfg.Singles())
	}
}

func TestHierarchicalAcceptsWholeProgramFirst(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByVariable, 1e-8)
	out := Hierarchical{}.Search(e)
	if !out.Found {
		t.Fatal("HR found nothing")
	}
	if out.Evaluated != 1 {
		t.Errorf("HR EV = %d, want 1 (root accepted)", out.Evaluated)
	}
	if out.Best.Count() != 4 {
		t.Errorf("HR accepted %d units", out.Best.Count())
	}
}

func TestHierarchicalDescendsOnFailure(t *testing.T) {
	b := newFakeBench(errsMixed)
	e := newEval(t, b, ByVariable, 1e-8)
	out := Hierarchical{}.Search(e)
	// Root fails; group f = {a0,a1,b} fails; leaves a0, a1 split the
	// cluster (invalid), leaf b passes; group g = {c} fails.
	if !out.Found {
		t.Fatal("HR found nothing")
	}
	cfg, valid := e.Space().Expand(out.Best, false)
	if !valid {
		t.Error("HR returned a non-compiling selection")
	}
	if cfg.Singles() != 1 {
		t.Errorf("HR demotes %d vars, want 1 (b only)", cfg.Singles())
	}
	if out.Evaluated <= 2 {
		t.Errorf("HR EV = %d, expected several (descending)", out.Evaluated)
	}
}

func TestHierCompComposesComponents(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByVariable, 1e-8)
	out := HierComp{}.Search(e)
	if !out.Found {
		t.Fatal("HC found nothing")
	}
	if out.Evaluated != 1 {
		t.Errorf("HC EV = %d, want 1 (root is a component)", out.Evaluated)
	}
}

func TestGeneticIsDeterministicPerSeed(t *testing.T) {
	b := newFakeBench(errsMixed)
	run := func(seed int64) Outcome {
		e := newEval(t, b, ByCluster, 1e-8)
		return NewGenetic(seed).Search(e)
	}
	a1, a2 := run(7), run(7)
	if a1.Found != a2.Found || a1.Evaluated != a2.Evaluated ||
		(a1.Found && !a1.Best.Equal(a2.Best)) {
		t.Error("GA not deterministic for a fixed seed")
	}
}

func TestGeneticFindsPassingConfig(t *testing.T) {
	b := newFakeBench(errsAllPass)
	e := newEval(t, b, ByCluster, 1e-8)
	out := NewGenetic(3).Search(e)
	if !out.Found {
		t.Fatal("GA found nothing on an all-pass surface")
	}
	if out.BestResult.Speedup < 1 {
		t.Errorf("GA best speedup = %g", out.BestResult.Speedup)
	}
}

func TestTimeoutsPropagate(t *testing.T) {
	b := newFakeBench(errsAllPass)
	for _, name := range AlgorithmNames {
		algo, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		e := newEval(t, b, algo.Mode(), 1e-8)
		e.SetBudget(e.Spent()) // no budget for any evaluation
		out := algo.Search(e)
		if !out.TimedOut {
			t.Errorf("%s: TimedOut = false with zero budget", name)
		}
		if out.Found {
			t.Errorf("%s: Found = true with zero budget", name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range AlgorithmNames {
		a, err := ByName(name, 0)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, a.Name())
		}
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	// Granularities per the paper's Section IV-A.
	modes := map[string]Mode{"CB": ByCluster, "CM": ByVariable, "DD": ByCluster,
		"HR": ByVariable, "HC": ByVariable, "GA": ByCluster}
	for name, want := range modes {
		a, _ := ByName(name, 0)
		if a.Mode() != want {
			t.Errorf("%s mode = %v, want %v", name, a.Mode(), want)
		}
	}
}

// TestAllAlgorithmsOnRealKernel exercises every strategy end-to-end on a
// real benchmark (hydro-1d) and checks the invariants that hold for any
// correct strategy: the returned configuration compiles, passes the
// threshold, and EV is positive.
func TestAllAlgorithmsOnRealKernel(t *testing.T) {
	k := kernels.NewHydro1D()
	for _, name := range AlgorithmNames {
		name := name
		t.Run(name, func(t *testing.T) {
			algo, err := ByName(name, 99)
			if err != nil {
				t.Fatal(err)
			}
			space := NewSpace(k.Graph(), algo.Mode())
			e := NewEvaluator(space, bench.NewRunner(42), k, 1e-8)
			out := algo.Search(e)
			if out.TimedOut {
				t.Fatalf("%s timed out on a kernel", name)
			}
			if !out.Found {
				t.Fatalf("%s found nothing on hydro-1d at 1e-8", name)
			}
			if !out.BestResult.Passed {
				t.Error("best result does not pass")
			}
			if out.Evaluated <= 0 {
				t.Error("EV not positive")
			}
			cfg, valid := space.Expand(out.Best, algo.Name() == "CM")
			if !valid {
				t.Errorf("%s returned a non-compiling config %s", name, out.Best)
			}
			if cfg.Singles() == 0 {
				t.Errorf("%s returned the original program", name)
			}
			t.Logf("%s: EV=%d SU=%.3f err=%.3g singles=%d",
				name, out.Evaluated, out.BestResult.Speedup,
				out.BestResult.Verdict.Error, cfg.Singles())
		})
	}
}

func TestEvaluatorTrace(t *testing.T) {
	b := newFakeBench(errsMixed)
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetTrace(true)
	out := DeltaDebug{}.Search(e)
	trace := e.Trace()
	if len(trace) != out.Evaluated {
		t.Fatalf("trace has %d entries, EV = %d", len(trace), out.Evaluated)
	}
	for i, entry := range trace {
		if entry.Seq != i+1 {
			t.Errorf("entry %d has Seq %d", i, entry.Seq)
		}
		if len(entry.Config) != b.Graph().NumVars() {
			t.Errorf("entry %d config %q has wrong width", i, entry.Config)
		}
		if entry.SpentSeconds <= 0 {
			t.Errorf("entry %d has no spent time", i)
		}
	}
	// Spent time must be non-decreasing.
	for i := 1; i < len(trace); i++ {
		if trace[i].SpentSeconds < trace[i-1].SpentSeconds {
			t.Error("spent time decreased along the trace")
		}
	}
	// Tracing off by default: a fresh evaluator records nothing.
	e2 := newEval(t, b, ByCluster, 1e-8)
	DeltaDebug{}.Search(e2)
	if len(e2.Trace()) != 0 {
		t.Error("trace recorded while disabled")
	}
}
