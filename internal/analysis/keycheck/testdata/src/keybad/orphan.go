package keybad

//mixplint:keyexempt Model.Label -- orphaned: this file carries no mixplint:key audit

var orphanAnchor = 0
