package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/mp"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// Job is one deployed analysis: a benchmark plus the analysis parameters
// from its configuration entry.
type Job struct {
	Spec      Spec
	Benchmark bench.Benchmark
	// Ctx, when non-nil, cancels the analysis: the evaluator checks it
	// between runs and the strategy stops with its best-so-far, reported
	// as a canceled outcome. The scheduler installs the campaign context
	// here; a plugin should thread it into its evaluator via SetContext.
	Ctx context.Context //mixplint:ignore ctxfirst -- Job is a data record crossing the scheduler boundary; the campaign context rides in it so plugin strategies can install it via SetContext
	// Seed drives the workload and all analysis randomness.
	Seed int64
	// BudgetSeconds caps the analysis (simulated seconds); zero means the
	// paper's 24-hour default.
	BudgetSeconds float64
	// Telemetry receives the job's evaluation metrics and events (nil =
	// off). The scheduler installs a private per-job recorder here; a
	// plugin should thread it into whatever evaluators and runners it
	// builds.
	Telemetry *telemetry.Recorder
	// FailAtEvaluation, when positive, makes the attempt die with a
	// transient fault at that paid evaluation (the scheduler sets it from
	// the fault injector's draw). A plugin should forward it to its
	// evaluator; an analysis that finishes earlier outruns the fault.
	FailAtEvaluation int
	// Cache, when non-nil, is the campaign-wide run cache (the scheduler
	// installs the shared instance here). A plugin should set it on every
	// bench.Runner it builds: distinct jobs searching the same benchmark
	// propose overlapping configurations, and the cache lets the whole
	// campaign execute each distinct configuration once. Results are pure
	// functions of their cache key and simulated time is charged on hits
	// exactly as on misses, so reports and telemetry are unchanged by
	// sharing.
	Cache *bench.Cache
	// Interpreted disables compiled evaluation for the job: every uncached
	// execution runs against a fresh interpreted tape instead of a
	// precision-specialized kernel. Results are byte-identical either way
	// (locked by the cross-path equivalence tests); the toggle is the
	// escape hatch and the baseline for benchmarking the compiler. The
	// zero value means compiled, the Runner default.
	Interpreted bool
	// Compiler, when non-nil, is the campaign-wide compile cache (the
	// scheduler installs the shared instance here). A plugin should set it
	// on every compiled bench.Runner it builds so jobs proposing the same
	// configuration share one specialized kernel; nil falls back to the
	// process-wide shared compiler.
	Compiler *compile.Compiler
}

// Report is what an analysis returns for one job: the paper's three
// metrics plus the raw outcome.
type Report struct {
	Benchmark string
	Algorithm string
	Threshold float64
	// Evaluated is the EV metric.
	Evaluated int
	// SpentSeconds is the simulated analysis time the job consumed (the
	// budget accounting the paper's Table V timeout cells rest on); the
	// scheduler's job spans are built from it.
	SpentSeconds float64
	// BuildSeconds and RunSeconds split SpentSeconds into its build
	// (transformation + recompilation) and measured-execution phases;
	// they sum exactly to SpentSeconds as the analysis charged it (a
	// straggler fault later inflates the attempt's spend, not these).
	// The trace layer's phase spans are assembled from them.
	BuildSeconds float64
	RunSeconds   float64
	// CacheHits counts evaluator-memo hits (free re-proposals), a pure
	// function of the search sequence.
	CacheHits int
	// Speedup is the SU metric for the configuration the analysis
	// converged to (1.0 when nothing was found).
	Speedup float64
	// Quality is the AC metric: the error of the chosen configuration
	// (NaN marks destroyed output, 0 marks no conversion).
	Quality float64
	// Found and TimedOut qualify the run; a timed-out report renders as
	// the paper's empty grey cell.
	Found    bool
	TimedOut bool
	// Canceled marks an analysis stopped by context cancellation (user
	// abort, service shutdown, deadline). The report still carries the
	// best-so-far the strategy had when the context fired.
	Canceled bool
	// Demoted counts variables converted below the working precision
	// (all singles on the default ladder).
	Demoted int
	// Energy is the modelled energy per run of the chosen configuration
	// in joules (the baseline's energy when nothing was found, zero when
	// the analysis never measured a baseline).
	Energy float64
	// Precisions names the campaign ladder (empty: the default
	// double/single study).
	Precisions string
	// Objective names the analysis objective ("threshold" or "pareto").
	Objective string
	// Front is the Pareto front over every evaluated configuration,
	// recorded only under the pareto objective: deterministic,
	// worker-count-invariant, sorted by configuration key.
	Front []search.ParetoPoint
	// Config is the converged precision assignment (nil when nothing was
	// found) - the analysis artifact, the analog of the transformed
	// executable the original harness returns a path to.
	Config bench.Config
	// Clusters and Variables record the Table II complexity metrics.
	Clusters  int
	Variables int
}

// Analysis is the harness plugin interface: implementing it and
// registering the implementation makes a new analysis technique available
// to every benchmark entry, mirroring the Python harness's class-based
// plugins.
type Analysis interface {
	// Name is the plugin name configuration files select (the analysis
	// clause's "name" field).
	Name() string
	// Analyze runs the technique on one deployed benchmark.
	Analyze(job Job) (Report, error)
}

var (
	pluginMu sync.RWMutex
	plugins  = map[string]Analysis{}
)

// RegisterAnalysis installs a plugin; a duplicate name panics, as plugin
// registration happens at program start and a collision is a bug.
func RegisterAnalysis(a Analysis) {
	pluginMu.Lock()
	defer pluginMu.Unlock()
	if _, dup := plugins[a.Name()]; dup {
		panic(fmt.Sprintf("harness: duplicate analysis plugin %q", a.Name()))
	}
	plugins[a.Name()] = a
}

// LookupAnalysis resolves a plugin by name.
func LookupAnalysis(name string) (Analysis, error) {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	a, ok := plugins[name]
	if !ok {
		names := make([]string, 0, len(plugins))
		for n := range plugins {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("harness: unknown analysis %q (registered: %v)", name, names)
	}
	return a, nil
}

// FloatSmith is the built-in analysis plugin: source-level mixed-precision
// search over the FloatSmith/CRAFT/Typeforge stack, the tool the paper
// evaluates. The configuration's algorithm field selects the strategy.
type FloatSmith struct{}

// Name returns "floatSmith".
func (FloatSmith) Name() string { return "floatSmith" }

// Analyze runs the selected search strategy and assembles the report.
func (FloatSmith) Analyze(job Job) (Report, error) {
	algoName, err := CanonicalAlgorithm(job.Spec.Analysis.Algorithm)
	if err != nil {
		return Report{}, err
	}
	algo, err := search.ByName(algoName, gaSeed(job))
	if err != nil {
		return Report{}, err
	}
	g := job.Benchmark.Graph()
	ladder := job.Spec.Analysis.Precisions
	if ladder == nil {
		ladder = mp.DefaultLadder()
	}
	space := search.NewSpaceWithLadder(g, algo.Mode(), ladder)
	runner := bench.NewRunner(job.Seed)
	runner.Telemetry = job.Telemetry
	runner.Cache = job.Cache
	runner.Compiled = !job.Interpreted
	runner.Compiler = job.Compiler
	eval := search.NewEvaluator(space, runner, job.Benchmark, job.Spec.Analysis.Threshold)
	eval.SetObjective(job.Spec.Analysis.Objective)
	if job.BudgetSeconds > 0 {
		eval.SetBudget(job.BudgetSeconds)
	}
	if job.Ctx != nil {
		eval.SetContext(job.Ctx)
	}
	eval.SetTelemetry(job.Telemetry)
	if job.FailAtEvaluation > 0 {
		eval.SetFailAt(job.FailAtEvaluation)
	}
	out := algo.Search(eval)

	rep := Report{
		Benchmark:    job.Benchmark.Name(),
		Algorithm:    algoName,
		Threshold:    job.Spec.Analysis.Threshold,
		Evaluated:    out.Evaluated,
		SpentSeconds: eval.Spent(),
		BuildSeconds: eval.BuildSpent(),
		RunSeconds:   eval.RunSpent(),
		CacheHits:    eval.CacheHits(),
		Speedup:      1.0,
		Quality:      0,
		Found:        out.Found,
		TimedOut:     out.TimedOut,
		Canceled:     out.Canceled,
		Energy:       eval.Reference().Energy,
		Objective:    job.Spec.Analysis.Objective.String(),
		Clusters:     g.NumClusters(),
		Variables:    g.NumVars(),
	}
	if job.Spec.Analysis.Precisions != nil {
		rep.Precisions = job.Spec.Analysis.Precisions.String()
	}
	if job.Spec.Analysis.Objective == search.ObjectivePareto {
		rep.Front = eval.ParetoFront()
	}
	if out.Err != nil {
		// The attempt died mid-search (a transient fault). Return the
		// partial report alongside the error: its SpentSeconds is the
		// lost work the scheduler charges to the simulated clock before
		// retrying.
		return rep, out.Err
	}
	if out.Found {
		rep.Speedup = out.BestResult.Speedup
		rep.Quality = out.BestResult.Verdict.Error
		rep.Energy = out.BestResult.Energy
		cfg, _ := space.Expand(out.Best, algoName == "CM")
		rep.Demoted = cfg.Demoted()
		rep.Config = cfg
	}
	if (rep.TimedOut || rep.Canceled) && !rep.Found {
		rep.Speedup = math.NaN()
		rep.Quality = math.NaN()
	}
	if out.Canceled {
		// Cancellation is job-fatal but campaign-benign: the scheduler
		// marks the job canceled (no retry - the context is gone) and the
		// other tenants' jobs continue undisturbed.
		return rep, fmt.Errorf("harness: %s/%s canceled after %d evaluations: %w",
			job.Benchmark.Name(), algoName, out.Evaluated, context.Canceled)
	}
	return rep, nil
}

// gaSeed mixes the job identity into the strategy seed so repeated runs
// are reproducible but distinct jobs decorrelate. Non-default ladders and
// objectives join the mix; default campaigns hash exactly the historical
// bytes, so their strategy seeds - and hence their GA walks - are
// unchanged.
func gaSeed(job Job) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%g/%d", job.Benchmark.Name(), job.Spec.Analysis.Algorithm,
		job.Spec.Analysis.Threshold, job.Seed)
	if job.Spec.Analysis.Precisions != nil {
		fmt.Fprintf(h, "/%s", job.Spec.Analysis.Precisions)
	}
	if job.Spec.Analysis.Objective != search.ObjectiveThreshold {
		fmt.Fprintf(h, "/%s", job.Spec.Analysis.Objective)
	}
	return int64(h.Sum64())
}

func init() {
	RegisterAnalysis(FloatSmith{})
}
