package mp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestBulkAccessorsEquivalent checks the defining property of GetN, SetN,
// and SetEach: each is byte-for-byte equivalent - values, cost counters,
// and per-variable profile - to the element-wise loop it replaces, at
// every precision.
func TestBulkAccessorsEquivalent(t *testing.T) {
	for _, p := range []Prec{F64, F32, F16} {
		vals := make([]float64, 64)
		rng := rand.New(rand.NewSource(7))
		for i := range vals {
			vals[i] = rng.NormFloat64() * 1e3
		}

		loop := NewTape(2)
		loop.SetPrec(0, p)
		loop.SetScale(10)
		bulk := NewTape(2)
		bulk.SetPrec(0, p)
		bulk.SetScale(10)

		la := loop.NewArray(0, len(vals))
		ba := bulk.NewArray(0, len(vals))

		for i, x := range vals {
			la.Set(i, x)
		}
		ba.SetN(0, vals)

		for i := range vals {
			la.Set(i, vals[la.Len()-1-i])
		}
		ba.SetEach(func(i int) float64 { return vals[ba.Len()-1-i] })

		gotLoop := make([]float64, len(vals))
		for i := range gotLoop {
			gotLoop[i] = la.Get(i)
		}
		gotBulk := make([]float64, len(vals))
		ba.GetN(0, gotBulk)

		if !reflect.DeepEqual(gotLoop, gotBulk) {
			t.Fatalf("%v: bulk values diverge from the element-wise loop", p)
		}
		if loop.Cost() != bulk.Cost() {
			t.Fatalf("%v: cost diverges:\nloop %+v\nbulk %+v", p, loop.Cost(), bulk.Cost())
		}
		if !reflect.DeepEqual(loop.Profile(), bulk.Profile()) {
			t.Fatalf("%v: per-variable profile diverges", p)
		}
	}
}

// TestChargeFactorsRefresh checks that the precomputed charge factors
// follow every path that can change them: SetPrec, SetScale, and
// SetComputeOnly must each redirect subsequent traffic to the right
// counter at the right magnitude.
func TestChargeFactorsRefresh(t *testing.T) {
	tape := NewTape(1)
	a := tape.NewArray(0, 4)

	a.Set(0, 1) // double, scale 1: 8 bytes
	if c := tape.Cost(); c.Bytes64 != 8 || c.Bytes32 != 0 {
		t.Fatalf("double store: %+v", c)
	}

	tape.SetPrec(0, F32)
	a.Set(1, 1) // single: 4 bytes
	if c := tape.Cost(); c.Bytes32 != 4 {
		t.Fatalf("after SetPrec(F32): %+v", c)
	}

	tape.SetScale(100)
	a.Set(2, 1) // single at scale 100: 400 bytes
	if c := tape.Cost(); c.Bytes32 != 404 {
		t.Fatalf("after SetScale(100): %+v", c)
	}

	tape.SetComputeOnly(true)
	a.Set(3, 1) // IR semantics: storage stays double, 800 bytes
	if c := tape.Cost(); c.Bytes64 != 808 || c.Bytes32 != 404 {
		t.Fatalf("after SetComputeOnly: %+v", c)
	}

	tape.SetComputeOnly(false)
	tape.SetPrec(0, F16)
	a.Set(0, 1) // half at scale 100: 200 bytes
	if c := tape.Cost(); c.Bytes16 != 200 {
		t.Fatalf("after SetPrec(F16): %+v", c)
	}
}

// TestRoundFastPath checks that the split Round keeps its semantics: F64
// is the exact identity (including NaN and infinities), and the narrowing
// precisions match their reference conversions.
func TestRoundFastPath(t *testing.T) {
	cases := []float64{0, 1, -1, 1e-300, 1e300, 3.14159265358979, -2.718281828459045,
		math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, x := range cases {
		if got := F64.Round(x); math.Float64bits(got) != math.Float64bits(x) {
			t.Errorf("F64.Round(%g) = %g, want identity", x, got)
		}
		if got, want := F32.Round(x), float64(float32(x)); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("F32.Round(%g) = %g, want %g", x, got, want)
		}
		if got, want := F16.Round(x), roundToHalf(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("F16.Round(%g) = %g, want %g", x, got, want)
		}
	}
	if got := F64.Round(math.NaN()); !math.IsNaN(got) {
		t.Errorf("F64.Round(NaN) = %g", got)
	}
}

// Micro-benchmarks for the tape hot path (make bench runs these; before
// the precomputed charge factors, Array accessors branched on width and
// multiplied by scale per call).

func BenchmarkArraySet(b *testing.B) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	a := tape.NewArray(0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Set(i&1023, 1.5)
	}
}

func BenchmarkArrayGet(b *testing.B) {
	tape := NewTape(1)
	a := tape.NewArray(0, 1024)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += a.Get(i & 1023)
	}
	_ = sink
}

func BenchmarkArraySetEach(b *testing.B) {
	tape := NewTape(1)
	tape.SetPrec(0, F32)
	a := tape.NewArray(0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SetEach(func(j int) float64 { return float64(j) })
	}
}

func BenchmarkArraySetN(b *testing.B) {
	tape := NewTape(1)
	a := tape.NewArray(0, 1024)
	src := make([]float64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SetN(0, src)
	}
}

func BenchmarkTapeAssign(b *testing.B) {
	tape := NewTape(2)
	tape.SetPrec(1, F32)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = tape.Assign(0, sink+1.0, 1, 1)
	}
	_ = sink
}

func BenchmarkRoundF64(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = F64.Round(sink + 1.25)
	}
	_ = sink
}

func BenchmarkRoundF32(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = F32.Round(sink + 1.25)
	}
	_ = sink
}
