package simclock

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, Analyzer, "clock")
}
