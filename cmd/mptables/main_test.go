package main

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func TestBuildArtifactsKernelsOnly(t *testing.T) {
	study := report.Run(report.Options{Workers: 2, KernelsOnly: true})
	arts := buildArtifacts(study, true)
	if len(arts) != 3 {
		t.Fatalf("kernels-only artifacts = %d, want 3", len(arts))
	}
	names := map[string]string{}
	for _, a := range arts {
		if a.content == "" {
			t.Errorf("%s is empty", a.name)
		}
		names[a.name] = a.content
	}
	if !strings.Contains(names["table3.txt"], "banded-lin-eq") {
		t.Error("table3 incomplete")
	}
	if !strings.Contains(names["table2.txt"], "2^TC") {
		t.Error("table2 missing search-space columns")
	}
}
