package typedepcheck

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

var update = flag.Bool("update", false, "rewrite the golden inventory file")

// goldenPath is the single inventory artifact shared with the runtime
// side (internal/suite's golden test reads the same file).
const goldenPath = "../../suite/testdata/inventory.json"

func loadRepo(t *testing.T) *analysis.Module {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func portPackage(t *testing.T, m *analysis.Module, path string) *analysis.Package {
	t.Helper()
	for _, p := range m.Packages {
		if p.PkgPath == path {
			return p
		}
	}
	t.Fatalf("package %s not loaded", path)
	return nil
}

// TestRealPortsClean runs typedepcheck over the actual benchmark
// packages: every declared graph must be fully witnessed under P1-P4
// and every kernel variable exercised, with zero raw diagnostics.
func TestRealPortsClean(t *testing.T) {
	m := loadRepo(t)
	for _, path := range []string{"repro/internal/kernels", "repro/internal/apps"} {
		pkg := portPackage(t, m, path)
		diags, err := analysistest.RunPackage(Analyzer, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", path, pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}

// TestGoldenInventoryStatic locks the statically inferred inventory of
// all 17 ports - full variable lists and cluster partitions, hence the
// paper's Table II TV/TC counts - to the shared golden file.
func TestGoldenInventoryStatic(t *testing.T) {
	m := loadRepo(t)
	var got []Inventory
	for _, path := range []string{"repro/internal/kernels", "repro/internal/apps"} {
		pkg := portPackage(t, m, path)
		invs, err := Inventories(pkg.TypesInfo, pkg.Files, pkg.Types)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got = append(got, invs...)
	}
	sortInventories(got)
	if len(got) != 17 {
		t.Fatalf("derived %d inventories, want 17", len(got))
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(goldenPath), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	var want []Inventory
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	compareInventories(t, got, want)
}

func sortInventories(invs []Inventory) {
	for i := 1; i < len(invs); i++ {
		for j := i; j > 0 && invs[j].Bench < invs[j-1].Bench; j-- {
			invs[j], invs[j-1] = invs[j-1], invs[j]
		}
	}
}

func compareInventories(t *testing.T, got, want []Inventory) {
	t.Helper()
	byName := make(map[string]Inventory)
	for _, inv := range want {
		byName[inv.Bench] = inv
	}
	for _, g := range got {
		w, ok := byName[g.Bench]
		if !ok {
			t.Errorf("%s: not in golden file", g.Bench)
			continue
		}
		delete(byName, g.Bench)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: inventory diverged from golden\n got: %+v\nwant: %+v", g.Bench, g, w)
		}
	}
	for name := range byName {
		t.Errorf("%s: in golden file but not derived", name)
	}
}
