package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

const testFP = 0xfeedface12345678

// openTest opens a store in dir with small segments so tests exercise
// rotation without megabytes of data.
func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Fingerprint == 0 {
		opts.Fingerprint = testFP
	}
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 4 << 10
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func testKey(i int) []byte  { return []byte(fmt.Sprintf("key-%05d", i)) }
func testVal(i int) []byte  { return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 40) }
func mustSync(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	const n = 100
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
	}
	mustSync(t, s)
	for i := 0; i < n; i++ {
		got, ok := s.Get(testKey(i))
		if !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("Get(%s) before close: ok=%v", testKey(i), ok)
		}
	}
	if _, ok := s.Get([]byte("absent")); ok {
		t.Fatal("Get(absent) hit")
	}
	st := s.Stats()
	if st.Records != n || st.Puts != n || !st.Healthy {
		t.Fatalf("stats before close: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < n; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("Get(%s) after reopen: ok=%v", testKey(i), ok)
		}
	}
	st = s2.Stats()
	if st.Records != n || st.TruncatedBytes != 0 || st.Quarantined != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
	if st.Segments < 2 {
		t.Fatalf("expected rotation to multiple segments, got %d", st.Segments)
	}
}

func TestDuplicatePutsAreDropped(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(testKey(1), testVal(1))
	}
	mustSync(t, s)
	st := s.Stats()
	if st.Records != 1 || st.Puts != 1 {
		t.Fatalf("duplicate puts not deduped: %+v", st)
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("nil Get hit")
	}
	s.Put([]byte("k"), []byte("v")) // must not panic
	if err := s.Sync(); err != nil {
		t.Fatalf("nil Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if !s.Healthy() {
		t.Fatal("nil store not healthy")
	}
	if st := s.Stats(); !st.ReadOnly || !st.Healthy {
		t.Fatalf("nil Stats: %+v", st)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10})
	const n = 60
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
		if i%10 == 9 {
			mustSync(t, s) // bound the group-commit batch so rotation kicks in
		}
	}
	mustSync(t, s)
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("want several segments before compaction, got %d", st.Segments)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.Records != n || st.DeadBytes != 0 || st.Compactions == 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	for i := 0; i < n; i++ {
		if got, ok := s.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("Get(%s) after compaction: ok=%v", testKey(i), ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("Get(%s) lost across compaction+reopen", testKey(i))
		}
	}
}

func TestEviction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10, MaxBytes: 2 << 10})
	const n = 80
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
	}
	mustSync(t, s)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Evicted == 0 || st.Records == n {
		t.Fatalf("expected eviction under MaxBytes: %+v", st)
	}
	if st.LiveBytes > 2<<10 {
		t.Fatalf("live bytes %d over budget", st.LiveBytes)
	}
	// Eviction is oldest-first: the newest record must survive, the
	// oldest must be gone.
	if _, ok := s.Get(testKey(n - 1)); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("oldest record survived a full-budget eviction")
	}
	s.Close()
}

func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Fingerprint: 0x1111})
	s.Put(testKey(1), testVal(1))
	mustSync(t, s)
	s.Close()

	_, err := Open(dir, Options{Fingerprint: 0x2222})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Open with wrong fingerprint: %v, want ErrFingerprint", err)
	}
	// The message must be actionable: name both fingerprints.
	for _, want := range []string{"0000000000001111", "0000000000002222", "fresh store directory"} {
		if !contains(err.Error(), want) {
			t.Errorf("fingerprint error %q missing %q", err, want)
		}
	}
	// The right fingerprint still opens.
	s2 := openTest(t, dir, Options{Fingerprint: 0x1111})
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("record lost after refused open")
	}
	s2.Close()
}

func TestVersionSkew(t *testing.T) {
	dir := t.TempDir()
	// Craft a segment whose header is valid (magic + checksum) but
	// carries a future format version.
	var hdr []byte
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, 99)
	hdr = binary.LittleEndian.AppendUint64(hdr, testFP)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
	if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{Fingerprint: testFP})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Open with version-skew segment: %v, want ErrVersion", err)
	}
	if !contains(err.Error(), "version 99") || !contains(err.Error(), "incompatible build") {
		t.Errorf("version error not actionable: %q", err)
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
	}
	mustSync(t, s)
	s.Close()

	ro, err := Open(dir, Options{Fingerprint: testFP, ReadOnly: true})
	if err != nil {
		t.Fatalf("Open read-only: %v", err)
	}
	defer ro.Close()
	for i := 0; i < n; i++ {
		if got, ok := ro.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("read-only Get(%s): ok=%v", testKey(i), ok)
		}
	}
	ro.Put([]byte("new"), []byte("record"))
	if err := ro.Sync(); err != nil {
		t.Fatalf("read-only Sync: %v", err)
	}
	if _, ok := ro.Get([]byte("new")); ok {
		t.Fatal("read-only store accepted a Put")
	}
	st := ro.Stats()
	if !st.ReadOnly || st.DroppedPuts == 0 {
		t.Fatalf("read-only stats: %+v", st)
	}
	if err := ro.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Compact: %v, want ErrReadOnly", err)
	}

	// Read-only on a missing directory is a distinct, immediate error.
	if _, err := Open(filepath.Join(dir, "nope"), Options{Fingerprint: testFP, ReadOnly: true}); err == nil {
		t.Fatal("read-only Open of missing dir succeeded")
	}
}

func TestQuarantineCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10})
	const n = 60
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
		if i%10 == 9 {
			mustSync(t, s) // bound the group-commit batch so rotation kicks in
		}
	}
	mustSync(t, s)
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("need ≥3 segments, got %d", st.Segments)
	}
	s.Close()

	// Corrupt the middle of the SECOND segment (sealed: not the active,
	// highest-numbered one): flip a byte inside its record region.
	seg2 := filepath.Join(dir, "00000002.seg")
	b, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	mid := headerLen + (len(b)-headerLen)/2
	b[mid] ^= 0xff
	if err := os.WriteFile(seg2, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("want 1 quarantined segment, stats: %+v", st)
	}
	if st.RescuedRecords == 0 {
		t.Fatalf("want rescued records from the valid prefix, stats: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "00000002.seg")); err != nil {
		t.Fatalf("corrupt segment not moved to quarantine: %v", err)
	}
	if _, err := os.Stat(seg2); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in place: %v", err)
	}
	// Everything outside the corrupt segment's torn suffix survives.
	// Count survivors: all n records minus those lost in the suffix.
	var lost int
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(testKey(i)); !ok {
			lost++
		}
	}
	if lost == 0 || lost >= n/2 {
		t.Fatalf("lost %d of %d records; want a small suffix of one segment", lost, n)
	}
	// A third generation must boot clean: the rescue re-homed the valid
	// prefix, so nothing depends on the quarantined file.
	s2.Close()
	s3 := openTest(t, dir, Options{})
	st3 := s3.Stats()
	if st3.Quarantined != 0 || st3.Records != uint64(n-lost) {
		t.Fatalf("third generation stats: %+v (lost=%d)", st3, lost)
	}
	s3.Close()
}

func TestQuarantineGarbageHeader(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	s.Put(testKey(1), testVal(1))
	mustSync(t, s)
	s.Close()

	// Drop a file of garbage where a segment is expected.
	if err := os.WriteFile(filepath.Join(dir, "00000099.seg"), []byte("not a segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("garbage segment not quarantined: %+v", st)
	}
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("good record lost alongside garbage segment")
	}
}

// TestTornTailProperty is the recovery property test: for EVERY possible
// truncation point of the active segment, reopening the store recovers
// exactly the records whose append fully completed - never fewer (a
// fsync'd record lost) and never a partial record.
func TestTornTailProperty(t *testing.T) {
	master := t.TempDir()
	s := openTest(t, master, Options{MaxSegmentBytes: 1 << 30}) // one segment
	const n = 8
	var ends []int64 // byte offset at which record i's frame ends
	off := int64(headerLen)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testVal(i))
		mustSync(t, s)
		off += recordSize(len(testKey(i)), len(testVal(i)))
		ends = append(ends, off)
	}
	s.Close()
	segName := "00000001.seg"
	full, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != ends[n-1] {
		t.Fatalf("segment size %d, expected %d", len(full), ends[n-1])
	}

	for cut := int64(headerLen); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{Fingerprint: testFP})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Records fully contained in the cut must survive; nothing else.
		want := 0
		for _, e := range ends {
			if e <= cut {
				want++
			}
		}
		st := s2.Stats()
		if int(st.Records) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, st.Records, want)
		}
		for i := 0; i < want; i++ {
			if got, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
				t.Fatalf("cut=%d: record %d lost or wrong", cut, i)
			}
		}
		wantTrunc := cut - int64(headerLen)
		if want > 0 {
			wantTrunc = cut - ends[want-1]
		}
		if st.TruncatedBytes != wantTrunc {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, st.TruncatedBytes, wantTrunc)
		}
		// The store stays writable after recovery.
		s2.Put([]byte("post-recovery"), []byte("value"))
		if err := s2.Sync(); err != nil {
			t.Fatalf("cut=%d: post-recovery Sync: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		// And a third open sees the truncated-then-extended file clean.
		s3, err := Open(dir, Options{Fingerprint: testFP})
		if err != nil {
			t.Fatalf("cut=%d: reopen after recovery: %v", cut, err)
		}
		if _, ok := s3.Get([]byte("post-recovery")); !ok {
			t.Fatalf("cut=%d: post-recovery record lost", cut)
		}
		if st3 := s3.Stats(); st3.TruncatedBytes != 0 {
			t.Fatalf("cut=%d: third open truncated %d bytes from a clean file", cut, st3.TruncatedBytes)
		}
		s3.Close()
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 2 << 10})
	defer s.Close()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Put(testKey(i), testVal(i)) // all workers race the same keys
				s.Get(testKey(i))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	mustSync(t, s)
	st := s.Stats()
	if st.Records != 200 {
		t.Fatalf("concurrent racing puts: %d records, want 200", st.Records)
	}
	for i := 0; i < 200; i++ {
		if got, ok := s.Get(testKey(i)); !ok || !bytes.Equal(got, testVal(i)) {
			t.Fatalf("Get(%s) after concurrent load: ok=%v", testKey(i), ok)
		}
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}
