package mixpbench_test

import (
	"math"
	"os"
	"testing"

	mixpbench "repro"
)

func TestBenchmarkLookup(t *testing.T) {
	b, err := mixpbench.Benchmark("hydro-1d")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "hydro-1d" {
		t.Errorf("Name = %q", b.Name())
	}
	if _, err := mixpbench.Benchmark("nope"); err == nil {
		t.Error("expected lookup error")
	}
}

func TestSuiteAccessors(t *testing.T) {
	if len(mixpbench.Benchmarks()) != 17 {
		t.Errorf("Benchmarks() = %d", len(mixpbench.Benchmarks()))
	}
	if len(mixpbench.Kernels()) != 10 || len(mixpbench.Apps()) != 7 {
		t.Error("kernel/app split wrong")
	}
	algos := mixpbench.Algorithms()
	if len(algos) != 6 || algos[0] != "CB" || algos[5] != "GA" {
		t.Errorf("Algorithms() = %v", algos)
	}
}

func TestTuneDefaultsAndResult(t *testing.T) {
	b, err := mixpbench.Benchmark("iccg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{Algorithm: "ddebug"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("iccg should tune at the default threshold")
	}
	if res.Speedup < 1.5 {
		t.Errorf("speedup = %.2f, want the calibrated ~1.9", res.Speedup)
	}
	if res.Config.Singles() != b.Graph().NumVars() {
		t.Errorf("demoted %d vars, want all %d", res.Config.Singles(), b.Graph().NumVars())
	}
	if res.Error <= 0 || res.Error > 1e-8 {
		t.Errorf("error = %g, want within threshold", res.Error)
	}
}

func TestTuneValidation(t *testing.T) {
	b, _ := mixpbench.Benchmark("eos")
	if _, err := mixpbench.Tune(b, mixpbench.TuneOptions{}); err == nil {
		t.Error("missing algorithm should error")
	}
	if _, err := mixpbench.Tune(b, mixpbench.TuneOptions{Algorithm: "annealing"}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestTuneBudget(t *testing.T) {
	b, _ := mixpbench.Benchmark("eos")
	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{Algorithm: "GA", BudgetSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("1-second budget should time out")
	}
}

func TestMetricHelpers(t *testing.T) {
	v, err := mixpbench.ComputeMetric(mixpbench.MAE, []float64{1, 2}, []float64{1, 3})
	if err != nil || v != 0.5 {
		t.Errorf("ComputeMetric = %g, %v", v, err)
	}
	verdict, err := mixpbench.CheckMetric(mixpbench.MAE, []float64{1}, []float64{math.NaN()}, 1)
	if err != nil || verdict.Passed {
		t.Errorf("CheckMetric NaN = %+v, %v", verdict, err)
	}
}

func TestRunnerRoundTrip(t *testing.T) {
	b, _ := mixpbench.Benchmark("innerprod")
	r := mixpbench.NewRunner(5)
	ref := r.Reference(b)
	if len(ref.Output.Values) == 0 || ref.ModelTime <= 0 {
		t.Error("reference run empty")
	}
	cfg := mixpbench.Config{mixpbench.F32, mixpbench.F32, mixpbench.F64}
	res := r.Run(b, cfg)
	e, err := mixpbench.ComputeMetric(b.Metric(), ref.Output.Values, res.Output.Values)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("operand demotion error = %g, want 0 (exact inputs)", e)
	}
}

func TestHarnessRoundTrip(t *testing.T) {
	specs, err := mixpbench.ParseHarnessConfig(`
srad:
  build_dir: 'srad'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'hierarchical'
        threshold: 1e-3
  metric: 'MAE'
  bin: 'srad'
  copy: ['srad']
  args: '100 0.5 502 458'
`)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := mixpbench.RunHarness(specs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
	r := reports[0]
	if r.Benchmark != "SRAD" || r.Algorithm != "HR" {
		t.Errorf("report = %+v", r)
	}
	// SRAD is effectively untunable: whatever HR accepts must carry zero
	// error and ~1.0 speedup.
	if r.Found && (r.Quality != 0 || r.Speedup > 1.1) {
		t.Errorf("SRAD tuned unexpectedly: %+v", r)
	}
}

func TestRegisterMetricThroughFacade(t *testing.T) {
	id := mixpbench.RegisterMetric("MEDAE-test", func(ref, got []float64) float64 {
		// Median absolute error, crudely: good enough for the wiring test.
		worst, second := 0.0, 0.0
		for i := range ref {
			d := math.Abs(ref[i] - got[i])
			if d > worst {
				worst, second = d, worst
			} else if d > second {
				second = d
			}
		}
		return second
	})
	v, err := mixpbench.ComputeMetric(id, []float64{0, 0, 0}, []float64{3, 2, 1})
	if err != nil || v != 2 {
		t.Errorf("custom metric = %g, %v", v, err)
	}
	// The harness metric clause resolves it too.
	specs, err := mixpbench.ParseHarnessConfig(`
x:
  build_dir: 'x'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'DD'
  metric: 'MEDAE-test'
  bin: 'hydro-1d'
  copy: ['x']
  args: ''
`)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Metric != id {
		t.Errorf("harness parsed metric %v, want %v", specs[0].Metric, id)
	}
}

// TestShippedConfigsParse locks the configuration files the repository
// ships: they must parse and resolve against the suite.
func TestShippedConfigsParse(t *testing.T) {
	for _, path := range []string{"configs/kmeans.yaml", "configs/appstudy.yaml"} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		specs, err := mixpbench.ParseHarnessConfig(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(specs) == 0 {
			t.Fatalf("%s: no entries", path)
		}
		for _, s := range specs {
			if _, err := s.Resolve(); err != nil {
				t.Errorf("%s: entry %s: %v", path, s.Name, err)
			}
		}
	}
}
