// Package orderedemit defines an analyzer that catches nondeterministic
// map iteration feeding ordered outputs. Go randomizes map range order
// on purpose; the repo's results, journal records, and telemetry
// snapshots are all byte-compared across runs and worker counts, so a
// map range may only feed them through an intervening sort. The
// analyzer flags two shapes inside `for ... range <map>`:
//
//   - a direct emit: calling a writer/encoder/telemetry method (Emit,
//     Record, Encode, Write, Fprintf, ...) or sending on a channel,
//     where no later sort can recover the order;
//   - collecting into a slice with append and never passing that slice
//     to sort.* / slices.Sort* later in the same function.
//
// The collect-then-sort idiom used throughout the harness passes.
package orderedemit

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// emitNames are method names that irrevocably order their output.
// AddSpan and Replay are the trace/telemetry emission sites: span
// children are serialised in insertion order and replayed events are
// renumbered as they arrive, so neither can be fed from a map range.
var emitNames = map[string]bool{
	"Emit": true, "Record": true, "Encode": true,
	"Write": true, "WriteString": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"AddSpan": true, "Replay": true,
}

// sortNames are function or method names that establish an order.
var sortNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
	"Slice": true, "SliceStable": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "orderedemit",
	Doc:  "forbid map iteration feeding ordered outputs without an intervening sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range astq.EnclosingFuncs(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn astq.FuncNode) {
	if fn.Body == nil {
		return
	}
	// sorted collects every object passed to a sort call anywhere in
	// the function; appends inside map ranges must hit one of these.
	sorted := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := identObj(pass.TypesInfo, arg); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !astq.IsMap(pass.TypesInfo, rng.X) {
			return true
		}
		checkMapRange(pass, rng, sorted)
		return true
	})
}

// checkMapRange inspects one `for ... range <map>` body.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration publishes nondeterministic order; collect and sort first")
		case *ast.CallExpr:
			if name, ok := astq.CalleeName(n); ok && emitNames[name] {
				pass.Reportf(n.Pos(), "%s call inside map iteration emits in nondeterministic order; collect into a slice and sort before emitting", name)
			}
		case *ast.AssignStmt:
			reportUnsortedAppend(pass, n, sorted)
		}
		return true
	})
}

// reportUnsortedAppend flags `s = append(s, ...)` when s never reaches
// a sort call in the enclosing function.
func reportUnsortedAppend(pass *analysis.Pass, as *ast.AssignStmt, sorted map[types.Object]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" || pass.TypesInfo.Uses[fun] != types.Universe.Lookup("append") {
			continue
		}
		obj := identObj(pass.TypesInfo, as.Lhs[i])
		if obj == nil || sorted[obj] {
			continue
		}
		pass.Reportf(call.Pos(), "slice %s collects map keys or values but is never sorted in this function; map order is nondeterministic", obj.Name())
	}
}

// isSortCall matches sort.* and slices.Sort* package calls plus .Sort()
// methods (sort.Interface implementations).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	for _, pkg := range []string{"sort", "slices"} {
		if name, ok := astq.PkgFunc(info, call, pkg); ok && sortNames[name] {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" {
		return true
	}
	return false
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[ident]
}
