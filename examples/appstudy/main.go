// Appstudy: compare the search strategies on one application across the
// paper's quality thresholds.
//
// LavaMD is the paper's headline case: at a loose threshold the whole
// program demotes and the halved working set drops into the last-level
// cache (speedup beyond 2x); at 1e-6 only the position and charge buffers
// survive verification; at 1e-8 nothing meaningful does. This example
// reproduces that arc and shows how the strategies differ in evaluation
// effort along the way.
//
//	go run ./examples/appstudy [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	mixpbench "repro"
)

func main() {
	name := "LavaMD"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", b.Name(), b.Description())
	fmt.Printf("variables: %d, clusters: %d\n\n", b.Graph().NumVars(), b.Graph().NumClusters())

	algorithms := []string{"DD", "HR", "HC", "GA"}
	fmt.Printf("%-10s", "threshold")
	for _, a := range algorithms {
		fmt.Printf("  %16s", a)
	}
	fmt.Println()
	for _, threshold := range []float64{1e-3, 1e-6, 1e-8} {
		fmt.Printf("%-10.0e", threshold)
		for _, algo := range algorithms {
			res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
				Algorithm: algo,
				Threshold: threshold,
			})
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case res.TimedOut && !res.Found:
				fmt.Printf("  %16s", "(timeout)")
			case !res.Found:
				fmt.Printf("  %16s", "(none)")
			default:
				fmt.Printf("  %6.2fx ev=%-5d", res.Speedup, res.Evaluated)
			}
		}
		fmt.Println()
	}
	fmt.Println("\ncells: speedup of the converged configuration and configurations evaluated")
}
