package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListBenchmarks(t *testing.T) {
	var buf bytes.Buffer
	listBenchmarks(&buf)
	out := buf.String()
	for _, frag := range []string{"Kernels:", "Applications:", "hydro-1d", "LavaMD", "TV=195"} {
		if !strings.Contains(out, frag) {
			t.Errorf("listing missing %q", frag)
		}
	}
}

func TestExportSpaceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportSpaceJSON(&buf, "iccg"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"benchmark": "iccg"`) || !strings.Contains(out, `"clusters"`) {
		t.Errorf("space JSON malformed:\n%s", out)
	}
	if err := exportSpaceJSON(&buf, "nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestTuneOneWithTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := tuneOne(&buf, "hydro-1d", "DD", 1e-8, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"evaluation log:", "benchmark : hydro-1d", "speedup", "demoted"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tune output missing %q:\n%s", frag, out)
		}
	}
	if err := tuneOne(&buf, "hydro-1d", "annealing", 1e-8, 0, false); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestRunConfigTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.yaml")
	cfg := `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans']
  args: ''
`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runConfig(&buf, path, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "K-means [DD @ 1e-03]") {
		t.Errorf("text report malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := runConfig(&buf, path, 1, 0, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"algorithm": "DD"`) {
		t.Errorf("JSON report malformed:\n%s", buf.String())
	}
	if err := runConfig(&buf, filepath.Join(dir, "missing.yaml"), 1, 0, false); err == nil {
		t.Error("expected error for missing config file")
	}
}
