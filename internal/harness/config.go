// Package harness is the reproduction of the paper's test harness: the
// component that deploys benchmarks and analyses them under a
// user-provided YAML configuration (Listing 4). The original is a Python
// script; this port keeps its contract - a configuration file describes
// how to build, run, and verify each benchmark and which analysis to
// apply - and its plugin interface: an analysis is a named component the
// harness invokes with the deployed benchmark, and new analyses register
// themselves without harness changes.
//
// Build and clean commands are validated and recorded, not executed: in
// this reproduction a "build" is the selection of the Go port named by the
// bin clause, so the commands serve as provenance (they are what the
// original suite would run).
package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/mp"
	"repro/internal/search"
	"repro/internal/suite"
	"repro/internal/verify"
	"repro/internal/yamlite"
)

// AnalysisSpec is the analysis clause of one benchmark entry.
type AnalysisSpec struct {
	// ID is the clause key (e.g. "floatsmith").
	ID string
	// Name is the registered plugin name (e.g. "floatSmith").
	Name string
	// Algorithm is the search strategy (CB, CM, DD, HR, HC, GA; the
	// paper's configs also accept the long name "ddebug").
	Algorithm string
	// Threshold is the quality bound configurations must meet.
	Threshold float64
	// Precisions is the campaign-scoped precision ladder (nil: the
	// default double/single two-level study).
	Precisions mp.Ladder
	// Objective selects threshold-only search or Pareto-front recording.
	Objective search.Objective
}

// OutputSpec is the output clause: how the original program names its
// output file.
type OutputSpec struct {
	Option string
	Name   string
}

// Spec is one benchmark entry of a harness configuration file.
type Spec struct {
	// Name is the entry key (the benchmark's config name).
	Name string
	// BuildDir, Build, and Clean record the original build instructions.
	BuildDir string
	Build    []string
	Clean    []string
	// Analysis selects and parameterises the analysis plugin.
	Analysis AnalysisSpec
	// Output describes the program's output file.
	Output OutputSpec
	// Metric is the verification metric.
	Metric verify.Metric
	// Bin names the executable; the harness resolves it to a suite
	// benchmark.
	Bin string
	// Copy lists run dependencies (binary and input files).
	Copy []string
	// Args is the executable invocation command line.
	Args string
}

// DefaultThreshold is used when the analysis clause omits one: the
// kernel-study threshold of the paper's Table III.
const DefaultThreshold = 1e-8

// algorithmAliases maps the long names the paper's configs use to the
// table abbreviations.
var algorithmAliases = map[string]string{
	"combinational": "CB",
	"compositional": "CM",
	"ddebug":        "DD",
	"deltadebug":    "DD",
	"hierarchical":  "HR",
	"hiercomp":      "HC",
	"genetic":       "GA",
	"greedy":        "GP",
}

// CanonicalAlgorithm resolves an algorithm spelling to its abbreviation.
// An unknown spelling comes back with the full menu - abbreviations
// (extension strategies included) and the long names the paper's configs
// use - so a typo is fixable from the error alone.
func CanonicalAlgorithm(name string) (string, error) {
	if a, ok := algorithmAliases[name]; ok {
		return a, nil
	}
	switch name {
	case "CB", "CM", "DD", "HR", "HC", "GA", "GP":
		return name, nil
	}
	longNames := make([]string, 0, len(algorithmAliases))
	for alias := range algorithmAliases {
		longNames = append(longNames, alias)
	}
	sort.Strings(longNames)
	return "", fmt.Errorf("harness: unknown algorithm %q (valid: %s; long names: %s)",
		name, search.ValidAlgorithmList(), strings.Join(longNames, ", "))
}

// Campaign is a parsed configuration document: the benchmark entries
// plus the campaign-wide fault model and retry policy, if the document
// carries a faults clause.
type Campaign struct {
	Specs  []Spec
	Faults faults.Plan
	Retry  RetryPolicy
}

// ParseConfig parses a harness configuration document into its benchmark
// entries, in document order. A faults clause, if present, is validated
// and dropped; use ParseCampaign to keep it.
func ParseConfig(src string) ([]Spec, error) {
	c, err := ParseCampaign(src)
	if err != nil {
		return nil, err
	}
	return c.Specs, nil
}

// ParseCampaign parses a harness configuration document. The reserved
// top-level key "faults" configures the campaign's fault model and retry
// policy (Listing 4 extended):
//
//	faults:
//	  seed: 7
//	  transient: 0.2
//	  crash: 0.05
//	  straggler: 0.1
//	  slowdown: 4
//	  window: 16
//	  max_retries: 3
//	  backoff_base: 30
//	  backoff_factor: 2
//	  backoff_cap: 3600
//
// Every other top-level key is a benchmark entry.
func ParseCampaign(src string) (Campaign, error) {
	var c Campaign
	doc, err := yamlite.Parse(src)
	if err != nil {
		return c, err
	}
	for _, name := range doc.Keys() {
		entry, err := doc.GetMap(name)
		if err != nil {
			return c, err
		}
		if name == "faults" {
			if c.Faults, c.Retry, err = parseFaultsClause(entry); err != nil {
				return c, fmt.Errorf("harness: faults clause: %w", err)
			}
			continue
		}
		spec, err := parseSpec(name, entry)
		if err != nil {
			return c, fmt.Errorf("harness: entry %q: %w", name, err)
		}
		c.Specs = append(c.Specs, spec)
	}
	return c, nil
}

// parseFaultsClause reads the reserved faults clause.
func parseFaultsClause(m *yamlite.Map) (faults.Plan, RetryPolicy, error) {
	var p faults.Plan
	var r RetryPolicy
	for _, key := range m.Keys() {
		raw, _ := m.Get(key)
		switch key {
		case "seed", "window", "max_retries":
			n, err := clauseInt(raw)
			if err != nil {
				return p, r, fmt.Errorf("%s: %w", key, err)
			}
			switch key {
			case "seed":
				p.Seed = n
			case "window":
				p.Window = int(n)
			case "max_retries":
				r.MaxAttempts = int(n)
			}
		case "transient", "crash", "straggler", "slowdown", "backoff_base", "backoff_factor", "backoff_cap":
			f, err := clauseFloat(raw)
			if err != nil {
				return p, r, fmt.Errorf("%s: %w", key, err)
			}
			switch key {
			case "transient":
				p.Transient = f
			case "crash":
				p.Crash = f
			case "straggler":
				p.Straggler = f
			case "slowdown":
				p.Slowdown = f
			case "backoff_base":
				r.BaseSeconds = f
			case "backoff_factor":
				r.Factor = f
			case "backoff_cap":
				r.MaxSeconds = f
			}
		default:
			return p, r, fmt.Errorf("unknown key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return p, r, err
	}
	return p, r, nil
}

// clauseFloat coerces a yamlite scalar to float64.
func clauseFloat(raw any) (float64, error) {
	switch v := raw.(type) {
	case float64:
		return v, nil
	case int64:
		return float64(v), nil
	case string:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", v)
		}
		return f, nil
	}
	return 0, fmt.Errorf("bad value type %T", raw)
}

// clauseInt coerces a yamlite scalar to int64.
func clauseInt(raw any) (int64, error) {
	switch v := raw.(type) {
	case int64:
		return v, nil
	case string:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", v)
		}
		return n, nil
	}
	return 0, fmt.Errorf("bad value type %T", raw)
}

func parseSpec(name string, m *yamlite.Map) (Spec, error) {
	s := Spec{Name: name}
	var err error
	if s.BuildDir, err = m.GetString("build_dir"); err != nil {
		return s, err
	}
	if s.Build, err = m.GetStrings("build"); err != nil {
		return s, err
	}
	if s.Clean, err = m.GetStrings("clean"); err != nil {
		return s, err
	}
	if s.Bin, err = m.GetString("bin"); err != nil {
		return s, err
	}
	metricName, err := m.GetString("metric")
	if err != nil {
		return s, err
	}
	if s.Metric, err = verify.ParseMetric(metricName); err != nil {
		return s, err
	}
	if s.Copy, err = m.GetStrings("copy"); err != nil {
		return s, err
	}
	if s.Args, err = m.GetString("args"); err != nil {
		return s, err
	}
	if out, err := m.GetMap("output"); err == nil {
		if s.Output.Option, err = out.GetString("option"); err != nil {
			return s, err
		}
		if s.Output.Name, err = out.GetString("name"); err != nil {
			return s, err
		}
	}

	analysis, err := m.GetMap("analysis")
	if err != nil {
		return s, err
	}
	if analysis.Len() != 1 {
		return s, fmt.Errorf("analysis clause must name exactly one plugin, has %d", analysis.Len())
	}
	id := analysis.Keys()[0]
	plug, err := analysis.GetMap(id)
	if err != nil {
		return s, err
	}
	s.Analysis.ID = id
	if s.Analysis.Name, err = plug.GetString("name"); err != nil {
		return s, err
	}
	s.Analysis.Threshold = DefaultThreshold
	if extra, err := plug.GetMap("extra_args"); err == nil {
		algo, err := extra.GetString("algorithm")
		if err != nil {
			return s, err
		}
		if s.Analysis.Algorithm, err = CanonicalAlgorithm(algo); err != nil {
			return s, err
		}
		if raw, ok := extra.Get("threshold"); ok {
			switch v := raw.(type) {
			case float64:
				s.Analysis.Threshold = v
			case int64:
				s.Analysis.Threshold = float64(v)
			case string:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return s, fmt.Errorf("bad threshold %q: %w", v, err)
				}
				s.Analysis.Threshold = f
			default:
				return s, fmt.Errorf("bad threshold type %T", raw)
			}
			// A threshold is an error bound configurations must stay
			// under; zero or negative admits nothing and silently turns
			// every search into a foregone failure.
			if s.Analysis.Threshold <= 0 {
				return s, fmt.Errorf("threshold %g must be positive", s.Analysis.Threshold)
			}
		}
		if raw, ok := extra.Get("precisions"); ok {
			str, isStr := raw.(string)
			if !isStr {
				return s, fmt.Errorf("bad precisions type %T", raw)
			}
			ladder, err := mp.ParseLadder(str)
			if err != nil {
				return s, err
			}
			// The default ladder stays nil so fingerprints, seeds, and
			// journals of two-level campaigns are untouched.
			if !ladder.IsDefault() {
				s.Analysis.Precisions = ladder
			}
		}
		if raw, ok := extra.Get("objective"); ok {
			str, isStr := raw.(string)
			if !isStr {
				return s, fmt.Errorf("bad objective type %T", raw)
			}
			if s.Analysis.Objective, err = search.ParseObjective(str); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// Resolve maps the spec's bin clause to its suite benchmark and checks the
// metric matches the benchmark's declared one.
func (s Spec) Resolve() (bench.Benchmark, error) {
	b, err := suite.Lookup(s.Bin)
	if err != nil {
		return nil, err
	}
	if b.Metric() != s.Metric {
		return nil, fmt.Errorf("harness: %s: config metric %v, benchmark verifies with %v",
			s.Name, s.Metric, b.Metric())
	}
	return b, nil
}
