// Package astq holds small AST/type query helpers shared by the
// mixplint analyzers.
package astq

import (
	"go/ast"
	"go/types"
)

// PkgFunc resolves a call of the form pkg.Func where pkg is the package
// with the given import path, returning the function name. Methods and
// locally-shadowed identifiers do not match.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// IsNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// EnclosingFuncs returns every function declaration and literal in the
// file paired with its body, for analyzers that reason per-function.
func EnclosingFuncs(f *ast.File) []FuncNode {
	var out []FuncNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncNode{Type: fn.Type, Body: fn.Body, Decl: fn})
			}
		case *ast.FuncLit:
			out = append(out, FuncNode{Type: fn.Type, Body: fn.Body})
		}
		return true
	})
	return out
}

// FuncNode is one function-shaped node: a declaration (Decl non-nil) or
// a literal.
type FuncNode struct {
	Type *ast.FuncType
	Body *ast.BlockStmt
	Decl *ast.FuncDecl
}
