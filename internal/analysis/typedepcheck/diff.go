package typedepcheck

// The diff: declared partition (constructor evidence) versus inferred
// partition (Run-body evidence), per the P1-P4 rules documented on the
// package.

import (
	"go/token"
	"sort"

	"repro/internal/analysis"
	"repro/internal/typedep"
)

func checkPort(pass *analysis.Pass, p *port, dirs []analysis.Directive) {
	facts := analyzeRun(pass, p)
	for _, d := range facts.diags {
		pass.Report(d)
	}

	g := p.graph
	n := len(g.vars)
	declRoots := partition(n, g.edges())

	// Webbed: the declared cluster carries a Param-kind variable. Param
	// webs transliterate C call-site bindings (the aliasing Typeforge
	// reads off the C AST), so element-flow evidence neither confirms
	// nor refutes them.
	paramCluster := make(map[int]bool)
	hasParam := false
	for id, v := range g.vars {
		if typedep.Kind(v.kind) == typedep.Param {
			paramCluster[declRoots[id]] = true
			hasParam = true
		}
	}
	webbed := func(id int) bool { return paramCluster[declRoots[id]] }

	// Classify each declared record: P1 (param member) or P4 (alias
	// annotation) records are axioms; the rest need Run-body witnesses.
	type pending struct{ rec *connectRec }
	var axioms [][2]int
	var unproven []pending
	for i := range g.records {
		rec := &g.records[i]
		if len(rec.ids) < 2 {
			continue
		}
		isAxiom := false
		for _, id := range rec.ids {
			if id >= 0 && id < n && typedep.Kind(g.vars[id].kind) == typedep.Param {
				isAxiom = true
				break
			}
		}
		if !isAxiom {
			pos := pass.Position(rec.pos)
			if _, ok := analysis.AliasAt(dirs, pos.Filename, pos.Line, pass.Fset); ok {
				isAxiom = true
			}
		}
		if isAxiom {
			for i := 1; i < len(rec.ids); i++ {
				axioms = append(axioms, [2]int{rec.ids[0], rec.ids[i]})
			}
		} else {
			unproven = append(unproven, pending{rec: rec})
		}
	}

	// P2/P3 evidence from the Run analysis. Hidden ids and webbed
	// variables drop out here.
	type pair struct{ a, b int }
	inferredAt := make(map[pair]token.Pos)
	keep := func(id int) bool { return id >= 0 && id < n && !webbed(id) }
	addPair := func(a, b int, pos token.Pos) {
		if a > b {
			a, b = b, a
		}
		if _, ok := inferredAt[pair{a, b}]; !ok {
			inferredAt[pair{a, b}] = pos
		}
	}
	for _, ev := range facts.events {
		var arrs []int
		for _, id := range ev.ids.sorted() {
			if keep(id) && typedep.Kind(g.vars[id].kind) == typedep.ArrayVar {
				arrs = append(arrs, id)
			}
		}
		for i := 0; i < len(arrs); i++ {
			for j := i + 1; j < len(arrs); j++ {
				addPair(arrs[i], arrs[j], ev.pos)
			}
		}
	}
	for _, fe := range facts.fills {
		if !keep(fe.scalar) {
			continue
		}
		for _, arr := range fe.arrays.sorted() {
			if keep(arr) && typedep.Kind(g.vars[arr].kind) == typedep.ArrayVar {
				addPair(fe.scalar, arr, fe.pos)
			}
		}
	}

	// Inferred partition = Run evidence + axiom edges.
	var inferredPairs [][2]int
	for pr := range inferredAt {
		inferredPairs = append(inferredPairs, [2]int{pr.a, pr.b})
	}
	sort.Slice(inferredPairs, func(i, j int) bool {
		if inferredPairs[i][0] != inferredPairs[j][0] {
			return inferredPairs[i][0] < inferredPairs[j][0]
		}
		return inferredPairs[i][1] < inferredPairs[j][1]
	})
	inferredPairs = append(inferredPairs, axioms...)
	infRoots := partition(n, inferredPairs)

	// Spurious direction: a declared, non-axiom record whose endpoints
	// the inferred partition does not connect.
	for _, pd := range unproven {
		rec := pd.rec
		for i := 1; i < len(rec.ids); i++ {
			a, b := rec.ids[0], rec.ids[i]
			if a < 0 || a >= n || b < 0 || b >= n {
				continue
			}
			if infRoots[a] != infRoots[b] {
				pass.Reportf(rec.pos,
					"declared edge %s -- %s is unwitnessed: no Run dataflow connects them (annotate with //mixplint:alias if the dependence exists only in the original C source)",
					nameOf(g, a), nameOf(g, b))
			}
		}
	}

	// Missing direction: an inferred dependence that crosses declared
	// cluster boundaries. Report each pair once, at its first witness.
	type miss struct {
		a, b int
		pos  token.Pos
	}
	var missing []miss
	for pr, pos := range inferredAt {
		if declRoots[pr.a] != declRoots[pr.b] {
			missing = append(missing, miss{pr.a, pr.b, pos})
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].pos != missing[j].pos {
			return missing[i].pos < missing[j].pos
		}
		return missing[i].a < missing[j].a
	})
	for _, m := range missing {
		pass.Reportf(m.pos,
			"missing edge: Run dataflow connects %s and %s but the declared graph keeps them in separate clusters",
			nameOf(g, m.a), nameOf(g, m.b))
	}

	// Coverage: kernels (no parameter web) must exercise every declared
	// tunable; an idle variable is dead weight in the search space.
	if !hasParam {
		for id := range g.vars {
			if !facts.used[id] {
				pos := p.ctorPos
				if id < len(g.addPos) {
					pos = g.addPos[id]
				}
				pass.Reportf(pos,
					"declared variable %s is never exercised by Run",
					nameOf(g, id))
			}
		}
	}
}

func nameOf(g *graphVal, id int) string {
	v := g.vars[id]
	return v.unit + "::" + v.name
}
