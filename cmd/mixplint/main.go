// Command mixplint is the repo's static-analysis driver: a multichecker
// over the internal/analysis framework. It type-checks every package in
// the module and applies
//
//   - typedepcheck: re-derives each benchmark port's type-dependence
//     graph from source and diffs it against the declared one (the
//     Typeforge analogue; runs on the port packages only);
//   - simclock, seededrand, orderedemit, ctxfirst: the determinism
//     invariants the campaign layers rely on (no wall-clock reads, no
//     global RNG, no map-order-dependent emission, contexts threaded
//     first-parameter).
//
// Findings are suppressed only by //mixplint:ignore or
// //mixplint:package directives carrying a justification; a directive
// without one is itself a finding. Exit status: 0 clean, 1 findings,
// 2 load or usage failure.
//
// Usage:
//
//	mixplint [-json] [packages]
//
// Package patterns are import paths with an optional /... suffix;
// ./... and module-relative forms are accepted. The default is the
// whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/orderedemit"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/simclock"
	"repro/internal/analysis/typedepcheck"
)

// All registered analyzers, in report order.
var analyzers = []*analysis.Analyzer{
	typedepcheck.Analyzer,
	simclock.Analyzer,
	seededrand.Analyzer,
	orderedemit.Analyzer,
	ctxfirst.Analyzer,
}

// portPatterns are the packages that declare typedep graphs;
// typedepcheck interprets benchmark constructors and is pointless (and
// slow) elsewhere.
var portPatterns = []string{
	"repro/internal/kernels",
	"repro/internal/apps",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mixplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the full report as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}
	m, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{m.Path + "/..."}
	}
	for i, p := range patterns {
		patterns[i] = normalizePattern(m.Path, p)
	}

	rep, err := analysis.RunAnalyzers(m, analyzers, scopeFor(patterns))
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}

	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "mixplint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
		fmt.Fprintf(stderr, "mixplint: %d packages, %d analyzers, %d findings, %d suppressed\n",
			rep.Packages, len(rep.Analyzers), len(rep.Findings), len(rep.Suppressed))
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// normalizePattern maps ./-relative patterns onto module import paths:
// "./..." becomes "<module>/...", "./cmd/mixpd" becomes
// "<module>/cmd/mixpd", and "." the module root package.
func normalizePattern(modPath, p string) string {
	switch {
	case p == "." || p == "./":
		return modPath
	case p == "...":
		return modPath + "/..."
	case strings.HasPrefix(p, "./"):
		return modPath + "/" + strings.TrimPrefix(p, "./")
	default:
		return p
	}
}

// scopeFor restricts analyzers to the requested patterns, and
// typedepcheck further to the port packages.
func scopeFor(patterns []string) analysis.Scope {
	return func(a *analysis.Analyzer, pkgPath string) bool {
		ok := false
		for _, p := range patterns {
			if analysis.MatchPattern(p, pkgPath) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		if a.Name == "typedepcheck" {
			for _, p := range portPatterns {
				if analysis.MatchPattern(p, pkgPath) {
					return true
				}
			}
			return false
		}
		return true
	}
}
