package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/suite"
)

// Point is one figure sample.
type Point struct {
	Label     string  // application name
	Algorithm string  // DD or GA (figures 2a/2b); any algorithm (figure 3)
	Threshold float64 // quality threshold of the scenario
	X, Y      float64
}

// Figure2aData returns the series behind Figure 2a: application analysis
// complexity (total clusters, x) against evaluated configurations (y) for
// DD and GA at every threshold - the two strategies that completed every
// application at every threshold.
func (s *Study) Figure2aData() []Point {
	return s.figure2(func(r reportCell) float64 { return float64(r.Evaluated) })
}

// Figure2bData returns the series behind Figure 2b: complexity (x)
// against obtained speedup (y) for DD and GA.
func (s *Study) Figure2bData() []Point {
	return s.figure2(func(r reportCell) float64 { return r.Speedup })
}

type reportCell struct {
	Evaluated int
	Speedup   float64
}

func (s *Study) figure2(y func(reportCell) float64) []Point {
	var pts []Point
	for _, th := range AppThresholds {
		for _, a := range suite.Apps() {
			for _, algo := range []string{"DD", "GA"} {
				r, ok := s.App[th][a.Name()][algo]
				if !ok || !CellFilled(r) {
					continue
				}
				pts = append(pts, Point{
					Label:     a.Name(),
					Algorithm: algo,
					Threshold: th,
					X:         float64(a.Graph().NumClusters()),
					Y:         y(reportCell{r.Evaluated, r.Speedup}),
				})
			}
		}
	}
	return pts
}

// Figure3Data returns the scatter behind Figure 3: number of tested
// configurations (x, a proxy for search time) against the speedup of the
// configuration found (y), over every search scenario of the study -
// kernels and applications, all algorithms, all thresholds.
func (s *Study) Figure3Data() []Point {
	var pts []Point
	for _, k := range suite.Kernels() {
		for _, algo := range KernelAlgorithms {
			r, ok := s.Kernel[k.Name()][algo]
			if !ok || !CellFilled(r) {
				continue
			}
			pts = append(pts, Point{
				Label: k.Name(), Algorithm: algo, Threshold: KernelThreshold,
				X: float64(r.Evaluated), Y: r.Speedup,
			})
		}
	}
	for _, th := range AppThresholds {
		for _, a := range suite.Apps() {
			for _, algo := range AppAlgorithms {
				r, ok := s.App[th][a.Name()][algo]
				if !ok || !CellFilled(r) {
					continue
				}
				pts = append(pts, Point{
					Label: a.Name(), Algorithm: algo, Threshold: th,
					X: float64(r.Evaluated), Y: r.Speedup,
				})
			}
		}
	}
	return pts
}

// FigureCSV renders points as a CSV document (label, algorithm,
// threshold, x, y), for external plotting.
func FigureCSV(header string, pts []Point) string {
	var b strings.Builder
	b.WriteString("# " + header + "\n")
	b.WriteString("label,algorithm,threshold,x,y\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%s,%s,%g,%g\n", p.Label, p.Algorithm, formatThreshold(p.Threshold), p.X, p.Y)
	}
	return b.String()
}

// Figure2a renders Figure 2a as CSV plus an ASCII summary.
func (s *Study) Figure2a() string {
	pts := s.Figure2aData()
	return FigureCSV("Figure 2a: clusters (x) vs evaluated configurations (y), DD vs GA", pts) +
		"\n" + asciiScatter(pts, "clusters", "evaluated configs", true)
}

// Figure2b renders Figure 2b as CSV plus an ASCII summary.
func (s *Study) Figure2b() string {
	pts := s.Figure2bData()
	return FigureCSV("Figure 2b: clusters (x) vs speedup (y), DD vs GA", pts) +
		"\n" + asciiScatter(pts, "clusters", "speedup", false)
}

// Figure3 renders Figure 3 as CSV plus an ASCII summary.
func (s *Study) Figure3() string {
	pts := s.Figure3Data()
	return FigureCSV("Figure 3: tested configurations (x) vs speedup (y), all scenarios", pts) +
		"\n" + asciiScatter(pts, "tested configs", "speedup", true)
}

// asciiScatter draws a coarse scatter plot for terminal inspection. logX
// compresses heavy-tailed x axes (evaluation counts).
func asciiScatter(pts []Point, xLabel, yLabel string, logX bool) string {
	if len(pts) == 0 {
		return "(no data)\n"
	}
	const w, h = 64, 16
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		x := p.X
		if logX {
			x = math.Log10(math.Max(x, 1))
		}
		xs[i] = x
		ys[i] = p.Y
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i, p := range pts {
		cx := int((xs[i] - minX) / (maxX - minX) * float64(w-1))
		cy := h - 1 - int((ys[i]-minY)/(maxY-minY)*float64(h-1))
		marker := byte('+')
		switch p.Algorithm {
		case "DD":
			marker = 'D'
		case "GA":
			marker = 'G'
		}
		grid[cy][cx] = marker
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %s [%.3g .. %.3g]\n", yLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("| " + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", w+1) + "\n")
	scale := ""
	if logX {
		scale = " (log10)"
	}
	fmt.Fprintf(&b, "x: %s%s [%.3g .. %.3g]\n", xLabel, scale, minX, maxX)
	return b.String()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// SortPoints orders points deterministically (by algorithm, threshold,
// label) for stable output.
func SortPoints(pts []Point) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].Algorithm != pts[b].Algorithm {
			return pts[a].Algorithm < pts[b].Algorithm
		}
		if pts[a].Threshold != pts[b].Threshold {
			return pts[a].Threshold > pts[b].Threshold
		}
		return pts[a].Label < pts[b].Label
	})
}
