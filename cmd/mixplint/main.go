// Command mixplint is the repo's static-analysis driver: a multichecker
// over the internal/analysis framework. It type-checks every package in
// the module and applies
//
//   - typedepcheck: re-derives each benchmark port's type-dependence
//     graph from source and diffs it against the declared one (the
//     Typeforge analogue; runs on the port packages only);
//   - simclock, seededrand, orderedemit, ctxfirst: the determinism
//     invariants the campaign layers rely on (no wall-clock reads, no
//     global RNG, no map-order-dependent emission, contexts threaded
//     first-parameter);
//   - puritycheck: interprocedural taint over every Run/RunIR body —
//     results must derive only from the purity key (bench, seed,
//     semantics, machine fingerprint, config); runs on the port and
//     compile packages;
//   - keycheck: fingerprint completeness — every field of a
//     //mixplint:key-annotated struct must be written by its
//     fingerprint/codec function or carry a justified
//     //mixplint:keyexempt; runs module-wide (annotation-driven);
//   - fsyncpath: durability — creates and renames on
//     durability-critical paths need a file fsync and a parent-dir
//     fsync before success; runs on the store, harness, and engine
//     packages.
//
// Findings are suppressed only by //mixplint:ignore or
// //mixplint:package directives carrying a justification; a directive
// without one is itself a finding. Exit status: 0 clean, 1 findings,
// 2 load or usage failure.
//
// Usage:
//
//	mixplint [-json | -sarif] [packages]
//
// -json emits the full report as JSON; -sarif emits SARIF 2.1.0 for
// code-scanning upload. Both include suppressed findings with their
// justifications.
//
// Package patterns are import paths with an optional /... suffix;
// ./... and module-relative forms are accepted. The default is the
// whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/fsyncpath"
	"repro/internal/analysis/keycheck"
	"repro/internal/analysis/orderedemit"
	"repro/internal/analysis/puritycheck"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/simclock"
	"repro/internal/analysis/typedepcheck"
)

// All registered analyzers, in report order.
var analyzers = []*analysis.Analyzer{
	typedepcheck.Analyzer,
	simclock.Analyzer,
	seededrand.Analyzer,
	orderedemit.Analyzer,
	ctxfirst.Analyzer,
	puritycheck.Analyzer,
	keycheck.Analyzer,
	fsyncpath.Analyzer,
}

// portPatterns are the packages that declare typedep graphs;
// typedepcheck interprets benchmark constructors and is pointless (and
// slow) elsewhere.
var portPatterns = []string{
	"repro/internal/kernels",
	"repro/internal/apps",
}

// purityPatterns are the packages with Run/RunIR entry points whose
// results feed the run cache: the ports plus the compiled evaluator.
var purityPatterns = []string{
	"repro/internal/kernels",
	"repro/internal/apps",
	"repro/internal/compile",
}

// durabilityPatterns are the packages that persist campaign state and
// must survive a crash at any instruction boundary.
var durabilityPatterns = []string{
	"repro/internal/store",
	"repro/internal/harness",
	"repro/internal/engine",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mixplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the full report as JSON on stdout")
	sarifOut := fs.Bool("sarif", false, "emit the report as SARIF 2.1.0 on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "mixplint: -json and -sarif are mutually exclusive")
		return 2
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}
	m, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{m.Path + "/..."}
	}
	for i, p := range patterns {
		patterns[i] = normalizePattern(m.Path, p)
	}

	rep, err := analysis.RunAnalyzers(m, analyzers, scopeFor(patterns))
	if err != nil {
		fmt.Fprintf(stderr, "mixplint: %v\n", err)
		return 2
	}

	switch {
	case *jsonOut:
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "mixplint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	case *sarifOut:
		data, err := rep.SARIF(analyzerDocs())
		if err != nil {
			fmt.Fprintf(stderr, "mixplint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	default:
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
		fmt.Fprintf(stderr, "mixplint: %d packages, %d analyzers, %d findings, %d suppressed\n",
			rep.Packages, len(rep.Analyzers), len(rep.Findings), len(rep.Suppressed))
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// analyzerDocs maps registered analyzer names to their one-line docs
// for SARIF rule descriptions.
func analyzerDocs() map[string]string {
	docs := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	return docs
}

// normalizePattern maps ./-relative patterns onto module import paths:
// "./..." becomes "<module>/...", "./cmd/mixpd" becomes
// "<module>/cmd/mixpd", and "." the module root package.
func normalizePattern(modPath, p string) string {
	switch {
	case p == "." || p == "./":
		return modPath
	case p == "...":
		return modPath + "/..."
	case strings.HasPrefix(p, "./"):
		return modPath + "/" + strings.TrimPrefix(p, "./")
	default:
		return p
	}
}

// scopeFor restricts analyzers to the requested patterns, and the
// specialized analyzers further to the packages they are about:
// typedepcheck and puritycheck to the entry-point packages, fsyncpath
// to the persistence packages. keycheck is annotation-driven and cheap,
// so it stays module-wide.
func scopeFor(patterns []string) analysis.Scope {
	return func(a *analysis.Analyzer, pkgPath string) bool {
		ok := false
		for _, p := range patterns {
			if analysis.MatchPattern(p, pkgPath) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		var restrict []string
		switch a.Name {
		case "typedepcheck":
			restrict = portPatterns
		case "puritycheck":
			restrict = purityPatterns
		case "fsyncpath":
			restrict = durabilityPatterns
		default:
			return true
		}
		for _, p := range restrict {
			if analysis.MatchPattern(p, pkgPath) {
				return true
			}
		}
		return false
	}
}
