// Package emitorder is the orderedemit fixture: map ranges feeding
// ordered outputs are flagged unless a sort intervenes.
package emitorder

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys collects map keys or values but is never sorted`
	}
	return keys
}

func badEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf call inside map iteration`
	}
}

func badSend(ch chan<- string, m map[string]bool) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// span mimics the trace layer's ordered child insertion.
type span struct{ children []*span }

func (s *span) AddSpan(c *span) *span {
	s.children = append(s.children, c)
	return c
}

// replayer mimics the telemetry stream's ordered replay.
type replayer struct{}

func (replayer) Replay(events []string) {}

func badAddSpan(root *span, m map[string]*span) {
	for _, c := range m {
		root.AddSpan(c) // want `AddSpan call inside map iteration`
	}
}

func badReplay(r replayer, m map[string][]string) {
	for _, evs := range m {
		r.Replay(evs) // want `Replay call inside map iteration`
	}
}

func goodAddSpanSorted(root *span, m map[string]*span) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		root.AddSpan(m[k])
	}
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodSliceRange(w io.Writer, xs []string) {
	// Ranging over a slice is ordered; emitting inside is fine.
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
