package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// eos is the equation-of-state fragment (Livermore loop 7 lineage):
//
//	x[k] = u[k] + r*(z[k] + r*y[k]) +
//	       t*(u[k+3] + r*(u[k+2] + r*u[k+1]) +
//	          t*(u[k+6] + q*(u[k+5] + q*u[k+4])))
//
// Inventory (Table II: TV=7, TC=2): the arrays x, y, z, u form one cluster
// (all passed by pointer through the fragment); the interpolation scalars
// r, t, q are initialised through one setup routine and form the second.
//
// The state values sit near 1.0, so demoting the array cluster costs a
// full float32 ulp (~6e-8) per element - above the kernel threshold - while
// the float32-exact scalars demote losslessly. The search therefore lands
// on the scalar-only configuration: zero error and no speedup, matching
// the paper's eos row.
type eos struct {
	kernel
	vX, vY, vZ, vU, vR, vT, vQ mp.VarID
}

const (
	eosN     = 8192
	eosReps  = 8
	eosScale = 4
)

// NewEOS constructs the kernel.
func NewEOS() bench.Benchmark {
	g := typedep.NewGraph()
	k := &eos{kernel: kernel{
		name:  "eos",
		desc:  "Equation of state fragment",
		graph: g,
	}}
	k.vX = g.Add("x", "eos", typedep.ArrayVar)
	k.vY = g.Add("y", "eos", typedep.ArrayVar)
	k.vZ = g.Add("z", "eos", typedep.ArrayVar)
	k.vU = g.Add("u", "eos", typedep.ArrayVar)
	k.vR = g.Add("r", "setup", typedep.Scalar)
	k.vT = g.Add("t", "setup", typedep.Scalar)
	k.vQ = g.Add("q", "setup", typedep.Scalar)
	g.ConnectAll(k.vX, k.vY, k.vZ, k.vU)
	//mixplint:alias -- r, t and q come out of one C setup expression chain; the port samples them directly, so the coupling is visible only in the original source
	g.ConnectAll(k.vR, k.vT, k.vQ)
	return k
}

func (k *eos) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(eosScale)
	rng := t.Rand(seed)
	x := t.NewArray(k.vX, eosN+7)
	y := t.NewArray(k.vY, eosN+7)
	z := t.NewArray(k.vZ, eosN+7)
	u := t.NewArray(k.vU, eosN+7)
	fillRand(y, rng, 0.5, 1.5)
	fillRand(z, rng, 0.5, 1.5)
	fillRand(u, rng, 0.5, 1.5)
	r := t.Value(k.vR, float64(rng.Float32())*0.25)
	tt := t.Value(k.vT, float64(rng.Float32())*0.25)
	q := t.Value(k.vQ, float64(rng.Float32())*0.25)

	arrP, sclP := t.Prec(k.vX), t.Prec(k.vR)
	for rep := 0; rep < eosReps; rep++ {
		for i := 0; i < eosN; i++ {
			x.Set(i, u.Get(i)+r*(z.Get(i)+r*y.Get(i))+
				tt*(u.Get(i+3)+r*(u.Get(i+2)+r*u.Get(i+1))+
					tt*(u.Get(i+6)+q*(u.Get(i+5)+q*u.Get(i+4)))))
		}
	}
	exprP := mp.F64
	if arrP == mp.F32 && sclP == mp.F32 {
		exprP = mp.F32
	}
	t.AddFlops(exprP, 15*eosN*eosReps)
	if arrP != sclP {
		t.AddCasts(eosN * eosReps)
	}
	return bench.Output{Values: x.Snapshot()[:eosN]}
}
