// Package fsyncpath defines an analyzer encoding the durability
// discipline the result store established in PR 7 and the checkpoint
// journal and campaign archives follow: a file that must survive a
// crash is written to a temporary name, fsync'd, renamed into place,
// and then the parent directory is fsync'd so the rename itself is
// durable. Skipping any step silently narrows the crash-safety window
// — the file's data, or its very directory entry, can vanish with the
// power — and no test catches it without fault injection at the
// filesystem layer.
//
// The analyzer checks three function-local rules in the durability
// packages (internal/store, the harness journal, the engine archives):
//
//   - R1 (rename barrier): every os.Rename call must be followed,
//     later in the same function, by a directory fsync — a call to
//     SyncDir or SyncParentDir (the internal/store helpers).
//   - R2 (create barrier): every file-creating open (os.Create, or
//     os.OpenFile whose flags include os.O_CREATE) must likewise be
//     followed by a directory fsync in the same function.
//   - R3 (publish barrier): an os.Rename whose source path was built
//     with a ".tmp" suffix — the atomic-publish idiom — must be
//     preceded in the same function by a file fsync (a call to a
//     function or method named Sync or sync), so the renamed file's
//     contents are on disk before its name is.
//
// The rules are deliberately lexical and per-function: the repo's
// durability code keeps each create/sync/rename/dir-sync sequence in
// one function precisely so it can be audited locally. Code with a
// split protocol (create in one function, sync in another) carries a
// //mixplint:ignore fsyncpath directive with the justification naming
// where the missing half lives.
package fsyncpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "fsyncpath",
	Doc:  "file creates and renames on durability-critical paths must be followed by file and parent-directory fsyncs",
	Run:  run,
}

// dirSyncNames are the directory-fsync entry points: the exported
// internal/store helpers and their conventional local spellings.
var dirSyncNames = map[string]bool{
	"SyncDir":       true,
	"SyncParentDir": true,
	"syncDir":       true,
	"syncParentDir": true,
}

// fileSyncNames are file-fsync entry points: (*os.File).Sync and the
// store's NoSync-gated wrapper.
var fileSyncNames = map[string]bool{
	"Sync": true,
	"sync": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range astq.EnclosingFuncs(f) {
			if fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkFunc applies R1–R3 to one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var (
		fileSyncs []token.Pos // positions of file-fsync calls
		dirSyncs  []token.Pos // positions of directory-fsync calls
		renames   []*ast.CallExpr
		creates   []*ast.CallExpr
	)
	tmpLocals := tmpSuffixedLocals(pass.TypesInfo, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := astq.CalleePkgFunc(pass.TypesInfo, call); ok && pkg == "os" {
			switch {
			case name == "Rename":
				renames = append(renames, call)
			case name == "Create", name == "OpenFile" && hasCreateFlag(call):
				creates = append(creates, call)
			}
		}
		if name, ok := astq.CalleeName(call); ok {
			if dirSyncNames[name] {
				dirSyncs = append(dirSyncs, call.Pos())
			}
			if fileSyncNames[name] {
				fileSyncs = append(fileSyncs, call.Pos())
			}
		}
		return true
	})

	for _, call := range renames {
		if !anyAfter(dirSyncs, call.Pos()) {
			pass.Reportf(call.Pos(), "os.Rename is not followed by a directory fsync (SyncDir/SyncParentDir) in this function; a crash can undo the rename")
		}
		if isTmpRename(pass.TypesInfo, call, tmpLocals) && !anyBefore(fileSyncs, call.Pos()) {
			pass.Reportf(call.Pos(), "os.Rename publishes a .tmp file without a preceding file fsync; the renamed file can be empty after a crash")
		}
	}
	for _, call := range creates {
		if !anyAfter(dirSyncs, call.Pos()) {
			pass.Reportf(call.Pos(), "file create is not followed by a directory fsync (SyncDir/SyncParentDir) in this function; the new file's directory entry is not durable")
		}
	}
}

// hasCreateFlag reports whether an os.OpenFile call's flag argument
// mentions os.O_CREATE.
func hasCreateFlag(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "O_CREATE" {
			found = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_CREATE" {
			found = true
		}
		return !found
	})
	return found
}

// tmpSuffixedLocals collects the objects of local variables assigned
// from an expression containing a ".tmp"-suffixed string literal — the
// temporary names of the atomic-publish idiom.
func tmpSuffixedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !containsTmpLit(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isTmpRename reports whether the rename's source argument is a ".tmp"
// literal expression or a local holding one.
func isTmpRename(info *types.Info, call *ast.CallExpr, tmpLocals map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	src := call.Args[0]
	if containsTmpLit(src) {
		return true
	}
	if id, ok := src.(*ast.Ident); ok {
		return tmpLocals[info.Uses[id]]
	}
	return false
}

// containsTmpLit reports whether the expression contains a string
// literal ending in ".tmp".
func containsTmpLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.HasSuffix(strings.Trim(lit.Value, "`\""), ".tmp") {
			found = true
		}
		return !found
	})
	return found
}

func anyAfter(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q > p {
			return true
		}
	}
	return false
}

func anyBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}
