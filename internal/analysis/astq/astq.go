// Package astq holds small AST/type query helpers shared by the
// mixplint analyzers.
package astq

import (
	"go/ast"
	"go/types"
	"sort"
)

// PkgFunc resolves a call of the form pkg.Func where pkg is the package
// with the given import path, returning the function name. Methods and
// locally-shadowed identifiers do not match.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// IsNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// EnclosingFuncs returns every function declaration and literal in the
// file paired with its body, for analyzers that reason per-function.
func EnclosingFuncs(f *ast.File) []FuncNode {
	var out []FuncNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncNode{Type: fn.Type, Body: fn.Body, Decl: fn})
			}
		case *ast.FuncLit:
			out = append(out, FuncNode{Type: fn.Type, Body: fn.Body})
		}
		return true
	})
	return out
}

// FuncNode is one function-shaped node: a declaration (Decl non-nil) or
// a literal.
type FuncNode struct {
	Type *ast.FuncType
	Body *ast.BlockStmt
	Decl *ast.FuncDecl
}

// WallClock lists the time package functions that observe or depend on
// the wall clock. Pure constructors and conversions (time.Duration,
// time.Unix, time.Date, ParseDuration) are deterministic given their
// inputs and stay legal. Shared by simclock (module-wide ban) and
// puritycheck (Run-reachable taint).
var WallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// GlobalRandAllowed lists the math/rand package-level functions that do
// not touch the global, time-seeded source: constructors and pure
// helpers. Everything else exported at package level draws from (or
// reseeds) shared state. Shared by seededrand and puritycheck.
var GlobalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// CalleePkgFunc resolves a call to a package-level function of any
// package, returning the package path and function name. Methods,
// builtins, and locally-shadowed identifiers do not match.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// CalleeName extracts the method or function name of a call, without
// resolving it: the syntactic tail of the callee expression.
func CalleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}

// IsMap reports whether e has a map type.
func IsMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// CallGraph is the same-package static call graph of a set of files:
// which declared functions reference which. A reference is any use of a
// package-local function identifier — a direct call, a method call on a
// local type, or the function passed as a value — so Reachable
// over-approximates rather than missing indirect calls.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	edges map[*types.Func][]*types.Func
}

// NewCallGraph builds the call graph of the package's files.
func NewCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		edges: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			// Only edges to functions declared in these files; foreign
			// callees are outside the graph.
			if _, declared := g.decls[callee]; declared {
				g.edges[fn] = append(g.edges[fn], callee)
			}
			return true
		})
	}
	return g
}

// Decl returns the declaration of a graphed function, or nil.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Funcs returns every declared function in the graph, in source order
// so callers iterate deterministically.
func (g *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Reachable returns the set of declared functions reachable from the
// roots, roots included.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] || g.decls[fn] == nil {
			return
		}
		seen[fn] = true
		for _, callee := range g.edges[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
