// Halfprecision: three-level tuning, the extension the paper motivates.
//
// The paper's study covers double and single precision (p=2, the levels a
// source-level C++ refactoring can produce), but frames the search space
// as p^loc and points at accelerators with half-precision support (p=3).
// The Go runtime carries IEEE-754 binary16 as an extension level, so this
// example runs the exhaustive three-level search over a kernel's clusters
// - every cluster independently double, single, or half - and prints the
// accuracy/speedup frontier across quality thresholds.
//
//	go run ./examples/halfprecision [benchmark]
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	mixpbench "repro"
)

func main() {
	name := "hydro-1d"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	g := b.Graph()
	clusters := g.Clusters()
	nc := len(clusters)
	total := 1
	for i := 0; i < nc; i++ {
		total *= 3
	}
	fmt.Printf("%s: %d clusters -> 3^%d = %d three-level configurations\n\n",
		b.Name(), nc, nc, total)
	if total > 2187 { // 3^7: keep the demo exhaustive-friendly
		log.Fatalf("%s has too many clusters for the exhaustive demo; try a kernel", b.Name())
	}

	runner := mixpbench.NewRunner(42)
	ref := runner.Reference(b)
	levels := []mixpbench.Prec{mixpbench.F64, mixpbench.F32, mixpbench.F16}

	type row struct {
		cfg     mixpbench.Config
		desc    string
		err     float64
		speedup float64
	}
	var rows []row
	for code := 0; code < total; code++ {
		cfg := mixpbench.Config(make([]mixpbench.Prec, g.NumVars()))
		desc := ""
		c := code
		for i, cl := range clusters {
			p := levels[c%3]
			c /= 3
			for _, m := range cl.Members {
				cfg[m] = p
			}
			if i > 0 {
				desc += "/"
			}
			desc += p.String()
		}
		res := runner.Run(b, cfg)
		e, err := mixpbench.ComputeMetric(b.Metric(), ref.Output.Values, res.Output.Values)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{cfg, desc, e, ref.Measured.Mean / res.Measured.Mean})
	}

	// The best configuration per quality threshold: half precision only
	// becomes competitive once the threshold loosens past its ~1e-3
	// relative rounding error.
	fmt.Printf("%-10s  %-28s  %-10s  %s\n", "threshold", "best configuration", "error", "speedup")
	for _, th := range []float64{1e-8, 1e-6, 1e-3, 1e-1} {
		best := -1
		for i, r := range rows {
			if math.IsNaN(r.err) || r.err > th {
				continue
			}
			if best < 0 || r.speedup > rows[best].speedup {
				best = i
			}
		}
		if best < 0 {
			fmt.Printf("%-10.0e  %-28s\n", th, "(none passes)")
			continue
		}
		r := rows[best]
		fmt.Printf("%-10.0e  %-28s  %-10.2g  %.2fx\n", th, r.desc, r.err, r.speedup)
	}
}
