package apps

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/verify"
)

// TestTableIIAppCounts locks the Total Variables / Total Clusters
// inventory of every application to the paper's Table II.
func TestTableIIAppCounts(t *testing.T) {
	want := map[string]struct{ tv, tc int }{
		"Blackscholes": {59, 50},
		"CFD":          {195, 25},
		"Hotspot":      {36, 22},
		"HPCCG":        {54, 27},
		"LavaMD":       {47, 11},
		"K-means":      {26, 15},
		"SRAD":         {29, 14},
	}
	as := All()
	if len(as) != len(want) {
		t.Fatalf("suite has %d applications, want %d", len(as), len(want))
	}
	for _, a := range as {
		w, ok := want[a.Name()]
		if !ok {
			t.Errorf("unexpected application %q", a.Name())
			continue
		}
		g := a.Graph()
		if g.NumVars() != w.tv {
			t.Errorf("%s: TV = %d, want %d", a.Name(), g.NumVars(), w.tv)
		}
		if g.NumClusters() != w.tc {
			t.Errorf("%s: TC = %d, want %d", a.Name(), g.NumClusters(), w.tc)
		}
		if a.Kind() != bench.App {
			t.Errorf("%s: kind = %v, want application", a.Name(), a.Kind())
		}
	}
}

// tableIVProfile is the qualitative content of the paper's Table IV: the
// speedup band of the manual whole-program single conversion and the
// magnitude band of its quality loss.
type tableIVProfile struct {
	minSU, maxSU   float64
	minErr, maxErr float64 // 0,0 means exactly zero loss; NaN handled apart
	nanErr         bool
}

var tableIVProfiles = map[string]tableIVProfile{
	"Blackscholes": {minSU: 1.00, maxSU: 1.15, minErr: 1e-7, maxErr: 1e-4},
	"CFD":          {minSU: 1.2, maxSU: 1.6, minErr: 1e-9, maxErr: 1e-5},
	"Hotspot":      {minSU: 1.55, maxSU: 2.0, minErr: 1e-11, maxErr: 3e-9},
	"HPCCG":        {minSU: 0.85, maxSU: 1.12, minErr: 1e-7, maxErr: 1e-3},
	"K-means":      {minSU: 0.9, maxSU: 1.1, minErr: 0, maxErr: 0},
	"LavaMD":       {minSU: 2.2, maxSU: 3.2, minErr: 1e-6, maxErr: 1e-3},
	"SRAD":         {minSU: 1.2, maxSU: 1.8, nanErr: true},
}

// TestTableIVManualConversion checks every application's full manual
// single-precision conversion against the paper's Table IV bands.
func TestTableIVManualConversion(t *testing.T) {
	runner := bench.NewRunner(42)
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			prof := tableIVProfiles[a.Name()]
			ref := runner.Reference(a)
			single := runner.RunManualSingle(a)
			su := ref.Measured.Mean / single.Measured.Mean
			e, err := verify.Compute(a.Metric(), ref.Output.Values, single.Output.Values)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("manual single: speedup=%.3f quality-loss=%.3g (model %.3g -> %.3g s)",
				su, e, ref.ModelTime, single.ModelTime)
			if su < prof.minSU || su > prof.maxSU {
				t.Errorf("speedup %.3f outside [%.2f, %.2f]", su, prof.minSU, prof.maxSU)
			}
			switch {
			case prof.nanErr:
				if !math.IsNaN(e) {
					t.Errorf("quality loss %.3g, want NaN", e)
				}
			case prof.minErr == 0 && prof.maxErr == 0:
				if e != 0 {
					t.Errorf("quality loss %.3g, want exactly 0", e)
				}
			default:
				if e < prof.minErr || e > prof.maxErr {
					t.Errorf("quality loss %.3g outside [%.1g, %.1g]", e, prof.minErr, prof.maxErr)
				}
			}
		})
	}
}

func TestAppDeterminism(t *testing.T) {
	runner := bench.NewRunner(11)
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			x := runner.Reference(a)
			y := runner.Reference(a)
			if x.Cost != y.Cost {
				t.Error("cost differs between identical runs")
			}
			if len(x.Output.Values) != len(y.Output.Values) {
				t.Fatal("output length differs")
			}
			for i := range x.Output.Values {
				if x.Output.Values[i] != y.Output.Values[i] {
					t.Fatalf("output[%d] differs", i)
				}
			}
		})
	}
}

// TestAppMechanismsStableAcrossSeeds guards the application calibration
// against workload luck: the qualitative mechanisms behind Table IV must
// hold at seeds other than the canonical one.
func TestAppMechanismsStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		runner := bench.NewRunner(seed)
		for _, a := range All() {
			ref := runner.Reference(a)
			single := runner.RunManualSingle(a)
			su := ref.Measured.Mean / single.Measured.Mean
			e, err := verify.Compute(a.Metric(), ref.Output.Values, single.Output.Values)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, a.Name(), err)
			}
			switch a.Name() {
			case "LavaMD":
				if su < 2.2 {
					t.Errorf("seed %d: LavaMD cache-step speedup = %.2f", seed, su)
				}
			case "SRAD":
				if !math.IsNaN(e) {
					t.Errorf("seed %d: SRAD quality = %g, want NaN", seed, e)
				}
			case "HPCCG":
				// The f64 iteration count shifts a little with the
				// assembled system, so the cancellation lands within
				// +-20% of 1.0 rather than exactly on it.
				if su < 0.8 || su > 1.2 {
					t.Errorf("seed %d: HPCCG speedup = %.2f, want ~1.0", seed, su)
				}
			case "K-means":
				if e != 0 {
					t.Errorf("seed %d: K-means MCR = %g, want 0", seed, e)
				}
			}
		}
	}
}
