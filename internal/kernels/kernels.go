// Package kernels implements the ten kernel benchmarks of HPC-MixPBench
// (Table I). The kernels descend from the Livermore loops: short fragments
// that are typical building blocks of HPC codes, easy to understand, free
// of file IO, and randomly initialised, which makes them the suite's
// recommended starting point for debugging a mixed-precision tool and the
// only programs small enough for the combinational (exhaustive) search.
//
// Each kernel declares its tunable variables and the type-dependence edges
// Typeforge extracts from the original C source; the Total Variables and
// Total Clusters counts of the paper's Table II are reproduced exactly and
// locked by tests. Problem sizes model the paper's runs via the tape's
// cost scale (see mp.Tape.SetScale); the arithmetic itself runs at a
// proportionally smaller size with identical loop structure.
package kernels

import (
	"math/rand"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// kernel carries the metadata shared by every kernel implementation.
type kernel struct {
	name  string
	desc  string
	graph *typedep.Graph
}

func (k *kernel) Name() string          { return k.name }
func (k *kernel) Kind() bench.Kind      { return bench.Kernel }
func (k *kernel) Description() string   { return k.desc }
func (k *kernel) Metric() verify.Metric { return verify.MAE }
func (k *kernel) Graph() *typedep.Graph { return k.graph }

// PureInit declares that every kernel draws its random inputs in a
// configuration-independent prefix of Run (all generators come from
// t.Rand seeded by the workload seed alone), so compiled kernels may
// record one input stream per seed and replay it across configurations
// (see bench.PureIniter). The cross-configuration equivalence tests lock
// the claim for every port.
func (k *kernel) PureInit() bool { return true }

// fillRand initialises an array with uniform values in [lo, hi) drawn from
// rng. Initialisation stores through the array, so the values are narrowed
// to the array's configured precision exactly as data held in a real float
// buffer would be. SetEach draws in index order, so the value stream is
// identical to an element-wise Set loop.
func fillRand(a *mp.Array, rng *rand.Rand, lo, hi float64) {
	a.SetEach(func(int) float64 { return lo + (hi-lo)*rng.Float64() })
}

// All returns one instance of every kernel, in Table I order.
func All() []bench.Benchmark {
	return []bench.Benchmark{
		NewBandedLinEq(),
		NewDiffPredictor(),
		NewEOS(),
		NewGenLinRecur(),
		NewHydro1D(),
		NewICCG(),
		NewInnerProd(),
		NewIntPredict(),
		NewPlanckian(),
		NewTridiag(),
	}
}
