package search

// Compositional is the paper's CM strategy, after FloatSmith: replace each
// variable individually, then repeatedly combine passing configurations
// until no composition produces anything new. The CRAFT implementation
// operates on individual variables, with Typeforge expanding each change
// to its type-change set so every variant compiles; members of one cluster
// are therefore redundant proposals, which is why the paper observes CM
// evaluating far more configurations than the cluster-level strategies -
// and timing out on variable-rich applications at loose thresholds, where
// almost every single-variable change passes and the composition frontier
// explodes combinatorially.
//
// Per the paper, "heuristics are used to reduce the number of
// configurations, but this strategy will be as slow as the combinational
// strategy when many variables can be replaced": the memoisation of
// repeated proposals is the reduction, and the composition closure is
// otherwise complete. Where few single-variable changes pass, the closure
// is small and CM terminates quickly (SRAD); where the passing set maps to
// k distinct clusters the closure is their full power set (LavaMD's 2^11 =
// 2048 configurations); and where nearly everything passes the closure is
// astronomically large and the 24-hour budget expires first - the paper's
// empty CM cells.
type Compositional struct{}

// Name returns "CM".
func (Compositional) Name() string { return "CM" }

// Mode returns ByVariable.
func (Compositional) Mode() Mode { return ByVariable }

// Search runs the individual phase and then the composition loop.
func (c Compositional) Search(e *Evaluator) Outcome {
	e.SetTypeforgeExpand(true)
	n := e.Space().NumUnits()
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
	consider := func(set Set, r Result) {
		if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
			best, bestRes, found = set, r, true
		}
	}

	// Phase 1: every variable individually - once per ladder rung below
	// the working precision, shallowest rung first (on the default ladder
	// this is the single historical pass). The singleton proposals are
	// fixed up front, so the whole phase is one batch: EvaluateBatch
	// prewarms the compiled kernels and evaluates in variable order,
	// byte-identical to the one-at-a-time loop.
	var passing []cmCand
	seen := map[string]bool{}
	p := e.Space().NumRungs()
	singles := make([]Set, 0, n*(p-1))
	for r := 1; r < p; r++ {
		for i := 0; i < n; i++ {
			set := NewSet(n)
			set.SetRung(i, uint8(r))
			singles = append(singles, set)
		}
	}
	res, err := e.EvaluateBatch(singles)
	for i, r := range res {
		set := singles[i]
		consider(set, r)
		if key := e.Key(set); r.Passed && !seen[key] {
			seen[key] = true
			passing = append(passing, cmCand{set, r})
		}
	}
	if err != nil {
		stopErr = err
	}

	// Phase 2: compose passing configurations pairwise until the frontier
	// is empty. The search terminates when there are no compositions left.
	// Within one frontier pass the composition sequence is fixed (passing
	// grows only between passes, and seen dedupes at proposal time), so
	// compositions are proposed in chunks of searchBatchSize and evaluated
	// as batches - chunked, because on the explosive closures the budget
	// expires long before the pass's proposals run out.
	frontier := append([]cmCand(nil), passing...)
	for len(frontier) > 0 && stopErr == nil {
		var next []cmCand
		batch := make([]Set, 0, searchBatchSize)
		flush := func() {
			if len(batch) == 0 || stopErr != nil {
				return
			}
			res, err := e.EvaluateBatch(batch)
			for i, r := range res {
				consider(batch[i], r)
				if r.Passed {
					next = append(next, cmCand{batch[i], r})
				}
			}
			batch = batch[:0]
			if err != nil {
				stopErr = err
			}
		}
	compose:
		for _, f := range frontier {
			for _, p := range passing {
				u := f.set.Union(p.set)
				if u.Equal(f.set) || u.Equal(p.set) {
					continue
				}
				key := e.Key(u)
				if seen[key] {
					continue
				}
				seen[key] = true
				batch = append(batch, u)
				if len(batch) == searchBatchSize {
					flush()
					if stopErr != nil {
						break compose
					}
				}
			}
		}
		flush()
		passing = append(passing, next...)
		frontier = next
	}
	return finish(c.Name(), e, best, bestRes, found, stopErr)
}

// cmCand pairs a composition with its evaluation.
type cmCand struct {
	set Set
	res Result
}
