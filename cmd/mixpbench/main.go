// Command mixpbench is the suite's harness entry point, the counterpart of
// the paper's Python harness: it reads a YAML configuration file
// describing benchmarks and the analyses to apply (Listing 4 of the
// paper), deploys each analysis on the worker pool, and prints one report
// per entry.
//
// Usage:
//
//	mixpbench -config path/to/config.yaml [-workers N] [-seed S]
//	mixpbench -list
//	mixpbench -tune bench -algorithm DD [-threshold 1e-8]
//
// Telemetry: -metrics PATH writes a Prometheus-style snapshot of the
// run's metrics on exit, and -events PATH streams structured JSONL events
// while it executes ("-" selects stdout for either). Snapshots are
// deterministic: the same seed produces byte-identical metrics for any
// -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	mixpbench "repro"
	"repro/internal/interchange"
)

func main() {
	var (
		configPath  = flag.String("config", "", "YAML harness configuration file")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 0, "workload seed (0 = canonical study seed)")
		list        = flag.Bool("list", false, "list the suite's benchmarks and exit")
		tune        = flag.String("tune", "", "tune one benchmark by name (bypasses the config file)")
		algorithm   = flag.String("algorithm", "DD", "search algorithm for -tune (CB, CM, DD, HR, HC, GA, GP)")
		threshold   = flag.Float64("threshold", 0, "quality threshold for -tune (0 = 1e-8)")
		exportSpace = flag.String("export-space", "", "write a benchmark's search space as interchange JSON and exit")
		jsonOut     = flag.Bool("json", false, "emit harness reports as interchange JSON instead of text")
		trace       = flag.Bool("trace", false, "with -tune: print the per-configuration evaluation log")
		metricsOut  = flag.String("metrics", "", `write a Prometheus-style metrics snapshot on exit ("-" = stdout)`)
		eventsOut   = flag.String("events", "", `stream telemetry events as JSONL ("-" = stdout)`)
	)
	flag.Parse()

	if err := validateFlags(*workers, *threshold, *tune, *algorithm); err != nil {
		fatal(err)
	}

	switch {
	case *list:
		listBenchmarks(os.Stdout)
	case *exportSpace != "":
		if err := exportSpaceJSON(os.Stdout, *exportSpace); err != nil {
			fatal(err)
		}
	case *tune != "":
		tel, closeTel, err := openTelemetry(*metricsOut, *eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := tuneOne(os.Stdout, *tune, *algorithm, *threshold, *seed, *trace, tel); err != nil {
			fatal(err)
		}
		if err := closeTel(); err != nil {
			fatal(err)
		}
	case *configPath != "":
		tel, closeTel, err := openTelemetry(*metricsOut, *eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := runConfig(os.Stdout, *configPath, *workers, *seed, *jsonOut, tel); err != nil {
			fatal(err)
		}
		if err := closeTel(); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// validateFlags rejects nonsense flag values with a clear error before
// any work starts.
func validateFlags(workers int, threshold float64, tune, algorithm string) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0, got %g", threshold)
	}
	if tune != "" {
		if _, err := mixpbench.CanonicalAlgorithm(algorithm); err != nil {
			return fmt.Errorf("-algorithm: %w", err)
		}
	}
	return nil
}

// openTelemetry builds the recorder behind -metrics/-events. The returned
// close function writes the metrics snapshot and reports any event-stream
// write error; it must run after the instrumented work completes. Both
// paths accept "-" for stdout; empty flags yield a nil recorder.
func openTelemetry(metricsPath, eventsPath string) (*mixpbench.Telemetry, func() error, error) {
	if metricsPath == "" && eventsPath == "" {
		return nil, func() error { return nil }, nil
	}
	var sink mixpbench.TelemetrySink
	var eventsFile *os.File
	if eventsPath != "" {
		w := io.Writer(os.Stdout)
		if eventsPath != "-" {
			f, err := os.Create(eventsPath)
			if err != nil {
				return nil, nil, err
			}
			eventsFile = f
			w = f
		}
		sink = mixpbench.NewJSONLSink(w)
	}
	tel := mixpbench.NewTelemetry(sink)
	closeFn := func() error {
		var firstErr error
		if metricsPath != "" {
			w := io.Writer(os.Stdout)
			var f *os.File
			if metricsPath != "-" {
				var err error
				if f, err = os.Create(metricsPath); err != nil {
					return err
				}
				w = f
			}
			firstErr = tel.WriteMetrics(w)
			if f != nil {
				if err := f.Close(); firstErr == nil {
					firstErr = err
				}
			}
		}
		if sink != nil {
			if err := sink.Close(); firstErr == nil {
				firstErr = err
			}
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return tel, closeFn, nil
}

// exportSpaceJSON writes the named benchmark's variable inventory and
// type-change sets in the FloatSmith interchange format.
func exportSpaceJSON(w io.Writer, name string) error {
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		return err
	}
	return interchange.WriteSpace(w, b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixpbench:", err)
	os.Exit(1)
}

func listBenchmarks(w io.Writer) {
	fmt.Fprintln(w, "Kernels:")
	for _, b := range mixpbench.Kernels() {
		g := b.Graph()
		fmt.Fprintf(w, "  %-16s TV=%-3d TC=%-3d %s\n", b.Name(), g.NumVars(), g.NumClusters(), b.Description())
	}
	fmt.Fprintln(w, "Applications:")
	for _, b := range mixpbench.Apps() {
		g := b.Graph()
		fmt.Fprintf(w, "  %-16s TV=%-3d TC=%-3d %s\n", b.Name(), g.NumVars(), g.NumClusters(), b.Description())
	}
}

func tuneOne(w io.Writer, name, algorithm string, threshold float64, seed int64, trace bool, tel *mixpbench.Telemetry) error {
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		return err
	}
	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
		Algorithm: algorithm,
		Threshold: threshold,
		Seed:      seed,
		Trace:     trace,
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	if trace {
		fmt.Fprintln(w, "evaluation log:")
		for _, e := range res.Trace {
			status := "fail"
			switch {
			case !e.Result.Valid:
				status = "no-compile"
			case e.Result.Passed:
				status = "pass"
			}
			fmt.Fprintf(w, "  #%-4d singles=%-4d %-10s speedup=%.3f err=%.3g spent=%.0fs\n",
				e.Seq, e.Singles, status, e.Result.Speedup, e.Result.Verdict.Error, e.SpentSeconds)
		}
	}
	fmt.Fprintf(w, "benchmark : %s\n", b.Name())
	fmt.Fprintf(w, "algorithm : %s\n", algorithm)
	fmt.Fprintf(w, "evaluated : %d configurations\n", res.Evaluated)
	if res.TimedOut {
		fmt.Fprintln(w, "status    : analysis budget exhausted")
	}
	if !res.Found {
		fmt.Fprintln(w, "result    : no passing configuration found")
		return nil
	}
	fmt.Fprintf(w, "speedup   : %.3fx\n", res.Speedup)
	fmt.Fprintf(w, "error     : %.3g (%s)\n", res.Error, b.Metric())
	fmt.Fprintf(w, "demoted   : %d of %d variables to single precision\n",
		res.Config.Singles(), b.Graph().NumVars())
	return nil
}

func runConfig(w io.Writer, path string, workers int, seed int64, jsonOut bool, tel *mixpbench.Telemetry) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	specs, err := mixpbench.ParseHarnessConfig(string(raw))
	if err != nil {
		return err
	}
	reports, err := mixpbench.RunHarnessWith(specs, mixpbench.HarnessOptions{
		Workers:   workers,
		Seed:      seed,
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return interchange.WriteReports(w, reports)
	}
	for _, r := range reports {
		fmt.Fprintf(w, "%s [%s @ %.0e]: ", r.Benchmark, r.Algorithm, r.Threshold)
		switch {
		case r.TimedOut && !r.Found:
			fmt.Fprintln(w, "no result within the analysis budget")
		case !r.Found:
			fmt.Fprintln(w, "no passing configuration")
		default:
			quality := fmt.Sprintf("%.3g", r.Quality)
			if math.IsNaN(r.Quality) {
				quality = "NaN"
			}
			fmt.Fprintf(w, "speedup %.3fx, quality %s, %d/%d vars single, %d configs evaluated\n",
				r.Speedup, quality, r.Demoted, r.Variables, r.Evaluated)
		}
	}
	return nil
}
