package typedepcheck

// Abstract semantics for the mp.Tape and mp.Array methods the Run
// bodies use. These are where the P2/P3 evidence and the per-site kind
// and source-list checks come from.

import (
	"go/ast"
	"go/token"

	"repro/internal/typedep"
)

// walkTapeCall models one t.<Method>(...) call.
func (ra *runAnalyzer) walkTapeCall(call *ast.CallExpr, sel *ast.SelectorExpr) eres {
	ra.walkExpr(sel.X)
	switch sel.Sel.Name {
	case "NewArray":
		if len(call.Args) < 2 {
			return newERes()
		}
		ids, dynamic := ra.resolveVIDs(call.Args[0])
		ra.walkExpr(call.Args[1])
		ra.use(ids)
		ra.checkKind(call.Args[0].Pos(), ids, dynamic, typedep.ArrayVar, "NewArray")
		out := newERes()
		out.arrays.addSet(ids)
		out.dynamic = dynamic
		return out
	case "Assign":
		return ra.walkAssignCall(call)
	case "Value":
		if len(call.Args) < 2 {
			return newERes()
		}
		ids, _ := ra.resolveVIDs(call.Args[0])
		ra.use(ids)
		rx := ra.walkExpr(call.Args[1])
		out := newERes()
		out.taints.addSet(ids)
		out.taints.addSet(rx.taints)
		out.taints.addSet(rx.arrays)
		return out
	case "Prec", "SetPrec":
		if len(call.Args) >= 1 {
			ids, _ := ra.resolveVIDs(call.Args[0])
			ra.use(ids)
		}
		for _, a := range call.Args[1:] {
			ra.walkExpr(a)
		}
		return newERes()
	default:
		// SetScale, AddFlops, AddCasts, AddBytes, Cost, Profile, ...:
		// cost accounting, no dependence semantics.
		for _, a := range call.Args {
			ra.walkExpr(a)
		}
		return newERes()
	}
}

// walkAssignCall models t.Assign(dst, x, flops, srcs...): the one tape
// operation that both moves a tracked value and declares, in its source
// list, what the port believes that value depends on.
func (ra *runAnalyzer) walkAssignCall(call *ast.CallExpr) eres {
	if len(call.Args) < 3 {
		return newERes()
	}
	dst, dstDyn := ra.resolveVIDs(call.Args[0])
	ra.use(dst)
	ra.checkKind(call.Args[0].Pos(), dst, dstDyn, typedep.Scalar, "Assign destination")
	rx := ra.walkExpr(call.Args[1])
	flow := intset{}
	flow.addSet(rx.taints)
	flow.addSet(rx.arrays)
	ra.walkExpr(call.Args[2])

	srcs := intset{}
	srcsDyn := false
	for _, a := range call.Args[3:] {
		ids, dynamic := ra.resolveVIDs(a)
		ra.use(ids)
		srcs.addSet(ids)
		srcsDyn = srcsDyn || dynamic
	}
	if ra.record && !srcsDyn && !dstDyn && !rx.dynamic {
		for id := range srcs {
			if dst[id] {
				ra.reportf(call.Pos(), "Assign source %s is the destination itself", ra.varName(id))
				continue
			}
			if !flow[id] && !ra.foreign(id) {
				ra.reportf(call.Pos(), "Assign lists source %s but the assigned expression does not read it", ra.varName(id))
			}
		}
	}
	ra.addEvent(call.Pos(), union(flow, dst))
	out := newERes()
	out.taints.addSet(dst)
	out.taints.addSet(flow)
	return out
}

// walkArrayCall models one a.<Method>(...) call.
func (ra *runAnalyzer) walkArrayCall(call *ast.CallExpr, sel *ast.SelectorExpr) eres {
	recv := ra.walkExpr(sel.X)
	ra.use(recv.arrays)
	switch sel.Sel.Name {
	case "Get":
		for _, a := range call.Args {
			ra.walkExpr(a)
		}
		out := newERes()
		out.taints.addSet(recv.arrays)
		return out
	case "GetN", "Snapshot", "Len", "Prec":
		for _, a := range call.Args {
			ra.walkExpr(a)
		}
		return newERes()
	case "Var":
		out := newERes()
		out.vids.addSet(recv.arrays)
		out.dynamic = recv.dynamic
		return out
	case "Set", "SetN":
		flow := intset{}
		for _, a := range call.Args {
			r := ra.walkExpr(a)
			flow.addSet(r.taints)
			flow.addSet(r.arrays)
		}
		ra.addEvent(call.Pos(), union(flow, recv.arrays))
		return newERes()
	case "Fill":
		if len(call.Args) != 1 {
			return newERes()
		}
		rx := ra.walkExpr(call.Args[0])
		ra.addEvent(call.Pos(), union(rx.taints, union(rx.arrays, recv.arrays)))
		// P3: the fill value is the untouched tracked value of exactly
		// one variable, named directly.
		if id, ok := ra.singleScalarIdent(call.Args[0]); ok && ra.record {
			ra.facts.fills = append(ra.facts.fills, fillEvent{
				scalar: id,
				arrays: recv.arrays,
				pos:    call.Pos(),
			})
		}
		return newERes()
	case "SetEach":
		flow := intset{}
		if len(call.Args) == 1 {
			r := ra.walkExpr(call.Args[0])
			if r.lit != nil {
				cr := ra.closureResult(r.lit)
				flow.addSet(cr.taints)
			}
			flow.addSet(r.taints)
		}
		ra.addEvent(call.Pos(), union(flow, recv.arrays))
		return newERes()
	default:
		for _, a := range call.Args {
			ra.walkExpr(a)
		}
		return newERes()
	}
}

// closureResult walks a function literal's body and unions the taints
// of its return expressions.
func (ra *runAnalyzer) closureResult(lit *ast.FuncLit) eres {
	ra.walkBody(lit.Body)
	out := newERes()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				rr := ra.walkExpr(r)
				out.taints.addSet(rr.taints)
				out.taints.addSet(rr.arrays)
			}
		}
		return true
	})
	return out
}

// singleScalarIdent reports whether e is a bare local whose tracked
// value is exactly one declared scalar, untouched by arrays.
func (ra *runAnalyzer) singleScalarIdent(e ast.Expr) (int, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := ra.pass.TypesInfo.Uses[id]
	b, ok := ra.env[obj]
	if !ok || len(b.taints) != 1 || len(b.arrays) != 0 {
		return 0, false
	}
	t := b.taints.sorted()[0]
	if !ra.inRange(t) || typedep.Kind(ra.p.graph.vars[t].kind) != typedep.Scalar {
		return 0, false
	}
	return t, true
}

func (ra *runAnalyzer) inRange(id int) bool {
	return id >= 0 && id < len(ra.p.graph.vars)
}

// foreign reports ids outside the declared graph (hidden constant pools
// like hotspot's literal array use id == NumVars).
func (ra *runAnalyzer) foreign(id int) bool {
	return !ra.inRange(id)
}

func (ra *runAnalyzer) varName(id int) string {
	if !ra.inRange(id) {
		return "hidden"
	}
	v := ra.p.graph.vars[id]
	return v.unit + "::" + v.name
}

// checkKind verifies every statically-resolved id at a site has the
// kind the mp operation requires. Hidden (out-of-range) ids are exempt.
func (ra *runAnalyzer) checkKind(pos token.Pos, ids intset, dynamic bool, want typedep.Kind, site string) {
	if !ra.record || dynamic {
		return
	}
	for id := range ids {
		if !ra.inRange(id) {
			continue
		}
		if got := typedep.Kind(ra.p.graph.vars[id].kind); got != want {
			ra.reportf(pos, "%s uses %s declared as %s, want %s",
				site, ra.varName(id), kindName(int64(got)), kindName(int64(want)))
		}
	}
}

func union(sets ...intset) intset {
	out := intset{}
	for _, s := range sets {
		out.addSet(s)
	}
	return out
}
