// Package search is the reproduction of the paper's search layer: the
// CRAFT generic search tool as driven by FloatSmith, plus the six
// strategies the paper compares - combinational (CB), compositional (CM),
// delta debugging (DD), hierarchical (HR), hierarchical-compositional
// (HC), and the genetic algorithm (GA) the paper adds to CRAFT.
//
// A strategy explores precision configurations over a Space of units.
// Following the paper's Section IV-A, the unit granularity differs by
// strategy: CB, DD, and GA operate on Typeforge clusters, while the
// current CRAFT implementations of CM, HR, and HC operate on individual
// variables. Variable-granularity search interacts with the type
// dependence analysis in two ways the paper highlights:
//
//   - CM composes single-variable changes, and Typeforge expands each
//     change to its full type-change set so the result compiles - which
//     makes members of one cluster redundant proposals and inflates the
//     evaluation count;
//   - HR's structural groups (functions, modules) can split a cluster, and
//     such configurations do not compile: they are charged as failed
//     evaluations, the "useless configurations" of Section IV-B.
//
// The space is parameterised by a precision ladder (mp.Ladder): rung 0 is
// the working precision and higher rungs are successively narrower
// formats. A Set assigns each unit a rung, and every strategy deepens the
// ladder in stages - stage r proposes raising units from rung r-1 to rung
// r - so that on the default two-rung ladder each strategy executes
// exactly its historical two-level search.
package search

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// Mode selects the unit granularity of a Space.
type Mode uint8

const (
	// ByCluster searches over Typeforge type-change sets: every proposed
	// configuration compiles by construction.
	ByCluster Mode = iota
	// ByVariable searches over individual variables, the granularity of
	// CRAFT's compositional and hierarchical implementations.
	ByVariable
)

// Unit is one search unit: the set of variables toggled together.
type Unit struct {
	// Label names the unit for traces (cluster index or variable name).
	Label string
	// Group is the enclosing program component (the variable's Unit for
	// ByVariable spaces; hierarchical strategies group by it).
	Group string
	// Vars lists the variable IDs the unit controls.
	Vars []mp.VarID
}

// Space is the search space over one benchmark's dependence graph.
type Space struct {
	graph  *typedep.Graph
	mode   Mode
	ladder mp.Ladder
	units  []Unit
}

// NewSpace builds the search space for g at the given granularity over
// the default two-rung ladder (double, single).
func NewSpace(g *typedep.Graph, mode Mode) *Space {
	return NewSpaceWithLadder(g, mode, mp.DefaultLadder())
}

// NewSpaceWithLadder builds the search space for g at the given
// granularity over an explicit precision ladder. The ladder must be
// valid (see mp.Ladder.Validate); rung 0 is the working precision.
func NewSpaceWithLadder(g *typedep.Graph, mode Mode, ladder mp.Ladder) *Space {
	if err := ladder.Validate(); err != nil {
		panic(fmt.Sprintf("search: %v", err))
	}
	s := &Space{graph: g, mode: mode, ladder: ladder}
	switch mode {
	case ByCluster:
		for _, c := range g.Clusters() {
			s.units = append(s.units, Unit{
				Label: fmt.Sprintf("cluster%d", c.Index),
				Group: g.Var(c.Members[0]).Unit,
				Vars:  c.Members,
			})
		}
	case ByVariable:
		for _, v := range g.Vars() {
			s.units = append(s.units, Unit{
				Label: v.Name,
				Group: v.Unit,
				Vars:  []mp.VarID{v.ID},
			})
		}
	default:
		panic(fmt.Sprintf("search: unknown mode %d", mode))
	}
	return s
}

// NumUnits returns the number of search units.
func (s *Space) NumUnits() int { return len(s.units) }

// Unit returns unit i.
func (s *Space) Unit(i int) Unit { return s.units[i] }

// Graph returns the underlying dependence graph.
func (s *Space) Graph() *typedep.Graph { return s.graph }

// Mode returns the unit granularity.
func (s *Space) Mode() Mode { return s.mode }

// Ladder returns the space's precision ladder.
func (s *Space) Ladder() mp.Ladder { return s.ladder }

// NumRungs returns the number of ladder rungs (2 for the default ladder).
func (s *Space) NumRungs() int { return len(s.ladder) }

// Expand materialises a unit-rung assignment as a variable-level
// precision configuration. For ByVariable spaces expand reports, in its
// second result, whether the configuration compiles: a selection that
// demotes part of a cluster but not all of it does not.
//
// When typeforgeExpand is true (the compositional strategies), each
// selected variable pulls its whole type-change set to its deepest
// selected rung, as Typeforge's transformation does to keep the
// refactored source compilable.
func (s *Space) Expand(set Set, typeforgeExpand bool) (bench.Config, bool) {
	rung := make([]uint8, s.graph.NumVars())
	for i := 0; i < len(s.units); i++ {
		r := uint8(set.Rung(i))
		if r == 0 {
			continue
		}
		for _, v := range s.units[i].Vars {
			if r > rung[v] {
				rung[v] = r
			}
		}
	}
	if s.mode == ByVariable && typeforgeExpand {
		// Pull every selected variable's cluster to its deepest rung.
		for _, c := range s.graph.Clusters() {
			var deepest uint8
			for _, m := range c.Members {
				if rung[m] > deepest {
					deepest = rung[m]
				}
			}
			if deepest > 0 {
				for _, m := range c.Members {
					rung[m] = deepest
				}
			}
		}
	}
	cfg := make(bench.Config, len(rung))
	for v, r := range rung {
		cfg[v] = s.ladder[r]
	}
	valid := s.graph.Valid(func(v mp.VarID) mp.Prec { return cfg[v] })
	return cfg, valid
}

// Set assigns each search unit a ladder rung: 0 is the working
// precision, higher rungs are narrower formats. On a two-rung ladder it
// degenerates to the historical membership bitset (rung 1 = member).
type Set struct {
	digits []uint8
	n      int
}

// NewSet returns the all-working-precision set over n units.
func NewSet(n int) Set {
	return Set{digits: make([]uint8, n), n: n}
}

// FullSet returns the set with every unit at rung 1.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// Len returns the capacity (number of units addressed).
func (s Set) Len() int { return s.n }

// Has reports whether unit i sits below the working precision.
func (s Set) Has(i int) bool { return s.digits[i] != 0 }

// Rung returns unit i's ladder rung.
func (s Set) Rung(i int) int { return int(s.digits[i]) }

// Add moves unit i to rung 1 (the historical two-level demotion).
func (s *Set) Add(i int) { s.digits[i] = 1 }

// SetRung moves unit i to rung r.
func (s *Set) SetRung(i int, r uint8) { s.digits[i] = r }

// Remove restores unit i to the working precision.
func (s *Set) Remove(i int) { s.digits[i] = 0 }

// Count returns the number of units below the working precision.
func (s Set) Count() int {
	c := 0
	for _, d := range s.digits {
		if d != 0 {
			c++
		}
	}
	return c
}

// RungSum returns the total rung depth across units, the generalisation
// of Count that orders configurations by aggressiveness.
func (s Set) RungSum() int {
	c := 0
	for _, d := range s.digits {
		c += int(d)
	}
	return c
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := Set{digits: make([]uint8, len(s.digits)), n: s.n}
	copy(out.digits, s.digits)
	return out
}

// Union returns the per-unit deepest rung of s and o. On a two-rung
// ladder this is exactly the historical bitwise union.
func (s Set) Union(o Set) Set {
	out := s.Clone()
	for i, d := range o.digits {
		if d > out.digits[i] {
			out.digits[i] = d
		}
	}
	return out
}

// Equal reports whether both sets assign identical rungs.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.digits {
		if s.digits[i] != o.digits[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity.
func (s Set) Key() string {
	return s.String()
}

// Members returns the indices of units below the working precision in
// ascending order.
func (s Set) Members() []int {
	var out []int
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the set as a rung-digit mask for traces (0/1 on the
// default ladder).
func (s Set) String() string {
	b := make([]byte, s.n)
	for i, d := range s.digits {
		if d < 10 {
			b[i] = '0' + d
		} else {
			b[i] = 'a' + d - 10
		}
	}
	return string(b)
}
