package harness

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/verify"
)

// cancelSpecs builds an eight-job campaign over fast kernels: seven
// delta-debugging jobs plus a genetic-algorithm tail whose long
// evaluation count guarantees the campaign outlives a mid-run cancel.
func cancelSpecs(t *testing.T) []Spec {
	t.Helper()
	base, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []string{"hydro-1d", "iccg", "innerprod", "tridiag", "planckian", "eos", "gen-lin-recur"}
	var specs []Spec
	for _, k := range kernels {
		s := base[0]
		s.Name = "k-" + k
		s.Bin = k
		s.Metric = verify.MAE
		s.Analysis.Algorithm = "DD"
		specs = append(specs, s)
	}
	tail := base[0]
	tail.Name = "k-hydro-1d-ga"
	tail.Bin = "hydro-1d"
	tail.Metric = verify.MAE
	tail.Analysis.Algorithm = "GA"
	return append(specs, tail)
}

// recordJSON marshals one journal record for byte comparison.
func recordJSON(t *testing.T, rec JournalRecord) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCancelMidCampaignPrefixDeterminism is the cancellation contract
// of the context-aware pipeline: cancel a campaign after N jobs have
// completed and every job that did complete cleanly - its report, its
// journal record, and its private telemetry (metrics snapshot and event
// buffer, both inside the record) - is byte-identical to the same job
// of an uninterrupted run. Checked at several worker counts; run under
// -race this also locks the cancellation path's thread safety.
func TestCancelMidCampaignPrefixDeterminism(t *testing.T) {
	specs := cancelSpecs(t)
	const cancelAfter = 2

	for _, workers := range []int{1, 2, 4} {
		dir := t.TempDir()

		// Uninterrupted baseline, journalled.
		basePath := filepath.Join(dir, "base.journal")
		baseResults, err := RunCampaign(specs, CampaignOptions{
			Workers: workers, Seed: 42,
			Telemetry:      telemetry.New(telemetry.NewMemorySink()),
			CheckpointPath: basePath,
		})
		if err != nil {
			t.Fatal(err)
		}
		fp := CampaignFingerprint(specs, 42, CampaignOptions{}.Faults)
		baseRecs, err := ReadJournal(basePath, fp, len(specs))
		if err != nil {
			t.Fatal(err)
		}
		if len(baseRecs) != len(specs) {
			t.Fatalf("workers=%d: baseline journal has %d records, want %d", workers, len(baseRecs), len(specs))
		}

		// Interrupted run: cancel once cancelAfter jobs have finished.
		ctx, cancel := context.WithCancel(context.Background())
		var finished atomic.Int64
		cutPath := filepath.Join(dir, "cut.journal")
		cutResults, err := RunCampaignContext(ctx, specs, CampaignOptions{
			Workers: workers, Seed: 42,
			Telemetry:      telemetry.New(telemetry.NewMemorySink()),
			CheckpointPath: cutPath,
			OnJobDone: func(int, JobResult) {
				if finished.Add(1) == cancelAfter {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if len(cutResults) != len(specs) {
			t.Fatalf("workers=%d: %d results, want one per job", workers, len(cutResults))
		}

		// Every cleanly completed job of the interrupted run matches the
		// baseline byte for byte, both as a result record and as the
		// journalled form (telemetry included).
		clean := 0
		for i, jr := range cutResults {
			if jr.Skipped || jr.Report.Canceled || jr.Err != nil {
				continue
			}
			clean++
			got := recordJSON(t, ResultRecord(jr, specs[i].Name))
			want := recordJSON(t, ResultRecord(baseResults[i], specs[i].Name))
			if got != want {
				t.Errorf("workers=%d job %d: completed result diverges from uninterrupted run:\n--- uninterrupted ---\n%s\n--- canceled ---\n%s",
					workers, i, want, got)
			}
		}
		if clean < cancelAfter {
			t.Errorf("workers=%d: only %d clean completions, cancel fired after %d", workers, clean, cancelAfter)
		}
		if clean == len(specs) {
			t.Errorf("workers=%d: cancellation interrupted nothing (all %d jobs completed)", workers, clean)
		}
		cutRecs, err := ReadJournal(cutPath, fp, len(specs))
		if err != nil {
			t.Fatal(err)
		}
		for idx, rec := range cutRecs {
			if got, want := recordJSON(t, rec), recordJSON(t, baseRecs[idx]); got != want {
				t.Errorf("workers=%d job %d: journal record diverges from uninterrupted run", workers, idx)
			}
		}

		// Interrupted jobs surface the cancellation, not a silent pass:
		// in-flight ones report canceled best-so-far, unstarted ones come
		// back skipped wrapping the context's cause.
		for i, jr := range cutResults {
			switch {
			case jr.Skipped:
				if !errors.Is(jr.Err, context.Canceled) {
					t.Errorf("workers=%d job %d: skipped with err %v, want context.Canceled in the chain", workers, i, jr.Err)
				}
			case jr.Report.Canceled:
				if jr.Err == nil {
					t.Errorf("workers=%d job %d: canceled report without an error", workers, i)
				}
			}
		}

		// Resuming from the interrupted journal completes the campaign
		// with final records byte-identical to the baseline: canceled and
		// skipped jobs re-run (their journal lines carry errors, so resume
		// re-executes them) and reproduce the uninterrupted outcome.
		resumed, err := RunCampaign(specs, CampaignOptions{
			Workers: workers, Seed: 42,
			Telemetry:  telemetry.New(telemetry.NewMemorySink()),
			ResumePath: cutPath,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, jr := range resumed {
			got := recordJSON(t, ResultRecord(jr, specs[i].Name))
			want := recordJSON(t, ResultRecord(baseResults[i], specs[i].Name))
			if got != want {
				t.Errorf("workers=%d job %d: resumed result diverges from uninterrupted run", workers, i)
			}
		}
	}
}

// TestRunContextNilAndBackgroundIdentical locks the other half of the
// contract: threading a background (or nil) context through the
// scheduler changes nothing - results are byte-identical to the
// context-free path.
func TestRunContextNilAndBackgroundIdentical(t *testing.T) {
	specs := cancelSpecs(t)[:4]
	run := func(ctx context.Context, useCtx bool) []JobResult {
		jobs, err := JobsFromSpecs(specs, 42)
		if err != nil {
			t.Fatal(err)
		}
		s := Scheduler{Workers: 2}
		if useCtx {
			return s.RunContext(ctx, jobs)
		}
		return s.Run(jobs)
	}
	base := run(nil, false)
	for name, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		got := run(ctx, true)
		for i := range base {
			w := recordJSON(t, ResultRecord(base[i], specs[i].Name))
			g := recordJSON(t, ResultRecord(got[i], specs[i].Name))
			if w != g {
				t.Errorf("%s ctx job %d: diverges from Run", name, i)
			}
		}
	}
}
