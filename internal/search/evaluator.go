package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bench"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// ErrBudgetExhausted reports that an evaluation would exceed the analysis
// time budget (the paper's 24-hour wall-clock limit per application and
// algorithm). Strategies stop where they are and report a timeout.
var ErrBudgetExhausted = errors.New("search: analysis time budget exhausted")

// ErrCanceled reports that the analysis context was canceled (a user
// abort, a service shutdown, or a deadline). It rides the same stop-error
// path as ErrBudgetExhausted - strategies stop where they are - but the
// outcome is reported as Canceled, not TimedOut: the budget accounting is
// untouched, the analysis just ends with its best-so-far.
var ErrCanceled = errors.New("search: analysis canceled")

// ErrTransient reports a transient evaluation failure: the node running
// the analysis died mid-evaluation (an injected fault, or a crashed
// worker in a future distributed backend). Unlike ErrBudgetExhausted it
// is retryable - the attempt's work is lost, but a fresh attempt of the
// same job may complete. The harness retries jobs whose error wraps it.
var ErrTransient = errors.New("search: transient evaluation failure")

// Result is everything a strategy learns about one configuration.
type Result struct {
	// Valid reports whether the configuration compiled. Variable-level
	// strategies can propose cluster-splitting selections; those fail
	// without running.
	Valid bool
	// Verdict carries the quality check (zero value when !Valid).
	Verdict verify.Verdict
	// Speedup is baseline time over configuration time, the paper's SU.
	Speedup float64
	// Energy is the configuration's modelled energy per run in joules
	// (zero when !Valid).
	Energy float64
	// Passed is the bottom line: the configuration compiled, ran, and met
	// the quality threshold.
	Passed bool
}

// Objective selects what an analysis optimises.
type Objective uint8

const (
	// ObjectiveThreshold is the paper's mode: maximise speedup subject to
	// the quality threshold.
	ObjectiveThreshold Objective = iota
	// ObjectivePareto additionally records every valid evaluation as a
	// (time, energy, error) point and exposes the non-dominated front;
	// the threshold still steers the strategies' accept/reject decisions.
	ObjectivePareto
)

// String returns the objective's configuration-grammar name.
func (o Objective) String() string {
	if o == ObjectivePareto {
		return "pareto"
	}
	return "threshold"
}

// ParseObjective parses an objective clause; the empty string is the
// default threshold objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "threshold":
		return ObjectiveThreshold, nil
	case "pareto":
		return ObjectivePareto, nil
	default:
		return ObjectiveThreshold, fmt.Errorf("search: unknown objective %q (want threshold or pareto)", s)
	}
}

// ParetoPoint is one configuration's coordinates in objective space.
type ParetoPoint struct {
	// Config is the expanded variable-level configuration key.
	Config string `json:"config"`
	// Time is the measured (trimmed-mean) run time in seconds.
	Time float64 `json:"time_seconds"`
	// Energy is the modelled energy per run in joules.
	Energy float64 `json:"energy_joules"`
	// Error is the verification error against the baseline output.
	Error float64 `json:"error"`
	// Speedup is baseline time over configuration time.
	Speedup float64 `json:"speedup"`
}

// Evaluator runs configurations for one (benchmark, threshold) pair. It is
// the reproduction of the FloatSmith evaluation pipeline: build the
// variant, run it the protocol's ten times, verify the output, and account
// the spent time against the analysis budget.
type Evaluator struct {
	space     *Space
	runner    *bench.Runner
	benchmark bench.Benchmark
	threshold float64

	// ctx, when non-nil, is checked between runs: once it is done every
	// further Evaluate returns ErrCanceled, so the strategy stops on its
	// normal stop-error path with its best-so-far intact.
	ctx context.Context //mixplint:ignore ctxfirst -- strategies drive the evaluator through fixed callback signatures that cannot take a context; SetContext installs it for between-run cancellation checks

	// typeforgeExpand controls whether unit selections pull whole
	// type-change sets (see Space.Expand).
	typeforgeExpand bool

	// objective selects threshold-only or Pareto-front recording; pareto
	// holds the recorded points in paid-evaluation order, refPoint the
	// baseline's coordinates.
	objective Objective
	pareto    []ParetoPoint
	refPoint  ParetoPoint

	// Budget accounting, in simulated seconds. buildSpent is the portion
	// of spent charged to configuration builds; the run portion is
	// derived as spent-buildSpent so the two phases always sum exactly
	// to spent (no separate accumulation drift).
	budget     float64
	spent      float64
	buildSpent float64
	buildCost  float64

	reference bench.Result
	cache     map[string]Result
	evaluated int
	memoHits  int

	// keyBuf is scratch for configuration keys: a cache probe writes the
	// key here and indexes the map with string(keyBuf), which the compiler
	// compiles without allocating. Hits - the bulk of a long analysis -
	// therefore cost no garbage; the string is materialised only to store
	// a new entry or feed telemetry.
	keyBuf []byte

	// failAt, when positive, makes paid evaluation number failAt die with
	// ErrTransient (fault injection).
	failAt int

	// cancelSeen dedupes the cancellation telemetry: one event per
	// analysis no matter how many Evaluate calls observe the done context.
	cancelSeen bool

	traceOn bool
	trace   []TraceEntry

	// tel receives per-evaluation metrics and events (nil = off).
	tel *telemetry.Recorder
}

// TraceEntry records one evaluated configuration in evaluation order, the
// equivalent of CRAFT's per-configuration log. Cache hits do not appear:
// the trace is the sequence of builds the analysis actually paid for.
type TraceEntry struct {
	// Seq is the 1-based evaluation index (equals the EV counter at the
	// time of evaluation).
	Seq int
	// Config is the expanded variable-level configuration key (one symbol
	// per variable: 0=double 1=single on the default ladder, further
	// rung digits and custom-format escapes on wider ladders).
	Config string
	// Singles is the number of variables below the working precision
	// (historically all singles, hence the name).
	Singles int
	// Result is the evaluation outcome.
	Result Result
	// SpentSeconds is the cumulative simulated analysis time after this
	// evaluation.
	SpentSeconds float64
}

// Budget and cost defaults reproducing the paper's experimental setup.
const (
	// DefaultBudgetSeconds is the paper's per-analysis limit: 24 hours.
	DefaultBudgetSeconds = 24 * 60 * 60
	// DefaultBuildSeconds charges each new configuration for its
	// Typeforge transformation and recompilation.
	DefaultBuildSeconds = 30
)

// searchBatchSize bounds how many proposals the population strategies
// buffer before handing a chunk to EvaluateBatch. Bounding the chunk
// keeps memory flat on the explosive enumerations (CB and CM on large
// spaces propose far more configurations than the budget ever evaluates)
// while still giving each chunk's kernels a grouped prewarm.
const searchBatchSize = 64

// NewEvaluator builds an evaluator over space with the paper's default
// budget. The baseline (all-double) measurement is taken immediately and
// charged against the budget like any other configuration.
func NewEvaluator(space *Space, runner *bench.Runner, b bench.Benchmark, threshold float64) *Evaluator {
	e := &Evaluator{
		space:     space,
		runner:    runner,
		benchmark: b,
		threshold: threshold,
		budget:    DefaultBudgetSeconds,
		buildCost: DefaultBuildSeconds,
		cache:     make(map[string]Result),
	}
	e.reference = runner.Reference(b)
	e.spent += e.buildCost + e.reference.Measured.Total
	e.buildSpent += e.buildCost
	// The all-double selection IS the baseline: seed the cache so
	// strategies that propose it (GA's random draws, DD's empty result)
	// get it for free, as CRAFT does.
	emptyCfg, _ := space.Expand(NewSet(space.NumUnits()), false)
	e.cache[emptyCfg.Key()] = Result{
		Valid:   true,
		Verdict: verify.Verdict{Error: 0, Passed: true},
		Speedup: 1.0,
		Energy:  e.reference.Energy,
		Passed:  true,
	}
	e.refPoint = ParetoPoint{
		Config:  emptyCfg.Key(),
		Time:    e.reference.Measured.Mean,
		Energy:  e.reference.Energy,
		Error:   0,
		Speedup: 1.0,
	}
	return e
}

// SetObjective selects the analysis objective. Under ObjectivePareto
// every paid valid evaluation is also recorded as a ParetoPoint; the
// threshold objective records nothing and is byte-identical to the
// pre-objective evaluator.
func (e *Evaluator) SetObjective(o Objective) { e.objective = o }

// Objective returns the analysis objective.
func (e *Evaluator) Objective() Objective { return e.objective }

// ParetoFront returns the non-dominated front over every recorded point
// plus the baseline, minimising (time, energy, error) simultaneously.
// Points whose error is NaN (destroyed output) are excluded. The front is
// sorted by configuration key, and - because points are recorded once per
// distinct configuration in deterministic job order - it is invariant to
// worker count and scheduling. Empty under ObjectiveThreshold unless no
// evaluations ran (the baseline alone is then the front under pareto).
func (e *Evaluator) ParetoFront() []ParetoPoint {
	if e.objective != ObjectivePareto {
		return nil
	}
	points := make([]ParetoPoint, 0, len(e.pareto)+1)
	points = append(points, e.refPoint)
	for _, p := range e.pareto {
		if math.IsNaN(p.Error) {
			continue
		}
		points = append(points, p)
	}
	var front []ParetoPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Config < front[j].Config })
	return front
}

// dominates reports whether q is at least as good as p on every
// objective and strictly better on one, minimising time, energy, and
// error. Ties on all three leave both points on the front (distinct
// configurations with identical coordinates are both reported).
func dominates(q, p ParetoPoint) bool {
	if q.Time > p.Time || q.Energy > p.Energy || q.Error > p.Error {
		return false
	}
	return q.Time < p.Time || q.Energy < p.Energy || q.Error < p.Error
}

// SetBudget overrides the analysis budget (seconds of simulated time).
func (e *Evaluator) SetBudget(seconds float64) { e.budget = seconds }

// SetContext attaches a cancellation context. Evaluate checks it between
// runs and returns ErrCanceled once it is done; singleflight waits on a
// shared run cache also unblock early. A nil (or never-canceled) context
// leaves every result, budget charge, and trace byte-identical to an
// evaluator without one.
func (e *Evaluator) SetContext(ctx context.Context) { e.ctx = ctx }

// SetFailAt arranges for paid evaluation number n (1-based; cache hits
// are free and do not count) to fail with ErrTransient, modelling a node
// fault striking mid-analysis. The dying evaluation's build time is
// charged as lost work. An analysis that finishes before evaluation n
// dodges the fault. Zero disables injection.
func (e *Evaluator) SetFailAt(n int) { e.failAt = n }

// SetTypeforgeExpand switches unit selections to pull whole type-change
// sets (used by the compositional strategies; see the package comment).
func (e *Evaluator) SetTypeforgeExpand(on bool) { e.typeforgeExpand = on }

// SetTrace enables per-configuration trace recording (off by default; the
// trace of a budget-length analysis holds a few thousand entries).
func (e *Evaluator) SetTrace(on bool) { e.traceOn = on }

// SetTelemetry attaches a recorder: every subsequent evaluation updates
// the search metrics (evaluations, cache hits, invalid builds, speedup
// distribution, budget-fraction gauge) and emits one "evaluation" event.
// All series carry a bench label. A nil recorder switches telemetry off.
func (e *Evaluator) SetTelemetry(tel *telemetry.Recorder) {
	e.tel = tel
	if tel == nil {
		return
	}
	tel.Emit("search_start", map[string]any{
		"bench":                  e.benchmark.Name(),
		"threshold":              e.threshold,
		"budget_seconds":         e.budget,
		"spent_seconds":          e.spent,
		"reference_mean_seconds": e.reference.Measured.Mean,
	})
	tel.Gauge("mixpbench_search_budget_fraction", "bench", e.benchmark.Name()).Set(e.spent / e.budget)
}

// Trace returns a copy of the recorded evaluations in order. Mutating the
// returned slice cannot corrupt the evaluator's own record.
func (e *Evaluator) Trace() []TraceEntry {
	out := make([]TraceEntry, len(e.trace))
	copy(out, e.trace)
	return out
}

// Space returns the search space.
func (e *Evaluator) Space() *Space { return e.space }

// Threshold returns the quality threshold configurations must meet.
func (e *Evaluator) Threshold() float64 { return e.threshold }

// Reference returns the baseline (all-double) measurement.
func (e *Evaluator) Reference() bench.Result { return e.reference }

// Evaluated returns the paper's EV metric: the number of distinct
// configurations built and tested so far (cache hits are free, exactly as
// CRAFT memoises repeated proposals).
func (e *Evaluator) Evaluated() int { return e.evaluated }

// Spent returns the simulated analysis seconds consumed.
func (e *Evaluator) Spent() float64 { return e.spent }

// BuildSpent returns the portion of Spent charged to configuration
// builds (Typeforge transformation + recompilation).
func (e *Evaluator) BuildSpent() float64 { return e.buildSpent }

// RunSpent returns the portion of Spent charged to measured executions.
// It is derived as Spent-BuildSpent, so BuildSpent+RunSpent == Spent
// holds exactly - the identity the trace layer's phase tiling relies
// on.
func (e *Evaluator) RunSpent() float64 { return e.spent - e.buildSpent }

// CacheHits returns the number of proposals served from the evaluator's
// memo (free re-evaluations). The count is a pure function of the
// search sequence, hence deterministic, unlike the shared run cache's
// scheduling-dependent hit attribution.
func (e *Evaluator) CacheHits() int { return e.memoHits }

// Key returns the canonical identity of the configuration a selection
// expands to. Distinct selections can share a configuration (variable
// selections within one type-change set expand identically); strategies
// that enumerate compositions must dedupe by this key, or they wander
// forever through cost-free cache hits.
func (e *Evaluator) Key(set Set) string {
	cfg, _ := e.space.Expand(set, e.typeforgeExpand)
	return cfg.Key()
}

// Evaluate builds, runs, and verifies one unit selection. It returns
// ErrBudgetExhausted once the analysis budget is gone; every other path
// yields a Result (an invalid selection is a non-passing Result, not an
// error).
func (e *Evaluator) Evaluate(set Set) (Result, error) {
	if set.Len() != e.space.NumUnits() {
		return Result{}, fmt.Errorf("search: selection over %d units, space has %d", set.Len(), e.space.NumUnits())
	}
	if err := e.canceled(); err != nil {
		return Result{}, err
	}
	cfg, valid := e.space.Expand(set, e.typeforgeExpand)
	e.keyBuf = cfg.AppendKey(e.keyBuf[:0])
	if r, ok := e.cache[string(e.keyBuf)]; ok {
		e.memoHits++
		if e.tel != nil {
			e.observe(string(e.keyBuf), cfg.Demoted(), r, true)
		}
		return r, nil
	}
	key := string(e.keyBuf)
	if e.spent >= e.budget {
		if e.tel != nil {
			e.tel.Counter("mixpbench_search_budget_exhausted_total", "bench", e.benchmark.Name()).Inc()
			e.tel.Emit("budget_exhausted", map[string]any{
				"bench":          e.benchmark.Name(),
				"spent_seconds":  e.spent,
				"budget_seconds": e.budget,
				"evaluations":    e.evaluated,
			})
		}
		return Result{}, ErrBudgetExhausted
	}
	if e.failAt > 0 && e.evaluated+1 >= e.failAt {
		// The node dies during this evaluation: its build time is lost
		// and no result comes back.
		e.spent += e.buildCost
		e.buildSpent += e.buildCost
		if e.tel != nil {
			e.tel.Counter("mixpbench_search_transient_faults_total", "bench", e.benchmark.Name()).Inc()
			e.tel.Emit("transient_fault", map[string]any{
				"bench":         e.benchmark.Name(),
				"evaluation":    e.evaluated + 1,
				"spent_seconds": e.spent,
			})
		}
		return Result{}, fmt.Errorf("search: %s: node fault during evaluation %d: %w",
			e.benchmark.Name(), e.evaluated+1, ErrTransient)
	}
	e.evaluated++
	if !valid {
		// The variant does not compile: the build time is lost, nothing
		// runs.
		e.spent += e.buildCost
		e.buildSpent += e.buildCost
		r := Result{Valid: false}
		e.cache[key] = r
		e.record(key, cfg.Demoted(), r)
		e.observe(key, cfg.Demoted(), r, false)
		return r, nil
	}
	res, err := e.runner.RunContext(e.ctx, e.benchmark, cfg)
	if err != nil {
		// The only error path is a context canceled while waiting on a
		// shared cache's in-flight execution: undo the EV charge (the run
		// never completed for this analysis) and stop.
		e.evaluated--
		return Result{}, e.cancelError(err)
	}
	e.spent += e.buildCost + res.Measured.Total
	e.buildSpent += e.buildCost
	v, err := verify.Check(e.benchmark.Metric(), e.reference.Output.Values, res.Output.Values, e.threshold)
	if err != nil {
		return Result{}, fmt.Errorf("search: verifying %s: %w", e.benchmark.Name(), err)
	}
	r := Result{
		Valid:   true,
		Verdict: v,
		Speedup: e.reference.Measured.Mean / res.Measured.Mean,
		Energy:  res.Energy,
		Passed:  v.Passed,
	}
	if e.objective == ObjectivePareto {
		// One point per distinct configuration: repeats are memo hits and
		// never reach this paid path.
		e.pareto = append(e.pareto, ParetoPoint{
			Config:  key,
			Time:    res.Measured.Mean,
			Energy:  res.Energy,
			Error:   v.Error,
			Speedup: r.Speedup,
		})
	}
	e.cache[key] = r
	e.record(key, cfg.Demoted(), r)
	e.observe(key, cfg.Demoted(), r, false)
	return r, nil
}

// EvaluateBatch evaluates a population of selections as one batch.
// Results come back positionally aligned with sets; on an error (budget
// exhausted, canceled, transient fault) the results evaluated before the
// failing selection are returned alongside it, and the failing selection's
// slot and everything after are absent.
//
// The batch is byte-identical to calling Evaluate on each selection in
// order - same results, EV counts, memo hits, budget charges, trace
// entries, and telemetry, locked by the batch equivalence tests - because
// evaluation itself stays sequential in submission order. What batching
// adds is compile-cache locality: the population's distinct, not yet
// memoised configurations are grouped by shared precision prefix and
// their kernels specialized group by group up front, so the evaluation
// sequence runs on compile-cache hits instead of rendezvousing on the
// compiler mid-measurement. Population strategies (GA generations, CB
// enumeration chunks, CM frontier passes) route through it.
func (e *Evaluator) EvaluateBatch(sets []Set) ([]Result, error) {
	e.prewarm(sets)
	out := make([]Result, 0, len(sets))
	for _, s := range sets {
		r, err := e.Evaluate(s)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// prewarm specializes the batch's kernels ahead of the evaluation
// sequence. Selections that expand invalid, duplicate another batch
// member, or are already memoised compile nothing - they will not reach
// the runner at all. Sorting the distinct configuration keys clusters
// shared precision prefixes, so each group's kernels specialize back to
// back.
func (e *Evaluator) prewarm(sets []Set) {
	type cand struct {
		key string
		cfg bench.Config
	}
	cands := make([]cand, 0, len(sets))
	seen := make(map[string]bool, len(sets))
	for _, s := range sets {
		if s.Len() != e.space.NumUnits() {
			continue
		}
		cfg, valid := e.space.Expand(s, e.typeforgeExpand)
		if !valid {
			continue
		}
		key := cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := e.cache[key]; ok {
			continue
		}
		cands = append(cands, cand{key, cfg})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	for _, c := range cands {
		e.runner.Prewarm(e.benchmark, c.cfg)
	}
}

// canceled reports the attached context's cancellation as ErrCanceled
// (nil while the analysis may continue). The first cancellation seen is
// also surfaced to telemetry so a service can show why a search stopped.
func (e *Evaluator) canceled() error {
	if e.ctx == nil {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return e.cancelError(err)
	}
	return nil
}

// cancelError wraps a context error into the strategy stop-error path,
// emitting one "search_canceled" event the first time.
func (e *Evaluator) cancelError(cause error) error {
	if e.tel != nil && !e.cancelSeen {
		e.cancelSeen = true
		e.tel.Counter("mixpbench_search_canceled_total", "bench", e.benchmark.Name()).Inc()
		e.tel.Emit("search_canceled", map[string]any{
			"bench":         e.benchmark.Name(),
			"evaluations":   e.evaluated,
			"spent_seconds": e.spent,
			"cause":         cause.Error(),
		})
	}
	return fmt.Errorf("search: %s: %v: %w", e.benchmark.Name(), cause, ErrCanceled)
}

// observe feeds one evaluation (paid or cache hit) into the attached
// telemetry recorder.
func (e *Evaluator) observe(key string, singles int, r Result, cacheHit bool) {
	if e.tel == nil {
		return
	}
	name := e.benchmark.Name()
	if cacheHit {
		e.tel.Counter("mixpbench_search_cache_hits_total", "bench", name).Inc()
	} else {
		e.tel.Counter("mixpbench_search_evaluations_total", "bench", name).Inc()
		if !r.Valid {
			e.tel.Counter("mixpbench_search_invalid_builds_total", "bench", name).Inc()
		} else {
			e.tel.Histogram("mixpbench_search_speedup", telemetry.SpeedupBuckets, "bench", name).Observe(r.Speedup)
		}
		e.tel.Gauge("mixpbench_search_spent_seconds", "bench", name).Set(e.spent)
		e.tel.Gauge("mixpbench_search_budget_fraction", "bench", name).Set(e.spent / e.budget)
	}
	e.tel.Emit("evaluation", map[string]any{
		"bench":          name,
		"config":         key,
		"singles":        singles,
		"cache":          cacheHit,
		"valid":          r.Valid,
		"passed":         r.Passed,
		"speedup":        r.Speedup,
		"error":          r.Verdict.Error,
		"spent_seconds":  e.spent,
		"budget_seconds": e.budget,
		"evaluations":    e.evaluated,
	})
}

// record appends a trace entry when tracing is on.
func (e *Evaluator) record(key string, singles int, r Result) {
	if !e.traceOn {
		return
	}
	e.trace = append(e.trace, TraceEntry{
		Seq:          e.evaluated,
		Config:       key,
		Singles:      singles,
		Result:       r,
		SpentSeconds: e.spent,
	})
}

// Outcome is what a strategy reports back.
type Outcome struct {
	// Algorithm is the strategy's short name (CB, CM, DD, HR, HC, GA).
	Algorithm string
	// Found reports whether any passing configuration was identified.
	Found bool
	// Best is the selection the strategy converged to (zero-value set
	// when !Found).
	Best Set
	// BestResult is Best's evaluation.
	BestResult Result
	// Evaluated is the paper's EV metric at termination.
	Evaluated int
	// TimedOut reports that the analysis budget expired before the
	// strategy terminated (the paper's empty grey cells).
	TimedOut bool
	// Canceled reports that the analysis context was canceled before the
	// strategy terminated. Like TimedOut it is an expected outcome, not a
	// failure: Best holds the best-so-far and Err stays nil.
	Canceled bool
	// Err carries the abnormal stop condition when the strategy aborted
	// on a non-budget error (ErrTransient from an injected node fault, a
	// verification failure); nil on normal termination and on timeouts
	// and cancellations, which are expected outcomes, not failures.
	Err error
}

// Algorithm is one search strategy.
type Algorithm interface {
	// Name returns the paper's abbreviation for the strategy.
	Name() string
	// Mode returns the unit granularity the strategy operates at.
	Mode() Mode
	// Search explores the evaluator's space and reports the outcome. It
	// must treat ErrBudgetExhausted as a stop signal, never as a failure.
	Search(e *Evaluator) Outcome
}

// finish assembles an Outcome, resolving the timeout and cancellation
// flags from err and surfacing any other stop condition as Outcome.Err.
func finish(name string, e *Evaluator, best Set, bestRes Result, found bool, err error) Outcome {
	out := Outcome{
		Algorithm:  name,
		Found:      found,
		Best:       best,
		BestResult: bestRes,
		Evaluated:  e.Evaluated(),
		TimedOut:   errors.Is(err, ErrBudgetExhausted),
		Canceled:   errors.Is(err, ErrCanceled),
	}
	if err != nil && !out.TimedOut && !out.Canceled {
		out.Err = err
	}
	return out
}
