package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// Probe is the scheduling-dependent counterpart of the deterministic
// span tree: a per-job attribution record for run-cache traffic that
// the scheduler threads through context into runcache.DoContext. Which
// job leads an execution versus waits on another's in-flight run is a
// race between real workers, so these numbers are diagnostics - served
// by mixpd's live view, never part of the exported byte-identical
// artifacts (see the package comment).
type Probe struct {
	// Job is the campaign job index this probe attributes to.
	Job int

	hits   atomic.Uint64
	misses atomic.Uint64
	waits  atomic.Uint64
}

// CacheHit records a lookup served from a completed execution.
func (p *Probe) CacheHit() {
	if p != nil {
		p.hits.Add(1)
	}
}

// CacheMiss records a lookup this job led (it executed the run).
func (p *Probe) CacheMiss() {
	if p != nil {
		p.misses.Add(1)
	}
}

// InflightWait records a hit that blocked on another job's in-flight
// execution before resolving.
func (p *Probe) InflightWait() {
	if p != nil {
		p.waits.Add(1)
	}
}

// probeKey is the context key for the current job's probe.
type probeKey struct{}

// WithProbe returns a context carrying p; the scheduler installs one
// per job before invoking the analysis.
func WithProbe(ctx context.Context, p *Probe) context.Context {
	return context.WithValue(ctx, probeKey{}, p)
}

// ProbeFrom extracts the job probe from ctx (nil when absent, and every
// Probe method is nil-safe, so instrumented code calls unconditionally).
func ProbeFrom(ctx context.Context) *Probe {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(probeKey{}).(*Probe)
	return p
}

// JobCacheStats is one job's snapshot in a Diag report.
type JobCacheStats struct {
	Job           int    `json:"job"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	InflightWaits uint64 `json:"inflight_waits"`
}

// Diag collects the probes of one campaign. It is safe for concurrent
// registration and snapshotting.
type Diag struct {
	mu     sync.Mutex
	probes []*Probe
}

// NewDiag returns an empty diagnostic collector.
func NewDiag() *Diag { return &Diag{} }

// Probe registers and returns a new probe for the given job index. A
// nil Diag returns a usable (but unobserved) probe.
func (d *Diag) Probe(job int) *Probe {
	p := &Probe{Job: job}
	if d == nil {
		return p
	}
	d.mu.Lock()
	d.probes = append(d.probes, p)
	d.mu.Unlock()
	return p
}

// Snapshot returns the per-job cache attribution sorted by job index.
// The values reflect real scheduling and may differ run to run; the
// hits+misses total per job is deterministic, the leader/waiter split
// is not.
func (d *Diag) Snapshot() []JobCacheStats {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	probes := make([]*Probe, len(d.probes))
	copy(probes, d.probes)
	d.mu.Unlock()
	out := make([]JobCacheStats, 0, len(probes))
	for _, p := range probes {
		out = append(out, JobCacheStats{
			Job:           p.Job,
			Hits:          p.hits.Load(),
			Misses:        p.misses.Load(),
			InflightWaits: p.waits.Load(),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job < out[k].Job })
	return out
}
