package mp

// VarProfile is the per-variable slice of a run's cost: where the traffic,
// arithmetic, and conversions attach. The paper's runtime library exists
// "for instrumentation and profiling"; this is the profiling half, and it
// is what a profile-guided search strategy ranks candidates with.
type VarProfile struct {
	// Bytes is the array traffic attributed to the variable (zero for
	// scalars, which live in registers).
	Bytes uint64
	// Flops is the arithmetic retired at the variable's assignment sites.
	Flops uint64
	// Casts is the conversion work at the variable's precision
	// boundaries.
	Casts uint64
}

// Profile returns the per-variable attribution of the work metered so
// far, indexed by VarID. The caller owns the returned slice.
func (t *Tape) Profile() []VarProfile {
	t.flushArrays()
	out := make([]VarProfile, len(t.perVar))
	copy(out, t.perVar)
	return out
}

// attributeBytes adds array traffic to a variable's profile.
func (t *Tape) attributeBytes(v VarID, bytes uint64) {
	if int(v) < len(t.perVar) {
		t.perVar[v].Bytes += bytes
	}
}

// attributeFlops adds assignment-site arithmetic to a variable's profile.
func (t *Tape) attributeFlops(v VarID, flops uint64) {
	if int(v) < len(t.perVar) {
		t.perVar[v].Flops += flops
	}
}

// attributeCasts adds conversion work to a variable's profile.
func (t *Tape) attributeCasts(v VarID, casts uint64) {
	if int(v) < len(t.perVar) {
		t.perVar[v].Casts += casts
	}
}
