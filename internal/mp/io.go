package mp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file reproduces the paper's mp_fread and mp_fwrite: benchmark input
// files are written once at a declared precision (the "initial type" of
// Listing 3, typically DOUBLE), and the runtime converts between the stored
// width and whatever width the active configuration gives the destination
// array. A static source transformation cannot retype a binary file on
// disk, so this conversion layer is what makes file-reading benchmarks
// tunable at all.

// byteOrder fixes the on-disk layout; the paper's x86 testbed is
// little-endian.
var byteOrder = binary.LittleEndian

// ioStride returns the on-disk bytes per value for stored precision p.
// The interchange formats serialize at their container width; custom
// formats have no interchange encoding, so their values (a subset of
// float64) are stored as rounded float64 payloads.
func ioStride(p Prec) int {
	if p.IsCustom() {
		return 8
	}
	return int(p.Size())
}

// WriteValues writes vals to w at the stored precision p, narrowing each
// value as needed. It is the serialisation half of mp_fwrite.
func WriteValues(w io.Writer, p Prec, vals []float64) error {
	buf := make([]byte, len(vals)*ioStride(p))
	for i, v := range vals {
		switch p {
		case F32:
			byteOrder.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		case F16:
			byteOrder.PutUint16(buf[i*2:], halfBits(roundToHalf(v)))
		case BF16:
			byteOrder.PutUint16(buf[i*2:], bfloatBits(roundToBfloat(v)))
		default:
			byteOrder.PutUint64(buf[i*8:], math.Float64bits(p.Round(v)))
		}
	}
	_, err := w.Write(buf)
	return err
}

// ReadValues reads n values stored at precision p from r, widening each to
// float64. It is the deserialisation half of mp_fread.
func ReadValues(r io.Reader, p Prec, n int) ([]float64, error) {
	buf := make([]byte, n*ioStride(p))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("mp: reading %d %s values: %w", n, p, err)
	}
	out := make([]float64, n)
	for i := range out {
		switch p {
		case F32:
			out[i] = float64(math.Float32frombits(byteOrder.Uint32(buf[i*4:])))
		case F16:
			out[i] = halfFromBits(byteOrder.Uint16(buf[i*2:]))
		case BF16:
			out[i] = bfloatFromBits(byteOrder.Uint16(buf[i*2:]))
		default:
			out[i] = math.Float64frombits(byteOrder.Uint64(buf[i*8:]))
		}
	}
	return out, nil
}

// ReadInto is mp_fread: it fills dst from r, where the stream stores
// dst.Len() values at precision stored. Each value is converted from the
// stored width to the width the configuration assigns to dst's variable,
// charging one cast per element when the widths differ (the conversion work
// a real mixed binary performs on load).
func ReadInto(r io.Reader, stored Prec, dst *Array) error {
	vals, err := ReadValues(r, stored, dst.Len())
	if err != nil {
		return err
	}
	if stored != dst.Prec() {
		dst.tape.AddCastsBetween(stored, dst.Prec(), uint64(dst.Len()))
	}
	dst.SetN(0, vals)
	return nil
}

// WriteFrom is mp_fwrite: it writes dst's contents to w at the declared
// stored precision, charging conversion work when the widths differ. Output
// files therefore always have the layout the original double-precision
// program produced, which is what lets the verification library compare
// approximate and exact runs byte-compatibly.
func WriteFrom(w io.Writer, stored Prec, src *Array) error {
	if stored != src.Prec() {
		src.tape.AddCastsBetween(src.Prec(), stored, uint64(src.Len()))
	}
	src.charge(uint64(src.Len()))
	return WriteValues(w, stored, src.data)
}
