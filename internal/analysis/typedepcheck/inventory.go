package typedepcheck

// FromGraph renders a live typedep.Graph in the same Inventory shape
// the static analyzer derives from source. The suite's golden-file test
// uses it so that the runtime declarations and the statically inferred
// ones are locked to one artifact.

import (
	"fmt"
	"sort"

	"repro/internal/typedep"
)

func FromGraph(bench string, g *typedep.Graph) Inventory {
	inv := Inventory{Bench: bench, TV: g.NumVars(), TC: g.NumClusters()}
	for _, v := range g.Vars() {
		inv.Vars = append(inv.Vars, fmt.Sprintf("%s::%s %s", v.Unit, v.Name, v.Kind))
	}
	for _, c := range g.Clusters() {
		members := make([]string, 0, len(c.Members))
		for _, id := range c.Members {
			v := g.Var(id)
			members = append(members, fmt.Sprintf("%s::%s", v.Unit, v.Name))
		}
		sort.Strings(members)
		inv.Clusters = append(inv.Clusters, members)
	}
	sort.Slice(inv.Clusters, func(i, j int) bool { return inv.Clusters[i][0] < inv.Clusters[j][0] })
	return inv
}
