package mixpbench_test

import (
	"context"
	"fmt"
	"os"

	mixpbench "repro"
)

// ExampleTune tunes one kernel with delta debugging at the kernel-study
// threshold.
func ExampleTune() {
	b, err := mixpbench.Benchmark("iccg")
	if err != nil {
		panic(err)
	}
	res, err := mixpbench.Tune(b, mixpbench.TuneOptions{
		Algorithm: "DD",
		Threshold: 1e-8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found=%v demoted=%d/%d evaluated=%d\n",
		res.Found, res.Config.Singles(), b.Graph().NumVars(), res.Evaluated)
	// Output:
	// found=true demoted=2/2 evaluated=1
}

// ExampleBenchmark shows name resolution and the Table II inventory
// metrics.
func ExampleBenchmark() {
	b, err := mixpbench.Benchmark("kmeans") // resolves to "K-means"
	if err != nil {
		panic(err)
	}
	g := b.Graph()
	fmt.Printf("%s: %d variables in %d clusters, verified with %s\n",
		b.Name(), g.NumVars(), g.NumClusters(), b.Metric())
	// Output:
	// K-means: 26 variables in 15 clusters, verified with MCR
}

// ExampleParseHarnessConfig parses the paper's Listing 4 configuration.
func ExampleParseHarnessConfig() {
	specs, err := mixpbench.ParseHarnessConfig(`
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
`)
	if err != nil {
		panic(err)
	}
	s := specs[0]
	fmt.Printf("%s: %s with %s at %.0e\n", s.Name, s.Analysis.Name, s.Analysis.Algorithm, s.Analysis.Threshold)
	// Output:
	// kmeans: floatSmith with DD at 1e-08
}

// ExampleNewEngine drives the campaign engine the way a service embeds
// it: one engine, two tenants submitting the same multi-benchmark
// campaign (configs/service-demo.yaml), one shared run cache. With
// MaxConcurrent 1 the campaigns run back to back, so the second tenant's
// evaluations are answered from the first tenant's cached runs.
func ExampleNewEngine() {
	src, err := os.ReadFile("configs/service-demo.yaml")
	if err != nil {
		panic(err)
	}
	eng := mixpbench.NewEngine(mixpbench.EngineOptions{MaxConcurrent: 1})
	defer eng.Close()

	var ids []string
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		id, err := eng.Submit(string(src), mixpbench.SubmitOptions{Name: tenant, Workers: 2})
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		st, err := eng.Wait(context.Background(), id)
		if err != nil {
			panic(err)
		}
		recs, err := eng.Results(id)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s %s %s %d/%d records=%d\n",
			st.ID, st.Name, st.State, st.Completed, st.Jobs, len(recs))
	}
	fmt.Printf("shared cache hits: %v\n", eng.Cache().Stats().Hits > 0)
	// Output:
	// c0001 tenant-a done 3/3 records=3
	// c0002 tenant-b done 3/3 records=3
	// shared cache hits: true
}

// ExampleComputeMetric evaluates the verification library directly.
func ExampleComputeMetric() {
	ref := []float64{1, 2, 3, 4}
	got := []float64{1, 2, 3, 6}
	mae, _ := mixpbench.ComputeMetric(mixpbench.MAE, ref, got)
	mcr, _ := mixpbench.ComputeMetric(mixpbench.MCR, ref, got)
	fmt.Printf("MAE=%.2f MCR=%.2f\n", mae, mcr)
	// Output:
	// MAE=0.50 MCR=0.25
}

// ExampleNewRunner runs one explicit configuration and verifies it
// against the original program.
func ExampleNewRunner() {
	b, err := mixpbench.Benchmark("innerprod")
	if err != nil {
		panic(err)
	}
	r := mixpbench.NewRunner(42)
	ref := r.Reference(b)

	// Demote the operand cluster {z, x}, keep the accumulator double.
	cfg := mixpbench.Config{mixpbench.F32, mixpbench.F32, mixpbench.F64}
	res := r.Run(b, cfg)
	v, err := mixpbench.CheckMetric(b.Metric(), ref.Output.Values, res.Output.Values, 1e-8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("passed=%v error=%g\n", v.Passed, v.Error)
	// Output:
	// passed=true error=0
}
