package analysis

import (
	"strings"
	"testing"
)

// findingsBy splits a report's unsuppressed findings by analyzer name.
func findingsBy(rep *Report, analyzer string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

// A malformed directive trailing a code line suppresses nothing: the
// code line's own finding stands alongside the directive finding.
func TestMalformedTrailingDirectiveOnCodeLine(t *testing.T) {
	rep := runDriver(t, `package fixture

var banned = 1 //mixplint:ignore flagident
`)
	if n := len(findingsBy(rep, "flagident")); n != 1 {
		t.Errorf("want the flagident finding to stand, got %d", n)
	}
	dir := findingsBy(rep, "directive")
	if len(dir) != 1 || !strings.Contains(dir[0].Message, "justification") {
		t.Errorf("want one justification finding, got %+v", dir)
	}
	if len(rep.Suppressed) != 0 {
		t.Errorf("malformed directive must not suppress: %+v", rep.Suppressed)
	}
}

// Stacked ignore directives each cover their own line and the one
// below; the lower one reaches the code, and the upper one idles
// without becoming an error.
func TestStackedIgnoreDirectives(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:ignore flagident -- stacked upper
//mixplint:ignore flagident -- stacked lower
var banned = 1
`)
	if len(rep.Findings) != 0 {
		t.Errorf("lower stacked directive should suppress: %+v", rep.Findings)
	}
	if len(rep.Suppressed) != 1 {
		t.Errorf("want 1 suppressed finding, got %+v", rep.Suppressed)
	}
}

// An ignore directive separated from the code by a blank line is out of
// range: the finding surfaces.
func TestIgnoreDirectiveOutOfRange(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:ignore flagident -- too far away

var banned = 1
`)
	if len(findingsBy(rep, "flagident")) != 1 || len(rep.Suppressed) != 0 {
		t.Errorf("directive two lines up must not suppress: findings=%+v suppressed=%+v",
			rep.Findings, rep.Suppressed)
	}
}

// A package directive works from anywhere in the file — here the last
// line of a file whose package clause has no doc comment.
func TestPackageDirectiveWithoutPackageDocComment(t *testing.T) {
	rep := runDriver(t, `package fixture

var banned = 1

//mixplint:package flagident -- fixture-wide: the name is the point of the test
`)
	if len(rep.Findings) != 0 {
		t.Errorf("package directive should suppress package-wide: %+v", rep.Findings)
	}
	if len(rep.Suppressed) != 1 {
		t.Errorf("want 1 suppressed finding, got %+v", rep.Suppressed)
	}
}

// An ignore or package directive naming an analyzer that is not
// registered suppresses nothing and is itself reported, so a typo
// cannot silently disarm a suppression.
func TestUnknownAnalyzerDirectiveReported(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:ignore flagidnet -- typo in the analyzer name
var banned = 1

//mixplint:package nosuch -- no analyzer has this name
`)
	if n := len(findingsBy(rep, "flagident")); n != 1 {
		t.Errorf("misdirected ignore must not suppress, got %d flagident findings", n)
	}
	dir := findingsBy(rep, "directive")
	if len(dir) != 2 {
		t.Fatalf("want 2 unknown-analyzer findings, got %+v", dir)
	}
	for _, f := range dir {
		if !strings.Contains(f.Message, "unknown analyzer") || !strings.Contains(f.Message, "suppresses nothing") {
			t.Errorf("unexpected message: %s", f.Message)
		}
	}
}

// key/keyexempt annotations share the directive grammar: missing
// operands are malformed-directive findings.
func TestKeyDirectiveParseErrors(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:key -- no struct named

//mixplint:keyexempt NoDotHere -- not a Struct.Field reference

var x = 1
`)
	dir := findingsBy(rep, "directive")
	if len(dir) != 2 {
		t.Fatalf("want 2 parse findings, got %+v", dir)
	}
	if !strings.Contains(dir[0].Message, "at least one struct type") {
		t.Errorf("key message: %s", dir[0].Message)
	}
	if !strings.Contains(dir[1].Message, "Struct.Field") {
		t.Errorf("keyexempt message: %s", dir[1].Message)
	}
}
