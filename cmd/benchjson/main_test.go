package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: SomeCPU
BenchmarkCampaignCompiled-8    	       5	 209000000 ns/op	 1200000 B/op	    9000 allocs/op
BenchmarkCampaignCompiled-8    	       5	 211000000 ns/op	 1200000 B/op	    9000 allocs/op
BenchmarkCampaignInterpreted-8 	       5	 457000000 ns/op	 2400000 B/op	   18000 allocs/op
BenchmarkCampaignLadder2-8     	       5	 100000000 ns/op	         1.684 hydro-DD-speedup	 1000000 B/op	    8000 allocs/op
BenchmarkCampaignLadder3-8     	       5	 260000000 ns/op	         1.684 hydro-DD-speedup	 2600000 B/op	   20000 allocs/op
BenchmarkTapeProbe/fast-8      	12345678	        88.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	records, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Benchmark: "BenchmarkCampaignCompiled", Samples: 2, NsPerOp: 210000000, BytesPerOp: 1200000, AllocsPerOp: 9000},
		{Benchmark: "BenchmarkCampaignInterpreted", Samples: 1, NsPerOp: 457000000, BytesPerOp: 2400000, AllocsPerOp: 18000},
		{Benchmark: "BenchmarkCampaignLadder2", Samples: 1, NsPerOp: 100000000, BytesPerOp: 1000000, AllocsPerOp: 8000},
		{Benchmark: "BenchmarkCampaignLadder3", Samples: 1, NsPerOp: 260000000, BytesPerOp: 2600000, AllocsPerOp: 20000},
		{Benchmark: "BenchmarkTapeProbe/fast", Samples: 1, NsPerOp: 88.5},
	}
	if !reflect.DeepEqual(records, want) {
		t.Errorf("Parse =\n%+v\nwant\n%+v", records, want)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	records, err := Parse(strings.NewReader("BenchmarkX-4   100   1234 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{Benchmark: "BenchmarkX", Samples: 1, NsPerOp: 1234}}
	if !reflect.DeepEqual(records, want) {
		t.Errorf("Parse = %+v, want %+v", records, want)
	}
}

func TestRunWritesArtifactAndComparison(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH.json")
	cmp := filepath.Join(dir, "comparison.md")
	// Pre-seed the comparison file with other sections plus a stale pair
	// section; the update must replace only the pair sections.
	seed := "## Table III\n\n| a |\n\n" + pairs[0].header + "\n\nstale\n\n## Table IV\n\n| b |\n"
	if err := os.WriteFile(cmp, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, cmp, []string{in}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if len(rep.Records) != 5 {
		t.Errorf("artifact has %d records, want 5", len(rep.Records))
	}

	text, err := os.ReadFile(cmp)
	if err != nil {
		t.Fatal(err)
	}
	got := string(text)
	for _, want := range []string{
		"## Table III", "## Table IV", // surrounding sections survive
		pairs[0].header,
		"| compiled | 210000000 |",
		"| interpreted | 457000000 |",
		"**2.18x**",
		pairs[1].header,
		"| f64,f32 (2 rungs) | 100000000 |",
		"| f64,f32,bf16 (3 rungs) | 260000000 |",
		"**2.60x**",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("comparison.md missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "stale") {
		t.Errorf("stale pair section survived the update:\n%s", got)
	}
	for _, p := range pairs {
		if strings.Count(got, p.header) != 1 {
			t.Errorf("pair section %q duplicated:\n%s", p.header, got)
		}
	}
}

func TestRunRequiresPairForComparison(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte("BenchmarkX-4   100   1234 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(filepath.Join(dir, "out.json"), filepath.Join(dir, "cmp.md"), []string{in})
	if err == nil || !strings.Contains(err.Error(), "pair") {
		t.Errorf("missing pair error = %v", err)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "out.json"), "", []string{in}); err == nil {
		t.Error("empty input accepted")
	}
}
