package search

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/suite"
)

func TestGreedyProfileOnKernel(t *testing.T) {
	k := kernels.NewHydro1D()
	space := NewSpace(k.Graph(), ByCluster)
	e := NewEvaluator(space, bench.NewRunner(42), k, 1e-8)
	out := GreedyProfile{}.Search(e)
	if !out.Found {
		t.Fatal("GP found nothing on hydro-1d")
	}
	// One evaluation per cluster, by construction.
	if out.Evaluated > space.NumUnits() {
		t.Errorf("GP evaluated %d > %d clusters", out.Evaluated, space.NumUnits())
	}
	if out.BestResult.Speedup < 1.4 {
		t.Errorf("GP speedup = %.2f, want the calibrated ~1.7", out.BestResult.Speedup)
	}
}

func TestGreedyRanksByProfiledWork(t *testing.T) {
	// On LavaMD at 1e-6, the profitable demotions are the big position
	// buffer (heaviest traffic) and the charges; greedy must find a
	// passing configuration with at most one evaluation per cluster.
	l, err := suite.Lookup("lavamd")
	if err != nil {
		t.Fatal(err)
	}
	space := NewSpace(l.Graph(), ByCluster)
	e := NewEvaluator(space, bench.NewRunner(42), l, 1e-6)
	out := GreedyProfile{}.Search(e)
	if !out.Found {
		t.Fatal("GP found nothing on LavaMD at 1e-6")
	}
	if out.Evaluated > space.NumUnits() {
		t.Errorf("GP evaluated %d > %d clusters", out.Evaluated, space.NumUnits())
	}
	if out.BestResult.Speedup < 1.3 {
		t.Errorf("GP speedup = %.2f, want the rv+qv mid-range", out.BestResult.Speedup)
	}
}

func TestGreedyProfileMatchesOrBeatsGAEffortOnApps(t *testing.T) {
	// The extension's selling point: informed acceptance order with
	// GA-like predictable effort. Check EV stays linear in clusters on
	// every application.
	for _, a := range suite.Apps() {
		space := NewSpace(a.Graph(), ByCluster)
		e := NewEvaluator(space, bench.NewRunner(42), a, 1e-3)
		out := GreedyProfile{}.Search(e)
		if out.Evaluated > space.NumUnits() {
			t.Errorf("%s: GP evaluated %d > %d clusters", a.Name(), out.Evaluated, space.NumUnits())
		}
		if out.TimedOut {
			t.Errorf("%s: GP timed out", a.Name())
		}
	}
}

func TestProfileAttributesWork(t *testing.T) {
	k := kernels.NewBandedLinEq()
	r := bench.NewRunner(42)
	res := r.Reference(k)
	if len(res.Profile) != k.Graph().NumVars() {
		t.Fatalf("profile covers %d vars, want %d", len(res.Profile), k.Graph().NumVars())
	}
	totalBytes := uint64(0)
	for _, p := range res.Profile {
		totalBytes += p.Bytes
	}
	if totalBytes != res.Cost.Bytes() {
		t.Errorf("profile bytes %d != cost bytes %d", totalBytes, res.Cost.Bytes())
	}
	// banded-lin-eq reads x and y heavily; both must carry traffic.
	if res.Profile[0].Bytes == 0 || res.Profile[1].Bytes == 0 {
		t.Error("array variables carry no profiled traffic")
	}
}
