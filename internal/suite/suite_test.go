package suite

import (
	"testing"

	"repro/internal/bench"
)

func TestSuiteComposition(t *testing.T) {
	if got := len(Kernels()); got != 10 {
		t.Errorf("kernels = %d, want 10", got)
	}
	if got := len(Apps()); got != 7 {
		t.Errorf("apps = %d, want 7", got)
	}
	if got := len(All()); got != 17 {
		t.Errorf("total = %d, want 17", got)
	}
	for _, b := range Kernels() {
		if b.Kind() != bench.Kernel {
			t.Errorf("%s misclassified", b.Name())
		}
	}
	for _, b := range Apps() {
		if b.Kind() != bench.App {
			t.Errorf("%s misclassified", b.Name())
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[normalize(n)] {
			t.Errorf("duplicate benchmark name %q", n)
		}
		seen[normalize(n)] = true
	}
}

func TestLookupVariants(t *testing.T) {
	cases := map[string]string{
		"kmeans":        "K-means",
		"K-means":       "K-means",
		"k_means":       "K-means",
		"HOTSPOT":       "Hotspot",
		"banded-lin-eq": "banded-lin-eq",
		"bandedlineq":   "banded-lin-eq",
		"lavamd":        "LavaMD",
	}
	for in, want := range cases {
		b, err := Lookup(in)
		if err != nil {
			t.Errorf("Lookup(%q): %v", in, err)
			continue
		}
		if b.Name() != want {
			t.Errorf("Lookup(%q) = %s, want %s", in, b.Name(), want)
		}
	}
	if _, err := Lookup("quake3"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestSortedNames(t *testing.T) {
	n := SortedNames()
	if len(n) != 17 {
		t.Fatalf("SortedNames len = %d", len(n))
	}
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatalf("not sorted at %d: %q >= %q", i, n[i-1], n[i])
		}
	}
}

// TestFreshInstancesIndependent guards the contract that All returns
// fresh benchmark values whose graphs are safe to use concurrently with
// other instances.
func TestFreshInstancesIndependent(t *testing.T) {
	a := All()
	b := All()
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("All() returned shared instance for %s", a[i].Name())
		}
		if a[i].Graph().NumVars() != b[i].Graph().NumVars() {
			t.Errorf("instances of %s disagree", a[i].Name())
		}
	}
}
