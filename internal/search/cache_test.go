package search

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
)

// TestEvaluatorCacheTransparent checks the search layer's view of the
// shared run cache: for every strategy, an analysis whose runner shares a
// warm campaign cache produces the same outcome, EV count, spent seconds,
// and per-configuration trace as one executing everything itself. The
// cache is pre-warmed by a first analysis, so the second run of each pair
// is served almost entirely from the table.
func TestEvaluatorCacheTransparent(t *testing.T) {
	b := kernels.NewHydro1D()
	for _, name := range []string{"CB", "DD", "HR", "GA"} {
		algo, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		analyse := func(cache *bench.Cache) (Outcome, []TraceEntry, float64) {
			runner := bench.NewRunner(42)
			runner.Cache = cache
			e := NewEvaluator(NewSpace(b.Graph(), algo.Mode()), runner, b, 1e-8)
			e.SetTrace(true)
			out := algo.Search(e)
			return out, e.Trace(), e.Spent()
		}

		cache := bench.NewCache(nil)
		analyse(cache) // warm: every later run hits the table
		warmStats := cache.Stats()

		coldOut, coldTrace, coldSpent := analyse(nil)
		hotOut, hotTrace, hotSpent := analyse(cache)

		if !reflect.DeepEqual(coldOut, hotOut) {
			t.Errorf("%s: outcome differs with a warm shared cache:\ncold %+v\nhot  %+v", name, coldOut, hotOut)
		}
		if coldSpent != hotSpent {
			t.Errorf("%s: budget accounting differs: cold spent %g, hot spent %g", name, coldSpent, hotSpent)
		}
		if !reflect.DeepEqual(coldTrace, hotTrace) {
			t.Errorf("%s: evaluation trace differs with a warm shared cache", name)
		}
		if s := cache.Stats(); s.Misses != warmStats.Misses {
			t.Errorf("%s: warm re-analysis executed %d new configurations, want 0",
				name, s.Misses-warmStats.Misses)
		}
	}
}
