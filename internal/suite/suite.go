// Package suite assembles the full HPC-MixPBench benchmark collection: the
// ten kernels of Table I and the seven proxy applications of Section
// III-B, with deterministic ordering and name-based lookup for the
// harness.
package suite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/kernels"
)

// All returns every benchmark: kernels first (Table I order), then
// applications (Table II order).
func All() []bench.Benchmark {
	return append(kernels.All(), apps.All()...)
}

// Kernels returns the ten kernel benchmarks.
func Kernels() []bench.Benchmark { return kernels.All() }

// Apps returns the seven application benchmarks.
func Apps() []bench.Benchmark { return apps.All() }

// Lookup resolves a benchmark by name, case-insensitively (harness
// configuration files write "kmeans" for "K-means").
func Lookup(name string) (bench.Benchmark, error) {
	want := normalize(name)
	for _, b := range All() {
		if normalize(b.Name()) == want {
			return b, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown benchmark %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names returns every benchmark name in suite order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name()
	}
	return out
}

// normalize lowercases and drops separators so "K-means", "kmeans", and
// "k_means" all match.
func normalize(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "_", "")
	return s
}

// SortedNames returns every benchmark name in lexical order (for error
// messages and deterministic listings).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
