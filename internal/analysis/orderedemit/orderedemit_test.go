package orderedemit

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestOrderedemit(t *testing.T) {
	analysistest.Run(t, Analyzer, "emitorder")
}
