package suite

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis/typedepcheck"
)

// TestGoldenInventoryRuntime locks the live typedep.Graph of every
// benchmark - the full variable list and cluster partition behind the
// paper's Table II TV/TC counts - to testdata/inventory.json. The same
// file is checked by typedepcheck's static test, which re-derives the
// inventories from the port sources without running them, so the golden
// artifact pins runtime declarations and static inference to each
// other: an edit that drifts either side fails one of the two tests.
func TestGoldenInventoryRuntime(t *testing.T) {
	var got []typedepcheck.Inventory
	for _, b := range All() {
		got = append(got, typedepcheck.FromGraph(b.Name(), b.Graph()))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Bench < got[j].Bench })
	if len(got) != 17 {
		t.Fatalf("suite has %d benchmarks, want 17", len(got))
	}

	data, err := os.ReadFile("testdata/inventory.json")
	if err != nil {
		t.Fatalf("reading golden (regenerate with go test ./internal/analysis/typedepcheck -run TestGoldenInventoryStatic -update): %v", err)
	}
	var want []typedepcheck.Inventory
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d inventories, want %d", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: runtime graph diverged from golden\n got: %+v\nwant: %+v", got[i].Bench, got[i], want[i])
		}
	}
}
