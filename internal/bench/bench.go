// Package bench defines the benchmark contract of HPC-MixPBench and the
// runner that executes one precision configuration of one benchmark.
//
// A benchmark is a program ported into the suite: it declares its tunable
// floating-point variables (with the type-dependence edges Typeforge would
// extract from the original source), names the quality metric its output is
// verified with, and runs its computation against an mp.Tape that carries
// the active precision configuration. Everything a search algorithm learns
// about a configuration - output values, numeric error, modelled execution
// time - flows through this package.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/mp"
	"repro/internal/perfmodel"
	"repro/internal/runcache"
	"repro/internal/telemetry"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// Kind separates the two benchmark classes of the suite.
type Kind uint8

const (
	// Kernel marks the small Livermore-style loop kernels (Table I): no
	// IO, randomly initialised inputs, few variables.
	Kernel Kind = iota
	// App marks the proxy/mini applications drawn from PARSEC, Rodinia,
	// and Mantevo.
	App
)

// String returns the class name.
func (k Kind) String() string {
	if k == Kernel {
		return "kernel"
	}
	return "application"
}

// Output is the verification payload of one run: the values the original
// program would write to its output file (or, for K-means, the cluster
// assignment labels scored with MCR).
type Output struct {
	Values []float64
}

// Benchmark is one program of the suite. Implementations must be stateless
// with respect to Run: all run state lives on the Tape and in locals, so a
// single Benchmark value can be evaluated concurrently.
type Benchmark interface {
	// Name is the suite-wide identifier (matches the paper's tables).
	Name() string
	// Kind reports whether this is a kernel or an application.
	Kind() Kind
	// Description is the one-line description from Table I / Section III-B.
	Description() string
	// Metric is the quality metric the paper verifies this benchmark with.
	Metric() verify.Metric
	// Graph is the variable inventory with type-dependence edges. The
	// returned graph is shared and must not be mutated.
	Graph() *typedep.Graph
	// Run executes the benchmark against the precision configuration
	// carried by the tape, with inputs generated deterministically from
	// seed, and returns the verification output.
	Run(t *mp.Tape, seed int64) Output
}

// HiddenVarser is implemented by benchmarks with precision sites that a
// source-level tool cannot retype - floating-point literals and library
// temporaries. The paper observes (Hotspot, Section IV-B) that Typeforge
// does not handle literals, so searched configurations execute extra
// typecasts that a manual whole-program conversion avoids. Hidden variables
// occupy tape slots beyond the dependence graph: the search never assigns
// them, but RunManualSingle demotes them along with everything else.
type HiddenVarser interface {
	// HiddenVars returns the number of non-searchable precision sites.
	HiddenVars() int
}

// hiddenVars returns b's hidden site count (zero for most benchmarks).
func hiddenVars(b Benchmark) int {
	if h, ok := b.(HiddenVarser); ok {
		return h.HiddenVars()
	}
	return 0
}

// PureIniter is implemented by benchmarks whose random-input generation
// is a pure function of the workload seed: the sequence of generator
// draws and bulk array initialisations in Run never depends on the
// precision configuration (every port of the suite draws its inputs in a
// configuration-independent prefix of Run). Declaring it lets the
// compiled path record one input stream per (benchmark, seed) and replay
// it across every configuration and semantics tier; benchmarks without
// the declaration still compile, they just regenerate inputs each run.
type PureIniter interface {
	// PureInit reports whether input generation is seed-pure.
	PureInit() bool
}

// Config is one precision assignment: element i is the precision of
// variable i. A nil Config means the original all-double program.
type Config []mp.Prec

// NewConfig returns an all-double configuration for n variables.
func NewConfig(n int) Config { return make(Config, n) }

// Clone returns an independent copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Singles returns the number of variables demoted to single precision.
func (c Config) Singles() int {
	n := 0
	for _, p := range c {
		if p == mp.F32 {
			n++
		}
	}
	return n
}

// Demoted returns the number of variables assigned any format below
// double precision. On the default {f64, f32} ladder it equals Singles.
func (c Config) Demoted() int {
	n := 0
	for _, p := range c {
		if p != mp.F64 {
			n++
		}
	}
	return n
}

// appendPrec appends p's key spelling to dst: one digit for a built-in
// format (the historical encoding, so default-ladder keys are unchanged),
// and an injective "(e.m)" escape for a custom format - '(' can never be
// confused with a digit, so distinct configurations always have distinct
// keys.
func appendPrec(dst []byte, p mp.Prec) []byte {
	if !p.IsCustom() {
		return append(dst, '0'+byte(p))
	}
	dst = append(dst, '(')
	dst = strconv.AppendInt(dst, int64(p.ExpBits()), 10)
	dst = append(dst, '.')
	dst = strconv.AppendInt(dst, int64(p.MantBits()), 10)
	return append(dst, ')')
}

// Key returns a compact string identity usable as a cache key.
func (c Config) Key() string {
	if len(c) == 0 {
		return ""
	}
	return string(c.AppendKey(make([]byte, 0, len(c))))
}

// AppendKey appends the compact key to dst and returns the extended
// slice. Hot paths that probe a map per proposed configuration use it
// with a reused buffer: the probe then allocates nothing (a map lookup on
// string(buf) does not materialise the string).
func (c Config) AppendKey(dst []byte) []byte {
	for _, p := range c {
		dst = appendPrec(dst, p)
	}
	return dst
}

// ParseKey is the inverse of Config.Key: it parses the compact key
// spelling back into a configuration. The journal uses it to rebuild
// ladder configurations from checkpointed records.
func ParseKey(s string) (Config, error) {
	if s == "" {
		return nil, nil
	}
	c := make(Config, 0, len(s))
	for i := 0; i < len(s); {
		b := s[i]
		switch {
		case b >= '0' && b <= '3':
			c = append(c, mp.Prec(b-'0'))
			i++
		case b == '(':
			j := strings.IndexByte(s[i:], ')')
			if j < 0 {
				return nil, fmt.Errorf("bench: config key %q: unterminated custom format", s)
			}
			e, m, found := strings.Cut(s[i+1:i+j], ".")
			if !found {
				return nil, fmt.Errorf("bench: config key %q: malformed custom format", s)
			}
			eBits, err1 := strconv.Atoi(e)
			mBits, err2 := strconv.Atoi(m)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bench: config key %q: malformed custom format", s)
			}
			p, err := mp.Custom(eBits, mBits)
			if err != nil {
				return nil, fmt.Errorf("bench: config key %q: %w", s, err)
			}
			c = append(c, p)
			i += j + 1
		default:
			return nil, fmt.Errorf("bench: config key %q: invalid byte %q at %d", s, b, i)
		}
	}
	return c, nil
}

// AllSingle returns a configuration demoting every variable.
func AllSingle(n int) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = mp.F32
	}
	return c
}

// Result is everything one evaluation of one configuration yields.
type Result struct {
	// Output is the verification payload.
	Output Output
	// Cost is the metered machine work.
	Cost mp.Cost
	// Profile attributes the cost to the tunable variables (the
	// instrumentation half of the runtime library); profile-guided
	// strategies rank demotion candidates with it.
	Profile []mp.VarProfile
	// ModelTime is the noiseless modelled execution time in seconds.
	ModelTime float64
	// Energy is the modelled energy of one execution in joules (dynamic
	// work plus idle power for the modelled duration; see
	// perfmodel.Machine.Energy).
	Energy float64
	// Measured is the paper-protocol timing (trimmed mean of repeated
	// jittered runs).
	Measured perfmodel.Measurement
}

// Cache is a process-wide memo store for deterministic benchmark
// executions, shared across runners and campaign jobs. Construct with
// NewCache and install on each Runner's Cache field; see Runner.Cache for
// the determinism contract.
type Cache = runcache.Cache[Result]

// NewCache returns an empty run cache. tel, when non-nil, receives the
// cache's hit/miss/inflight-wait counters and runcache_hit events; because
// the hit/miss split between concurrent workers depends on real
// scheduling, keep this recorder separate from any deterministic campaign
// telemetry (see the runcache package comment).
func NewCache(tel *telemetry.Recorder) *Cache {
	return runcache.New(runcache.Options[Result]{Clone: cloneResult, Telemetry: tel})
}

// cloneResult deep-copies a Result's slice fields so cached values handed
// to one caller can never be corrupted by another.
func cloneResult(r Result) Result {
	if r.Output.Values != nil {
		out := make([]float64, len(r.Output.Values))
		copy(out, r.Output.Values)
		r.Output.Values = out
	}
	if r.Profile != nil {
		prof := make([]mp.VarProfile, len(r.Profile))
		copy(prof, r.Profile)
		r.Profile = prof
	}
	return r
}

// Runner executes benchmark configurations under one machine model and
// measurement protocol.
type Runner struct {
	// Machine is the analytic execution-time model.
	Machine perfmodel.Machine
	// Runs is the repetition count of the measurement protocol.
	Runs int
	// Seed generates benchmark workloads; a fixed Seed makes every
	// configuration of a benchmark see identical inputs, which the
	// verification comparison requires.
	Seed int64
	// Telemetry, when non-nil, records per-run timings and the perfmodel
	// cost breakdown (flops, casts, traffic) of every execution.
	Telemetry *telemetry.Recorder
	// Cache, when non-nil, memoises executions process-wide: a
	// configuration already executed under the same benchmark, seed,
	// demotion semantics, and machine model is served from the shared
	// store instead of being interpreted again. Every run is a pure
	// function of that key, so the served Result is byte-identical to a
	// fresh execution - callers keep charging simulated build+run seconds
	// per call and keep observing per-run telemetry, which is what makes
	// budgets, EV counts, traces, and campaign snapshots invariant to the
	// cache being on or off. Many runners (one per campaign job) share one
	// Cache; the machine model is part of the key, so runners with
	// different models coexist safely.
	Cache *Cache
	// Compiled routes executions that the run cache does not serve
	// through precision-specialized compiled kernels (internal/compile)
	// instead of a fresh interpreted tape. Results are byte-identical
	// either way - outputs, costs, profiles, measurements; the toggle
	// exists as an escape hatch and for benchmarking the compiler itself.
	// NewRunner enables it; the zero Runner interprets.
	Compiled bool
	// Compiler is the compile cache used when Compiled is set. Nil means
	// the process-wide shared compiler, which maximises kernel reuse
	// across campaigns and tenants (the machine-model fingerprint keyed
	// into every kernel keeps different models apart).
	Compiler *compile.Compiler
}

// NewRunner returns a Runner with the default machine, the paper's
// ten-repetition protocol, the given workload seed, and compiled
// evaluation on.
func NewRunner(seed int64) *Runner {
	return &Runner{Machine: perfmodel.Default(), Runs: perfmodel.DefaultRuns, Seed: seed, Compiled: true}
}

// sharedCompiler is the process-wide compile cache runners fall back to:
// kernel reuse wants the widest possible sharing, and the machine-model
// fingerprint in every compile key keeps distinct models safe.
var sharedCompiler = compile.New(nil)

// compiler returns the compile cache in effect for this runner.
func (r *Runner) compiler() *compile.Compiler {
	if r.Compiler != nil {
		return r.Compiler
	}
	return sharedCompiler
}

// program adapts a Benchmark onto the compiler's Program surface.
type program struct{ b Benchmark }

func (p program) Name() string  { return p.b.Name() }
func (p program) NumSites() int { return p.b.Graph().NumVars() + hiddenVars(p.b) }
func (p program) PureInit() bool {
	pi, ok := p.b.(PureIniter)
	return ok && pi.PureInit()
}
func (p program) Exec(t *mp.Tape, seed int64) []float64 { return p.b.Run(t, seed).Values }

// executeCompiled runs one configuration through its compiled kernel,
// assembling the Result exactly as the interpreted executors do. name is
// the jitter-stream identity (the benchmark name, with the "/ir" suffix
// under IR semantics).
func (r *Runner) executeCompiled(b Benchmark, sem runcache.Semantics, name string, cfg Config) Result {
	prog := program{b}
	k := r.compiler().Compile(compile.Key{
		Bench:     b.Name(),
		Semantics: sem,
		Model:     r.modelFingerprint(),
		Config:    cfg.Key(),
	}, prog, cfg, r.Machine.Time, r.Machine.Energy)
	if k.NumSites() != prog.NumSites() {
		// A benchmark-name collision across distinct shapes (only test
		// doubles do this; names identify suite benchmarks). Interpret
		// rather than run on a mis-sized tape.
		k = nil
	}
	if k == nil {
		if sem == runcache.IR {
			return r.interpretIR(b, cfg)
		}
		if len(cfg) == prog.NumSites() && len(cfg) > b.Graph().NumVars() {
			return r.interpretManualSingle(b, cfg)
		}
		return r.interpret(b, cfg)
	}
	vals, cost, prof := k.Run(prog, r.Seed)
	modelTime := k.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(name, cfg)))
	return Result{
		Output:    Output{Values: vals},
		Cost:      cost,
		Profile:   prof,
		ModelTime: modelTime,
		Energy:    k.Energy(cost),
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
}

// Prewarm specializes the compiled kernel for one source-level
// configuration without executing it, so a later Run of the same
// configuration - by this runner or any other sharing the compiler -
// starts on a compile-cache hit. Batched evaluation (search.EvaluateBatch)
// prewarms a population's kernels grouped by shared precision prefix
// before the evaluation sequence begins. A no-op on interpreting runners;
// never touches the run cache, the budget, or any result.
func (r *Runner) Prewarm(b Benchmark, cfg Config) {
	if !r.Compiled {
		return
	}
	r.compiler().Compile(compile.Key{
		Bench:     b.Name(),
		Semantics: runcache.Source,
		Model:     r.modelFingerprint(),
		Config:    cfg.Key(),
	}, program{b}, cfg, r.Machine.Time, r.Machine.Energy)
}

// Run evaluates one configuration. A nil cfg runs the original program. The
// measurement jitter stream is derived from the workload seed and the
// configuration identity, so results are deterministic yet distinct per
// configuration.
func (r *Runner) Run(b Benchmark, cfg Config) Result {
	res, _ := r.RunContext(nil, b, cfg)
	return res
}

// RunContext is Run under a cancellation context: a call that would block
// on a shared cache's in-flight execution (another tenant is interpreting
// the same configuration right now) returns the context's error as soon
// as ctx is done instead of waiting the execution out. Executions this
// runner leads always complete - a half-run would poison the shared entry
// - so the error return is exclusively the waiting side's. A nil ctx
// never cancels, making RunContext(nil, b, cfg) identical to Run.
func (r *Runner) RunContext(ctx context.Context, b Benchmark, cfg Config) (Result, error) {
	n := b.Graph().NumVars()
	if cfg != nil && len(cfg) != n {
		panic(fmt.Sprintf("bench: config for %s has %d entries, want %d", b.Name(), len(cfg), n))
	}
	res, err := r.memoised(ctx, b, runcache.Source, cfg, func() Result { return r.execute(b, cfg) })
	if err != nil {
		return Result{}, err
	}
	kind := "candidate"
	if cfg == nil {
		kind = "reference"
	}
	r.observe(b, kind, res)
	return res, nil
}

// execute evaluates one source-level configuration (the uncached core of
// Run): through the compiled kernel when Compiled is set, interpreting
// against a fresh tape otherwise.
func (r *Runner) execute(b Benchmark, cfg Config) Result {
	if r.Compiled {
		return r.executeCompiled(b, runcache.Source, b.Name(), cfg)
	}
	return r.interpret(b, cfg)
}

// interpret runs one source-level configuration against a fresh
// interpreted tape.
func (r *Runner) interpret(b Benchmark, cfg Config) Result {
	tape := mp.NewTape(b.Graph().NumVars() + hiddenVars(b))
	for i, p := range cfg {
		tape.SetPrec(mp.VarID(i), p)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name(), cfg)))
	return Result{
		Output:    out,
		Cost:      cost,
		Profile:   tape.Profile(),
		ModelTime: modelTime,
		Energy:    r.Machine.Energy(cost),
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
}

// memoised routes one execution through the shared cache when one is
// installed, keyed by everything that can change the result. With no
// cache it just executes; the error return is exclusively a done ctx
// observed while waiting on another caller's in-flight execution.
func (r *Runner) memoised(ctx context.Context, b Benchmark, sem runcache.Semantics, cfg Config, fn func() Result) (Result, error) {
	if r.Cache == nil {
		return fn(), nil
	}
	return r.Cache.DoContext(ctx, runcache.Key{
		Bench:     b.Name(),
		Seed:      r.Seed,
		Semantics: sem,
		Model:     r.modelFingerprint(),
		Config:    cfg.Key(),
	}, fn)
}

// modelFingerprint hashes the machine model and measurement protocol into
// the cache key, so runners with different models sharing one cache can
// never serve each other's results. Mutating Machine or Runs mid-run is
// safe: the next execution simply keys differently.
//
//mixplint:key repro/internal/perfmodel.Machine -- every result-affecting Machine field must reach the cache key, or two machines collide on one stored record
//mixplint:keyexempt CacheLevel.Name -- display label; Time and Energy never read it, so it cannot change a result
func (r *Runner) modelFingerprint() uint64 {
	h := runcache.FNVOffset64
	mix := func(v uint64) {
		h = (h ^ v) * runcache.FNVPrime64
	}
	m := &r.Machine
	for i := 0; i < len(m.Name); i++ {
		mix(uint64(m.Name[i]))
	}
	mix(math.Float64bits(m.Rate64))
	mix(math.Float64bits(m.Rate32))
	mix(math.Float64bits(m.Rate16))
	mix(math.Float64bits(m.CastRate))
	mix(math.Float64bits(m.DRAMBandwidth))
	mix(math.Float64bits(m.RunOverhead))
	mix(uint64(len(m.Caches)))
	for _, c := range m.Caches {
		mix(c.Size)
		mix(math.Float64bits(c.Bandwidth))
	}
	for i := range m.CastMatrix {
		for j := range m.CastMatrix[i] {
			mix(math.Float64bits(m.CastMatrix[i][j]))
		}
	}
	for _, f := range m.EnergyModel.FlopJoules {
		mix(math.Float64bits(f))
	}
	mix(math.Float64bits(m.EnergyModel.ByteJoules))
	mix(math.Float64bits(m.EnergyModel.CastJoules))
	mix(math.Float64bits(m.EnergyModel.IdleWatts))
	mix(uint64(r.Runs))
	return h
}

// observe records one execution's timing and cost breakdown.
func (r *Runner) observe(b Benchmark, kind string, res Result) {
	if r.Telemetry == nil {
		return
	}
	name := b.Name()
	r.Telemetry.Counter("mixpbench_bench_runs_total", "bench", name, "kind", kind).Inc()
	r.Telemetry.Histogram("mixpbench_bench_model_seconds", telemetry.SecondsBuckets, "bench", name).Observe(res.ModelTime)
	c := res.Cost
	r.Telemetry.Counter("mixpbench_bench_flops64_total", "bench", name).Add(float64(c.Flops64))
	r.Telemetry.Counter("mixpbench_bench_flops32_total", "bench", name).Add(float64(c.Flops32))
	if c.Flops16 > 0 {
		r.Telemetry.Counter("mixpbench_bench_flops16_total", "bench", name).Add(float64(c.Flops16))
	}
	r.Telemetry.Counter("mixpbench_bench_casts_total", "bench", name).Add(float64(c.Casts))
	r.Telemetry.Counter("mixpbench_bench_traffic_bytes_total", "bench", name).Add(float64(c.Bytes()))
}

// Reference evaluates the original double-precision program.
func (r *Runner) Reference(b Benchmark) Result {
	return r.Run(b, nil)
}

// RunIR evaluates a configuration under IR-level demotion semantics (the
// paper's lower-level analysis tier): demoted variables compute narrow but
// their storage stays at the declared double width, as an
// instruction-rewriting tool would leave it. Accuracy changes like the
// source-level run; traffic and footprint do not.
func (r *Runner) RunIR(b Benchmark, cfg Config) Result {
	n := b.Graph().NumVars()
	if cfg != nil && len(cfg) != n {
		panic(fmt.Sprintf("bench: IR config for %s has %d entries, want %d", b.Name(), len(cfg), n))
	}
	res, _ := r.memoised(nil, b, runcache.IR, cfg, func() Result { return r.executeIR(b, cfg) })
	r.observe(b, "ir", res)
	return res
}

// executeIR evaluates one IR-level configuration (the uncached core of
// RunIR), compiled or interpreted like execute.
func (r *Runner) executeIR(b Benchmark, cfg Config) Result {
	if r.Compiled {
		return r.executeCompiled(b, runcache.IR, b.Name()+"/ir", cfg)
	}
	return r.interpretIR(b, cfg)
}

// interpretIR runs one IR-level configuration against a fresh
// interpreted tape.
func (r *Runner) interpretIR(b Benchmark, cfg Config) Result {
	tape := mp.NewTape(b.Graph().NumVars() + hiddenVars(b))
	tape.SetComputeOnly(true)
	for i, p := range cfg {
		tape.SetPrec(mp.VarID(i), p)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name()+"/ir", cfg)))
	return Result{
		Output:    out,
		Cost:      cost,
		Profile:   tape.Profile(),
		ModelTime: modelTime,
		Energy:    r.Machine.Energy(cost),
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
}

// RunManualSingle evaluates the whole-program single-precision conversion
// of the paper's Table IV: every searchable variable and every hidden site
// (literals included) is demoted, as a programmer editing the source would
// do. This is the ceiling a search-based tool cannot quite reach when the
// program has literal-typed expressions.
func (r *Runner) RunManualSingle(b Benchmark) Result {
	n := b.Graph().NumVars()
	h := hiddenVars(b)
	// The manual conversion is exactly a source-level run of the expanded
	// all-single configuration over every site, hidden ones included: the
	// tape setup, jitter stream, and hence the whole Result coincide. It
	// therefore shares Source-semantics cache entries - for a benchmark
	// without hidden sites, a searched all-single candidate and the manual
	// ceiling are one execution.
	full := AllSingle(n + h)
	res, _ := r.memoised(nil, b, runcache.Source, full, func() Result { return r.executeManualSingle(b, full) })
	r.observe(b, "manual-single", res)
	return res
}

// executeManualSingle evaluates the whole-program conversion (the
// uncached core of RunManualSingle), compiled or interpreted like
// execute. full is the expanded all-single configuration including
// hidden sites.
func (r *Runner) executeManualSingle(b Benchmark, full Config) Result {
	if r.Compiled {
		return r.executeCompiled(b, runcache.Source, b.Name(), full)
	}
	return r.interpretManualSingle(b, full)
}

// interpretManualSingle runs the whole-program conversion against a
// fresh interpreted tape.
func (r *Runner) interpretManualSingle(b Benchmark, full Config) Result {
	tape := mp.NewTape(len(full))
	for i := range full {
		tape.SetPrec(mp.VarID(i), mp.F32)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name(), full)))
	return Result{
		Output:    out,
		Cost:      cost,
		Profile:   tape.Profile(),
		ModelTime: modelTime,
		Energy:    r.Machine.Energy(cost),
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
}

// jitterSeed mixes the workload seed, benchmark name, and configuration
// into one deterministic RNG seed. It is a hand-rolled FNV-1a over the
// byte stream "<seed>/<name>/<config key>" - the exact stream the
// previous fmt.Fprintf implementation hashed, now without allocating or
// materialising the key.
func (r *Runner) jitterSeed(name string, cfg Config) int64 {
	h := runcache.FNVOffset64
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], r.Seed, 10) {
		h = (h ^ uint64(b)) * runcache.FNVPrime64
	}
	h = (h ^ '/') * runcache.FNVPrime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * runcache.FNVPrime64
	}
	h = (h ^ '/') * runcache.FNVPrime64
	for _, p := range cfg {
		if !p.IsCustom() {
			h = (h ^ uint64('0'+byte(p))) * runcache.FNVPrime64
			continue
		}
		for _, b := range appendPrec(buf[:0], p) {
			h = (h ^ uint64(b)) * runcache.FNVPrime64
		}
	}
	return int64(h)
}
