package trace

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// sampleJobs is a small campaign with a retried job (fault + backoff +
// straggler surplus), a clean job, and a skipped job.
func sampleJobs() []Job {
	return []Job{
		{
			Index: 0, Entry: "kmeans", Bench: "kmeans", Algorithm: "ddebug", Threshold: 1e-3,
			Attempts: []Attempt{
				{Number: 1, BuildSeconds: 60, RunSeconds: 10, SpentSeconds: 280, BackoffSeconds: 30,
					Evaluations: 2, Fault: "straggler+transient", Err: "injected transient fault"},
				{Number: 2, BuildSeconds: 90, RunSeconds: 22.5, SpentSeconds: 112.5, Evaluations: 3, CacheHits: 1},
			},
			Degraded: true,
		},
		{
			Index: 1, Entry: "hydro", Bench: "hydro", Algorithm: "greedy", Threshold: 1e-8,
			Attempts: []Attempt{
				{Number: 1, BuildSeconds: 120, RunSeconds: 48, SpentSeconds: 168, Evaluations: 4},
			},
		},
		{Index: 2, Entry: "iccg", Bench: "iccg", Algorithm: "hierarchical", Threshold: 1e-8, Skipped: true, Canceled: true},
	}
}

func TestAssembleTimelineAndIDs(t *testing.T) {
	tr := Assemble("test", sampleJobs())
	if tr.Jobs != 3 {
		t.Fatalf("jobs = %d, want 3", tr.Jobs)
	}
	// Job 0: attempt1 spent 280 + backoff 30 + attempt2 spent 112.5 = 422.5;
	// job 1: 168; job 2: 0. Total 590.5.
	if got := tr.TotalSeconds(); math.Abs(got-590.5) > 1e-9 {
		t.Fatalf("total = %v, want 590.5", got)
	}
	if tr.Root.Args["total_seconds"] != 590.5 {
		t.Fatalf("root total_seconds arg = %v", tr.Root.Args["total_seconds"])
	}

	byID := map[string]*Span{}
	tr.Root.Walk(func(s *Span) { byID[s.ID] = s })
	for _, id := range []string{
		"campaign",
		"job:0", "job:0/attempt:1", "job:0/attempt:1/build", "job:0/attempt:1/run",
		"job:0/attempt:1/straggler", "job:0/backoff:1",
		"job:0/attempt:2", "job:0/attempt:2/build", "job:0/attempt:2/run",
		"job:1", "job:1/attempt:1",
		"job:2",
	} {
		if byID[id] == nil {
			t.Fatalf("missing span %q", id)
		}
	}
	if len(byID) != tr.Spans {
		t.Fatalf("span count %d != walked %d", tr.Spans, len(byID))
	}
	// Straggler residual: 280 - 60 - 10 = 210.
	if d := byID["job:0/attempt:1/straggler"].Duration(); math.Abs(d-210) > 1e-9 {
		t.Fatalf("straggler = %v, want 210", d)
	}
	// No straggler phase on the clean attempt.
	if byID["job:0/attempt:2/straggler"] != nil {
		t.Fatalf("unexpected straggler span on clean attempt")
	}
	// Backoff sits between the attempts.
	b := byID["job:0/backoff:1"]
	a2 := byID["job:0/attempt:2"]
	if b.End != a2.Start {
		t.Fatalf("backoff end %v != attempt 2 start %v", b.End, a2.Start)
	}
	// Skipped job is a zero-length marker with its flags.
	j2 := byID["job:2"]
	if j2.Duration() != 0 || j2.Args["skipped"] != true || j2.Args["canceled"] != true {
		t.Fatalf("skipped job span wrong: dur=%v args=%v", j2.Duration(), j2.Args)
	}
	// Every started span ends at or after its start, inside its parent.
	tr.Root.Walk(func(s *Span) {
		if s.End < s.Start {
			t.Errorf("span %s ends before it starts", s.ID)
		}
		for _, c := range s.Children() {
			if c.Start < s.Start || c.End > s.End+1e-9 {
				t.Errorf("child %s [%v,%v] escapes parent %s [%v,%v]",
					c.ID, c.Start, c.End, s.ID, s.Start, s.End)
			}
			if c.Parent != s.ID {
				t.Errorf("child %s parent = %q, want %q", c.ID, c.Parent, s.ID)
			}
		}
	})
}

func TestAssembleDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, Assemble("test", sampleJobs())); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, Assemble("test", sampleJobs())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two assemblies of identical jobs differ")
	}
}

func TestChromeExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Assemble("test", sampleJobs())); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("missing traceEvents wrapper")
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"events":[]}`,
		"missing ph":      `{"traceEvents":[{"name":"a"}]}`,
		"X missing dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"negative ts":     `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"dur":1,"pid":1,"tid":1}]}`,
		"unsupported ph":  `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"only metadata":   `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":1}]}`,
		"overlapping X":   `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]}`,
	}
	for name, in := range cases {
		if err := ValidateChrome(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := Assemble("test", sampleJobs())
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != tr.Spans {
		t.Fatalf("jsonl lines = %d, want %d spans", len(lines), tr.Spans)
	}
	if !strings.Contains(lines[0], `"id":"campaign"`) {
		t.Fatalf("first line is not the root span: %s", lines[0])
	}
}

func TestProfilePhaseSumsToTotal(t *testing.T) {
	tr := Assemble("test", sampleJobs())
	p := BuildProfile(tr, 0)
	var sum float64
	for _, ph := range p.Phases {
		sum += ph.Seconds
	}
	if math.Abs(sum-p.TotalSeconds) > 1e-9 {
		t.Fatalf("phase sum %v != total %v", sum, p.TotalSeconds)
	}
	if math.Abs(p.TotalSeconds-tr.TotalSeconds()) > 1e-9 {
		t.Fatalf("profile total %v != trace total %v", p.TotalSeconds, tr.TotalSeconds())
	}
	// build: 60+90+120=270, run: 10+22.5+48=80.5, straggler: 210, backoff: 30.
	want := map[string]float64{"build": 270, "run": 80.5, "straggler": 210, "backoff": 30}
	for _, ph := range p.Phases {
		if math.Abs(ph.Seconds-want[ph.Phase]) > 1e-9 {
			t.Errorf("phase %s = %v, want %v", ph.Phase, ph.Seconds, want[ph.Phase])
		}
	}
	// Critical path: job 0 (422.5) before job 1 (168) before job 2 (0).
	if len(p.TopJobs) != 3 || p.TopJobs[0].Job != 0 || p.TopJobs[1].Job != 1 || p.TopJobs[2].Job != 2 {
		t.Fatalf("top jobs order wrong: %+v", p.TopJobs)
	}
	if p.TopJobs[0].Attempts != 2 || !p.TopJobs[0].Degraded {
		t.Fatalf("job 0 profile wrong: %+v", p.TopJobs[0])
	}
	if !p.TopJobs[2].Skipped || !p.TopJobs[2].Canceled {
		t.Fatalf("job 2 profile flags wrong: %+v", p.TopJobs[2])
	}
	// Top-N capping.
	if got := len(BuildProfile(tr, 2).TopJobs); got != 2 {
		t.Fatalf("topN=2 returned %d jobs", got)
	}
}

func TestWriteProfileText(t *testing.T) {
	var buf bytes.Buffer
	p := BuildProfile(Assemble("test", sampleJobs()), 0)
	if err := WriteProfileText(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"build", "straggler", "kmeans", "(canceled)", "590.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile text missing %q:\n%s", want, out)
		}
	}
}

func TestValidateOutputPaths(t *testing.T) {
	if err := ValidateOutputPaths(map[string]string{"-trace": "a.json", "-profile": "b.json"}); err != nil {
		t.Fatalf("distinct paths rejected: %v", err)
	}
	if err := ValidateOutputPaths(map[string]string{"-trace": ""}); err == nil {
		t.Fatal("empty path accepted")
	}
	err := ValidateOutputPaths(map[string]string{"-trace": "out.json", "-profile": "./out.json"})
	if err == nil {
		t.Fatal("duplicate path accepted")
	}
	if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate error text: %v", err)
	}
}

func TestCreateOutputMakesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "nested", "trace.json")
	f, err := CreateOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{}"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDiag(t *testing.T) {
	d := NewDiag()
	p0 := d.Probe(0)
	p1 := d.Probe(1)
	ctx := WithProbe(context.Background(), p1)
	got := ProbeFrom(ctx)
	if got != p1 {
		t.Fatalf("ProbeFrom returned %v", got)
	}
	got.CacheHit()
	got.CacheHit()
	got.CacheMiss()
	got.InflightWait()
	p0.CacheMiss()
	snap := d.Snapshot()
	if len(snap) != 2 || snap[0].Job != 0 || snap[1].Job != 1 {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[1].Hits != 2 || snap[1].Misses != 1 || snap[1].InflightWaits != 1 {
		t.Fatalf("job 1 stats wrong: %+v", snap[1])
	}
	// Nil-safety: no probe in context, nil diag.
	ProbeFrom(context.Background()).CacheHit()
	var nilDiag *Diag
	nilDiag.Probe(5).CacheMiss()
	if nilDiag.Snapshot() != nil {
		t.Fatal("nil diag snapshot not nil")
	}
}

func TestSortJobs(t *testing.T) {
	jobs := []Job{{Index: 2}, {Index: 0}, {Index: 1}}
	SortJobs(jobs)
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("jobs out of order: %+v", jobs)
		}
	}
}
