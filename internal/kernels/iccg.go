package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// iccg is the incomplete Cholesky conjugate gradient excerpt (Livermore
// loop 2 lineage): a tree reduction in which each level halves the active
// range,
//
//	x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
//
// Inventory (Table II: TV=2, TC=1): the solution vector x and the
// coefficient vector v are both passed by pointer into the sweep and share
// one cluster.
//
// Rounding compounds across the log-depth levels, which puts the demoted
// version's error just below the kernel quality threshold - the paper's
// borderline 9.94e-9 cell.
type iccg struct {
	kernel
	vX, vV mp.VarID
}

const (
	iccgN     = 1 << 15
	iccgReps  = 7
	iccgScale = 6
)

// NewICCG constructs the kernel.
func NewICCG() bench.Benchmark {
	g := typedep.NewGraph()
	k := &iccg{kernel: kernel{
		name:  "iccg",
		desc:  "Incomplete Cholesky conjugate gradient",
		graph: g,
	}}
	k.vX = g.Add("x", "iccg_sweep", typedep.ArrayVar)
	k.vV = g.Add("v", "iccg_sweep", typedep.ArrayVar)
	g.Connect(k.vX, k.vV)
	return k
}

func (k *iccg) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(iccgScale)
	rng := t.Rand(seed)
	x := t.NewArray(k.vX, 2*iccgN)
	v := t.NewArray(k.vV, 2*iccgN)
	fillRand(v, rng, 0.02, 0.12)

	elems := uint64(0)
	for rep := 0; rep < iccgReps; rep++ {
		// Re-seed the solution so every repetition performs identical
		// work on identical data.
		repRng := t.Rand(seed + 1)
		fillRand(x, repRng, 0.05, 0.15)
		ii := iccgN
		ipntp := 0
		for ii > 1 {
			ipnt := ipntp
			ipntp += ii
			ii /= 2
			i := ipntp - 1
			for kk := ipnt + 1; kk < ipntp; kk += 2 {
				i++
				x.Set(i, x.Get(kk)-v.Get(kk)*x.Get(kk-1)-v.Get(kk+1)*x.Get(kk+1))
				elems++
			}
		}
	}
	// 4 flops per reduced element at the cluster's precision.
	t.AddFlops(t.Prec(k.vX), 4*elems)
	out := x.Snapshot()
	return bench.Output{Values: out[len(out)-1024:]}
}
