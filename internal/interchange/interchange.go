// Package interchange implements the JSON interchange format through
// which FloatSmith integrates tools (Section I: "FloatSmith facilitates
// the integration of tools by providing a JSON-based interchange format").
// It serialises the three artifacts that cross tool boundaries:
//
//   - the search space a type analysis produces (variable inventory plus
//     type-change sets), consumed by search tools;
//   - precision configurations, handed from a search tool to a source
//     transformer;
//   - analysis reports, collected by the harness.
//
// The format is self-describing and versioned, so a non-Go tool (the
// original Python harness, a custom search strategy) can produce or
// consume the same documents.
package interchange

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// FormatVersion identifies the schema of documents this package writes.
const FormatVersion = 1

// VariableDoc is one tunable variable of a search-space document.
type VariableDoc struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Unit string `json:"unit"`
	Kind string `json:"kind"`
	// Cluster is the index of the variable's type-change set.
	Cluster int `json:"cluster"`
}

// SpaceDoc is a serialised search space: the artifact Typeforge hands to
// the search tool.
type SpaceDoc struct {
	Version   int           `json:"version"`
	Benchmark string        `json:"benchmark"`
	Metric    string        `json:"metric"`
	Variables []VariableDoc `json:"variables"`
	// Clusters lists each type-change set's member variable IDs.
	Clusters [][]int `json:"clusters"`
}

// ExportSpace serialises a benchmark's search space.
func ExportSpace(b bench.Benchmark) SpaceDoc {
	g := b.Graph()
	doc := SpaceDoc{
		Version:   FormatVersion,
		Benchmark: b.Name(),
		Metric:    b.Metric().String(),
	}
	clusterOf := make(map[mp.VarID]int)
	for _, c := range g.Clusters() {
		members := make([]int, len(c.Members))
		for i, m := range c.Members {
			members[i] = int(m)
			clusterOf[m] = c.Index
		}
		doc.Clusters = append(doc.Clusters, members)
	}
	for _, v := range g.Vars() {
		doc.Variables = append(doc.Variables, VariableDoc{
			ID:      int(v.ID),
			Name:    v.Name,
			Unit:    v.Unit,
			Kind:    v.Kind.String(),
			Cluster: clusterOf[v.ID],
		})
	}
	return doc
}

// WriteSpace writes a search-space document as indented JSON.
func WriteSpace(w io.Writer, b bench.Benchmark) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ExportSpace(b))
}

// Validate checks a space document's internal consistency: version,
// cluster partition, and ID density.
func (d SpaceDoc) Validate() error {
	if d.Version != FormatVersion {
		return fmt.Errorf("interchange: unsupported version %d (want %d)", d.Version, FormatVersion)
	}
	n := len(d.Variables)
	seen := make([]bool, n)
	for i, v := range d.Variables {
		if v.ID < 0 || v.ID >= n {
			return fmt.Errorf("interchange: variable %d has out-of-range id %d", i, v.ID)
		}
		if seen[v.ID] {
			return fmt.Errorf("interchange: duplicate variable id %d", v.ID)
		}
		seen[v.ID] = true
	}
	covered := make([]bool, n)
	for ci, members := range d.Clusters {
		if len(members) == 0 {
			return fmt.Errorf("interchange: cluster %d is empty", ci)
		}
		for _, m := range members {
			if m < 0 || m >= n {
				return fmt.Errorf("interchange: cluster %d references variable %d", ci, m)
			}
			if covered[m] {
				return fmt.Errorf("interchange: variable %d in two clusters", m)
			}
			covered[m] = true
		}
	}
	for id, ok := range covered {
		if !ok {
			return fmt.Errorf("interchange: variable %d not in any cluster", id)
		}
	}
	for _, v := range d.Variables {
		if v.Cluster < 0 || v.Cluster >= len(d.Clusters) {
			return fmt.Errorf("interchange: variable %d names cluster %d of %d", v.ID, v.Cluster, len(d.Clusters))
		}
		found := false
		for _, m := range d.Clusters[v.Cluster] {
			if m == v.ID {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("interchange: variable %d not a member of its cluster %d", v.ID, v.Cluster)
		}
	}
	return nil
}

// Graph reconstructs a type-dependence graph from a space document,
// allowing an externally produced space to drive the Go search layer.
func (d SpaceDoc) Graph() (*typedep.Graph, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := typedep.NewGraph()
	// Variables must be declared in ID order for the dense mapping.
	byID := make([]VariableDoc, len(d.Variables))
	for _, v := range d.Variables {
		byID[v.ID] = v
	}
	for _, v := range byID {
		kind, err := parseKind(v.Kind)
		if err != nil {
			return nil, err
		}
		g.Add(v.Name, v.Unit, kind)
	}
	for _, members := range d.Clusters {
		for i := 1; i < len(members); i++ {
			g.Connect(mp.VarID(members[0]), mp.VarID(members[i]))
		}
	}
	return g, nil
}

func parseKind(s string) (typedep.Kind, error) {
	switch s {
	case "scalar":
		return typedep.Scalar, nil
	case "array":
		return typedep.ArrayVar, nil
	case "param":
		return typedep.Param, nil
	case "pointer":
		return typedep.Pointer, nil
	default:
		return 0, fmt.Errorf("interchange: unknown variable kind %q", s)
	}
}

// ConfigDoc is a serialised precision configuration: the artifact a
// search tool hands to the source transformer.
type ConfigDoc struct {
	Version   int    `json:"version"`
	Benchmark string `json:"benchmark"`
	// Single lists the variable IDs demoted to single precision; all
	// other variables stay double.
	Single []int `json:"single"`
}

// ExportConfig serialises a configuration.
func ExportConfig(benchmark string, cfg bench.Config) ConfigDoc {
	doc := ConfigDoc{Version: FormatVersion, Benchmark: benchmark, Single: []int{}}
	for i, p := range cfg {
		if p == mp.F32 {
			doc.Single = append(doc.Single, i)
		}
	}
	return doc
}

// Config reconstructs the configuration for a program with n variables.
func (d ConfigDoc) Config(n int) (bench.Config, error) {
	if d.Version != FormatVersion {
		return nil, fmt.Errorf("interchange: unsupported version %d", d.Version)
	}
	cfg := bench.NewConfig(n)
	for _, id := range d.Single {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("interchange: config names variable %d of %d", id, n)
		}
		cfg[id] = mp.F32
	}
	return cfg, nil
}

// ReportDoc is a serialised analysis report: the artifact the harness
// collects per (benchmark, algorithm, threshold) job.
type ReportDoc struct {
	Version   int     `json:"version"`
	Benchmark string  `json:"benchmark"`
	Algorithm string  `json:"algorithm"`
	Threshold float64 `json:"threshold"`
	Evaluated int     `json:"evaluated"`
	// Speedup and Quality are null for analyses without a result (JSON
	// cannot carry NaN).
	Speedup   *float64 `json:"speedup"`
	Quality   *float64 `json:"quality"`
	Found     bool     `json:"found"`
	TimedOut  bool     `json:"timed_out"`
	Demoted   int      `json:"demoted"`
	Variables int      `json:"variables"`
	Clusters  int      `json:"clusters"`
	// Single lists the demoted variable IDs of the converged
	// configuration - the analysis artifact.
	Single []int `json:"single"`
}

// ExportReport serialises a harness report.
func ExportReport(r harness.Report) ReportDoc {
	return ReportDoc{
		Version:   FormatVersion,
		Benchmark: r.Benchmark,
		Algorithm: r.Algorithm,
		Threshold: r.Threshold,
		Evaluated: r.Evaluated,
		Speedup:   finiteOrNull(r.Speedup),
		Quality:   finiteOrNull(r.Quality),
		Found:     r.Found,
		TimedOut:  r.TimedOut,
		Demoted:   r.Demoted,
		Variables: r.Variables,
		Clusters:  r.Clusters,
		Single:    ExportConfig(r.Benchmark, r.Config).Single,
	}
}

// finiteOrNull boxes a finite value and maps NaN/Inf to JSON null.
func finiteOrNull(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// WriteReports writes a JSON array of reports.
func WriteReports(w io.Writer, reports []harness.Report) error {
	docs := make([]ReportDoc, len(reports))
	for i, r := range reports {
		docs[i] = ExportReport(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}

// ReadSpace parses a space document.
func ReadSpace(r io.Reader) (SpaceDoc, error) {
	var doc SpaceDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return SpaceDoc{}, fmt.Errorf("interchange: decoding space: %w", err)
	}
	if err := doc.Validate(); err != nil {
		return SpaceDoc{}, err
	}
	return doc, nil
}

// ReadConfig parses a configuration document.
func ReadConfig(r io.Reader) (ConfigDoc, error) {
	var doc ConfigDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return ConfigDoc{}, fmt.Errorf("interchange: decoding config: %w", err)
	}
	return doc, nil
}
