package report

import "math"

// This file records the values the paper publishes, for side-by-side
// comparison in EXPERIMENTS.md. The reproduction is expected to match
// these in SHAPE (which algorithm wins, demotable vs not, timeout
// patterns, crossovers), not in absolute value: the substrate here is an
// analytic machine model, not the authors' Xeon testbed.

// PaperTableIV is the paper's Table IV: manual single-precision speedup
// and quality loss per application. A NaN loss marks destroyed output.
var PaperTableIV = map[string]struct {
	Speedup float64
	Loss    float64
}{
	"Blackscholes": {1.04, 4.10e-06},
	"CFD":          {1.38, 1.10e-07},
	"Hotspot":      {1.78, 3.08e-10},
	"HPCCG":        {1.00, 2.0e-06},
	"K-means":      {0.96, 0},
	"LavaMD":       {2.66, 3.38e-04},
	"SRAD":         {1.48, math.NaN()},
}

// PaperTableIIISpeedups is the paper's Table III speedup sub-table
// (kernels x algorithms, threshold 1e-8).
var PaperTableIIISpeedups = map[string]map[string]float64{
	"banded-lin-eq":  {"CB": 4.45, "CM": 4.46, "DD": 4.52, "HR": 4.53, "HC": 4.47, "GA": 4.45},
	"diff-predictor": {"CB": 1.6, "CM": 1.6, "DD": 1.6, "HR": 1.6, "HC": 1.6, "GA": 1.6},
	"eos":            {"CB": 0.99, "CM": 1.0, "DD": 1.0, "HR": 0.98, "HC": 1.0, "GA": 1.0},
	"gen-lin-recur":  {"CB": 0.98, "CM": 1.01, "DD": 1.01, "HR": 0.92, "HC": 0.91, "GA": 1.0},
	"hydro-1d":       {"CB": 1.7, "CM": 1.74, "DD": 1.74, "HR": 1.74, "HC": 1.74, "GA": 1.69},
	"iccg":           {"CB": 1.9, "CM": 1.9, "DD": 1.89, "HR": 1.91, "HC": 1.89, "GA": 1.91},
	"innerprod":      {"CB": 1.01, "CM": 1.01, "DD": 1.01, "HR": 1.01, "HC": 1.01, "GA": 1.01},
	"int-predict":    {"CB": 1.49, "CM": 1.51, "DD": 1.48, "HR": 1.51, "HC": 1.52, "GA": 1.04},
	"planckian":      {"CB": 1.0, "CM": 0.99, "DD": 1.0, "HR": 1.02, "HC": 1.0, "GA": 0.99},
	"tridiag":        {"CB": 0.99, "CM": 1.0, "DD": 0.99, "HR": 1.02, "HC": 1.01, "GA": 1.0},
}

// PaperTableVSpeedups is the paper's Table V speedup sub-table. A NaN
// entry is an empty grey cell: no result within the 24-hour budget.
var PaperTableVSpeedups = map[float64]map[string]map[string]float64{
	1e-3: {
		"Blackscholes": {"CM": nan, "DD": 1.03, "HR": 1.01, "HC": 1.02, "GA": 1.01},
		"CFD":          {"CM": nan, "DD": 1.14, "HR": 1.11, "HC": 1.12, "GA": 1.05},
		"Hotspot":      {"CM": nan, "DD": 1.69, "HR": 1.70, "HC": 1.58, "GA": 1.14},
		"HPCCG":        {"CM": nan, "DD": 1.21, "HR": 1.19, "HC": 1.22, "GA": 1.03},
		"K-means":      {"CM": 1.07, "DD": 1.08, "HR": 1.08, "HC": 1.05, "GA": nan},
		"LavaMD":       {"CM": 2.44, "DD": 2.52, "HR": 2.54, "HC": 2.58, "GA": 2.48},
		"SRAD":         {"CM": 1.0, "DD": 1.02, "HR": 1.0, "HC": 1.02, "GA": 1.02},
	},
	1e-6: {
		"Blackscholes": {"CM": nan, "DD": 0.99, "HR": nan, "HC": 0.99, "GA": 1.0},
		"CFD":          {"CM": 1.03, "DD": 1.1, "HR": nan, "HC": 1.08, "GA": 1.08},
		"Hotspot":      {"CM": 1.66, "DD": 1.63, "HR": nan, "HC": 1.68, "GA": 1.12},
		"HPCCG":        {"CM": 1.00, "DD": 1.0, "HR": nan, "HC": 1.06, "GA": 0.98},
		"K-means":      {"CM": 1.04, "DD": 1.06, "HR": 1.05, "HC": 1.0, "GA": nan},
		"LavaMD":       {"CM": 1.03, "DD": 1.04, "HR": 1.56, "HC": 1.54, "GA": 1.0},
		"SRAD":         {"CM": 1.0, "DD": 1.0, "HR": 1.0, "HC": 1.0, "GA": 1.0},
	},
	1e-8: {
		"Blackscholes": {"CM": nan, "DD": 0.99, "HR": nan, "HC": 0.99, "GA": 1.0},
		"CFD":          {"CM": nan, "DD": 0.95, "HR": nan, "HC": 0.98, "GA": 1.00},
		"Hotspot":      {"CM": 1.77, "DD": 1.73, "HR": nan, "HC": 1.64, "GA": 1.13},
		"HPCCG":        {"CM": nan, "DD": 1.03, "HR": nan, "HC": 1.06, "GA": 1.07},
		"K-means":      {"CM": 1.06, "DD": 1.07, "HR": 1.08, "HC": 1.05, "GA": nan},
		"LavaMD":       {"CM": 1.0, "DD": 1.0, "HR": 1.0, "HC": 1.0, "GA": 1.0},
		"SRAD":         {"CM": 1.01, "DD": 1.01, "HR": 0.98, "HC": 1.01, "GA": 1.01},
	},
}

var nan = math.NaN()
