package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// engineYAML is a three-job campaign over the kmeans kernel, one entry
// per (fast) algorithm, in the harness Listing 4 format.
const engineYAML = `
kmeans-dd:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
kmeans-hr:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'hierarchical'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
kmeans-gp:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'greedy'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
`

// engineSpecs parses the fixture campaign.
func engineSpecs(t *testing.T) []harness.Spec {
	t.Helper()
	specs, err := harness.ParseConfig(engineYAML)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// recordsJSON marshals journal records for byte comparison.
func recordsJSON(t *testing.T, recs []harness.JournalRecord) string {
	t.Helper()
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// legacyRun executes the fixture campaign through harness.RunCampaign
// and returns its records, metrics exposition, and event stream: the
// baseline the engine must reproduce byte for byte.
func legacyRun(t *testing.T, specs []harness.Spec, workers int) (string, string, []telemetry.Event) {
	t.Helper()
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	results, err := harness.RunCampaign(specs, harness.CampaignOptions{
		Workers: workers, Seed: 42, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]harness.JournalRecord, len(results))
	for i, jr := range results {
		recs[i] = harness.ResultRecord(jr, specs[i].Name)
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return recordsJSON(t, recs), buf.String(), mem.Events()
}

// TestEngineByteIdenticalToHarness locks the determinism contract of
// the tentpole: a campaign routed through the engine produces records,
// metric snapshots, and event streams byte-identical to calling the
// harness directly, at multiple worker counts.
func TestEngineByteIdenticalToHarness(t *testing.T) {
	specs := engineSpecs(t)
	for _, workers := range []int{1, 4} {
		wantRecs, wantMetrics, wantEvents := legacyRun(t, specs, workers)

		e := New(Options{Workers: workers})
		id, err := e.Submit(engineYAML, SubmitOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("workers=%d: state %s, want done (err %q)", workers, st.State, st.Error)
		}
		if st.Completed != len(specs) || st.Jobs != len(specs) {
			t.Fatalf("workers=%d: completed %d/%d, want %d/%d",
				workers, st.Completed, st.Jobs, len(specs), len(specs))
		}
		recs, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := recordsJSON(t, recs); got != wantRecs {
			t.Errorf("workers=%d: engine records diverge from harness:\n--- harness ---\n%s\n--- engine ---\n%s",
				workers, wantRecs, got)
		}
		var buf bytes.Buffer
		if err := e.WriteMetrics(id, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != wantMetrics {
			t.Errorf("workers=%d: engine metric snapshot diverges:\n--- harness ---\n%s\n--- engine ---\n%s",
				workers, wantMetrics, buf.String())
		}
		log, err := e.Events(id)
		if err != nil {
			t.Fatal(err)
		}
		events, closed := log.Since(0)
		if !closed {
			t.Errorf("workers=%d: event log still open after campaign finished", workers)
		}
		if !reflect.DeepEqual(events, wantEvents) {
			t.Errorf("workers=%d: engine event stream diverges (%d vs %d events)",
				workers, len(events), len(wantEvents))
		}
		e.Close()
	}
}

// TestRunOnceMatchesHarness locks the thin-wrapper path: RunOnce is a
// drop-in for harness.RunCampaign, byte for byte, telemetry included.
func TestRunOnceMatchesHarness(t *testing.T) {
	specs := engineSpecs(t)
	wantRecs, wantMetrics, wantEvents := legacyRun(t, specs, 2)

	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	results, err := RunOnce(context.Background(), specs, harness.CampaignOptions{
		Workers: 2, Seed: 42, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]harness.JournalRecord, len(results))
	for i, jr := range results {
		recs[i] = harness.ResultRecord(jr, specs[i].Name)
	}
	if got := recordsJSON(t, recs); got != wantRecs {
		t.Errorf("RunOnce records diverge from harness:\n--- harness ---\n%s\n--- RunOnce ---\n%s", wantRecs, got)
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != wantMetrics {
		t.Errorf("RunOnce metric snapshot diverges from harness")
	}
	if !reflect.DeepEqual(mem.Events(), wantEvents) {
		t.Errorf("RunOnce event stream diverges (%d vs %d events)", len(mem.Events()), len(wantEvents))
	}
}

// TestEngineConcurrentCampaignsSharedCache runs two campaigns at once
// on one engine: both must finish Done with records byte-identical to
// their solo baselines, and the second tenant must see run-cache hits
// from work the first already executed.
func TestEngineConcurrentCampaignsSharedCache(t *testing.T) {
	specs := engineSpecs(t)
	wantRecs, _, _ := legacyRun(t, specs, 2)

	e := New(Options{Workers: 2, MaxConcurrent: 2})
	defer e.Close()
	var ids []string
	for i := 0; i < 2; i++ {
		id, err := e.Submit(engineYAML, SubmitOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if ids[0] == ids[1] {
		t.Fatalf("duplicate campaign IDs: %q", ids)
	}
	for _, id := range ids {
		st, err := e.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("campaign %s: state %s, want done (err %q)", id, st.State, st.Error)
		}
		recs, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := recordsJSON(t, recs); got != wantRecs {
			t.Errorf("campaign %s: records diverge from solo baseline", id)
		}
	}
	// Identical campaigns propose identical configurations, so the
	// shared cache must have served cross-tenant hits.
	if stats := e.Cache().Stats(); stats.Hits == 0 {
		t.Errorf("shared cache saw no hits across tenants: %+v", stats)
	}
}

// TestEngineCancelOneTenantLeavesOtherUntouched cancels one of two
// concurrent campaigns mid-flight and checks the survivor's output is
// still byte-identical to its solo baseline.
func TestEngineCancelOneTenantLeavesOtherUntouched(t *testing.T) {
	specs := engineSpecs(t)
	wantRecs, _, _ := legacyRun(t, specs, 2)

	e := New(Options{Workers: 2, MaxConcurrent: 2})
	defer e.Close()

	// The victim campaign cancels itself from its first job-completion
	// callback; the id is captured before any job can finish because
	// Submit returns before the dispatcher picks the campaign up.
	idCh := make(chan string, 1)
	victim, err := e.SubmitCampaign(mustCampaign(t), SubmitOptions{
		Seed: 42,
		OnJobDone: func(int, harness.JobResult) {
			select {
			case id := <-idCh:
				e.Cancel(id)
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	idCh <- victim
	survivor, err := e.Submit(engineYAML, SubmitOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	vst, err := e.Wait(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if vst.State != StateCanceled && vst.State != StateDone {
		t.Fatalf("victim: state %s, want canceled (or done if it outran the cancel)", vst.State)
	}
	sst, err := e.Wait(context.Background(), survivor)
	if err != nil {
		t.Fatal(err)
	}
	if sst.State != StateDone {
		t.Fatalf("survivor: state %s, want done (err %q)", sst.State, sst.Error)
	}
	recs, err := e.Results(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if got := recordsJSON(t, recs); got != wantRecs {
		t.Errorf("survivor records diverge from solo baseline after neighbor cancellation")
	}
}

// mustCampaign parses the fixture YAML as a harness.Campaign.
func mustCampaign(t *testing.T) harness.Campaign {
	t.Helper()
	hc, err := harness.ParseCampaign(engineYAML)
	if err != nil {
		t.Fatal(err)
	}
	return hc
}

// TestEngineCancelQueued cancels a campaign before a dispatcher picks
// it up: it must finish immediately as Canceled with no results.
func TestEngineCancelQueued(t *testing.T) {
	e := New(Options{Workers: 1, MaxConcurrent: 1, QueueDepth: 4})
	defer e.Close()

	// Hold the only dispatcher hostage with a campaign whose first job
	// callback blocks until released.
	release := make(chan struct{})
	blocker, err := e.SubmitCampaign(mustCampaign(t), SubmitOptions{
		Seed:      42,
		OnJobDone: func(int, harness.JobResult) { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.Submit(engineYAML, SubmitOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued campaign: state %s, want canceled", st.State)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("queued campaign error %q does not name the cancellation", st.Error)
	}
	// A canceled-before-start campaign still accounts for every job:
	// each is recorded skipped, mirroring what the scheduler reports
	// for jobs a dying context kept from starting.
	recs, err := e.Results(queued)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != st.Jobs {
		t.Errorf("canceled-before-start campaign has %d records, want %d", len(recs), st.Jobs)
	}
	for _, rec := range recs {
		if !strings.Contains(rec.Error, "skipped") {
			t.Errorf("record %d error %q does not mark the job skipped", rec.Job, rec.Error)
		}
	}
	results, err := e.JobResults(queued)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != st.Jobs {
		t.Errorf("JobResults has %d entries, want %d", len(results), st.Jobs)
	}
	for _, jr := range results {
		if !jr.Skipped || !errors.Is(jr.Err, ErrCanceled) {
			t.Errorf("job %d: skipped=%v err=%v, want skipped wrapping ErrCanceled", jr.Index, jr.Skipped, jr.Err)
		}
	}
	close(release)
	if st, err := e.Wait(context.Background(), blocker); err != nil || st.State != StateDone {
		t.Fatalf("blocker: state %v err %v, want done", st.State, err)
	}
}

// TestEngineQueueFullAndDraining exercises the backpressure and
// shutdown errors Submit can return.
func TestEngineQueueFullAndDraining(t *testing.T) {
	e := New(Options{Workers: 1, MaxConcurrent: 1, QueueDepth: 1})

	release := make(chan struct{})
	blocker, err := e.SubmitCampaign(mustCampaign(t), SubmitOptions{
		Seed:      42,
		OnJobDone: func(int, harness.JobResult) { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Make sure the dispatcher has taken the blocker off the queue, then
	// fill the single queue slot.
	waitForState(t, e, blocker, StateRunning)
	if _, err := e.Submit(engineYAML, SubmitOptions{Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(engineYAML, SubmitOptions{Seed: 42}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: err %v, want ErrQueueFull", err)
	}
	close(release)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(engineYAML, SubmitOptions{Seed: 42}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err %v, want ErrDraining", err)
	}
	// Every accepted campaign reached a terminal state.
	for _, st := range e.Statuses() {
		if !st.State.Terminal() {
			t.Errorf("campaign %s still %s after drain", st.ID, st.State)
		}
	}
}

// waitForState polls a campaign's status until it reaches the wanted
// state (the scheduler's own synchronization makes this prompt).
func waitForState(t *testing.T, e *Engine, id string, want State) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("campaign %s reached terminal state %s while waiting for %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %s", id, want)
}

// TestEngineSubmitErrors covers the validation paths of Submit.
func TestEngineSubmitErrors(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if _, err := e.Submit("not: [valid", SubmitOptions{}); err == nil {
		t.Error("malformed YAML accepted")
	}
	if _, err := e.Submit(strings.Replace(engineYAML, "bin: 'kmeans'", "bin: 'doom'", 1), SubmitOptions{}); err == nil {
		t.Error("unresolvable benchmark accepted")
	}
	if _, err := e.SubmitCampaign(harness.Campaign{}, SubmitOptions{}); err == nil {
		t.Error("empty campaign accepted")
	}
	if _, err := e.Status("c9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: err %v, want ErrNotFound", err)
	}
	if err := e.Cancel("c9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown id: err %v, want ErrNotFound", err)
	}
}

// TestEventLogTail checks the Since/Wait tailing protocol a streaming
// reader uses.
func TestEventLogTail(t *testing.T) {
	l := NewEventLog()
	l.Emit(telemetry.Event{Seq: 1, Name: "a"})
	events, closed := l.Since(0)
	if len(events) != 1 || closed {
		t.Fatalf("Since(0) = %d events, closed=%v; want 1, open", len(events), closed)
	}
	// Wait returns immediately when events are already pending.
	if err := l.Wait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	// A blocked Wait wakes on Emit.
	done := make(chan error, 1)
	go func() { done <- l.Wait(context.Background(), 1) }()
	l.Emit(telemetry.Event{Seq: 2, Name: "b"})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	events, _ = l.Since(1)
	if len(events) != 1 || events[0].Name != "b" {
		t.Fatalf("Since(1) = %+v, want the second event", events)
	}
	// A blocked Wait wakes on Close, and Since reports completion.
	go func() { done <- l.Wait(context.Background(), 2) }()
	l.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, closed := l.Since(2); !closed {
		t.Error("Since does not report the closed log")
	}
	// A canceled context unblocks Wait with its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l2 := NewEventLog()
	if err := l2.Wait(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait under canceled ctx: err %v", err)
	}
}
