package bench

import "testing"

// TestModelFingerprintSensitivity is the keycheck audit's runtime twin:
// every result-affecting Machine, EnergyModel, and protocol field must
// move the model fingerprint, or two differently-configured runners
// sharing a cache serve each other's results. One case per field; a new
// field that is not mixed in fails here (and in `mixplint` keycheck)
// before it can poison a shared store.
func TestModelFingerprintSensitivity(t *testing.T) {
	base := func() *Runner { return NewRunner(1) }
	cases := []struct {
		field  string
		mutate func(r *Runner)
	}{
		{"Machine.Name", func(r *Runner) { r.Machine.Name = "other" }},
		{"Machine.Rate64", func(r *Runner) { r.Machine.Rate64 *= 2 }},
		{"Machine.Rate32", func(r *Runner) { r.Machine.Rate32 *= 2 }},
		{"Machine.Rate16", func(r *Runner) { r.Machine.Rate16 *= 2 }},
		{"Machine.CastRate", func(r *Runner) { r.Machine.CastRate *= 2 }},
		{"Machine.CastMatrix", func(r *Runner) { r.Machine.CastMatrix[1][2] = 5e9 }},
		{"Machine.DRAMBandwidth", func(r *Runner) { r.Machine.DRAMBandwidth *= 2 }},
		{"Machine.RunOverhead", func(r *Runner) { r.Machine.RunOverhead *= 2 }},
		{"Machine.Caches len", func(r *Runner) { r.Machine.Caches = r.Machine.Caches[:2] }},
		{"CacheLevel.Size", func(r *Runner) { r.Machine.Caches[0].Size *= 2 }},
		{"CacheLevel.Bandwidth", func(r *Runner) { r.Machine.Caches[0].Bandwidth *= 2 }},
		{"EnergyModel.FlopJoules[0]", func(r *Runner) { r.Machine.EnergyModel.FlopJoules[0] *= 2 }},
		{"EnergyModel.FlopJoules[1]", func(r *Runner) { r.Machine.EnergyModel.FlopJoules[1] *= 2 }},
		{"EnergyModel.FlopJoules[2]", func(r *Runner) { r.Machine.EnergyModel.FlopJoules[2] *= 2 }},
		{"EnergyModel.ByteJoules", func(r *Runner) { r.Machine.EnergyModel.ByteJoules *= 2 }},
		{"EnergyModel.CastJoules", func(r *Runner) { r.Machine.EnergyModel.CastJoules *= 2 }},
		{"EnergyModel.IdleWatts", func(r *Runner) { r.Machine.EnergyModel.IdleWatts *= 2 }},
		{"Runner.Runs", func(r *Runner) { r.Runs++ }},
	}
	ref := base().ModelFingerprint()
	seen := map[uint64]string{ref: "base"}
	for _, c := range cases {
		r := base()
		c.mutate(r)
		fp := r.ModelFingerprint()
		if fp == ref {
			t.Errorf("mutating %s does not change the model fingerprint", c.field)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutating %s collides with %s", c.field, prev)
		}
		seen[fp] = c.field
	}

	// CacheLevel.Name is the documented keycheck exemption: a display
	// label that Time and Energy never read must NOT key the cache, so
	// renaming a level keeps stored results reachable.
	r := base()
	r.Machine.Caches[0].Name = "renamed"
	if fp := r.ModelFingerprint(); fp != ref {
		t.Errorf("CacheLevel.Name moved the fingerprint (%#x != %#x); it is exempt as display-only", fp, ref)
	}
}

// TestStoreFingerprintCodecVersion: the durable tier's fingerprint must
// shift when either the model or the codec version changes, so an old
// store is refused at Open instead of misdecoded.
func TestStoreFingerprintCodecVersion(t *testing.T) {
	model := NewRunner(1).ModelFingerprint()
	if StoreFingerprint(model) == model {
		t.Error("store fingerprint does not separate from the raw model fingerprint")
	}
	if StoreFingerprint(model) == StoreFingerprint(model^1) {
		t.Error("store fingerprint ignores the model fingerprint")
	}
}
