package harness

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/store"
)

// TestSchedulerStoreInvariance locks the tentpole's determinism
// contract for the persistent tier: a campaign backed by the result
// store - cold (every execution lands in the store) or warm (every
// execution is served from disk without running) - produces reports,
// metric snapshots, and event streams byte-identical to a storeless
// campaign, at any worker count. Store hits still charge the simulated
// build and run time, so nothing observable moves; only which
// executions physically happen changes. Run under -race, it also
// locks the store tier's data-race-free claim.
func TestSchedulerStoreInvariance(t *testing.T) {
	fp := bench.StoreFingerprint(bench.NewRunner(42).ModelFingerprint())
	for _, workers := range []int{1, 2, 4} {
		baseResults, baseMetrics, baseEvents := cacheCampaign(t, workers, nil)

		dir := filepath.Join(t.TempDir(), "results")
		runStored := func(label string) *bench.Cache {
			st, err := store.Open(dir, store.Options{Fingerprint: fp})
			if err != nil {
				t.Fatalf("workers=%d %s: Open: %v", workers, label, err)
			}
			defer func() {
				if err := st.Close(); err != nil {
					t.Fatalf("workers=%d %s: Close: %v", workers, label, err)
				}
			}()
			cache := bench.NewStoredCache(nil, st)
			results, metrics, events := cacheCampaign(t, workers, cache)
			if !reflect.DeepEqual(results, baseResults) {
				t.Errorf("workers=%d: %s-store reports diverge from the storeless baseline", workers, label)
			}
			if metrics != baseMetrics {
				t.Errorf("workers=%d: %s-store metric snapshot diverges:\n--- storeless ---\n%s\n--- store ---\n%s",
					workers, label, baseMetrics, metrics)
			}
			if !reflect.DeepEqual(events, baseEvents) {
				t.Errorf("workers=%d: %s-store event stream diverges (%d vs %d events)",
					workers, label, len(events), len(baseEvents))
			}
			return cache
		}

		cold := runStored("cold")
		if s := cold.Stats(); s.TierHits != 0 || s.TierWrites == 0 {
			t.Errorf("workers=%d: cold run store traffic: %+v", workers, s)
		}
		warm := runStored("warm")
		if s := warm.Stats(); s.Misses != 0 || s.TierHits == 0 {
			t.Errorf("workers=%d: warm run executed instead of hitting the store: %+v", workers, s)
		}
	}
}
