package main

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/analysis"
)

func TestNormalizePattern(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "repro"},
		{"./...", "repro/..."},
		{"...", "repro/..."},
		{"./cmd/mixpd", "repro/cmd/mixpd"},
		{"./internal/...", "repro/internal/..."},
		{"repro/internal/kernels", "repro/internal/kernels"},
	}
	for _, c := range cases {
		if got := normalizePattern("repro", c.in); got != c.want {
			t.Errorf("normalizePattern(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScopeRestrictsTypedepcheck(t *testing.T) {
	scope := scopeFor([]string{"repro/..."})
	var tdc, clock, purity, fsync, key *analysis.Analyzer
	for _, a := range analyzers {
		switch a.Name {
		case "typedepcheck":
			tdc = a
		case "simclock":
			clock = a
		case "puritycheck":
			purity = a
		case "fsyncpath":
			fsync = a
		case "keycheck":
			key = a
		}
	}
	if tdc == nil || clock == nil || purity == nil || fsync == nil || key == nil {
		t.Fatal("expected analyzers not registered")
	}
	if !scope(tdc, "repro/internal/kernels") || !scope(tdc, "repro/internal/apps") {
		t.Error("typedepcheck must cover the port packages")
	}
	if scope(tdc, "repro/internal/harness") {
		t.Error("typedepcheck must not run outside the port packages")
	}
	if !scope(clock, "repro/internal/harness") {
		t.Error("determinism analyzers must cover the whole module")
	}
	if !scope(purity, "repro/internal/kernels") || !scope(purity, "repro/internal/compile") {
		t.Error("puritycheck must cover the Run/RunIR entry-point packages")
	}
	if scope(purity, "repro/internal/report") {
		t.Error("puritycheck must not run outside the entry-point packages")
	}
	if !scope(fsync, "repro/internal/store") || !scope(fsync, "repro/internal/engine") {
		t.Error("fsyncpath must cover the persistence packages")
	}
	if scope(fsync, "repro/internal/kernels") {
		t.Error("fsyncpath must not run outside the persistence packages")
	}
	if !scope(key, "repro/internal/bench") || !scope(key, "repro/internal/runcache") {
		t.Error("keycheck is annotation-driven and must stay module-wide")
	}
	narrow := scopeFor([]string{"repro/internal/engine"})
	if narrow(clock, "repro/internal/harness") {
		t.Error("explicit patterns must restrict the scope")
	}
}

// TestModuleIsClean runs the full multichecker over the repository: the
// build must stay at zero unsuppressed findings, and every suppression
// must carry a justification.
func TestModuleIsClean(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "mixplint*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if code := run([]string{"-json"}, out, os.Stderr); code != 0 {
		t.Fatalf("mixplint exited %d, want 0", code)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var rep analysis.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("module has %d unsuppressed findings: %+v", len(rep.Findings), rep.Findings)
	}
	for _, f := range rep.Suppressed {
		if f.Justification == "" {
			t.Errorf("%s:%d: suppressed without justification", f.File, f.Line)
		}
	}
	if len(rep.Analyzers) != len(analyzers) {
		t.Errorf("report lists %d analyzers, want %d", len(rep.Analyzers), len(analyzers))
	}
}
