// Package engine is the campaign service layer of the reproduction: it
// owns the lifecycle that mixpbench.RunCampaign and the mixpd server
// share - parse a configuration, build its jobs, schedule them, journal
// checkpoints, collect reports - and multiplexes any number of
// campaigns over one process. Each campaign runs under its own
// cancellation context with its own telemetry recorder and event log;
// all campaigns share a single run cache, so a configuration one tenant
// executed never re-runs for another. Routing a campaign through the
// engine changes nothing observable: results, journal records, and
// telemetry snapshots are byte-identical to calling the harness
// directly (the determinism contract the engine tests lock).
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/harness"
	"repro/internal/mp"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Sentinel errors the service layer maps to HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the campaign queue is at
	// capacity (HTTP 429: retry later).
	ErrQueueFull = errors.New("engine: campaign queue full")
	// ErrDraining rejects submissions after Drain or Close began (HTTP
	// 503: the process is going away).
	ErrDraining = errors.New("engine: draining, not accepting campaigns")
	// ErrNotFound reports an unknown campaign ID (HTTP 404).
	ErrNotFound = errors.New("engine: no such campaign")
	// ErrCanceled is the cancellation cause Cancel installs on a
	// campaign's context.
	ErrCanceled = errors.New("engine: campaign canceled")
	// ErrNotReady reports that a campaign artifact (trace, profile) was
	// requested before the campaign reached a terminal state (HTTP 409:
	// come back when it is done).
	ErrNotReady = errors.New("engine: campaign still running")
	// ErrArchived reports that a campaign was restored from history
	// after a restart: its status, results, and events are served from
	// the archive, but artifacts needing live state (trace, profile,
	// cache diagnostics, metrics) are gone (HTTP 410).
	ErrArchived = errors.New("engine: campaign archived, live artifacts unavailable")
)

// State is a campaign's lifecycle position.
type State string

// Campaign states, in lifecycle order. Queued campaigns wait for a
// dispatcher slot; terminal states are Done, Canceled, and Failed.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
	StateFailed   State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCanceled || s == StateFailed
}

// Status is a point-in-time view of one campaign.
type Status struct {
	// ID is the engine-assigned campaign identifier.
	ID string `json:"id"`
	// Name is the submitter's label (defaults to the ID).
	Name string `json:"name"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Jobs is the campaign's total job count (one per config entry).
	Jobs int `json:"jobs"`
	// Completed counts jobs that have reached a final result, skipped
	// and resumed jobs included.
	Completed int `json:"completed"`
	// Error is the campaign-level failure or cancellation cause.
	Error string `json:"error,omitempty"`
}

// Options configures an Engine.
type Options struct {
	// Workers is the default per-campaign scheduler pool size
	// (0 = GOMAXPROCS); SubmitOptions.Workers overrides it per campaign.
	Workers int
	// QueueDepth bounds how many campaigns may wait for a dispatcher
	// slot (default 16); submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// MaxConcurrent is the number of campaigns that run at once
	// (default 2).
	MaxConcurrent int
	// Cache is the shared run cache every campaign joins; nil means the
	// engine creates one. Sharing never changes results (see
	// bench.Runner.Cache).
	Cache *bench.Cache
	// Compiler is the shared compile cache every compiled campaign joins;
	// nil means the engine creates one. Tenants proposing the same
	// configuration then share one precision-specialized kernel (see
	// bench.Runner.Compiler).
	Compiler *compile.Compiler
	// HistoryDir, when set, persists every terminal campaign (status,
	// results, event log) to one JSON document per campaign, written
	// with full fsync discipline, and restores them on boot - so a
	// restarted process keeps answering for campaigns the previous
	// generation ran, and SSE clients resume with Last-Event-ID across
	// the restart. Empty disables persistence.
	HistoryDir string
}

// SubmitOptions parameterises one campaign submission.
type SubmitOptions struct {
	// Name labels the campaign in statuses (default: its ID).
	Name string
	// Seed is the workload seed; zero means the canonical study seed.
	Seed int64
	// Workers overrides the engine's per-campaign pool size.
	Workers int
	// Telemetry, when non-nil, is used as the campaign recorder instead
	// of an engine-built one; the campaign's event log then stays empty.
	// This is the embedding path: callers that already hold a recorder
	// (the legacy RunCampaign wrapper) keep their exact event stream.
	Telemetry *telemetry.Recorder
	// Sink, when non-nil, receives a copy of the campaign's events
	// alongside the engine's event log (e.g. a JSONL file).
	Sink telemetry.Sink
	// CheckpointPath and ResumePath wire the harness checkpoint journal
	// (see harness.CampaignOptions).
	CheckpointPath string
	ResumePath     string
	// NoCache opts this campaign out of the shared run cache.
	NoCache bool
	// Interpreted disables compiled evaluation for this campaign: every
	// uncached execution interprets against a fresh tape instead of
	// running a precision-specialized kernel from the engine's shared
	// compile cache. Results are identical either way; the escape hatch
	// and the compiler's benchmarking baseline.
	Interpreted bool
	// Precisions, when non-empty, is the campaign's default precision
	// ladder (e.g. "f64,f32,bf16"), applied to every spec that does not
	// set its own precisions clause (see harness.CampaignOptions).
	Precisions string
	// Objective, when non-empty, is the campaign's default analysis
	// objective ("threshold" or "pareto"; see harness.CampaignOptions).
	Objective string
	// OnJobDone, when non-nil, is called once per finished job from
	// whichever worker finished it (see harness.Scheduler.OnJobDone).
	OnJobDone func(idx int, r harness.JobResult)
}

// campaign is one submitted campaign's full state.
type campaign struct {
	id     string
	name   string
	specs  []harness.Spec
	copts  harness.CampaignOptions
	ctx    context.Context //mixplint:ignore ctxfirst -- the campaign record owns its context for its whole async lifetime; dispatchers pick the record up from a queue, so there is no call chain to thread it through
	cancel context.CancelCauseFunc
	events *EventLog
	sink   telemetry.Sink
	diag   *trace.Diag
	done   chan struct{}
	// jobs is the campaign's job count; kept separately from len(specs)
	// because archived campaigns are restored without their specs.
	jobs int
	// archived marks a campaign restored from history: status, results,
	// and events come from the archive, live-only artifacts are gone.
	archived bool

	mu        sync.Mutex
	state     State
	err       error
	completed int
	filled    []bool
	records   []harness.JournalRecord
	results   []harness.JobResult
}

// status snapshots the campaign under its lock.
func (c *campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{ID: c.id, Name: c.name, State: c.state, Jobs: c.jobs, Completed: c.completed}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	return st
}

// finishCanceled completes a campaign that never reached a scheduler:
// every job is reported skipped (the same shape the scheduler produces
// for jobs a dying context kept from starting), so callers always get
// one result per job whether the cancellation landed before or during
// the run. The caller has already claimed the campaign by setting its
// state to Canceled under c.mu.
func (c *campaign) finishCanceled(cause error) {
	results := make([]harness.JobResult, len(c.specs))
	for i, s := range c.specs {
		results[i] = harness.JobResult{
			Index:   i,
			Skipped: true,
			Err: fmt.Errorf("harness: job %d (%s/%s) skipped: %w",
				i, s.Name, s.Analysis.Algorithm, cause),
		}
		c.copts.OnJobDone(i, results[i])
	}
	c.mu.Lock()
	c.results = results
	c.mu.Unlock()
	c.sink.Close()
	close(c.done)
}

// jobDone records one finished job for the results endpoint and chains
// the submitter's callback. It runs on scheduler workers, concurrently.
func (c *campaign) jobDone(user func(int, harness.JobResult)) func(int, harness.JobResult) {
	return func(idx int, jr harness.JobResult) {
		rec := harness.ResultRecord(jr, c.specs[idx].Name)
		c.mu.Lock()
		if !c.filled[idx] {
			c.filled[idx] = true
			c.records[idx] = rec
			c.completed++
		}
		c.mu.Unlock()
		if user != nil {
			user(idx, jr)
		}
	}
}

// Engine multiplexes campaigns over a bounded dispatcher pool.
type Engine struct {
	opts       Options
	cache      *bench.Cache
	compiler   *compile.Compiler
	rootCtx    context.Context //mixplint:ignore ctxfirst -- the engine-lifetime context parents every campaign context and dies in Close; it is state, not a request scope
	rootCancel context.CancelFunc
	queue      chan *campaign
	wg         sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string
	counter   int
	draining  bool
	// History persistence health, surfaced through Health().
	histWriteErrs uint64
	histLoadErrs  uint64
	histLastErr   string
}

// New starts an engine: MaxConcurrent dispatcher goroutines over a
// queue of QueueDepth waiting campaigns. Stop it with Drain (finish
// everything accepted) or Close (cancel everything and stop).
func New(opts Options) *Engine {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	cache := opts.Cache
	if cache == nil {
		cache = bench.NewCache(nil)
	}
	ctx, cancel := context.WithCancel(context.Background())
	compiler := opts.Compiler
	if compiler == nil {
		compiler = compile.New(nil)
	}
	e := &Engine{
		opts:       opts,
		cache:      cache,
		compiler:   compiler,
		rootCtx:    ctx,
		rootCancel: cancel,
		queue:      make(chan *campaign, opts.QueueDepth),
		campaigns:  map[string]*campaign{},
	}
	e.loadHistory()
	for i := 0; i < opts.MaxConcurrent; i++ {
		e.wg.Add(1)
		go e.dispatch()
	}
	return e
}

// Cache returns the engine's shared run cache.
func (e *Engine) Cache() *bench.Cache { return e.cache }

// CompileStats returns the engine-wide compile cache's activity counters:
// resident kernels and recorded input streams, hit/miss splits, stream
// records and replays. Like the run-cache attribution these are live
// diagnostics - which tenant compiles a kernel first is a race - so they
// feed /cachediag, never the deterministic campaign artifacts.
func (e *Engine) CompileStats() compile.Stats { return e.compiler.Stats() }

// Submit parses a YAML campaign configuration (the harness Listing 4
// format, faults clause included) and enqueues it.
func (e *Engine) Submit(src string, opts SubmitOptions) (string, error) {
	hc, err := harness.ParseCampaign(src)
	if err != nil {
		return "", err
	}
	return e.SubmitCampaign(hc, opts)
}

// SubmitCampaign enqueues an already-parsed campaign. The specs are
// validated up front, so an accepted submission can only fail on
// journal I/O. It returns the campaign's engine-assigned ID.
func (e *Engine) SubmitCampaign(hc harness.Campaign, opts SubmitOptions) (string, error) {
	if len(hc.Specs) == 0 {
		return "", errors.New("engine: campaign has no benchmark entries")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = report.Seed
	}
	if _, err := harness.JobsFromSpecs(hc.Specs, seed); err != nil {
		return "", err
	}
	if opts.Precisions != "" {
		if _, err := mp.ParseLadder(opts.Precisions); err != nil {
			return "", fmt.Errorf("engine: precisions: %w", err)
		}
	}
	if _, err := search.ParseObjective(opts.Objective); err != nil {
		return "", fmt.Errorf("engine: objective: %w", err)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = e.opts.Workers
	}

	ctx, cancel := context.WithCancelCause(e.rootCtx)
	c := &campaign{
		name:    opts.Name,
		specs:   hc.Specs,
		ctx:     ctx,
		cancel:  cancel,
		events:  NewEventLog(),
		diag:    trace.NewDiag(),
		done:    make(chan struct{}),
		jobs:    len(hc.Specs),
		state:   StateQueued,
		filled:  make([]bool, len(hc.Specs)),
		records: make([]harness.JournalRecord, len(hc.Specs)),
	}
	rec := opts.Telemetry
	c.sink = telemetry.Sink(c.events)
	if rec == nil {
		if opts.Sink != nil {
			c.sink = multiSink{c.events, opts.Sink}
		}
		rec = telemetry.New(c.sink)
	}
	cache := e.cache
	if opts.NoCache {
		cache = nil
	}
	c.copts = harness.CampaignOptions{
		Workers:        workers,
		Seed:           seed,
		Telemetry:      rec,
		Faults:         hc.Faults,
		Retry:          hc.Retry,
		CheckpointPath: opts.CheckpointPath,
		ResumePath:     opts.ResumePath,
		Cache:          cache,
		NoCache:        opts.NoCache,
		Interpreted:    opts.Interpreted,
		Compiler:       e.compiler,
		Precisions:     opts.Precisions,
		Objective:      opts.Objective,
		OnJobDone:      c.jobDone(opts.OnJobDone),
		TraceDiag:      c.diag,
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		cancel(ErrDraining)
		return "", ErrDraining
	}
	e.counter++
	id := fmt.Sprintf("c%04d", e.counter)
	c.id = id
	if c.name == "" {
		c.name = id
	}
	select {
	case e.queue <- c:
		e.campaigns[id] = c
		e.order = append(e.order, id)
		e.mu.Unlock()
		return id, nil
	default:
		e.counter--
		e.mu.Unlock()
		cancel(ErrQueueFull)
		return "", ErrQueueFull
	}
}

// dispatch runs queued campaigns until the queue closes.
func (e *Engine) dispatch() {
	defer e.wg.Done()
	for c := range e.queue {
		e.runCampaign(c)
	}
}

// runCampaign drives one campaign from Queued to a terminal state.
func (e *Engine) runCampaign(c *campaign) {
	c.mu.Lock()
	switch {
	case c.state != StateQueued:
		// Cancel already finished it while it waited in the queue.
		c.mu.Unlock()
		return
	case c.ctx.Err() != nil:
		cause := context.Cause(c.ctx)
		c.state = StateCanceled
		c.err = cause
		c.mu.Unlock()
		c.finishCanceled(cause)
		e.archiveCampaign(c)
		return
	}
	c.state = StateRunning
	c.mu.Unlock()

	results, err := harness.RunCampaignContext(c.ctx, c.specs, c.copts)
	c.mu.Lock()
	c.results = results
	switch {
	case err != nil:
		c.state, c.err = StateFailed, err
	case c.ctx.Err() != nil:
		c.state, c.err = StateCanceled, context.Cause(c.ctx)
	default:
		c.state = StateDone
	}
	c.mu.Unlock()
	c.sink.Close()
	close(c.done)
	e.archiveCampaign(c)
}

// campaign looks one up by ID.
func (e *Engine) campaign(id string) (*campaign, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// Status returns one campaign's current status.
func (e *Engine) Status(id string) (Status, error) {
	c, err := e.campaign(id)
	if err != nil {
		return Status{}, err
	}
	return c.status(), nil
}

// Statuses returns every campaign's status in submission order.
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if c, err := e.campaign(id); err == nil {
			out = append(out, c.status())
		}
	}
	return out
}

// Cancel stops a campaign: a queued one finishes immediately as
// Canceled with every job reported skipped; a running one stops at its
// jobs' next evaluation boundaries (in-flight jobs report canceled
// best-so-far analyses, unstarted ones come back skipped). Canceling a
// finished campaign is a no-op.
func (e *Engine) Cancel(id string) error {
	c, err := e.campaign(id)
	if err != nil {
		return err
	}
	c.cancel(ErrCanceled)
	c.mu.Lock()
	if c.state == StateQueued {
		c.state = StateCanceled
		c.err = ErrCanceled
		c.mu.Unlock()
		c.finishCanceled(ErrCanceled)
		e.archiveCampaign(c)
		return nil
	}
	c.mu.Unlock()
	return nil
}

// Wait blocks until the campaign reaches a terminal state or ctx is
// done, returning the status either way (with ctx's error in the
// second case).
func (e *Engine) Wait(ctx context.Context, id string) (Status, error) {
	c, err := e.campaign(id)
	if err != nil {
		return Status{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-c.done:
		return c.status(), nil
	case <-ctx.Done():
		return c.status(), ctx.Err()
	}
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (e *Engine) Done(id string) (<-chan struct{}, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	return c.done, nil
}

// Results returns the finished jobs' records in job order, as many as
// have completed so far; after the campaign reaches a terminal state
// the slice is complete. The record shape is the checkpoint journal's
// (JSON-safe: NaN metrics as strings, configs as digit keys).
func (e *Engine) Results(id string) ([]harness.JournalRecord, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]harness.JournalRecord, 0, c.completed)
	for i, ok := range c.filled {
		if ok {
			out = append(out, c.records[i])
		}
	}
	return out, nil
}

// JobResults returns the campaign's results once it reached a terminal
// state (nil before that): one per job in submission order, with jobs a
// cancellation kept from starting reported skipped.
func (e *Engine) JobResults(id string) ([]harness.JobResult, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results, nil
}

// Err returns the campaign-level error: the failure for StateFailed,
// the cancellation cause for StateCanceled, nil otherwise.
func (e *Engine) Err(id string) (error, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err, nil
}

// Events returns the campaign's event log for tailing (empty and
// closed when the submission supplied its own Telemetry recorder).
func (e *Engine) Events(id string) (*EventLog, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	return c.events, nil
}

// Trace assembles the campaign's deterministic span tree. It is
// available once the campaign reaches a terminal state - the tree is a
// pure function of the final per-job accounting, so serving a partial
// one would only ever be thrown away - and fails with ErrNotReady
// before that. The same campaign spec yields byte-identical exported
// traces at any worker count and cache mode (the harness determinism
// contract).
func (e *Engine) Trace(id string) (*trace.Trace, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	if c.archived {
		return nil, fmt.Errorf("%w: %q", ErrArchived, id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.state.Terminal() || c.results == nil {
		return nil, fmt.Errorf("%w: %q is %s", ErrNotReady, id, c.state)
	}
	return harness.BuildTrace(c.name, c.specs, c.results), nil
}

// Profile aggregates the campaign's trace into the per-phase /
// critical-path report (topN caps the job table; <=0 keeps all).
// Like Trace it requires a terminal campaign.
func (e *Engine) Profile(id string, topN int) (*trace.Profile, error) {
	t, err := e.Trace(id)
	if err != nil {
		return nil, err
	}
	return trace.BuildProfile(t, topN), nil
}

// CacheDiag returns the campaign's live per-job run-cache attribution
// (hits, misses, in-flight waits). Available at any time, but
// scheduling-dependent: which job leads an execution versus waits on
// another's is a race between workers, so these numbers are
// diagnostics, not part of the deterministic trace artifacts.
func (e *Engine) CacheDiag(id string) ([]trace.JobCacheStats, error) {
	c, err := e.campaign(id)
	if err != nil {
		return nil, err
	}
	if c.archived {
		return nil, fmt.Errorf("%w: %q", ErrArchived, id)
	}
	return c.diag.Snapshot(), nil
}

// WriteMetrics writes the campaign's metrics registry in the text
// exposition format.
func (e *Engine) WriteMetrics(id string, w io.Writer) error {
	c, err := e.campaign(id)
	if err != nil {
		return err
	}
	if c.archived {
		return fmt.Errorf("%w: %q", ErrArchived, id)
	}
	return c.copts.Telemetry.WriteMetrics(w)
}

// Drain seals the engine against new submissions and waits for every
// accepted campaign - running and queued - to finish, or for ctx. It
// does not cancel anything; pair with Close for a deadline-bounded
// shutdown (drain, then close when the deadline passes).
func (e *Engine) Drain(ctx context.Context) error {
	e.seal()
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every campaign, seals the queue, and waits for the
// dispatchers to stop. Queued campaigns finish as Canceled.
func (e *Engine) Close() error {
	e.rootCancel()
	e.seal()
	e.wg.Wait()
	return nil
}

// seal stops accepting submissions and closes the queue once.
func (e *Engine) seal() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()
}

// RunOnce executes a single campaign through an ephemeral engine and
// blocks until it finishes: the thin-wrapper path for the legacy
// entry points. Its contract matches harness.RunCampaignContext -
// per-job results in submission order, error reserved for
// campaign-level problems - and its output is byte-identical to
// calling the harness directly. A zero opts.Seed means the canonical
// study seed.
func RunOnce(ctx context.Context, specs []harness.Spec, opts harness.CampaignOptions) ([]harness.JobResult, error) {
	e := New(Options{Workers: opts.Workers, QueueDepth: 1, MaxConcurrent: 1, Cache: opts.Cache, Compiler: opts.Compiler})
	defer e.Close()
	id, err := e.SubmitCampaign(
		harness.Campaign{Specs: specs, Faults: opts.Faults, Retry: opts.Retry},
		SubmitOptions{
			Seed:           opts.Seed,
			Workers:        opts.Workers,
			Telemetry:      opts.Telemetry,
			CheckpointPath: opts.CheckpointPath,
			ResumePath:     opts.ResumePath,
			NoCache:        opts.NoCache,
			Interpreted:    opts.Interpreted,
			Precisions:     opts.Precisions,
			Objective:      opts.Objective,
			OnJobDone:      opts.OnJobDone,
		})
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() { e.Cancel(id) })
	defer stop()
	st, _ := e.Wait(context.Background(), id) //mixplint:ignore ctxfirst -- cancellation is delivered via AfterFunc -> Cancel above; waiting on the caller's ctx would abandon the drain and lose the final state and partial results
	results, _ := e.JobResults(id)
	if st.State == StateFailed {
		cerr, _ := e.Err(id)
		return results, cerr
	}
	return results, nil
}
