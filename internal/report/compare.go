package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/suite"
)

// Compare renders a markdown paper-vs-measured comparison for every table
// and figure, the body of EXPERIMENTS.md. It requires a full study.
func (s *Study) Compare() string {
	var b strings.Builder
	b.WriteString("## Table III — kernel study (threshold 1e-8)\n\n")
	b.WriteString("Speedup of the configuration each algorithm converged to. ")
	b.WriteString("`paper -> measured` per cell.\n\n")
	b.WriteString("| Kernel | " + strings.Join(KernelAlgorithms, " | ") + " |\n")
	b.WriteString("|---|" + strings.Repeat("---|", len(KernelAlgorithms)) + "\n")
	for _, k := range suite.Kernels() {
		fmt.Fprintf(&b, "| %s |", k.Name())
		for _, algo := range KernelAlgorithms {
			paper := PaperTableIIISpeedups[k.Name()][algo]
			got := s.Kernel[k.Name()][algo].Speedup
			fmt.Fprintf(&b, " %.2f -> %.2f |", paper, got)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n## Table IV — manual whole-program single conversion\n\n")
	b.WriteString("| Application | Speedup (paper -> measured) | Quality loss (paper -> measured) |\n")
	b.WriteString("|---|---|---|\n")
	for _, a := range suite.Apps() {
		paper := PaperTableIV[a.Name()]
		got := s.Conversion[a.Name()]
		fmt.Fprintf(&b, "| %s | %.2f -> %.2f | %s -> %s |\n",
			a.Name(), paper.Speedup, got.Speedup,
			lossString(paper.Loss), lossString(got.QualityLoss))
	}

	b.WriteString("\n## Table V — application study\n\n")
	b.WriteString("Speedups per threshold; `--` marks an empty cell (no result within the\n")
	b.WriteString("24-hour budget). `paper -> measured` per cell.\n")
	for _, th := range AppThresholds {
		fmt.Fprintf(&b, "\n### Threshold %s\n\n", formatThreshold(th))
		b.WriteString("| Application | " + strings.Join(AppAlgorithms, " | ") + " |\n")
		b.WriteString("|---|" + strings.Repeat("---|", len(AppAlgorithms)) + "\n")
		for _, a := range suite.Apps() {
			fmt.Fprintf(&b, "| %s |", a.Name())
			for _, algo := range AppAlgorithms {
				paper := PaperTableVSpeedups[th][a.Name()][algo]
				r := s.App[th][a.Name()][algo]
				cell := "--"
				if CellFilled(r) {
					cell = fmt.Sprintf("%.2f", r.Speedup)
				}
				fmt.Fprintf(&b, " %s -> %s |", cellString(paper), cell)
			}
			b.WriteString("\n")
		}
	}

	b.WriteString("\n## Shape summary\n\n")
	b.WriteString(s.shapeSummary())
	return b.String()
}

// shapeSummary checks the paper's headline findings against the study and
// reports each as reproduced or diverging.
func (s *Study) shapeSummary() string {
	var b strings.Builder
	checks := []struct {
		claim string
		ok    bool
	}{
		{
			"banded-lin-eq demotes with a >2x (cache-step) speedup for every algorithm",
			func() bool {
				for _, algo := range KernelAlgorithms {
					if s.Kernel["banded-lin-eq"][algo].Speedup < 2 {
						return false
					}
				}
				return true
			}(),
		},
		{
			"eos, gen-lin-recur, planckian, tridiag stay near 1.0x at 1e-8 (not demotable)",
			func() bool {
				for _, k := range []string{"eos", "gen-lin-recur", "planckian", "tridiag"} {
					for _, algo := range KernelAlgorithms {
						su := s.Kernel[k][algo].Speedup
						if su < 0.9 || su > 1.1 {
							return false
						}
					}
				}
				return true
			}(),
		},
		{
			"LavaMD's full demotion wins >2.2x at 1e-3 and collapses to ~1.0x at 1e-8",
			func() bool {
				loose := s.App[1e-3]["LavaMD"]["DD"].Speedup
				strict := s.App[1e-8]["LavaMD"]["DD"].Speedup
				return loose > 2.2 && strict < 1.1
			}(),
		},
		{
			"SRAD never tunes: ~1.0x and zero error at every threshold",
			func() bool {
				for _, th := range AppThresholds {
					for _, algo := range AppAlgorithms {
						r := s.App[th]["SRAD"][algo]
						if CellFilled(r) && (r.Speedup > 1.1 || r.Quality != 0) {
							return false
						}
					}
				}
				return true
			}(),
		},
		{
			"CM exhausts the 24-hour budget on variable-rich applications (empty cells exist)",
			func() bool {
				empty := 0
				for _, th := range AppThresholds {
					for _, a := range suite.Apps() {
						if r := s.App[th][a.Name()]["CM"]; !CellFilled(r) {
							empty++
						}
					}
				}
				return empty >= 3
			}(),
		},
		{
			"DD's evaluation count grows as the threshold tightens (Blackscholes)",
			func() bool {
				return s.App[1e-8]["Blackscholes"]["DD"].Evaluated >
					s.App[1e-3]["Blackscholes"]["DD"].Evaluated
			}(),
		},
		{
			"GA's evaluation count is nearly constant across applications and thresholds",
			func() bool {
				lo, hi := math.MaxInt32, 0
				for _, th := range AppThresholds {
					for _, a := range suite.Apps() {
						r := s.App[th][a.Name()]["GA"]
						if !CellFilled(r) {
							continue
						}
						if r.Evaluated < lo {
							lo = r.Evaluated
						}
						if r.Evaluated > hi {
							hi = r.Evaluated
						}
					}
				}
				return hi <= 3*lo
			}(),
		},
		{
			"DD finds the fastest (or tied-fastest) configuration at the loose threshold",
			func() bool {
				wins := 0
				for _, a := range suite.Apps() {
					dd := s.App[1e-3][a.Name()]["DD"].Speedup
					best := 0.0
					for _, algo := range AppAlgorithms {
						if r := s.App[1e-3][a.Name()][algo]; CellFilled(r) && r.Speedup > best {
							best = r.Speedup
						}
					}
					if dd >= 0.97*best {
						wins++
					}
				}
				return wins >= 5
			}(),
		},
	}
	for _, c := range checks {
		mark := "REPRODUCED"
		if !c.ok {
			mark = "DIVERGES"
		}
		fmt.Fprintf(&b, "- [%s] %s\n", mark, c.claim)
	}
	return b.String()
}

func lossString(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", v)
}

func cellString(v float64) string {
	if math.IsNaN(v) {
		return "--"
	}
	return fmt.Sprintf("%.2f", v)
}
