package verify

import (
	"fmt"
	"sync"
)

// The paper positions the verification library as "a single point for
// providing verification extensions so that new metrics can be added".
// This file is that extension point: a custom metric registers a name and
// an error function, and every consumer - Compute, Check, the harness's
// metric clause - resolves it exactly like a built-in.

// MetricFunc computes an error value over a reference and a candidate
// output of equal non-zero length (both guaranteed by the caller). Lower
// must mean better, with 0 meaning exact agreement, so that one threshold
// comparison works for every metric.
type MetricFunc func(ref, got []float64) float64

// customBase offsets custom metric IDs past the built-ins.
const customBase Metric = 100

var (
	customMu    sync.RWMutex
	customByID  = map[Metric]registered{}
	customNames = map[string]Metric{}
)

type registered struct {
	name string
	fn   MetricFunc
}

// RegisterMetric installs a custom metric under the given name (the
// spelling harness configuration files will use) and returns its Metric
// id. Registering a name that collides with a built-in or an existing
// custom metric panics: registration happens at program start, and a
// collision is a bug, not a runtime condition.
func RegisterMetric(name string, fn MetricFunc) Metric {
	if fn == nil {
		panic("verify: RegisterMetric with nil function")
	}
	for _, n := range metricNames {
		if n == name {
			panic(fmt.Sprintf("verify: metric %q collides with a built-in", name))
		}
	}
	customMu.Lock()
	defer customMu.Unlock()
	if _, dup := customNames[name]; dup {
		panic(fmt.Sprintf("verify: metric %q already registered", name))
	}
	id := customBase + Metric(len(customByID))
	customByID[id] = registered{name: name, fn: fn}
	customNames[name] = id
	return id
}

// lookupCustom resolves a custom metric id.
func lookupCustom(m Metric) (registered, bool) {
	customMu.RLock()
	defer customMu.RUnlock()
	r, ok := customByID[m]
	return r, ok
}

// lookupCustomName resolves a custom metric by name.
func lookupCustomName(name string) (Metric, bool) {
	customMu.RLock()
	defer customMu.RUnlock()
	id, ok := customNames[name]
	return id, ok
}
