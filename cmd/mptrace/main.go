// Command mptrace renders the anytime behaviour of the search strategies
// on one benchmark: for each algorithm it runs the analysis with
// per-configuration tracing and prints the best-passing-speedup-so-far
// curve against evaluations and simulated analysis time. This is the
// search-dynamics view behind the paper's Figure 3 (speedup vs. search
// effort), per strategy instead of aggregated.
//
// Usage:
//
//	mptrace -bench lavamd [-threshold 1e-3] [-algorithms DD,GA,GP] [-csv]
//	        [-trace trace.json] [-profile profile.json]
//
// -trace and -profile export the runs as a pseudo-campaign (one job per
// strategy) in the same Chrome trace_event and profile formats as
// mixpbench -config; the flags share its path validation (non-empty,
// distinct files, parent directories created as needed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	mixpbench "repro"
	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/trace"
)

func main() {
	var (
		benchName  = flag.String("bench", "lavamd", "benchmark to analyse")
		threshold  = flag.Float64("threshold", 1e-3, "quality threshold")
		algos      = flag.String("algorithms", "CM,DD,HR,HC,GA,GP", "comma-separated strategies")
		csvOut     = flag.Bool("csv", false, "emit raw curves as CSV instead of the summary")
		budget     = flag.Float64("budget", 0, "analysis budget in simulated seconds (0 = 24h)")
		traceOut   = flag.String("trace", "", "write the runs as Chrome trace_event JSON to this file")
		profileOut = flag.String("profile", "", "write the runs' per-phase profile JSON to this file")
	)
	flag.Parse()

	outputs := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "trace", "profile":
			outputs["-"+f.Name] = f.Value.String()
		}
	})
	if err := trace.ValidateOutputPaths(outputs); err != nil {
		fatal(err)
	}

	b, err := mixpbench.Benchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mptrace: %s at threshold %.0e\n", b.Name(), *threshold)
	if *csvOut {
		fmt.Println("algorithm,seq,spent_seconds,singles,passed,speedup,best_so_far")
	}

	jobs, err := runAlgorithms(os.Stdout, b, strings.Split(*algos, ","), *threshold, *budget, *csvOut)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" || *profileOut != "" {
		tr := trace.Assemble(b.Name(), jobs)
		if *traceOut != "" {
			if err := writeExport(*traceOut, func(w io.Writer) error {
				return trace.WriteChromeTrace(w, tr)
			}); err != nil {
				fatal(fmt.Errorf("-trace: %w", err))
			}
		}
		if *profileOut != "" {
			p := trace.BuildProfile(tr, 0)
			if err := writeExport(*profileOut, func(w io.Writer) error {
				return trace.WriteProfile(w, p)
			}); err != nil {
				fatal(fmt.Errorf("-profile: %w", err))
			}
		}
	}
}

// runAlgorithms runs each requested strategy on b, printing its curve,
// and returns one pseudo-campaign trace job per strategy: a single
// clean attempt whose phase accounting comes straight from the
// evaluator, so the exports obey the same build+run tiling contract as
// real campaigns.
func runAlgorithms(w io.Writer, b bench.Benchmark, names []string, threshold, budget float64, csvOut bool) ([]trace.Job, error) {
	var jobs []trace.Job
	for i, name := range names {
		name = strings.TrimSpace(name)
		canonical, err := harness.CanonicalAlgorithm(name)
		if err != nil {
			return nil, err
		}
		algo, err := search.ByName(canonical, report.Seed)
		if err != nil {
			return nil, err
		}
		space := search.NewSpace(b.Graph(), algo.Mode())
		eval := search.NewEvaluator(space, bench.NewRunner(report.Seed), b, threshold)
		if budget > 0 {
			eval.SetBudget(budget)
		}
		eval.SetTrace(true)
		out := algo.Search(eval)
		curve := eval.Trace()

		jobs = append(jobs, trace.Job{
			Index:     i,
			Entry:     canonical,
			Bench:     b.Name(),
			Algorithm: canonical,
			Threshold: threshold,
			Attempts: []trace.Attempt{{
				Number:       1,
				BuildSeconds: eval.BuildSpent(),
				RunSeconds:   eval.RunSpent(),
				SpentSeconds: eval.Spent(),
				Evaluations:  eval.Evaluated(),
				CacheHits:    eval.CacheHits(),
			}},
		})

		if csvOut {
			printCSV(w, canonical, curve)
			continue
		}
		printSummary(w, canonical, out, curve)
	}
	return jobs, nil
}

// writeExport creates path (making parent directories) and fills it
// with one export.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := trace.CreateOutput(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printCSV emits one strategy's raw anytime curve.
func printCSV(w io.Writer, name string, curve []search.TraceEntry) {
	best := 0.0
	for _, e := range curve {
		if e.Result.Passed && e.Result.Speedup > best {
			best = e.Result.Speedup
		}
		fmt.Fprintf(w, "%s,%d,%.0f,%d,%v,%.4f,%.4f\n",
			name, e.Seq, e.SpentSeconds, e.Singles,
			e.Result.Passed, e.Result.Speedup, best)
	}
}

// printSummary renders one strategy's anytime curve at coarse milestones.
func printSummary(w io.Writer, name string, out search.Outcome, curve []search.TraceEntry) {
	fmt.Fprintf(w, "\n%s: evaluated %d configurations", name, out.Evaluated)
	switch {
	case out.TimedOut:
		fmt.Fprintf(w, " (analysis budget exhausted)")
	case out.Found:
		fmt.Fprintf(w, ", converged at %.3fx", out.BestResult.Speedup)
	default:
		fmt.Fprintf(w, ", found nothing")
	}
	fmt.Fprintln(w)
	if len(curve) == 0 {
		return
	}
	// Milestones: first pass, each improvement, final.
	best := 0.0
	fmt.Fprintf(w, "  %-6s %-10s %-9s %s\n", "eval", "sim-time", "singles", "best-so-far")
	for _, e := range curve {
		if e.Result.Passed && e.Result.Speedup > best*1.001 {
			best = e.Result.Speedup
			fmt.Fprintf(w, "  #%-5d %7.0fs   %-9d %.3fx\n", e.Seq, e.SpentSeconds, e.Singles, best)
		}
	}
	last := curve[len(curve)-1]
	fmt.Fprintf(w, "  #%-5d %7.0fs   (last evaluation)\n", last.Seq, last.SpentSeconds)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mptrace:", err)
	os.Exit(1)
}
