package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// genLinRecur is the general linear recurrence equations kernel (Livermore
// loop 6 lineage):
//
//	w[i] += b[k*n+i] * w[(i-k)-1]
//
// Inventory (Table II: TV=4, TC=1): the state vector w, the coefficient
// matrix b, the running sum s (accumulated through a pointer out-param),
// and the seed value w0 are all bound through the recurrence routine's
// pointer interface, forming a single cluster.
//
// Like tridiag, the recurrence compounds rounding error, so the demoted
// configuration fails the kernel threshold and the search returns the
// original program.
type genLinRecur struct {
	kernel
	vW, vB, vS, vW0 mp.VarID
}

const (
	glrN     = 1024
	glrBands = 6
	glrReps  = 4
	glrScale = 2
)

// NewGenLinRecur constructs the kernel.
func NewGenLinRecur() bench.Benchmark {
	g := typedep.NewGraph()
	k := &genLinRecur{kernel: kernel{
		name:  "gen-lin-recur",
		desc:  "General linear recurrence equation",
		graph: g,
	}}
	k.vW = g.Add("w", "recurrence", typedep.ArrayVar)
	k.vB = g.Add("b", "recurrence", typedep.ArrayVar)
	k.vS = g.Add("s", "recurrence", typedep.Scalar)
	k.vW0 = g.Add("w0", "recurrence", typedep.Scalar)
	//mixplint:alias -- the running sum s accumulates through the recurrence routine's pointer out-param in C; scalar-to-array flow leaves no element co-location for the analyzer to see
	g.ConnectAll(k.vW, k.vB, k.vS, k.vW0)
	return k
}

func (k *genLinRecur) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(glrScale)
	rng := t.Rand(seed)
	w := t.NewArray(k.vW, glrN)
	b := t.NewArray(k.vB, glrBands*glrN)
	fillRand(b, rng, -0.04, 0.05)
	w0 := t.Value(k.vW0, 0.75)

	s := 0.0
	elems := uint64(0)
	for rep := 0; rep < glrReps; rep++ {
		w.Fill(w0)
		for i := 1; i < glrN; i++ {
			acc := w.Get(i)
			for kk := 0; kk < glrBands && kk < i; kk++ {
				acc += b.Get(kk*glrN+i) * w.Get(i-kk-1)
				elems++
			}
			w.Set(i, acc)
			s = t.Assign(k.vS, s+w.Get(i), 1, k.vW)
		}
	}
	t.AddFlops(t.Prec(k.vW), 2*elems)
	out := w.Snapshot()
	return bench.Output{Values: append(out, s)}
}
