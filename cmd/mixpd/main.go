// Command mixpd is the campaign service: an HTTP server over the
// engine that runs mixed-precision analysis campaigns for any number of
// concurrent clients, all sharing one run cache. Submit a YAML harness
// configuration (the paper's Listing 4 format), poll its status, tail
// its telemetry as Server-Sent Events, fetch its per-job results, or
// cancel it - each campaign runs under its own cancellation context,
// so stopping one tenant never perturbs another.
//
// Usage:
//
//	mixpd [-addr :8177] [-workers N] [-concurrent M] [-queue D]
//	      [-access-log] [-pprof] [-compiled=false]
//
// Observability: every route is wrapped with per-route request metrics
// (GET /metrics, text exposition); -access-log adds one JSON line per
// request on stderr; -pprof mounts net/http/pprof under /debug/pprof/.
// Finished campaigns serve their deterministic trace and profile at
// /campaigns/{id}/trace and /campaigns/{id}/profile.
//
// Quick start:
//
//	mixpd -addr :8177 &
//	curl -s -X POST --data-binary @configs/kmeans.yaml localhost:8177/campaigns
//	curl -s localhost:8177/campaigns/c0001
//	curl -s localhost:8177/campaigns/c0001/results
//	curl -N localhost:8177/campaigns/c0001/events
//
// Backpressure: at most -concurrent campaigns run at once and -queue
// more may wait; a submission beyond that is answered 429 so clients
// retry instead of piling up. On SIGTERM or SIGINT the server stops
// accepting work and drains: running and queued campaigns finish
// (bounded by -drain-seconds, after which they are canceled), then the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8177", "listen address")
		workers      = flag.Int("workers", 0, "default per-campaign worker pool size (0 = GOMAXPROCS)")
		concurrent   = flag.Int("concurrent", 2, "campaigns running at once")
		queue        = flag.Int("queue", 16, "campaigns allowed to wait for a slot")
		drainSeconds = flag.Int("drain-seconds", 60, "graceful shutdown budget before in-flight campaigns are canceled")
		accessLog    = flag.Bool("access-log", false, "log one JSON line per HTTP request on stderr")
		pprof        = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		storeDir     = flag.String("store", "", "durable state directory: results persist in DIR/results, campaign history in DIR/campaigns, both surviving restarts")
		compiled     = flag.Bool("compiled", true, "evaluate configurations through precision-specialized compiled kernels (-compiled=false interprets; results are identical, see /cachediag's compile section)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *concurrent, *queue, *drainSeconds, *accessLog, *pprof, *compiled, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "mixpd:", err)
		os.Exit(1)
	}
}

// openService opens the optional durable layer and builds the engine
// over it: the result store becomes the shared run cache's persistent
// tier and the engine archives every terminal campaign under the same
// root, so a restarted process warm-starts from both. The test's
// two-generation restart harness goes through this same constructor.
func openService(storeDir string, opts engine.Options) (*engine.Engine, *store.Store, error) {
	var st *store.Store
	if storeDir != "" {
		if err := trace.ValidateOutputPaths(map[string]string{"-store": storeDir}); err != nil {
			return nil, nil, err
		}
		var err error
		st, err = store.Open(filepath.Join(storeDir, "results"),
			store.Options{Fingerprint: bench.DefaultStoreFingerprint()})
		if err != nil {
			return nil, nil, err
		}
		opts.HistoryDir = filepath.Join(storeDir, "campaigns")
		opts.Cache = bench.NewStoredCache(nil, st)
	}
	return engine.New(opts), st, nil
}

// run wires the engine, the HTTP server, and the signal-driven drain.
func run(addr string, workers, concurrent, queue, drainSeconds int, accessLog, pprof, compiled bool, storeDir string) error {
	if workers < 0 || concurrent < 0 || queue < 0 || drainSeconds < 0 {
		return fmt.Errorf("-workers, -concurrent, -queue, and -drain-seconds must be >= 0")
	}
	eng, st, err := openService(storeDir, engine.Options{
		Workers:       workers,
		MaxConcurrent: concurrent,
		QueueDepth:    queue,
	})
	if err != nil {
		return err
	}
	defer st.Close() // nil-safe; final flush for the no-drain exit paths
	sopts := serverOptions{pprof: pprof, store: st, interpreted: !compiled}
	if accessLog {
		sopts.accessLog = os.Stderr
	}
	srv := &http.Server{Addr: addr, Handler: newServer(eng, sopts)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mixpd: listening on %s (concurrent=%d queue=%d)\n", addr, concurrent, queue)

	select {
	case err := <-errCh:
		eng.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Fprintln(os.Stderr, "mixpd: draining")

	deadline, cancel := context.WithTimeout(context.Background(), time.Duration(drainSeconds)*time.Second)
	defer cancel()
	// Stop accepting connections first (SSE streams of finished
	// campaigns end on their own), then let accepted campaigns finish.
	if err := srv.Shutdown(deadline); err != nil {
		fmt.Fprintln(os.Stderr, "mixpd: http shutdown:", err)
	}
	if err := eng.Drain(deadline); err != nil {
		fmt.Fprintln(os.Stderr, "mixpd: drain deadline passed, canceling remaining campaigns")
	}
	eng.Close()
	fmt.Fprintln(os.Stderr, "mixpd: bye")
	return nil
}
