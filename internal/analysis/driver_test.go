package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// testPkg type-checks one synthetic file (no imports) into a Package.
func testPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		PkgPath:   "fixture",
		Fset:      fset,
		Files:     []*ast.File{f},
		Types:     tpkg,
		TypesInfo: info,
	}
}

// flagIdent reports every identifier named "banned".
var flagIdent = &Analyzer{
	Name: "flagident",
	Doc:  "test analyzer: flags identifiers named banned",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "banned" {
					pass.Reportf(id.Pos(), "identifier banned is banned")
				}
				return true
			})
		}
		return nil
	},
}

func runDriver(t *testing.T, src string) *Report {
	t.Helper()
	m := &Module{Path: "fixture", Fset: token.NewFileSet()}
	pkg := testPkg(t, src)
	m.Fset = pkg.Fset
	m.Packages = []*Package{pkg}
	rep, err := RunAnalyzers(m, []*Analyzer{flagIdent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSuppressionRequiresJustification(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:ignore flagident
var banned = 1
`)
	// The directive is malformed (no justification), so the finding
	// stands AND the directive itself is reported.
	if len(rep.Findings) != 2 {
		t.Fatalf("want 2 findings (diagnostic + malformed directive), got %+v", rep.Findings)
	}
	var sawDirective, sawFlag bool
	for _, f := range rep.Findings {
		switch f.Analyzer {
		case "directive":
			sawDirective = true
			if !strings.Contains(f.Message, "justification") {
				t.Errorf("directive finding should mention justification: %s", f.Message)
			}
		case "flagident":
			sawFlag = true
		}
	}
	if !sawDirective || !sawFlag {
		t.Errorf("missing expected findings: %+v", rep.Findings)
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:ignore flagident -- fixture needs this name
var banned = 1

var banned2 = banned
`)
	// Line 4 is suppressed; the use on line 6 is not.
	if len(rep.Findings) != 1 {
		t.Fatalf("want 1 unsuppressed finding, got %+v", rep.Findings)
	}
	if rep.Findings[0].Line != 6 {
		t.Errorf("unsuppressed finding should be on line 6, got %+v", rep.Findings[0])
	}
	if len(rep.Suppressed) != 1 {
		t.Fatalf("want 1 suppressed finding, got %+v", rep.Suppressed)
	}
	if rep.Suppressed[0].Justification != "fixture needs this name" {
		t.Errorf("justification not carried: %+v", rep.Suppressed[0])
	}
}

func TestTrailingIgnoreDirective(t *testing.T) {
	rep := runDriver(t, `package fixture

var banned = 1 //mixplint:ignore flagident -- same-line form
`)
	if len(rep.Findings) != 0 || len(rep.Suppressed) != 1 {
		t.Fatalf("trailing directive should suppress: findings=%+v suppressed=%+v", rep.Findings, rep.Suppressed)
	}
}

func TestPackageDirective(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:package flagident -- whole fixture exercises the name
var banned = 1

var banned2 = banned
`)
	if len(rep.Findings) != 0 {
		t.Fatalf("package directive should suppress all: %+v", rep.Findings)
	}
	if len(rep.Suppressed) != 2 {
		t.Fatalf("want 2 suppressed findings, got %+v", rep.Suppressed)
	}
}

func TestUnknownDirectiveReported(t *testing.T) {
	rep := runDriver(t, `package fixture

//mixplint:silence flagident -- no such kind
var x = 1
`)
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "directive" {
		t.Fatalf("unknown directive should be reported: %+v", rep.Findings)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"repro/internal/harness", "repro/internal/harness", true},
		{"repro/internal/harness", "repro/internal/harness/sub", false},
		{"repro/internal/...", "repro/internal/harness", true},
		{"repro/internal/...", "repro/internal", true},
		{"repro/internal/...", "repro/cmd/mixplint", false},
		{"repro/...", "repro", true},
	}
	for _, c := range cases {
		if got := MatchPattern(c.pattern, c.path); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}
