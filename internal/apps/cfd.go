package apps

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// cfd is the unstructured-grid finite volume solver for the compressible
// Euler equations (Rodinia cfd / euler3d lineage), reduced to a periodic
// one-dimensional tube: per iteration it computes a CFL step factor per
// cell, Rusanov fluxes at the faces, and advances density, momentum, and
// energy density. The quality metric applies MAE across all three conserved
// fields, as in the paper.
//
// Inventory (Table II: TV=195, TC=25): the five conserved-field buffers
// are threaded through nearly every routine's pointer parameters, giving
// five large clusters (~28 members each); four mid-size webs cover the
// step factors, face normals, areas, and farfield state; 16 independent
// scalars remain. The paper highlights exactly this shape: CFD has the
// most variables in the suite but clusters them into few type-change sets,
// so cluster-level searches collapse its space dramatically.
//
// Performance character: the flux kernel leans on libm (sqrt for the
// speed of sound), which stays on the double path, and the literal-heavy
// flux expressions cost casts when searched configurations demote the
// buffers (the literals themselves are out of a source tool's reach).
type cfd struct {
	app
	vRho, vMom, vEne, vFlux, vOld    mp.VarID
	vStep, vArea, vNormal, vFarfield mp.VarID
	vGamma, vPressure, vSoundSpeed   mp.VarID
	vLiterals                        mp.VarID // hidden: double literals
}

const (
	cfdCells = 2048
	cfdIters = 24
	cfdScale = 24
	// Per-cell per-iteration flop split: arithmetic follows the cluster
	// precision, the libm calls (speed of sound, flux smoothing) stay
	// double.
	cfdArithFlops = 40
	cfdLibmFlops  = 80
)

// cfdScalarNames are the 16 independent scalars of the merged solver.
var cfdScalarNames = []string{
	"gamma", "gamma_minus_1", "gas_constant", "pressure", "speed_sqd",
	"speed_of_sound", "de_p", "factor", "velocity", "smoothing",
	"cfl", "time_step", "flux_contribution", "p_rho", "residual", "mach",
}

// NewCFD constructs the application.
func NewCFD() bench.Benchmark {
	g := typedep.NewGraph()
	c := &cfd{app: app{
		name:   "CFD",
		desc:   "Unstructured-grid finite volume solver for the 3D Euler equations",
		metric: verify.MAE,
		graph:  g,
	}}
	// Five conserved-field webs: 4 x 28 + 1 x 27 = 139 variables.
	c.vRho = g.Add("density", "main", typedep.ArrayVar)
	addAliases(g, c.vRho, "compute_flux", "density", 27)
	c.vMom = g.Add("momentum", "main", typedep.ArrayVar)
	addAliases(g, c.vMom, "compute_flux", "momentum", 27)
	c.vEne = g.Add("energy", "main", typedep.ArrayVar)
	addAliases(g, c.vEne, "compute_flux", "energy", 27)
	c.vFlux = g.Add("fluxes", "main", typedep.ArrayVar)
	addAliases(g, c.vFlux, "compute_flux", "fluxes", 27)
	c.vOld = g.Add("old_variables", "main", typedep.ArrayVar)
	addAliases(g, c.vOld, "time_step", "old_variables", 26)
	// Four mid-size webs: 4 x 10 = 40 variables.
	c.vStep = g.Add("step_factors", "main", typedep.ArrayVar)
	addAliases(g, c.vStep, "compute_step_factor", "step_factors", 9)
	c.vArea = g.Add("areas", "main", typedep.ArrayVar)
	addAliases(g, c.vArea, "compute_step_factor", "areas", 9)
	c.vNormal = g.Add("normals", "main", typedep.ArrayVar)
	addAliases(g, c.vNormal, "compute_flux", "normals", 9)
	c.vFarfield = g.Add("ff_variable", "main", typedep.ArrayVar)
	addAliases(g, c.vFarfield, "initialize", "ff_variable", 9)
	// 16 independent scalars.
	ids := make(map[string]mp.VarID, len(cfdScalarNames))
	for _, n := range cfdScalarNames {
		ids[n] = g.Add(n, "euler3d", typedep.Scalar)
	}
	c.vGamma = ids["gamma"]
	c.vPressure = ids["pressure"]
	c.vSoundSpeed = ids["speed_of_sound"]
	if g.NumVars() != 195 || g.NumClusters() != 25 {
		panic(fmt.Sprintf("cfd: inventory %d/%d, want 195/25", g.NumVars(), g.NumClusters()))
	}
	// The hidden literal site occupies the slot after the inventory.
	c.vLiterals = mp.VarID(g.NumVars())
	return c
}

// HiddenVars implements bench.HiddenVarser: one site for the flux kernel's
// double literals.
func (c *cfd) HiddenVars() int { return 1 }

func (c *cfd) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(cfdScale)
	rng := t.Rand(seed)
	n := cfdCells
	rho := t.NewArray(c.vRho, n)
	mom := t.NewArray(c.vMom, n)
	ene := t.NewArray(c.vEne, n)
	flux := t.NewArray(c.vFlux, 3*n)
	old := t.NewArray(c.vOld, 3*n)
	step := t.NewArray(c.vStep, n)
	area := t.NewArray(c.vArea, n)
	normal := t.NewArray(c.vNormal, n)

	gamma := t.Value(c.vGamma, 1.4)
	// Smooth initial condition: a density/energy bump on a uniform flow.
	for i := 0; i < n; i++ {
		xpos := float64(i) / float64(n)
		bump := 0.2 * math.Exp(-40*(xpos-0.5)*(xpos-0.5))
		rho.Set(i, 1.0+bump)
		mom.Set(i, 0.4+0.1*bump)
		ene.Set(i, 2.5+bump)
		area.Set(i, 0.9+0.2*rng.Float64())
		normal.Set(i, 1.0)
	}

	pres := func(r, m, e float64) float64 {
		return (gamma - 1) * (e - 0.5*m*m/r)
	}
	arrP := t.Prec(c.vRho)
	litP := t.Prec(c.vLiterals)
	cfl := 0.3

	for iter := 0; iter < cfdIters; iter++ {
		// Save old variables.
		for i := 0; i < n; i++ {
			old.Set(3*i, rho.Get(i))
			old.Set(3*i+1, mom.Get(i))
			old.Set(3*i+2, ene.Get(i))
		}
		// Step factors from the local wave speed.
		for i := 0; i < n; i++ {
			r, m, e := rho.Get(i), mom.Get(i), ene.Get(i)
			p := pres(r, m, e)
			sos := math.Sqrt(gamma * p / r)
			step.Set(i, cfl/((math.Abs(m/r)+sos)*area.Get(i)))
		}
		// Rusanov fluxes at each face i+1/2.
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			rl, ml, el := old.Get(3*i), old.Get(3*i+1), old.Get(3*i+2)
			rr, mr, er := old.Get(3*j), old.Get(3*j+1), old.Get(3*j+2)
			pl, pr := pres(rl, ml, el), pres(rr, mr, er)
			ul, ur := ml/rl, mr/rr
			al := math.Sqrt(gamma * pl / rl)
			ar := math.Sqrt(gamma * pr / rr)
			smax := math.Max(math.Abs(ul)+al, math.Abs(ur)+ar)
			nrm := normal.Get(i)
			flux.Set(3*i, nrm*(0.5*(ml+mr)-0.5*smax*(rr-rl)))
			flux.Set(3*i+1, nrm*(0.5*(ml*ul+pl+mr*ur+pr)-0.5*smax*(mr-ml)))
			flux.Set(3*i+2, nrm*(0.5*(ul*(el+pl)+ur*(er+pr))-0.5*smax*(er-el)))
		}
		// Advance the conserved fields.
		for i := 0; i < n; i++ {
			prev := (i - 1 + n) % n
			dt := step.Get(i)
			rho.Set(i, old.Get(3*i)-dt*(flux.Get(3*i)-flux.Get(3*prev)))
			mom.Set(i, old.Get(3*i+1)-dt*(flux.Get(3*i+1)-flux.Get(3*prev+1)))
			ene.Set(i, old.Get(3*i+2)-dt*(flux.Get(3*i+2)-flux.Get(3*prev+2)))
		}
	}

	work := uint64(cfdCells * cfdIters)
	t.AddFlops(arrP, cfdArithFlops*work)
	t.AddFlops(mp.F64, cfdLibmFlops*work)
	if arrP != litP {
		// The flux expressions mix demoted buffers with double literals:
		// two conversions per cell per iteration.
		t.AddCasts(2 * work)
	}

	out := make([]float64, 0, 3*n)
	out = append(out, rho.Snapshot()...)
	out = append(out, mom.Snapshot()...)
	out = append(out, ene.Snapshot()...)
	return bench.Output{Values: out}
}
