package search

// DeltaDebug is the paper's DD strategy (Precimonious lineage): a modified
// binary search over the list of clusters. It first tries to demote
// everything; on failure it recursively bisects the candidate list,
// keeping every half that can be demoted on top of what is already
// demoted, and descending into halves that cannot. It terminates at a
// local minimum where no remaining cluster can be converted.
//
// The paper's findings about DD fall out of this structure: at loose
// thresholds the whole program passes at once (two evaluations and done);
// as the threshold tightens, more bisection levels fail and the number of
// evaluated configurations grows, but the converged configuration
// consistently carries the most speedup of all strategies because every
// accepted half is re-validated in the context of everything accepted
// before it.
type DeltaDebug struct{}

// Name returns "DD".
func (DeltaDebug) Name() string { return "DD" }

// Mode returns ByCluster.
func (DeltaDebug) Mode() Mode { return ByCluster }

// Search runs the recursive bisection.
func (d DeltaDebug) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	lowered := NewSet(n)
	var stopErr error

	// test evaluates lowered+candidates and accepts the candidates when
	// the combined configuration passes.
	test := func(candidates []int) (bool, Result) {
		set := lowered.Clone()
		for _, i := range candidates {
			set.Add(i)
		}
		r, err := e.Evaluate(set)
		if err != nil {
			stopErr = err
			return false, r
		}
		return r.Passed, r
	}

	var descend func(candidates []int)
	descend = func(candidates []int) {
		if len(candidates) == 0 || stopErr != nil {
			return
		}
		ok, _ := test(candidates)
		if stopErr != nil {
			return
		}
		if ok {
			for _, i := range candidates {
				lowered.Add(i)
			}
			return
		}
		if len(candidates) == 1 {
			return // this cluster cannot be converted
		}
		mid := len(candidates) / 2
		descend(candidates[:mid])
		descend(candidates[mid:])
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	descend(all)

	if stopErr != nil || lowered.Count() == 0 {
		return finish(d.Name(), e, Set{}, Result{}, false, stopErr)
	}
	r, err := e.Evaluate(lowered) // cached: the accepting test ran it
	if err != nil {
		return finish(d.Name(), e, Set{}, Result{}, false, err)
	}
	return finish(d.Name(), e, lowered, r, r.Passed, nil)
}
