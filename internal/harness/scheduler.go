package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/faults"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Scheduler fans analysis jobs out over a pool of workers, reproducing the
// paper's setup: "the harness offloads the search for each combination of
// an application/algorithm to a separate node" of the cluster. One worker
// stands in for one node; results come back in job order regardless of
// completion order, so harness output is deterministic.
type Scheduler struct {
	// Workers is the pool size (simulated node count). Zero means
	// GOMAXPROCS.
	Workers int
	// Telemetry, when non-nil, receives the campaign's metrics and event
	// stream. Each job runs against a private recorder; after the pool
	// drains, the per-job registries are merged and the per-job event
	// buffers replayed in job submission order, so metric snapshots are
	// byte-identical under any worker count. Job spans (queue wait, run
	// duration, worker id) come from the simulated cluster clock - list
	// scheduling of each job's simulated analysis seconds over the pool -
	// not from host goroutine timing. Only the campaign progress gauge
	// and completion counter update live while jobs execute.
	Telemetry *telemetry.Recorder
	// Faults, when non-nil, injects deterministic failures into job
	// attempts. Every injection decision is a pure function of (fault
	// seed, job identity, attempt number), so fault campaigns stay
	// reproducible under any worker count.
	Faults *faults.Injector
	// Retry governs re-execution of attempts that die transiently; the
	// zero value means DefaultRetryPolicy. Backoff waits are charged to
	// the simulated cluster clock.
	Retry RetryPolicy
	// Journal, when non-nil, receives one fsync'd record per completed
	// job, enabling checkpoint/resume.
	Journal *Journal
	// Resume maps job index to the journal record of a previous,
	// interrupted campaign. Resumed jobs are not re-run: their results are
	// rebuilt from the record and their journalled telemetry is merged as
	// if the jobs had just executed.
	Resume map[int]JournalRecord
	// Cache, when non-nil, is shared across every job in the pool: each
	// distinct (benchmark, seed, semantics, machine, configuration) runs
	// once for the whole campaign instead of once per job that proposes
	// it. Sharing never changes output - results are pure functions of the
	// key, jobs charge simulated time for hits as for misses, and cache
	// telemetry stays on the cache's own recorder - so campaign reports
	// and telemetry snapshots are byte-identical with or without it.
	Cache *bench.Cache
	// Interpreted disables compiled evaluation campaign-wide: every job's
	// runner interprets against a fresh tape instead of running
	// precision-specialized kernels. Byte-identical either way (locked by
	// the equivalence tests); the escape hatch and the compiler's
	// benchmarking baseline.
	Interpreted bool
	// Compiler, when non-nil, is the campaign-wide compile cache,
	// installed on every job like Cache: jobs that propose the same
	// configuration share one specialized kernel. Nil compiled campaigns
	// fall back to the process-wide shared compiler.
	Compiler *compile.Compiler
	// OnJobDone, when non-nil, is called once per job as it completes
	// (resumed jobs included), with the job's index and final result.
	// Calls come from whichever worker finished the job, concurrently and
	// in completion order - the engine uses it for live progress; anything
	// determinism-sensitive belongs in Telemetry, not here.
	OnJobDone func(idx int, r JobResult)
	// TraceDiag, when non-nil, collects scheduling-dependent run-cache
	// attribution: each job gets a probe threaded through its context, and
	// the shared cache bumps it on hits, misses, and in-flight waits. Like
	// OnJobDone this is a live diagnostic - which job leads an execution
	// is a race between workers - so it feeds mixpd's live view, never the
	// deterministic trace exports (those are assembled post-hoc by
	// BuildTrace from per-job accounting).
	TraceDiag *trace.Diag
}

// JobResult pairs a job's report with its error, positionally aligned
// with the submitted jobs.
type JobResult struct {
	// Index is the job's position in the submitted slice, so a result
	// extracted from the batch still names the entry it belongs to.
	Index  int
	Report Report
	Err    error
	// Attempts is the execution history under fault injection, in order;
	// a single clean attempt when nothing was injected.
	Attempts []Attempt
	// Degraded marks a job that exhausted its retry budget on transient
	// faults. Its Err carries the last attempt's failure; the campaign
	// continues around it.
	Degraded bool
	// Skipped marks a job the campaign context canceled before it ever
	// started: nothing ran, nothing was journalled, and Err wraps the
	// context's cause. A resumed campaign re-runs it.
	Skipped bool
}

// TotalSeconds is the job's full simulated cost: every attempt's spend
// plus the backoff waits between them. The scheduler's job spans and the
// job-duration histogram are built from it, so lost work and waiting are
// visible on the simulated cluster clock.
func (r JobResult) TotalSeconds() float64 {
	if len(r.Attempts) == 0 {
		return r.Report.SpentSeconds
	}
	var t float64
	for _, a := range r.Attempts {
		t += a.SpentSeconds + a.BackoffSeconds
	}
	return t
}

// Run executes all jobs and returns their results in submission order.
func (s Scheduler) Run(jobs []Job) []JobResult {
	return s.RunContext(context.Background(), jobs)
}

// RunContext is Run under a cancellation context. Once ctx is done,
// in-flight jobs stop at their next evaluation boundary and report
// canceled best-so-far analyses, jobs not yet handed to a worker are
// marked Skipped without running, and retry loops abandon their remaining
// attempts. Results still come back in submission order, one per job. A
// background (or never-canceled) context leaves every result, journal
// record, and telemetry snapshot byte-identical to Run.
func (s Scheduler) RunContext(ctx context.Context, jobs []Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	// Per-job private recorders keep concurrent telemetry deterministic:
	// nothing is shared while workers race, everything merges in job
	// order afterwards.
	var recs []*telemetry.Recorder
	var mems []*telemetry.MemorySink
	if s.Telemetry != nil {
		start := map[string]any{"jobs": len(jobs), "workers": workers}
		if len(s.Resume) > 0 {
			start["resumed"] = len(s.Resume)
		}
		s.Telemetry.Emit("campaign_start", start)
		s.Telemetry.Counter("mixpbench_harness_jobs_total").Add(float64(len(jobs)))
		mems = make([]*telemetry.MemorySink, len(jobs))
		recs = make([]*telemetry.Recorder, len(jobs))
		for i := range jobs {
			mems[i] = telemetry.NewMemorySink()
			recs[i] = telemetry.New(mems[i])
		}
	}

	// Resumed jobs never enter the queue: their results - report,
	// attempt history, and private telemetry - are rebuilt from the
	// journal, so the merged campaign output matches an uninterrupted
	// run's byte for byte.
	var completed atomic.Int64
	for i := range jobs {
		rec, ok := s.Resume[i]
		if !ok {
			continue
		}
		results[i] = rec.result(i)
		if s.Telemetry != nil {
			recs[i].Registry().AddSnapshot(rec.Metrics)
			for _, e := range rec.Events {
				mems[i].Emit(e)
			}
			done := completed.Add(1)
			s.Telemetry.Counter("mixpbench_harness_jobs_completed_total").Inc()
			s.Telemetry.Gauge("mixpbench_harness_progress").SetMax(float64(done) / float64(len(jobs)))
		}
		if s.OnJobDone != nil {
			s.OnJobDone(i, results[i])
		}
	}

	type task struct {
		idx int
		job Job
	}
	queue := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if recs != nil {
					t.job.Telemetry = recs[t.idx]
				}
				t.job.Ctx = ctx
				if s.TraceDiag != nil {
					t.job.Ctx = trace.WithProbe(ctx, s.TraceDiag.Probe(t.idx))
				}
				t.job.Cache = s.Cache
				t.job.Interpreted = s.Interpreted
				t.job.Compiler = s.Compiler
				results[t.idx] = s.executeJob(t.idx, t.job)
				if s.Journal != nil {
					s.Journal.Append(s.record(t.idx, t.job, results[t.idx], recs, mems))
				}
				if s.Telemetry != nil {
					done := completed.Add(1)
					s.Telemetry.Counter("mixpbench_harness_jobs_completed_total").Inc()
					s.Telemetry.Gauge("mixpbench_harness_progress").SetMax(float64(done) / float64(len(jobs)))
				}
				if s.OnJobDone != nil {
					s.OnJobDone(t.idx, results[t.idx])
				}
			}
		}()
	}
	// Feed until the context dies; whatever has not reached a worker by
	// then is marked skipped so the result slice stays fully populated.
	// In-flight jobs are not interrupted here - their evaluators observe
	// the same context and stop at the next evaluation boundary.
	skippedFrom := -1
feed:
	for i, j := range jobs {
		if _, resumed := s.Resume[i]; resumed {
			continue
		}
		select {
		case queue <- task{idx: i, job: j}:
		case <-ctx.Done():
			skippedFrom = i
			break feed
		}
	}
	close(queue)
	wg.Wait()
	if skippedFrom >= 0 {
		for i := skippedFrom; i < len(jobs); i++ {
			if _, resumed := s.Resume[i]; resumed {
				continue
			}
			results[i] = JobResult{
				Index:   i,
				Skipped: true,
				Err: fmt.Errorf("harness: job %d (%s/%s) skipped: %w",
					i, jobs[i].Spec.Name, jobs[i].Spec.Analysis.Algorithm, context.Cause(ctx)),
			}
			if s.OnJobDone != nil {
				s.OnJobDone(i, results[i])
			}
		}
	}

	if s.Telemetry != nil {
		s.flushTelemetry(jobs, results, recs, mems, workers)
	}
	return results
}

// flushTelemetry folds the per-job recorders into the campaign recorder
// in job submission order and emits the per-job span events against the
// simulated cluster schedule.
func (s Scheduler) flushTelemetry(jobs []Job, results []JobResult, recs []*telemetry.Recorder, mems []*telemetry.MemorySink, workers int) {
	durations := make([]float64, len(jobs))
	for i, r := range results {
		durations[i] = r.TotalSeconds()
	}
	starts, assigned := listSchedule(durations, workers)
	errs, degraded := 0, 0
	for i := range jobs {
		spec := jobs[i].Spec
		s.Telemetry.Emit("job_start", map[string]any{
			"job":           i,
			"entry":         spec.Name,
			"bench":         spec.Bin,
			"algorithm":     spec.Analysis.Algorithm,
			"threshold":     spec.Analysis.Threshold,
			"worker":        assigned[i],
			"queue_seconds": starts[i],
		})
		s.Telemetry.Stream().Replay(mems[i].Events())
		s.Telemetry.Registry().Merge(recs[i].Registry())
		end := map[string]any{
			"job":         i,
			"worker":      assigned[i],
			"run_seconds": durations[i],
			"evaluated":   results[i].Report.Evaluated,
			"found":       results[i].Report.Found,
			"timed_out":   results[i].Report.TimedOut,
			"attempts":    max(1, len(results[i].Attempts)),
		}
		if results[i].Degraded {
			end["degraded"] = true
			degraded++
		}
		// Cancellation markers only ever appear in interrupted campaigns,
		// so uninterrupted runs keep their byte-identical streams.
		if results[i].Skipped {
			end["skipped"] = true
		}
		if results[i].Report.Canceled {
			end["canceled"] = true
		}
		if err := results[i].Err; err != nil {
			end["error"] = err.Error()
			errs++
			s.Telemetry.Counter("mixpbench_harness_job_errors_total").Inc()
		}
		s.Telemetry.Emit("job_end", end)
		// Queue wait depends on the pool size, so it stays event-only:
		// the registry must snapshot byte-identically for any -workers.
		s.Telemetry.Histogram("mixpbench_harness_job_seconds", telemetry.SecondsBuckets).Observe(durations[i])
	}
	s.Telemetry.Gauge("mixpbench_harness_degraded_jobs").Set(float64(degraded))
	s.Telemetry.Emit("campaign_end", map[string]any{"jobs": len(jobs), "errors": errs, "degraded": degraded})
}

// listSchedule assigns each job, in submission order, to the worker that
// frees earliest (ties to the lowest worker id), over the jobs' simulated
// durations. This is the simulated cluster's clock: it is deterministic
// for a given worker count, where the host goroutine timing is not.
func listSchedule(durations []float64, workers int) (starts []float64, assigned []int) {
	free := make([]float64, workers)
	starts = make([]float64, len(durations))
	assigned = make([]int, len(durations))
	for i, d := range durations {
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		starts[i] = free[w]
		assigned[i] = w
		free[w] += d
	}
	return starts, assigned
}

// ctxErr reports a context's cancellation, tolerating nil: retry loops
// consult it so a dying campaign never waits out a backoff schedule for
// a job whose context is already gone.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// jobKey names a job stably across runs, worker counts, and resume
// boundaries; it keys the fault injector's decisions.
func jobKey(s Spec) string {
	return fmt.Sprintf("%s/%s/%s/%g", s.Name, s.Bin, s.Analysis.Algorithm, s.Analysis.Threshold)
}

// executeJob runs one job under the scheduler's fault plan and retry
// policy. Each attempt draws its fault independently; an attempt that
// dies to a transient fault is retried after an exponential backoff
// charged to the simulated clock, up to the policy's attempt cap. A job
// whose final attempt still fails transiently is marked degraded - its
// structured error and attempt history land in the result, and the
// campaign continues. Panics and plugin errors are terminal immediately:
// retrying a deterministic bug reproduces it.
func (s Scheduler) executeJob(idx int, job Job) JobResult {
	policy := s.Retry.normalized()
	key := jobKey(job.Spec)
	var attempts []Attempt
	for attempt := 1; ; attempt++ {
		f := s.Faults.Draw(key, attempt)
		job.FailAtEvaluation = 0
		if f.Kind == faults.Transient || f.Kind == faults.Crash {
			job.FailAtEvaluation = f.FailAfter
		}
		jr := runOne(idx, job)
		if f.Kind == faults.Straggler {
			// The slow node completes the work; it just bills more
			// simulated time for it.
			jr.Report.SpentSeconds *= f.Slowdown
		}
		a := Attempt{
			Attempt:      attempt,
			SpentSeconds: jr.Report.SpentSeconds,
			BuildSeconds: jr.Report.BuildSeconds,
			RunSeconds:   jr.Report.RunSeconds,
			Evaluations:  jr.Report.Evaluated,
			CacheHits:    jr.Report.CacheHits,
		}
		transient := errors.Is(jr.Err, search.ErrTransient)
		fired := f.Kind == faults.Straggler || (f.Kind != faults.None && transient)
		if fired {
			// A drawn transient/crash fault only counts if the analysis
			// was still running when it struck; finishing first dodges it.
			a.Fault = f.Kind.String()
			if job.Telemetry != nil {
				job.Telemetry.Counter("mixpbench_harness_faults_injected_total",
					"kind", f.Kind.String()).Inc()
			}
		}
		if jr.Err != nil {
			a.Err = jr.Err.Error()
		}
		if transient && attempt < policy.MaxAttempts && ctxErr(job.Ctx) == nil {
			a.BackoffSeconds = policy.Backoff(attempt)
			attempts = append(attempts, a)
			if job.Telemetry != nil {
				job.Telemetry.Counter("mixpbench_harness_retries_total").Inc()
				job.Telemetry.Emit("job_retry", map[string]any{
					"job":             idx,
					"entry":           job.Spec.Name,
					"attempt":         attempt,
					"fault":           a.Fault,
					"error":           a.Err,
					"lost_seconds":    a.SpentSeconds,
					"backoff_seconds": a.BackoffSeconds,
				})
			}
			continue
		}
		jr.Attempts = append(attempts, a)
		if transient {
			jr.Degraded = true
			jr.Err = fmt.Errorf("harness: job %d (%s/%s) degraded after %d attempts: %w",
				idx, job.Spec.Name, job.Spec.Analysis.Algorithm, attempt, jr.Err)
		}
		return jr
	}
}

// record assembles the job's checkpoint-journal record, including its
// private telemetry so resume can splice it back.
func (s Scheduler) record(idx int, job Job, jr JobResult, recs []*telemetry.Recorder, mems []*telemetry.MemorySink) JournalRecord {
	rec := ResultRecord(jr, job.Spec.Name)
	rec.Job = idx
	if recs != nil {
		rec.Metrics = recs[idx].Registry().Snapshot()
		rec.Events = telemetry.FiniteEvents(mems[idx].Events())
	}
	return rec
}

// runOne resolves and executes a single job, converting panics from
// misdeclared benchmarks into errors so one bad entry cannot take down a
// whole campaign. The recovered error carries the panicking job's index
// and stack so the failure is diagnosable from the campaign report alone.
func runOne(idx int, job Job) (jr JobResult) {
	jr.Index = idx
	defer func() {
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: job %d (%s/%s) panicked: %v\n%s",
				idx, job.Spec.Name, job.Spec.Analysis.Algorithm, r, debug.Stack())
		}
	}()
	plugin, err := LookupAnalysis(job.Spec.Analysis.Name)
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Report, jr.Err = plugin.Analyze(job)
	return jr
}

// JobsFromSpecs resolves each spec's benchmark and builds one job per
// spec with the given workload seed. Every unresolvable entry is
// reported, not just the first, so one pass over the error fixes the
// whole configuration.
func JobsFromSpecs(specs []Spec, seed int64) ([]Job, error) {
	jobs := make([]Job, 0, len(specs))
	var errs []error
	for _, s := range specs {
		b, err := s.Resolve()
		if err != nil {
			errs = append(errs, fmt.Errorf("entry %q: %w", s.Name, err))
			continue
		}
		jobs = append(jobs, Job{Spec: s, Benchmark: b, Seed: seed})
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return jobs, nil
}
