package search

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
)

// singleton returns the selection demoting only unit i.
func singleton(n, i int) Set {
	s := NewSet(n)
	s.Add(i)
	return s
}

// TestTraceReturnsCopy is the regression test for Trace aliasing: mutating
// the returned slice must not corrupt the evaluator's own record or any
// subsequent record call.
func TestTraceReturnsCopy(t *testing.T) {
	e := newEval(t, newFakeBench([3]float64{0, 0, 0}), ByCluster, 1e-6)
	e.SetTrace(true)
	n := e.Space().NumUnits()
	if _, err := e.Evaluate(singleton(n, 0)); err != nil {
		t.Fatal(err)
	}

	got := e.Trace()
	if len(got) != 1 {
		t.Fatalf("trace has %d entries", len(got))
	}
	// Corrupt the returned entry and grow the returned slice: with an
	// aliased live slice, the append could land the next record entry in
	// the caller's array and the field write would corrupt the record.
	got[0].Config = "corrupted"
	got[0].Seq = 999
	_ = append(got, TraceEntry{Config: "stray"})

	if _, err := e.Evaluate(singleton(n, 1)); err != nil {
		t.Fatal(err)
	}
	fresh := e.Trace()
	if len(fresh) != 2 {
		t.Fatalf("trace has %d entries after second evaluation", len(fresh))
	}
	if fresh[0].Config == "corrupted" || fresh[0].Seq == 999 {
		t.Error("mutating the returned trace corrupted the evaluator's record")
	}
	if fresh[1].Config == "stray" {
		t.Error("append through the returned trace leaked into the record")
	}
	if fresh[0].Seq != 1 || fresh[1].Seq != 2 {
		t.Errorf("trace seqs = %d, %d, want 1, 2", fresh[0].Seq, fresh[1].Seq)
	}
}

// TestTraceAndMetricsUnderTimeout drives an evaluator into
// ErrBudgetExhausted mid-strategy and checks that the trace and the
// metrics snapshot stay consistent: entries are monotone in spent time,
// every entry but the last started under budget (so the overshoot is at
// most one evaluation), and the counters agree with the EV metric.
func TestTraceAndMetricsUnderTimeout(t *testing.T) {
	b := newFakeBench([3]float64{0, 0, 0})
	e := newEval(t, b, ByCluster, 1e-6)
	e.SetTrace(true)
	tel := telemetry.New(telemetry.NewMemorySink())
	// Budget for the baseline plus just under two more builds: the third
	// proposal must hit the wall.
	e.SetBudget(e.Spent() + 2*DefaultBuildSeconds - 1)
	e.SetTelemetry(tel)

	n := e.Space().NumUnits()
	var exhausted bool
	for i := 0; i < n && !exhausted; i++ {
		_, err := e.Evaluate(singleton(n, i))
		switch {
		case errors.Is(err, ErrBudgetExhausted):
			exhausted = true
		case err != nil:
			t.Fatal(err)
		}
	}
	if !exhausted {
		t.Fatal("budget never exhausted; test needs a tighter budget")
	}

	trace := e.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace entries before exhaustion")
	}
	if len(trace) != e.Evaluated() {
		t.Errorf("trace has %d entries, EV = %d", len(trace), e.Evaluated())
	}
	budget := e.Spent() // spent is frozen once exhausted
	for i, entry := range trace {
		if i > 0 && entry.SpentSeconds < trace[i-1].SpentSeconds {
			t.Errorf("entry %d spent %.1f < previous %.1f", i, entry.SpentSeconds, trace[i-1].SpentSeconds)
		}
		if entry.Seq != i+1 {
			t.Errorf("entry %d has seq %d", i, entry.Seq)
		}
	}
	last := trace[len(trace)-1]
	if last.SpentSeconds != budget {
		t.Errorf("last entry spent %.2f, evaluator spent %.2f", last.SpentSeconds, budget)
	}
	// Every paid evaluation started strictly under budget, so the final
	// spent figure exceeds the budget by at most one evaluation's cost.
	if len(trace) > 1 {
		prev := trace[len(trace)-2].SpentSeconds
		if overshoot := last.SpentSeconds - prev; last.SpentSeconds > e.budget+overshoot {
			t.Errorf("spent %.2f overshoots budget %.2f by more than one evaluation (%.2f)",
				last.SpentSeconds, e.budget, overshoot)
		}
	}

	snap := tel.Snapshot()
	counters := map[string]float64{}
	for _, p := range snap.Counters {
		counters[p.Name] += p.Value
	}
	if got := counters["mixpbench_search_evaluations_total"]; got != float64(e.Evaluated()) {
		t.Errorf("evaluations counter = %g, EV = %d", got, e.Evaluated())
	}
	if counters["mixpbench_search_budget_exhausted_total"] != 1 {
		t.Errorf("budget_exhausted counter = %g, want 1", counters["mixpbench_search_budget_exhausted_total"])
	}
	for _, g := range snap.Gauges {
		if g.Name == "mixpbench_search_spent_seconds" && g.Value != budget {
			t.Errorf("spent gauge = %g, evaluator spent %g", g.Value, budget)
		}
	}
}

// TestEvaluatorTelemetryCounts checks the per-evaluation accounting:
// cache hits and paid evaluations land in separate counters, events cover
// both, and the budget-fraction gauge tracks spent/budget.
func TestEvaluatorTelemetryCounts(t *testing.T) {
	e := newEval(t, newFakeBench([3]float64{0, 1, 0}), ByCluster, 1e-6)
	mem := telemetry.NewMemorySink()
	e.SetTelemetry(telemetry.New(mem))

	n := e.Space().NumUnits()
	sel := singleton(n, 0)
	if _, err := e.Evaluate(sel); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(sel); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := e.Evaluate(singleton(n, 1)); err != nil {
		t.Fatal(err)
	}

	snap := e.tel.Snapshot()
	find := func(name string) float64 {
		for _, p := range snap.Counters {
			if p.Name == name {
				return p.Value
			}
		}
		return -1
	}
	if got := find("mixpbench_search_evaluations_total"); got != 2 {
		t.Errorf("evaluations = %g, want 2", got)
	}
	if got := find("mixpbench_search_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %g, want 1", got)
	}

	events := mem.Events()
	// search_start + three evaluation events (the cache hit included).
	if len(events) != 4 {
		t.Fatalf("%d events: %+v", len(events), events)
	}
	if events[0].Name != "search_start" {
		t.Errorf("first event = %s", events[0].Name)
	}
	hits := 0
	for _, ev := range events[1:] {
		if ev.Name != "evaluation" {
			t.Errorf("event = %s, want evaluation", ev.Name)
		}
		if ev.Fields["cache"] == true {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("%d cache-hit events, want 1", hits)
	}

	wantFraction := e.Spent() / e.budget
	for _, g := range snap.Gauges {
		if g.Name == "mixpbench_search_budget_fraction" && g.Value != wantFraction {
			t.Errorf("budget fraction = %g, want %g", g.Value, wantFraction)
		}
	}
}
