// Command benchjson converts `go test -bench` output into the repo's
// machine-readable perf-trajectory artifact, so speed claims are
// tracked as data across PRs instead of living in commit messages.
//
// It reads benchmark output on stdin (or from file arguments), parses
// every result line into {benchmark, ns/op, B/op, allocs/op}, averages
// repeated runs of the same benchmark (-count=N), and writes one JSON
// document of records sorted by benchmark name:
//
//	go test -run '^$' -bench . -benchmem -count=5 ./... | benchjson -out BENCH_8.json
//
// With -comparison, it also maintains the "Compiled vs interpreted
// evaluation" section of the comparison artifact: the campaign
// benchmark pair (BenchmarkCampaignCompiled / BenchmarkCampaignInterpreted)
// side by side with the measured speedup, replacing the section in
// place when it exists and appending it otherwise, so `make tables`
// regenerating the rest of the file and `make bench` refreshing this
// section commute.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark's aggregated result. Repeated runs of the
// same benchmark (-count) are averaged; Samples says over how many.
type Record struct {
	Benchmark   string  `json:"benchmark"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the artifact's top-level shape.
type Report struct {
	Records []Record `json:"records"`
}

func main() {
	var (
		out        = flag.String("out", "-", `output path for the JSON artifact ("-" = stdout)`)
		comparison = flag.String("comparison", "", "markdown file whose compiled-vs-interpreted section to update")
	)
	flag.Parse()
	if err := run(*out, *comparison, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, comparison string, args []string) error {
	var input io.Reader = os.Stdin
	if len(args) > 0 {
		var readers []io.Reader
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		input = io.MultiReader(readers...)
	}
	records, err := Parse(input)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	data, err := json.MarshalIndent(Report{Records: records}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if comparison != "" {
		if err := updateComparison(comparison, records); err != nil {
			return err
		}
	}
	return nil
}

// resultLine matches one `go test -bench` result line up to its ns/op
// column; the GOMAXPROCS suffix (-8) is stripped so the trajectory
// compares across machines. The -benchmem columns are matched
// separately (memLine, allocsLine) because b.ReportMetric custom
// metrics land between ns/op and B/op.
var (
	resultLine = regexp.MustCompile(
		`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	memLine    = regexp.MustCompile(`\s([\d.]+) B/op`)
	allocsLine = regexp.MustCompile(`\s(\d+) allocs/op`)
)

// Parse reads benchmark output and returns the aggregated records
// sorted by benchmark name. Non-result lines (headers, PASS/ok, test
// log output) are ignored.
func Parse(r io.Reader) ([]Record, error) {
	type sum struct {
		n                 int
		ns, bytes, allocs float64
	}
	sums := map[string]*sum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		s := sums[m[1]]
		if s == nil {
			s = &sum{}
			sums[m[1]] = s
		}
		s.n++
		s.ns += ns
		if mm := memLine.FindStringSubmatch(line); mm != nil {
			v, _ := strconv.ParseFloat(mm[1], 64)
			s.bytes += v
		}
		if am := allocsLine.FindStringSubmatch(line); am != nil {
			v, _ := strconv.ParseFloat(am[1], 64)
			s.allocs += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	records := make([]Record, 0, len(sums))
	for name, s := range sums {
		n := float64(s.n)
		records = append(records, Record{
			Benchmark:   name,
			Samples:     s.n,
			NsPerOp:     s.ns / n,
			BytesPerOp:  s.bytes / n,
			AllocsPerOp: s.allocs / n,
		})
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Benchmark < records[j].Benchmark })
	return records, nil
}

// A pairSpec is one maintained comparison section: an identical workload
// measured two ways, reported side by side with the ns/op ratio.
type pairSpec struct {
	header string
	intro  string
	// column is the table's first-column heading.
	column string
	// baseBench/baseLabel are the denominator of the ratio; otherBench/
	// otherLabel the numerator.
	baseBench, baseLabel   string
	otherBench, otherLabel string
	ratioLabel             string
}

// pairs lists the comparison sections `make bench` maintains (see
// bench_test.go for each benchmark pair's definition).
var pairs = []pairSpec{
	{
		header: "## Compiled vs interpreted evaluation",
		intro: "One identical kernel campaign (2 workers, run cache off), evaluated\n" +
			"through precision-specialized compiled kernels vs the interpreted\n" +
			"tape. Outputs are byte-identical; only wall-clock moves.\n",
		column:     "Evaluation path",
		baseBench:  "BenchmarkCampaignCompiled",
		baseLabel:  "compiled",
		otherBench: "BenchmarkCampaignInterpreted",
		otherLabel: "interpreted",
		ratioLabel: "Speedup (interpreted / compiled)",
	},
	{
		header: "## Ladder depth cost",
		intro: "One kernel campaign (2 workers, shared run cache) over the paper's\n" +
			"two-level double/single axis vs the three-rung f64,f32,bf16 ladder:\n" +
			"the campaign-level price of one extra precision rung.\n",
		column:     "Precision ladder",
		baseBench:  "BenchmarkCampaignLadder2",
		baseLabel:  "f64,f32 (2 rungs)",
		otherBench: "BenchmarkCampaignLadder3",
		otherLabel: "f64,f32,bf16 (3 rungs)",
		ratioLabel: "Cost (3-rung / 2-rung)",
	},
}

// pairSection renders one side-by-side pair table.
func pairSection(p pairSpec, base, other Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n%s\n", p.header, p.intro)
	fmt.Fprintf(&b, "| %s | ns/op | B/op | allocs/op |\n", p.column)
	b.WriteString("|---|---|---|---|\n")
	row := func(label string, r Record) {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.0f |\n", label, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	row(p.baseLabel, base)
	row(p.otherLabel, other)
	fmt.Fprintf(&b, "\n%s: **%.2fx**\n", p.ratioLabel, other.NsPerOp/base.NsPerOp)
	return b.String()
}

// updateComparison rewrites the comparison file's pair sections from the
// parsed records: each is replaced in place when present and appended
// otherwise. Missing pair benchmarks are an error - the artifact must
// never silently report a stale pair.
func updateComparison(path string, records []Record) error {
	byName := map[string]Record{}
	for _, r := range records {
		byName[r.Benchmark] = r
	}
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	text := string(existing)
	for _, p := range pairs {
		base, okB := byName[p.baseBench]
		other, okO := byName[p.otherBench]
		if !okB || !okO {
			return fmt.Errorf("input lacks the %s / %s pair needed for -comparison", p.baseBench, p.otherBench)
		}
		section := pairSection(p, base, other)
		if start := strings.Index(text, p.header); start >= 0 {
			end := len(text)
			if next := strings.Index(text[start+len(p.header):], "\n## "); next >= 0 {
				end = start + len(p.header) + next + 1
			}
			text = text[:start] + section + text[end:]
		} else {
			if text != "" && !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			if text != "" {
				text += "\n"
			}
			text += section
		}
	}
	return os.WriteFile(path, []byte(text), 0o644)
}
