package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// A Finding is one diagnostic resolved to a file position, as emitted
// by `mixplint -json`.
type Finding struct {
	File          string `json:"file"` // relative to the module root
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// A Report is the result of one mixplint run over a module.
type Report struct {
	Module      string         `json:"module"`
	Packages    int            `json:"packages"`
	Analyzers   []string       `json:"analyzers"`
	Findings    []Finding      `json:"findings"`   // unsuppressed: these fail the build
	Suppressed  []Finding      `json:"suppressed"` // carry mandatory justifications
	PerAnalyzer map[string]int `json:"per_analyzer"`
}

// Scope decides whether an analyzer applies to a package; a nil Scope
// applies every analyzer everywhere.
type Scope func(a *Analyzer, pkgPath string) bool

// RunAnalyzers applies each in-scope analyzer to each module package,
// resolves suppression directives, and returns the combined report.
// Malformed directives surface as findings under the "directive" name
// so a suppression without a justification cannot silence anything.
func RunAnalyzers(m *Module, analyzers []*Analyzer, scope Scope) (*Report, error) {
	rep := &Report{
		Module:      m.Path,
		Packages:    len(m.Packages),
		Findings:    []Finding{},
		Suppressed:  []Finding{},
		PerAnalyzer: make(map[string]int),
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, pkg := range m.Packages {
		var diags []Diagnostic
		for _, a := range analyzers {
			if scope != nil && !scope(a, pkg.PkgPath) {
				continue
			}
			ds, err := runOne(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			diags = append(diags, ds...)
		}
		dirs, bad := ParseDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)
		diags = append(diags, checkDirectiveTargets(dirs, analyzers)...)
		for _, d := range diags {
			f := m.resolve(pkg, d)
			if just, ok := suppressedBy(dirs, pkg.Fset, d); ok {
				f.Suppressed = true
				f.Justification = just
				rep.Suppressed = append(rep.Suppressed, f)
				continue
			}
			rep.Findings = append(rep.Findings, f)
			rep.PerAnalyzer[d.Analyzer]++
		}
	}
	sortFindings(rep.Findings)
	sortFindings(rep.Suppressed)
	return rep, nil
}

// checkDirectiveTargets reports ignore/package directives naming an
// analyzer that is not registered: such a directive suppresses nothing
// today and would silently start suppressing if the name were ever
// taken, so it is a finding, not a no-op.
func checkDirectiveTargets(dirs []Directive, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for i := range dirs {
		d := &dirs[i]
		if d.Kind != "ignore" && d.Kind != "package" {
			continue
		}
		known := false
		for _, a := range analyzers {
			if a.Name == d.Analyzer {
				known = true
				break
			}
		}
		if !known {
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "directive",
				Message:  fmt.Sprintf("mixplint:%s names unknown analyzer %q; it suppresses nothing", d.Kind, d.Analyzer),
			})
		}
	}
	return out
}

// runOne applies a single analyzer to a single package.
func runOne(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var out []Diagnostic
	pass := NewPass(a, pkg, func(d Diagnostic) { out = append(out, d) })
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}

// suppressedBy finds an applicable suppression directive in the
// diagnostic's package and returns its justification. Malformed
// directives ("directive" findings) can never be suppressed.
func suppressedBy(dirs []Directive, fset *token.FileSet, d Diagnostic) (string, bool) {
	if d.Analyzer == "directive" {
		return "", false
	}
	pos := fset.Position(d.Pos)
	for i := range dirs {
		dir := &dirs[i]
		if dir.Kind == "ignore" && fset.Position(dir.Pos).Filename != pos.Filename {
			continue
		}
		if dir.suppresses(d.Analyzer, pos.Line) {
			return dir.Justification, true
		}
	}
	return "", false
}

// resolve converts a diagnostic to a root-relative finding.
func (m *Module) resolve(pkg *Package, d Diagnostic) Finding {
	pos := pkg.Fset.Position(d.Pos)
	file := pos.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		File:     file,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// JSON renders the report for `mixplint -json` / make lint-report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
