// Package perfmodel reconstructs execution time for benchmark runs.
//
// The paper measures wall-clock time of recompiled binaries on cluster
// nodes with Intel 8-core Xeon E5-2670 processors and 256 GB of DRAM. That
// testbed is not available here, so the reproduction substitutes an
// analytic machine model driven by the exact work counters the mp runtime
// collects. The model is a roofline with a cache-capacity step:
//
//	compute = flops64/rate64 + flops32/rate32
//	memory  = traffic / bandwidth(workingSet)
//	time    = overhead + max(compute, memory) + casts/castRate
//
// This deliberately simple form captures every mechanism the paper's
// conclusions rely on:
//
//   - single-precision arithmetic runs at twice the double-precision rate
//     (wider SIMD lanes), bounding compute-bound speedup at 2x;
//   - demoting an array halves its traffic, bounding bandwidth-bound
//     speedup at 2x at constant bandwidth;
//   - when demotion shrinks the working set below a cache-capacity
//     boundary, bandwidth itself jumps, which is how LavaMD-style programs
//     exceed 2x (the paper's cache-miss-rate observation);
//   - precision-boundary casts are charged outside the roofline max, so a
//     configuration that demotes half of a dependence chain can be slower
//     than the original program - the paper's warning that fewer double
//     variables does not imply more speed.
//
// The model also reproduces the paper's measurement protocol: each
// configuration is "executed" ten times with small multiplicative jitter,
// the best and worst are discarded, and the rest are averaged.
package perfmodel

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mp"
)

// CacheLevel describes one level of the memory hierarchy: traffic whose
// working set fits within Size bytes is served at Bandwidth bytes/second.
type CacheLevel struct {
	Name      string
	Size      uint64  // capacity in bytes
	Bandwidth float64 // bytes per second
}

// Machine is the analytic model of one execution node.
type Machine struct {
	// Name identifies the modelled processor.
	Name string
	// Rate64, Rate32, and Rate16 are sustained floating-point operation
	// rates in flops/second for each precision. Rate16 only matters for
	// extension studies: the paper's configurations never retire
	// half-precision operations.
	Rate64 float64
	Rate32 float64
	Rate16 float64
	// CastRate is the rate of precision-conversion instructions in
	// casts/second.
	CastRate float64
	// CastMatrix optionally prices conversions per width-class pair
	// [from][to] in casts/second (classes 0, 1, 2 for 8-, 4-, 2-byte
	// containers). A zero matrix - the default - prices every cast at
	// CastRate through the exact legacy expression, so models that never
	// set it are bit-identical to the pre-ladder runtime; a zero entry in
	// an otherwise set matrix also falls back to CastRate. Casts recorded
	// without pair attribution always price at CastRate.
	CastMatrix [3][3]float64
	// EnergyModel prices the same work counters in joules; see Energy.
	EnergyModel EnergyModel
	// Caches lists the hierarchy from smallest to largest; a working set
	// larger than every level is served from DRAM.
	Caches []CacheLevel
	// DRAMBandwidth is the main-memory bandwidth in bytes/second.
	DRAMBandwidth float64
	// RunOverhead is the fixed per-execution cost in seconds (process
	// start, input loading).
	RunOverhead float64
}

// Default returns the model calibrated to the paper's testbed class (one
// core of a Xeon E5-2670 with AVX: 8 double or 16 single flops/cycle at
// 2.6 GHz gives the 2x precision ratio; cache capacities are the part's
// 32 KiB L1D, 256 KiB L2, 20 MiB shared L3).
func Default() Machine {
	return Machine{
		Name:     "xeon-e5-2670",
		Rate64:   16e9,
		Rate32:   32e9,
		Rate16:   64e9,
		CastRate: 10e9,
		Caches: []CacheLevel{
			{Name: "L1", Size: 32 << 10, Bandwidth: 150e9},
			{Name: "L2", Size: 256 << 10, Bandwidth: 80e9},
			{Name: "L3", Size: 20 << 20, Bandwidth: 30e9},
		},
		DRAMBandwidth: 13e9,
		RunOverhead:   1e-4,
		// Energy coefficients follow the usual CPU scaling: a narrower
		// flop costs proportionally less dynamic energy, data movement
		// costs more per byte than arithmetic per flop, and the idle/static
		// draw of a server-class socket dominates short runs.
		EnergyModel: EnergyModel{
			FlopJoules: [3]float64{20e-12, 10e-12, 5e-12},
			ByteJoules: 30e-12,
			CastJoules: 15e-12,
			IdleWatts:  50,
		},
	}
}

// Rate returns the sustained floating-point rate in flops/second for a
// width class (0, 1, 2 for 8-, 4-, 2-byte containers).
func (m Machine) Rate(class int) float64 {
	switch class {
	case 1:
		return m.Rate32
	case 2:
		return m.Rate16
	default:
		return m.Rate64
	}
}

// Bandwidth returns the bytes/second the hierarchy sustains for a resident
// working set of the given size.
func (m Machine) Bandwidth(workingSet uint64) float64 {
	for _, c := range m.Caches {
		if workingSet <= c.Size {
			return c.Bandwidth
		}
	}
	return m.DRAMBandwidth
}

// Time converts one execution's cost into modelled seconds.
func (m Machine) Time(c mp.Cost) float64 {
	compute := float64(c.Flops64)/m.Rate64 + float64(c.Flops32)/m.Rate32
	if c.Flops16 > 0 {
		compute += float64(c.Flops16) / m.Rate16
	}
	mem := float64(c.Bytes()) / m.Bandwidth(c.Footprint())
	t := compute
	if mem > t {
		t = mem
	}
	return m.RunOverhead + t + m.castTime(c)
}

// castTime prices the run's precision conversions. With a zero CastMatrix
// this is exactly the legacy Casts/CastRate expression - the same float
// operations in the same order, which keeps default-machine campaigns
// bit-identical. With a matrix, pair-attributed casts price per entry and
// the unattributed remainder stays at CastRate.
func (m Machine) castTime(c mp.Cost) float64 {
	if m.CastMatrix == ([3][3]float64{}) {
		return float64(c.Casts) / m.CastRate
	}
	var t float64
	var attributed uint64
	for i := range c.CastPairs {
		for j, n := range c.CastPairs[i] {
			if n == 0 {
				continue
			}
			attributed += n
			r := m.CastMatrix[i][j]
			if r == 0 {
				r = m.CastRate
			}
			t += float64(n) / r
		}
	}
	return t + float64(c.Casts-attributed)/m.CastRate
}

// EnergyModel prices the work counters of one execution in joules: a
// dynamic cost per retired flop by width class, per byte of array traffic,
// and per precision conversion, plus the node's idle (static) power drawn
// for the modelled duration. The idle term is what makes energy a genuine
// second objective rather than a rescaled copy of time: a configuration
// that shortens the run saves static energy even when its dynamic work is
// unchanged, and one that adds casts can win time yet lose energy.
type EnergyModel struct {
	// FlopJoules is the dynamic energy per floating-point operation by
	// width class (0, 1, 2 for 8-, 4-, 2-byte containers).
	FlopJoules [3]float64
	// ByteJoules is the dynamic energy per byte of array traffic.
	ByteJoules float64
	// CastJoules is the dynamic energy per precision conversion.
	CastJoules float64
	// IdleWatts is the static power drawn for the run's modelled duration.
	IdleWatts float64
}

// Energy converts one execution's cost into modelled joules:
// dynamic work priced by the EnergyModel plus idle power times Time.
func (m Machine) Energy(c mp.Cost) float64 {
	e := m.EnergyModel
	dyn := float64(c.Flops64)*e.FlopJoules[0] +
		float64(c.Flops32)*e.FlopJoules[1] +
		float64(c.Flops16)*e.FlopJoules[2] +
		float64(c.Bytes())*e.ByteJoules +
		float64(c.Casts)*e.CastJoules
	return dyn + e.IdleWatts*m.Time(c)
}

// Measurement is the result of the paper's timing protocol applied to one
// configuration.
type Measurement struct {
	// Mean is the trimmed mean over the repetitions in seconds.
	Mean float64
	// Runs is the number of repetitions performed.
	Runs int
	// Total is the untrimmed sum of all repetitions in seconds; the search
	// harness charges it (plus rebuild overhead) against the analysis time
	// budget.
	Total float64
}

// DefaultRuns is the paper's repetition count: ten executions per
// configuration, best and worst discarded.
const DefaultRuns = 10

// jitterAmplitude bounds the multiplicative run-to-run noise. Real repeated
// runs vary by a fraction of a percent on a quiet node; the trimmed mean
// exists to suppress exactly this.
const jitterAmplitude = 0.005

// Measure applies the measurement protocol to a modelled time: runs
// repetitions with seeded multiplicative jitter, discard the single best
// and single worst, and average the rest. runs must be at least 3 so the
// trim leaves at least one sample.
func Measure(modelTime float64, runs int, rng *rand.Rand) Measurement {
	if runs < 3 {
		panic(fmt.Sprintf("perfmodel: Measure needs at least 3 runs, got %d", runs))
	}
	samples := make([]float64, runs)
	total := 0.0
	for i := range samples {
		jitter := 1 + jitterAmplitude*(2*rng.Float64()-1)
		samples[i] = modelTime * jitter
		total += samples[i]
	}
	sort.Float64s(samples)
	sum := 0.0
	for _, s := range samples[1 : runs-1] {
		sum += s
	}
	return Measurement{
		Mean:  sum / float64(runs-2),
		Runs:  runs,
		Total: total,
	}
}

// Speedup returns baseline/candidate, the paper's SU metric (higher is
// better, 1.0 means no change).
func Speedup(baseline, candidate float64) float64 {
	return baseline / candidate
}

// Accelerator returns a GPU-class machine model for half-precision
// extension studies: the 2:1 rate laddering per precision level that
// tensor-free accelerator SIMT pipelines exhibit, a large software-managed
// last-level cache standing in for shared memory plus L2, and
// high-bandwidth device memory. The paper's evaluation never uses it; the
// three-level example does.
func Accelerator() Machine {
	return Machine{
		Name:     "accelerator",
		Rate64:   100e9,
		Rate32:   200e9,
		Rate16:   400e9,
		CastRate: 100e9,
		Caches: []CacheLevel{
			{Name: "L2", Size: 4 << 20, Bandwidth: 2000e9},
		},
		DRAMBandwidth: 500e9,
		RunOverhead:   5e-5,
		// Down-converts are cheap on accelerator pipelines (a pack
		// instruction); widening back to 8-byte lanes costs more, and
		// 2-byte <-> 8-byte moves are the most expensive pair.
		CastMatrix: [3][3]float64{
			{0, 200e9, 150e9},
			{100e9, 0, 200e9},
			{60e9, 150e9, 0},
		},
		EnergyModel: EnergyModel{
			FlopJoules: [3]float64{8e-12, 4e-12, 2e-12},
			ByteJoules: 15e-12,
			CastJoules: 6e-12,
			IdleWatts:  120,
		},
	}
}
