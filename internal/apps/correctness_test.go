package apps

import (
	"math"
	"testing"

	"repro/internal/bench"
)

// These tests anchor the application ports to independent physical or
// mathematical properties of what they claim to compute - properties a
// wrong port would break even though the search layer would never notice.

// TestCFDConservation checks the finite-volume scheme's defining
// property: on a periodic domain with face fluxes, total mass, momentum,
// and energy change only through the step-factor weighting - with a
// uniform step they would be exactly conserved, and with per-cell CFL
// steps they must stay within a tight band of the initial totals.
func TestCFDConservation(t *testing.T) {
	c := NewCFD()
	out := bench.NewRunner(42).Reference(c).Output.Values
	n := cfdCells
	if len(out) != 3*n {
		t.Fatalf("output length %d", len(out))
	}
	sum := func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}
	rho, mom, ene := out[:n], out[n:2*n], out[2*n:]
	// Initial totals from the known initial condition.
	rho0, mom0, ene0 := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		xpos := float64(i) / float64(n)
		bump := 0.2 * math.Exp(-40*(xpos-0.5)*(xpos-0.5))
		rho0 += 1.0 + bump
		mom0 += 0.4 + 0.1*bump
		ene0 += 2.5 + bump
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mass", sum(rho), rho0},
		{"momentum", sum(mom), mom0},
		{"energy", sum(ene), ene0},
	} {
		if rel := math.Abs(c.got-c.want) / math.Abs(c.want); rel > 0.02 {
			t.Errorf("total %s drifted %.3f%% (%.6f -> %.6f)", c.name, rel*100, c.want, c.got)
		}
	}
	// The solution must stay physical: positive density and pressure.
	for i := 0; i < n; i++ {
		if rho[i] <= 0 {
			t.Fatalf("rho[%d] = %v", i, rho[i])
		}
		p := 0.4 * (ene[i] - 0.5*mom[i]*mom[i]/rho[i])
		if p <= 0 {
			t.Fatalf("pressure[%d] = %v", i, p)
		}
	}
}

// TestHPCCGSolvesTheSystem verifies the solver actually solves: the
// returned x must satisfy A*x = b to the solver tolerance, checked with
// an independent reconstruction of the banded system.
func TestHPCCGSolvesTheSystem(t *testing.T) {
	h := NewHPCCG().(*hpccg)
	ref := bench.NewRunner(42).Reference(h)
	x := ref.Output.Values
	if len(x) != hpccgN {
		t.Fatalf("solution length %d", len(x))
	}
	// Rebuild A and b exactly as Run does (same seed, same draw order).
	n := hpccgN
	width := 2*hpccgBands + 1
	rng := newSeedRand(42)
	bandVal := make([]float64, width)
	for k := 1; k <= hpccgBands; k++ {
		v := -1.0 / 6.0 * (0.98 + 0.04*rng.Float64())
		bandVal[hpccgBands-k] = v
		bandVal[hpccgBands+k] = v
	}
	vals := make([]float64, n*width)
	for i := 0; i < n; i++ {
		for k := 0; k < width; k++ {
			if k == hpccgBands {
				vals[i*width+k] = 2.08 + 0.04*rng.Float64()
			} else {
				vals[i*width+k] = bandVal[k]
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(rng.Float32()) * 2
	}
	// Residual of the returned solution.
	norm := 0.0
	for i := 0; i < n; i++ {
		ax := 0.0
		for k := 0; k < width; k++ {
			j := i + k - hpccgBands
			if j < 0 || j >= n {
				continue
			}
			ax += vals[i*width+k] * x[j]
		}
		d := b[i] - ax
		norm += d * d
	}
	if got := math.Sqrt(norm); got > hpccgTol*1.01 {
		t.Errorf("residual norm = %g, want <= %g", got, hpccgTol)
	}
}

// TestKMeansMembershipIsNearest verifies the clustering invariant: every
// point's final label is its nearest final centre, reconstructed
// independently from the labels themselves.
func TestKMeansMembershipIsNearest(t *testing.T) {
	k := NewKMeans().(*kmeans)
	ref := bench.NewRunner(42).Reference(k)
	labels := ref.Output.Values

	// Rebuild the feature matrix (same seed, same draw order as Run).
	rng := newSeedRand(42)
	features := make([]float64, kmPoints*kmDims)
	for i := 0; i < kmPoints; i++ {
		blob := rng.Intn(kmK)
		for d := 0; d < kmDims; d++ {
			center := float64((blob*7+d*3)%kmK) * 4.0
			features[i*kmDims+d] = center + 0.3*(rng.Float64()-0.5)
		}
	}
	// Final centres implied by the labels.
	centers := make([]float64, kmK*kmDims)
	counts := make([]int, kmK)
	for i := 0; i < kmPoints; i++ {
		c := int(labels[i])
		counts[c]++
		for d := 0; d < kmDims; d++ {
			centers[c*kmDims+d] += features[i*kmDims+d]
		}
	}
	for c := 0; c < kmK; c++ {
		if counts[c] == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		for d := 0; d < kmDims; d++ {
			centers[c*kmDims+d] /= float64(counts[c])
		}
	}
	// Every point must be nearest to its own centre.
	for i := 0; i < kmPoints; i++ {
		own := int(labels[i])
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < kmK; c++ {
			dist := 0.0
			for d := 0; d < kmDims; d++ {
				diff := features[i*kmDims+d] - centers[c*kmDims+d]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best != own {
			t.Fatalf("point %d labelled %d but nearest centre is %d", i, own, best)
		}
	}
}

// TestBlackscholesPriceBounds checks the no-arbitrage bounds of a
// European call: max(0, S - K*exp(-rT)) <= price <= S.
func TestBlackscholesPriceBounds(t *testing.T) {
	bs := NewBlackscholes().(*blackscholes)
	ref := bench.NewRunner(42).Reference(bs)
	prices := ref.Output.Values

	rng := newSeedRand(42)
	spot := make([]float64, bsOptions)
	strike := make([]float64, bsOptions)
	rate := make([]float64, bsOptions)
	vol := make([]float64, bsOptions)
	otime := make([]float64, bsOptions)
	fill := func(dst []float64, scale float64) {
		for i := range dst {
			dst[i] = float64(rng.Float32()) * scale
		}
	}
	fill(spot, 512)
	fill(strike, 512)
	fill(rate, 0.125)
	fill(vol, 0.5)
	fill(otime, 4)

	const eps = 1e-9
	for i, p := range prices {
		s := spot[i] + 1
		k := strike[i] + 1
		r := rate[i] + 0.01
		tt := otime[i] + 0.25
		lower := math.Max(0, s-k*math.Exp(-r*tt))
		if p < lower-eps || p > s+eps {
			t.Fatalf("option %d: price %v outside [%v, %v] (S=%v K=%v)", i, p, lower, s, s, k)
		}
	}
}

// TestHotspotApproachesEquilibrium checks the thermal model: with
// constant power, the grid must march toward the ambient+power/leak
// equilibrium, i.e. the final temperatures stay positive and bounded by
// the maximum possible injection.
func TestHotspotApproachesEquilibrium(t *testing.T) {
	h := NewHotspot()
	out := bench.NewRunner(42).Reference(h).Output.Values
	// Equilibrium bound: T_eq = power*Rz with power < 0.0625, Rz = 0.0625.
	maxEq := 0.0625 * 0.0625
	for i, v := range out {
		if v < 0 || v > maxEq+0.003 { // +initial transient allowance
			t.Fatalf("temp[%d] = %v outside [0, %v]", i, v, maxEq)
		}
	}
}

// TestSRADCoefficientClamp checks the diffusion coefficient invariant the
// update relies on: with c in [0,1] (clamped in the port), the reference
// run must keep every finite pixel positive - diffusion cannot create
// negative intensities.
func TestSRADCoefficientClamp(t *testing.T) {
	s := NewSRAD()
	out := bench.NewRunner(42).Reference(s).Output.Values
	for i, v := range out {
		if math.IsNaN(v) {
			t.Fatalf("reference pixel %d is NaN", i)
		}
		if v <= 0 {
			t.Fatalf("pixel %d = %v, diffusion created non-positive intensity", i, v)
		}
	}
}

// TestLavaMDForceFiniteAndCharged checks the force accumulation: every
// particle interacts with 27 boxes of particles, so its potential (the
// first fv component) must be positive and bounded by the total charge it
// can see.
func TestLavaMDForceFiniteAndCharged(t *testing.T) {
	l := NewLavaMD()
	out := bench.NewRunner(42).Reference(l).Output.Values
	n := lavaBoxes * lavaPerBox
	if len(out) != 4*n {
		t.Fatalf("output length %d", len(out))
	}
	// Potential bound: sum over (neighbors+1)*perBox charges, each <= 1,
	// with vij <= 1.
	maxPot := float64((lavaNeighbors + 1) * lavaPerBox)
	for i := 0; i < n; i++ {
		pot := out[4*i]
		if pot <= 0 || pot > maxPot {
			t.Fatalf("potential[%d] = %v outside (0, %v]", i, pot, maxPot)
		}
		for c := 1; c < 4; c++ {
			if math.IsNaN(out[4*i+c]) || math.IsInf(out[4*i+c], 0) {
				t.Fatalf("force[%d][%d] not finite", i, c)
			}
		}
	}
}
