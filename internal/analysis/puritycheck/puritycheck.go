// Package puritycheck defines an analyzer that proves the caching
// contract every performance layer of this repo rests on: a benchmark's
// Run/RunIR body (and everything it reaches in its package, including
// the compiled-kernel execution path in internal/compile) must be a
// pure function of the five-input purity key — bench, seed, semantics,
// machine fingerprint, and configuration. The run cache (PR 3), the
// durable result store (PR 7), and the compile cache (PR 8) all replay
// a stored result instead of executing; any other input silently makes
// replayed results diverge from fresh ones, and only a lucky
// equivalence test would notice.
//
// Roots are function declarations named Run or RunIR that take a
// parameter named seed — the port signature `Run(t *mp.Tape, seed
// int64)` and the compiled-kernel signature `Run(prog Program, seed
// int64)`. From each root the analyzer walks the same-package static
// call graph (astq.CallGraph: any reference to a package-local
// function counts, so helpers passed as values are covered) and flags,
// anywhere in the reachable bodies:
//
//   - wall-clock reads: the astq.WallClock time functions;
//   - environment and host-state reads: any call into os, os/exec, or
//     syscall;
//   - non-seeded randomness: global math/rand draws (the
//     astq.GlobalRandAllowed constructors stay legal — that is exactly
//     how seeds enter);
//   - cross-run state: writes to package-level variables, and reads of
//     package-level variables that are mutated anywhere in the package
//     (immutable name/coefficient tables stay legal); reads of foreign
//     package-level variables are always flagged, since their mutators
//     are out of view;
//   - order leaks: iteration over a map, whose order would leak into
//     emitted values.
//
// Calls into other repo packages (mp.Tape, typedep) are trusted: the
// Tape is the purity boundary and carries the key's semantics and
// configuration. Justified exceptions use the standard //mixplint:
// suppression model.
package puritycheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "puritycheck",
	Doc:  "Run/RunIR bodies must be pure functions of the purity key (bench, seed, semantics, machine fingerprint, config)",
	Run:  run,
}

// hostStatePkgs are packages whose package-level functions read process,
// host, or environment state.
var hostStatePkgs = map[string]bool{
	"os":      true,
	"os/exec": true,
	"syscall": true,
}

func run(pass *analysis.Pass) error {
	graph := astq.NewCallGraph(pass.TypesInfo, pass.Files)
	var roots []*types.Func
	for _, fn := range graph.Funcs() {
		if isRoot(fn, graph.Decl(fn)) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	mutated := mutatedPackageVars(pass)
	for fn := range graph.Reachable(roots...) {
		checkBody(pass, graph.Decl(fn).Body, mutated)
	}
	return nil
}

// isRoot reports whether fn is a result-producing entry point: a
// declaration named Run or RunIR with a parameter named seed.
func isRoot(fn *types.Func, decl *ast.FuncDecl) bool {
	if decl == nil || (fn.Name() != "Run" && fn.Name() != "RunIR") {
		return false
	}
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "seed" {
				return true
			}
		}
	}
	return false
}

// mutatedPackageVars scans every file (reachable or not) for mutations
// of this package's package-level variables: assignments, inc/dec, and
// address-taking outside the variable's own declaration.
func mutatedPackageVars(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if v := pkgLevelVar(pass, e); v != nil {
			out[v] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					mark(n.X)
				}
			}
			return true
		})
	}
	return out
}

// pkgLevelVar resolves an expression to a package-level variable of the
// analyzed package (possibly behind a selector base), or nil.
func pkgLevelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[x].(*types.Var)
			if ok && !v.IsField() && v.Pkg() == pass.Pkg && v.Parent() == pass.Pkg.Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkBody flags every purity violation in one reachable function body
// (nested function literals included). Write targets are collected
// first so a mutated variable is reported once per site as a write, not
// again as a read of itself.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, mutated map[*types.Var]bool) {
	writeTargets := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writeTargets[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				writeTargets[id] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelVar(pass, lhs); v != nil {
					pass.Reportf(lhs.Pos(), "write to package-level %s in a Run-reachable path; cross-run state breaks run purity", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelVar(pass, n.X); v != nil {
				pass.Reportf(n.Pos(), "write to package-level %s in a Run-reachable path; cross-run state breaks run purity", v.Name())
			}
		case *ast.RangeStmt:
			if astq.IsMap(pass.TypesInfo, n.X) {
				pass.Reportf(n.Pos(), "map iteration in a Run-reachable path; its nondeterministic order can leak into results — iterate a sorted slice instead")
			}
		case *ast.Ident:
			if !writeTargets[n] {
				checkVarRead(pass, n, mutated)
			}
		}
		return true
	})
}

// checkCall flags calls whose results depend on something outside the
// purity key.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := astq.CalleePkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case pkg == "time" && astq.WallClock[name]:
		pass.Reportf(call.Pos(), "time.%s reads the wall clock in a Run-reachable path; results must derive only from the purity key", name)
	case hostStatePkgs[pkg]:
		pass.Reportf(call.Pos(), "%s.%s reads process or host state in a Run-reachable path; results must derive only from the purity key", pkg, name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !astq.GlobalRandAllowed[name]:
		pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source in a Run-reachable path; seed all randomness from the run's seed", name)
	}
}

// checkVarRead flags reads of mutable package-level state: own-package
// variables with a recorded mutation site, and any foreign package-level
// variable (its mutators are outside this pass's view).
func checkVarRead(pass *analysis.Pass, id *ast.Ident, mutated map[*types.Var]bool) {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Pkg() == pass.Pkg {
		if v.Parent() == pass.Pkg.Scope() && mutated[v] {
			pass.Reportf(id.Pos(), "read of mutable package-level %s in a Run-reachable path; results must derive only from the purity key", v.Name())
		}
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		pass.Reportf(id.Pos(), "read of foreign package-level %s.%s in a Run-reachable path; results must derive only from the purity key", v.Pkg().Path(), v.Name())
	}
}
