package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// intPredict is the integrate predictors kernel (Livermore loop 9
// lineage): each element's new state is a fixed linear combination of its
// prediction history,
//
//	px[i*W] = c0*(px[i*W+4] + px[i*W+5]) + px[i*W+2] +
//	          dm22*px[i*W+6] + dm23*px[i*W+7] + dm24*px[i*W+8] +
//	          dm25*px[i*W+9] + dm26*px[i*W+10] + dm27*px[i*W+11] +
//	          cx[i]
//
// Inventory (Table II: TV=9, TC=2): the history matrix px and the
// correction vector cx share one cluster (both flow through the integrate
// routine's pointer parameters); the seven integration coefficients c0,
// dm22..dm27 form the second, initialised by one setup routine.
//
// Each output element takes a single store-rounding of a ~0.1-magnitude
// value, so the demoted error sits near 2e-9: comfortably inside the
// kernel threshold, which is why the paper reports int-predict as a
// demotable kernel with mid-range speedup.
type intPredict struct {
	kernel
	vPx, vCx mp.VarID
	coeff    [7]mp.VarID
}

const (
	ipN     = 4096
	ipW     = 13
	ipReps  = 8
	ipScale = 4
)

// NewIntPredict constructs the kernel.
func NewIntPredict() bench.Benchmark {
	g := typedep.NewGraph()
	k := &intPredict{kernel: kernel{
		name:  "int-predict",
		desc:  "Integrate predictors",
		graph: g,
	}}
	k.vPx = g.Add("px", "integrate", typedep.ArrayVar)
	k.vCx = g.Add("cx", "integrate", typedep.ArrayVar)
	names := [7]string{"c0", "dm22", "dm23", "dm24", "dm25", "dm26", "dm27"}
	for i, n := range names {
		k.coeff[i] = g.Add(n, "setup", typedep.Scalar)
	}
	g.Connect(k.vPx, k.vCx)
	//mixplint:alias -- the C source declares c0 and dm22..dm27 in one register block filled by a single initializer; dm25..dm27 never appear in the loop body, so only the C declaration couples them
	g.ConnectAll(k.coeff[:]...)
	return k
}

func (k *intPredict) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(ipScale)
	rng := t.Rand(seed)
	px := t.NewArray(k.vPx, ipN*ipW)
	cx := t.NewArray(k.vCx, ipN)
	fillRand(px, rng, 0.01, 0.1)
	fillRand(cx, rng, 0.01, 0.1)
	var c [7]float64
	for i, v := range k.coeff {
		c[i] = t.Value(v, float64(rng.Float32())*0.125)
	}

	arrP, sclP := t.Prec(k.vPx), t.Prec(k.coeff[0])
	out := make([]float64, ipN)
	for rep := 0; rep < ipReps; rep++ {
		for i := 0; i < ipN; i++ {
			b := i * ipW
			v := c[0]*(px.Get(b+4)+px.Get(b+5)) + px.Get(b+2) +
				c[1]*px.Get(b+6) + c[2]*px.Get(b+7) + c[3]*px.Get(b+8) +
				c[4]*px.Get(b+9) + c[5]*px.Get(b+10) + c[6]*px.Get(b+11) +
				cx.Get(i)
			px.Set(b, v)
			out[i] = px.Get(b)
		}
	}
	exprP := mp.F64
	if arrP == mp.F32 && sclP == mp.F32 {
		exprP = mp.F32
	}
	t.AddFlops(exprP, 16*ipN*ipReps)
	if arrP != sclP {
		t.AddCasts(ipN * ipReps)
	}
	return bench.Output{Values: out}
}
