// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section. Each target regenerates its artifact and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. The application campaign (Table V and
// the figures) is the expensive part - it is the equivalent of the paper's
// multi-day cluster run - so those targets share one cached campaign: the
// first benchmark to need it pays for it.
package mixpbench_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	mixpbench "repro"
	"repro/internal/bench"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/suite"
	"repro/internal/verify"
)

// fullStudy caches the complete campaign across benchmark targets.
var (
	fullStudyOnce sync.Once
	fullStudyVal  *report.Study
)

func fullStudy(b *testing.B) *report.Study {
	b.Helper()
	fullStudyOnce.Do(func() {
		fullStudyVal = report.Run(report.Options{Workers: 2, Progress: func(m string) { b.Log(m) }})
	})
	return fullStudyVal
}

// BenchmarkTableI regenerates the kernel inventory.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := report.TableI()
		if !strings.Contains(out, "tridiag") {
			b.Fatal("table I incomplete")
		}
	}
}

// BenchmarkTableII regenerates the Typeforge complexity inventory and
// reports the suite-wide totals.
func BenchmarkTableII(b *testing.B) {
	tv, tc := 0, 0
	for i := 0; i < b.N; i++ {
		out := report.TableII()
		if !strings.Contains(out, "195") {
			b.Fatal("table II incomplete")
		}
		tv, tc = 0, 0
		for _, bm := range suite.All() {
			tv += bm.Graph().NumVars()
			tc += bm.Graph().NumClusters()
		}
	}
	b.ReportMetric(float64(tv), "total-vars")
	b.ReportMetric(float64(tc), "total-clusters")
}

// BenchmarkTableIII regenerates the kernel study (10 kernels x 6
// algorithms at threshold 1e-8) and reports the banded-lin-eq speedup -
// the paper's strongest kernel result.
func BenchmarkTableIII(b *testing.B) {
	var study *report.Study
	for i := 0; i < b.N; i++ {
		study = report.Run(report.Options{Workers: 2, KernelsOnly: true})
	}
	b.ReportMetric(study.Kernel["banded-lin-eq"]["DD"].Speedup, "banded-DD-speedup")
	b.ReportMetric(study.Kernel["iccg"]["CB"].Speedup, "iccg-CB-speedup")
}

// BenchmarkCampaignSharedCache measures the kernel campaign with the
// study-wide run cache (the default): the 60 jobs execute each distinct
// (kernel, configuration) once between them. Compare against
// BenchmarkCampaignColdCache for the cache's wall-clock effect; both
// produce byte-identical studies (locked by
// harness.TestSchedulerCacheDeterministic).
func BenchmarkCampaignSharedCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Run(report.Options{Workers: 2, KernelsOnly: true})
	}
}

// BenchmarkCampaignColdCache measures the same kernel campaign with
// caching disabled: every job re-executes every configuration it
// proposes, as the pre-cache harness did.
func BenchmarkCampaignColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Run(report.Options{Workers: 2, KernelsOnly: true, NoCache: true})
	}
}

// BenchmarkCampaignCompiled and BenchmarkCampaignInterpreted are the
// compiled-evaluation speedup pair: the identical kernel campaign (60
// jobs, run cache off so every proposed configuration actually executes),
// evaluated through precision-specialized compiled kernels versus fresh
// interpreted tapes. Both produce byte-identical studies (locked by the
// bench and harness equivalence tests); the ratio of their ns/op is the
// compiler's campaign-level speedup, recorded in EXPERIMENTS.md and
// artifacts/comparison.md. Run with a pinned -benchtime (see `make
// bench`) so the two sides measure the same amount of work.
func BenchmarkCampaignCompiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Run(report.Options{Workers: 2, KernelsOnly: true, NoCache: true})
	}
}

// BenchmarkCampaignInterpreted is the interpreted side of the pair; see
// BenchmarkCampaignCompiled.
func BenchmarkCampaignInterpreted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Run(report.Options{Workers: 2, KernelsOnly: true, NoCache: true, Interpreted: true})
	}
}

// BenchmarkCampaignLadder2 and BenchmarkCampaignLadder3 are the
// ladder-depth cost pair: the identical kernel campaign (60 jobs, shared
// run cache) over the paper's two-level double/single axis versus the
// three-rung f64,f32,bf16 ladder. The ratio of their ns/op is the
// campaign-level price of one extra rung - every strategy re-runs its
// deepening stage per rung, so the search space grows from 2^loc to
// 3^loc while memoisation keeps the paid evaluations far below that.
// Run with a pinned -benchtime (see `make bench`) so both sides measure
// the same amount of work; benchjson records the pair in BENCH_9.json.
func BenchmarkCampaignLadder2(b *testing.B) {
	var study *report.Study
	for i := 0; i < b.N; i++ {
		study = report.Run(report.Options{Workers: 2, KernelsOnly: true})
	}
	b.ReportMetric(study.Kernel["hydro-1d"]["DD"].Speedup, "hydro-DD-speedup")
}

// BenchmarkCampaignLadder3 is the three-rung side of the pair; see
// BenchmarkCampaignLadder2.
func BenchmarkCampaignLadder3(b *testing.B) {
	var study *report.Study
	for i := 0; i < b.N; i++ {
		study = report.Run(report.Options{Workers: 2, KernelsOnly: true, Precisions: "f64,f32,bf16"})
	}
	b.ReportMetric(study.Kernel["hydro-1d"]["DD"].Speedup, "hydro-DD-speedup")
}

// BenchmarkTableIV regenerates the manual whole-program conversion study
// and reports the two extreme applications the paper highlights.
func BenchmarkTableIV(b *testing.B) {
	runner := bench.NewRunner(report.Seed)
	var lavamd, kmeans float64
	for i := 0; i < b.N; i++ {
		for _, a := range suite.Apps() {
			ref := runner.Reference(a)
			single := runner.RunManualSingle(a)
			su := ref.Measured.Mean / single.Measured.Mean
			switch a.Name() {
			case "LavaMD":
				lavamd = su
			case "K-means":
				kmeans = su
			}
		}
	}
	b.ReportMetric(lavamd, "lavamd-speedup")
	b.ReportMetric(kmeans, "kmeans-speedup")
}

// BenchmarkTableV regenerates the application study (7 applications x 5
// algorithms x 3 thresholds under the simulated 24-hour budget). The
// campaign is cached across targets; the first iteration pays for it.
func BenchmarkTableV(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = fullStudy(b).TableV()
	}
	if !strings.Contains(out, "LavaMD") {
		b.Fatal("table V incomplete")
	}
	s := fullStudy(b)
	b.ReportMetric(s.App[1e-3]["LavaMD"]["DD"].Speedup, "lavamd-1e-3-DD-speedup")
	timeouts := 0
	for _, th := range report.AppThresholds {
		for _, rows := range s.App[th] {
			for _, r := range rows {
				if !report.CellFilled(r) {
					timeouts++
				}
			}
		}
	}
	b.ReportMetric(float64(timeouts), "empty-cells")
}

// BenchmarkFigure2a regenerates Figure 2a (clusters vs evaluated
// configurations, DD vs GA).
func BenchmarkFigure2a(b *testing.B) {
	var pts []report.Point
	for i := 0; i < b.N; i++ {
		pts = fullStudy(b).Figure2aData()
	}
	maxDD, maxGA := 0.0, 0.0
	for _, p := range pts {
		if p.Algorithm == "DD" && p.Y > maxDD {
			maxDD = p.Y
		}
		if p.Algorithm == "GA" && p.Y > maxGA {
			maxGA = p.Y
		}
	}
	// The paper's observation: DD's evaluation count can greatly exceed
	// GA's nearly constant one.
	b.ReportMetric(maxDD, "max-DD-evals")
	b.ReportMetric(maxGA, "max-GA-evals")
}

// BenchmarkFigure2b regenerates Figure 2b (clusters vs speedup, DD vs GA).
func BenchmarkFigure2b(b *testing.B) {
	var pts []report.Point
	for i := 0; i < b.N; i++ {
		pts = fullStudy(b).Figure2bData()
	}
	bestDD := 0.0
	for _, p := range pts {
		if p.Algorithm == "DD" && p.Y > bestDD {
			bestDD = p.Y
		}
	}
	b.ReportMetric(bestDD, "best-DD-speedup")
}

// BenchmarkFigure3 regenerates Figure 3 (tested configurations vs speedup
// over every search scenario) and reports how many scenarios land in the
// paper's dominant 1.0-1.2x band.
func BenchmarkFigure3(b *testing.B) {
	var pts []report.Point
	for i := 0; i < b.N; i++ {
		pts = fullStudy(b).Figure3Data()
	}
	inBand := 0
	for _, p := range pts {
		if p.Y >= 1.0 && p.Y <= 1.2 {
			inBand++
		}
	}
	b.ReportMetric(float64(len(pts)), "scenarios")
	b.ReportMetric(float64(inBand), "speedup-1.0-1.2")
}

// BenchmarkAblationCacheStep quantifies the cache-capacity step the
// DESIGN calls out: LavaMD's full-single speedup under the calibrated
// hierarchy versus a flat-memory machine that can only reward traffic
// halving. Without the step the speedup collapses toward the sub-2x
// regime, demonstrating that LavaMD's headline number is a working-set
// effect, exactly the paper's insight.
func BenchmarkAblationCacheStep(b *testing.B) {
	lavamd, err := mixpbench.Benchmark("lavamd")
	if err != nil {
		b.Fatal(err)
	}
	var withStep, flat float64
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(report.Seed)
		ref := r.Reference(lavamd)
		single := r.RunManualSingle(lavamd)
		withStep = ref.Measured.Mean / single.Measured.Mean

		flatMachine := perfmodel.Default()
		flatMachine.Caches = nil // every access at DRAM bandwidth
		r.Machine = flatMachine
		refFlat := r.Reference(lavamd)
		singleFlat := r.RunManualSingle(lavamd)
		flat = refFlat.Measured.Mean / singleFlat.Measured.Mean
	}
	b.ReportMetric(withStep, "speedup-with-cache-step")
	b.ReportMetric(flat, "speedup-flat-memory")
	if withStep <= flat {
		b.Fatalf("cache step had no effect: %.2f vs %.2f", withStep, flat)
	}
}

// BenchmarkAblationClusterSearch quantifies the paper's clustering
// insight: delta debugging over Typeforge clusters versus the same
// strategy over raw variables on CFD (195 variables, 25 clusters). The
// variable-level search proposes cluster-splitting configurations that
// fail to compile, inflating the evaluation count for the same result.
func BenchmarkAblationClusterSearch(b *testing.B) {
	cfd, err := mixpbench.Benchmark("cfd")
	if err != nil {
		b.Fatal(err)
	}
	var evCluster, evVariable int
	for i := 0; i < b.N; i++ {
		for _, mode := range []search.Mode{search.ByCluster, search.ByVariable} {
			space := search.NewSpace(cfd.Graph(), mode)
			// 1e-8 forces real bisection (the whole program fails at once).
			eval := search.NewEvaluator(space, bench.NewRunner(report.Seed), cfd, 1e-8)
			out := search.DeltaDebug{}.Search(eval)
			if mode == search.ByCluster {
				evCluster = out.Evaluated
			} else {
				evVariable = out.Evaluated
			}
		}
	}
	b.ReportMetric(float64(evCluster), "DD-evals-clusters")
	b.ReportMetric(float64(evVariable), "DD-evals-variables")
	if evVariable <= evCluster {
		b.Fatalf("variable-level search should waste evaluations: %d vs %d", evVariable, evCluster)
	}
}

// BenchmarkVerificationMetrics measures the verification library on a
// realistic output size (the per-configuration cost every search
// evaluation pays).
func BenchmarkVerificationMetrics(b *testing.B) {
	ref := make([]float64, 1<<16)
	got := make([]float64, 1<<16)
	for i := range ref {
		ref[i] = float64(i)
		got[i] = float64(i) + 1e-9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verify.Check(verify.MAE, ref, got, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorThroughput measures raw configuration evaluations per
// second on a kernel - the quantity that bounds how much search the
// simulated 24-hour budget can afford in real time.
func BenchmarkEvaluatorThroughput(b *testing.B) {
	k, err := mixpbench.Benchmark("innerprod")
	if err != nil {
		b.Fatal(err)
	}
	space := search.NewSpace(k.Graph(), search.ByCluster)
	eval := search.NewEvaluator(space, bench.NewRunner(report.Seed), k, 1e-8)
	eval.SetBudget(math.Inf(1))
	sets := []search.Set{search.FullSet(space.NumUnits())}
	for u := 0; u < space.NumUnits(); u++ {
		s := search.NewSet(space.NumUnits())
		s.Add(u)
		sets = append(sets, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(sets[i%len(sets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIRLevel quantifies the paper's source-vs-IR insight on
// LavaMD: an IR-level tool narrows the arithmetic but cannot retype the
// allocations, so the working set stays above the cache boundary and the
// cache-step speedup never materialises. "Such opportunities cannot be
// discovered from tools that operate on the intermediate representation
// of the compiler ... the application memory is not changed."
func BenchmarkAblationIRLevel(b *testing.B) {
	lavamd, err := mixpbench.Benchmark("lavamd")
	if err != nil {
		b.Fatal(err)
	}
	n := lavamd.Graph().NumVars()
	var sourceSU, irSU float64
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(report.Seed)
		ref := r.Reference(lavamd)
		source := r.Run(lavamd, bench.AllSingle(n))
		ir := r.RunIR(lavamd, bench.AllSingle(n))
		sourceSU = ref.Measured.Mean / source.Measured.Mean
		irSU = ref.Measured.Mean / ir.Measured.Mean
	}
	b.ReportMetric(sourceSU, "source-level-speedup")
	b.ReportMetric(irSU, "ir-level-speedup")
	if irSU >= sourceSU {
		b.Fatalf("IR-level demotion should trail source level: %.2f vs %.2f", irSU, sourceSU)
	}
}
