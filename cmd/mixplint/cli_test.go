package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestCLIJSON re-execs the real binary against two throwaway modules:
// a clean one must exit 0, and one with a wall-clock read must exit 1
// with well-formed, stably-ordered JSON on stdout. This pins the CLI
// contract CI depends on (exit code drives the build result, the JSON
// feeds lint-report artifacts).
func TestCLIJSON(t *testing.T) {
	if os.Getenv("MIXPLINT_RUN_MAIN") == "1" {
		flag.CommandLine = flag.NewFlagSet("mixplint", flag.ExitOnError)
		os.Args = append([]string{"mixplint"},
			strings.Split(os.Getenv("MIXPLINT_ARGS"), "\x1f")...)
		if err := os.Chdir(os.Getenv("MIXPLINT_DIR")); err != nil {
			t.Fatal(err)
		}
		main()
		os.Exit(0)
	}

	writeModule := func(name string, files map[string]string) string {
		dir := filepath.Join(t.TempDir(), name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		files["go.mod"] = "module " + name + "\n\ngo 1.22\n"
		for rel, src := range files {
			if err := os.WriteFile(filepath.Join(dir, rel), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	runMain := func(dir string, args ...string) (int, string, string) {
		cmd := exec.Command(os.Args[0], "-test.run", "TestCLIJSON")
		cmd.Env = append(os.Environ(),
			"MIXPLINT_RUN_MAIN=1",
			"MIXPLINT_DIR="+dir,
			"MIXPLINT_ARGS="+strings.Join(args, "\x1f"))
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("run %v: %v", args, err)
			}
			code = ee.ExitCode()
		}
		return code, stdout.String(), stderr.String()
	}

	clean := writeModule("cleanmod", map[string]string{
		"lib.go": "package cleanmod\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	dirty := writeModule("dirtymod", map[string]string{
		"lib.go": "package dirtymod\n\nimport \"time\"\n\n" +
			"func Stamp() int64 { return time.Now().UnixNano() }\n",
	})

	if code, stdout, stderr := runMain(clean, "-json"); code != 0 {
		t.Fatalf("clean module: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	code, stdout, stderr := runMain(dirty, "-json")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	var rep analysis.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not well-formed report JSON: %v\n%s", err, stdout)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("dirty module reported no findings")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Analyzer == "simclock" && f.File == "lib.go" && strings.Contains(f.Message, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Errorf("no simclock finding for lib.go time.Now: %+v", rep.Findings)
	}

	// Ordering is part of the contract: a second run must be
	// byte-identical so CI diffs and caches are stable.
	if _, again, _ := runMain(dirty, "-json"); again != stdout {
		t.Errorf("JSON output is not stable across runs:\n--- first ---\n%s\n--- second ---\n%s", stdout, again)
	}

	// -sarif on the same module: exit 1 and parseable SARIF with the
	// same finding.
	code, sarifOut, stderr := runMain(dirty, "-sarif")
	if code != 1 {
		t.Fatalf("dirty module -sarif: exit %d, want 1\nstderr:\n%s", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sarifOut), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, sarifOut)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("unexpected SARIF shape: %s", sarifOut)
	}

	// The flags are mutually exclusive: usage errors exit 2.
	if code, _, stderr := runMain(dirty, "-json", "-sarif"); code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("-json -sarif: exit %d, stderr:\n%s", code, stderr)
	}
}
