package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// faultySpecs loads the repo's fault-injection campaign, the exact
// configuration the acceptance criterion names.
func faultyCampaign(t *testing.T) Campaign {
	t.Helper()
	raw, err := os.ReadFile("../../configs/faulty.yaml")
	if err != nil {
		t.Fatal(err)
	}
	camp, err := ParseCampaign(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// jobCost is a job's total simulated spend as the harness reports it:
// every attempt plus the backoff waits between retries.
func jobCost(r JobResult) float64 {
	if r.Skipped {
		return 0
	}
	if len(r.Attempts) == 0 {
		return r.Report.SpentSeconds
	}
	total := 0.0
	for _, a := range r.Attempts {
		total += a.SpentSeconds + a.BackoffSeconds
	}
	return total
}

// TestTraceExportInvariance is the acceptance lock of the deterministic
// tracing contract: for configs/faulty.yaml the exported Chrome trace
// and profile are byte-identical at workers 1, 2, and 4, with the run
// cache on and off, and the profile's per-phase totals sum exactly to
// the campaign's reported analysis time. Run under -race this also
// exercises the accounting paths' thread safety.
func TestTraceExportInvariance(t *testing.T) {
	camp := faultyCampaign(t)

	type export struct {
		label          string
		chrome, profil []byte
	}
	var exports []export
	var reference []JobResult
	for _, workers := range []int{1, 2, 4} {
		for _, noCache := range []bool{false, true} {
			results, err := RunCampaign(camp.Specs, CampaignOptions{
				Workers: workers,
				Seed:    42,
				Faults:  camp.Faults,
				Retry:   camp.Retry,
				NoCache: noCache,
			})
			if err != nil {
				t.Fatal(err)
			}
			if reference == nil {
				reference = results
			}
			tr := BuildTrace("faulty", camp.Specs, results)
			var cb, pb bytes.Buffer
			if err := trace.WriteChromeTrace(&cb, tr); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteProfile(&pb, trace.BuildProfile(tr, 10)); err != nil {
				t.Fatal(err)
			}
			exports = append(exports, export{
				fmt.Sprintf("workers=%d noCache=%v", workers, noCache),
				cb.Bytes(), pb.Bytes(),
			})
		}
	}
	for _, e := range exports[1:] {
		if !bytes.Equal(e.chrome, exports[0].chrome) {
			t.Errorf("trace bytes: %s differs from %s", e.label, exports[0].label)
		}
		if !bytes.Equal(e.profil, exports[0].profil) {
			t.Errorf("profile bytes: %s differs from %s", e.label, exports[0].label)
		}
	}

	if err := trace.ValidateChrome(bytes.NewReader(exports[0].chrome)); err != nil {
		t.Errorf("exported trace does not validate: %v", err)
	}

	// Phase totals tile the campaign's reported analysis time exactly:
	// the profile sums its phases in a fixed order, and that sum is the
	// same simulated spend the job results report.
	var p trace.Profile
	if err := json.Unmarshal(exports[0].profil, &p); err != nil {
		t.Fatal(err)
	}
	var phaseSum float64
	for _, ph := range p.Phases {
		phaseSum += ph.Seconds
	}
	if phaseSum != p.TotalSeconds {
		t.Errorf("phase totals sum %v, profile total %v", phaseSum, p.TotalSeconds)
	}
	reported := 0.0
	for _, r := range reference {
		reported += jobCost(r)
	}
	if math.Abs(reported-p.TotalSeconds) > 1e-9*math.Max(1, reported) {
		t.Errorf("profile total %v, campaign reported analysis time %v", p.TotalSeconds, reported)
	}
	if p.TotalSeconds <= 0 {
		t.Error("campaign consumed no simulated time")
	}
}

// TestTraceCancelWellFormed cancels a campaign mid-run and checks the
// span tree is still well-formed: every started span ends at or after
// its start, children stay inside their parents, sibling phases abut,
// canceled and skipped jobs are marked, and the Chrome export still
// validates.
func TestTraceCancelWellFormed(t *testing.T) {
	specs := cancelSpecs(t)
	const cancelAfter = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int64
	results, err := RunCampaignContext(ctx, specs, CampaignOptions{
		Workers: 2, Seed: 42,
		OnJobDone: func(int, JobResult) {
			if finished.Add(1) == cancelAfter {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := BuildTrace("canceled-campaign", specs, results)
	if tr.Jobs != len(specs) {
		t.Fatalf("trace has %d jobs, want %d", tr.Jobs, len(specs))
	}
	tr.Root.Walk(func(s *trace.Span) {
		if s.End < s.Start {
			t.Errorf("span %s ends before it starts: [%v, %v]", s.ID, s.Start, s.End)
		}
		for _, c := range s.Children() {
			if c.Start < s.Start || c.End > s.End+1e-9 {
				t.Errorf("child %s [%v, %v] escapes parent %s [%v, %v]",
					c.ID, c.Start, c.End, s.ID, s.Start, s.End)
			}
		}
	})

	// The job end states recorded in the results surface as span flags.
	sawCanceledOrSkipped := false
	for i, r := range results {
		job := tr.Root.Children()[i]
		if r.Skipped && job.Args["skipped"] != true {
			t.Errorf("job %d skipped but span not marked: %v", i, job.Args)
		}
		if r.Report.Canceled && job.Args["canceled"] != true {
			t.Errorf("job %d canceled but span not marked: %v", i, job.Args)
		}
		if r.Skipped || r.Report.Canceled {
			sawCanceledOrSkipped = true
		}
	}
	if !sawCanceledOrSkipped {
		t.Skip("cancellation interrupted nothing; nothing to assert")
	}

	var chrome bytes.Buffer
	if err := trace.WriteChromeTrace(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(bytes.NewReader(chrome.Bytes())); err != nil {
		t.Errorf("canceled campaign's trace does not validate: %v", err)
	}
}
