package typedepcheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestGood: fully witnessed graphs (P1 web, P2 co-location, P3 fill,
// P4 alias axiom) produce no diagnostics.
func TestGood(t *testing.T) {
	analysistest.Run(t, Analyzer, "good")
}

// TestLadder: a ladder-era port — the constructor parses and validates
// an mp.Ladder and declares the graph through a ladder-parameterized
// helper — interprets cleanly.
func TestLadder(t *testing.T) {
	analysistest.Run(t, Analyzer, "ladder")
}

// TestCustom: a port deriving its variable names from custom(e,m)
// formats (mp.Custom/MustCustom and the Prec accessors) interprets
// cleanly.
func TestCustom(t *testing.T) {
	analysistest.Run(t, Analyzer, "custom")
}

// TestBadMissing: Run dataflow that connects arrays the declared graph
// keeps apart is reported as a missing edge, including flow through a
// local temporary.
func TestBadMissing(t *testing.T) {
	analysistest.Run(t, Analyzer, "bad_missing")
}

// TestBadSpurious: declared-but-unwitnessed edges, idle declared
// variables, wrong Assign source lists, and kind mismatches are all
// reported.
func TestBadSpurious(t *testing.T) {
	analysistest.Run(t, Analyzer, "bad_spurious")
}
