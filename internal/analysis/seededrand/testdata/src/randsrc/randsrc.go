// Package randsrc is the seededrand fixture: global-source draws are
// flagged, explicitly seeded generators are not.
package randsrc

import "math/rand"

func bad() {
	_ = rand.Intn(10)                  // want `rand.Intn uses the global math/rand source`
	_ = rand.Float64()                 // want `rand.Float64 uses the global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the global math/rand source`
	_ = rand.Perm(4)                   // want `rand.Perm uses the global math/rand source`
}

func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() + float64(r.Intn(10))
}
