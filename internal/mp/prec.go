// Package mp implements the HPC-MixPBench mixed-precision runtime.
//
// The paper's runtime library wraps memory allocation and file IO so that a
// program whose variables have been demoted from double to single precision
// still allocates, reads, and writes data of the right width (the mp_malloc,
// mp_fread, and mp_fwrite calls of Listing 3). This package is the Go
// equivalent, with one addition made necessary by the reproduction strategy:
// instead of recompiling a program per precision configuration, benchmarks
// execute once against a Tape that carries the configuration. Every
// assignment to a variable that the configuration demotes to single
// precision is rounded through float32, which is exactly the numeric
// behaviour of a source-level type demotion (arithmetic evaluates in the
// wide type, the store narrows).
//
// The Tape also meters the work a real mixed-precision binary would perform
// - floating-point operations per precision, memory traffic per element
// width, and casts introduced at precision boundaries - so that the
// perfmodel package can reconstruct execution time for the machine the paper
// evaluated on.
package mp

import "fmt"

// Prec identifies a floating-point precision level. The paper's study
// restricts itself to the two levels supported by Typeforge's refactoring:
// IEEE-754 binary64 and binary32.
type Prec uint8

const (
	// F64 is IEEE-754 double precision, the precision every benchmark
	// starts from.
	F64 Prec = iota
	// F32 is IEEE-754 single precision, the demotion target of the
	// paper's study.
	F32
	// F16 is IEEE-754 half precision, supported as the extension level
	// the paper motivates for accelerators (p=3); the paper-table
	// regenerations never assign it.
	F16
)

// NumPrecs is the number of precision levels of the paper's study (its
// p; the search space over loc locations has p^loc points). The runtime
// additionally supports F16 for extension studies.
const NumPrecs = 2

// Size returns the width of one value of this precision in bytes.
func (p Prec) Size() uint64 {
	switch p {
	case F32:
		return 4
	case F16:
		return 2
	default:
		return 8
	}
}

// Round narrows x to the precision p. For F64 this is the identity; for F32
// the value takes a round trip through float32, which applies IEEE
// round-to-nearest-even narrowing including overflow to infinity and
// flush of values below the float32 subnormal range.
//
// The F64 identity is the common case on every hot path (the original
// program and every non-demoted variable), so it is split out where the
// compiler can inline it; narrowing goes through roundNarrow.
func (p Prec) Round(x float64) float64 {
	if p == F64 {
		return x
	}
	return p.roundNarrow(x)
}

// roundNarrow narrows x for the non-identity precisions.
func (p Prec) roundNarrow(x float64) float64 {
	if p == F32 {
		return float64(float32(x))
	}
	return roundToHalf(x)
}

// String implements fmt.Stringer using the paper's names for the levels.
func (p Prec) String() string {
	switch p {
	case F64:
		return "double"
	case F32:
		return "single"
	case F16:
		return "half"
	default:
		return fmt.Sprintf("Prec(%d)", uint8(p))
	}
}

// VarID names one tunable program location (a variable, parameter, or
// pointer in the source-level view). IDs are dense indices assigned by a
// benchmark's variable declaration order, so a precision configuration is a
// simple slice indexed by VarID.
type VarID int
