// Package key is the keycheck fixture: an annotated fingerprint writer
// missing a field is flagged; full coverage — including nested structs
// reached through a helper, composite-literal writers, and a justified
// exemption — passes clean.
package key

type EnergyModel struct {
	FlopJoules [3]float64
	ByteJoules float64
	IdleWatts  float64
}

type Machine struct {
	Name   string
	Rate   float64
	Energy EnergyModel
	Label  string
}

//mixplint:keyexempt Machine.Label -- display label, never read by the cost model

// fingerprint covers Rate and the nested energy model (via mixEnergy)
// but forgets Name; Label is legitimately exempted above.
//
//mixplint:key Machine -- every result-affecting machine field must be fingerprinted
func fingerprint(m Machine) uint64 { // want `field Machine.Name is not written by fingerprint`
	h := uint64(m.Rate)
	return h ^ mixEnergy(m.Energy)
}

// mixEnergy is reachable from fingerprint, so its field references
// satisfy the nested EnergyModel obligations.
func mixEnergy(e EnergyModel) uint64 {
	h := uint64(e.ByteJoules + e.IdleWatts)
	for _, f := range e.FlopJoules {
		h = h*31 + uint64(f)
	}
	return h
}

type Span struct {
	Lo int
	Hi int
}

// decodeSpan proves composite-literal keys count as writes: both fields
// are covered, no findings.
//
//mixplint:key Span -- round-trip codec must cover both bounds
func decodeSpan(w []int) Span { return Span{Lo: w[0], Hi: w[1]} }
