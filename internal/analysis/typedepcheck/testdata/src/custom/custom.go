// Package custom is a typedepcheck fixture for custom(e,m) formats:
// the constructor derives variable names from mp.Custom/MustCustom
// formats and branches on their accessors, so the interpreter must run
// the real format arithmetic (flag bit, exponent and mantissa widths)
// to recover the declared inventory.
package custom

import (
	"repro/internal/mp"
	"repro/internal/typedep"
)

type customPort struct {
	name  string
	graph *typedep.Graph

	vX, vY mp.VarID
}

func NewCustomPort() *customPort {
	half, err := mp.Custom(5, 10)
	if err != nil {
		panic(err)
	}
	tf32 := mp.MustCustom(8, 10)
	if !half.IsCustom() || half.ExpBits() != 5 || half.MantBits() != 10 {
		panic("wrong custom format")
	}
	g := typedep.NewGraph()
	c := &customPort{name: "custom-" + half.Name() + "-" + tf32.Name(), graph: g}
	c.vX = g.Add("x_"+half.Name(), "loop", typedep.ArrayVar)
	c.vY = g.Add("y_"+tf32.Name(), "loop", typedep.ArrayVar)
	g.ConnectAll(c.vX, c.vY)
	return c
}

func (c *customPort) Run(t *mp.Tape, seed int64) []float64 {
	x := t.NewArray(c.vX, 4)
	y := t.NewArray(c.vY, 4)
	x.Fill(2.0)
	for i := 0; i < 4; i++ {
		y.Set(i, x.Get(i)+1) // P2: x and y meet in one store
	}
	return y.Snapshot()
}
