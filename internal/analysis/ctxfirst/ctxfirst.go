// Package ctxfirst defines an analyzer enforcing the repo's context
// conventions, established when the engine layer made cancellation
// first-class: context.Context is always the first parameter, is never
// stored in a struct (storage detaches a value's lifetime from the call
// that created it and is how stale deadlines leak between campaigns),
// and is never silently re-minted mid-call-chain with
// context.Background()/TODO() when a caller already supplied one. The
// idiomatic nil-guard `if ctx == nil { ctx = context.Background() }` in
// compatibility wrappers stays legal.
package ctxfirst

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter, propagated, never stored or re-minted",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkStructFields(pass, f)
		for _, fn := range astq.EnclosingFuncs(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkStructFields flags context.Context stored in struct types.
func checkStructFields(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if isContext(pass.TypesInfo, field.Type) {
				pass.Reportf(field.Pos(), "context.Context stored in a struct; pass it as the first parameter of the methods that need it")
			}
		}
		return true
	})
}

type param struct {
	index int
	name  string
	pos   token.Pos
	obj   types.Object
}

// checkFunc enforces the parameter-position and no-re-minting rules for
// one function declaration or literal. Nested literals are checked on
// their own visit, so their bodies are skipped here.
func checkFunc(pass *analysis.Pass, fn astq.FuncNode) {
	ctxParams := contextParams(pass.TypesInfo, fn.Type)
	for _, p := range ctxParams {
		if p.index != 0 {
			pass.Reportf(p.pos, "context.Context must be the first parameter (found at position %d)", p.index+1)
		}
		if p.name == "_" {
			pass.Reportf(p.pos, "context parameter is dropped (named _); propagate it or remove it from the signature")
		}
	}
	if len(ctxParams) == 0 || fn.Body == nil {
		return
	}
	// A function that already receives a context must not mint a fresh
	// root one, except inside the `if ctx == nil` compatibility guard.
	guarded := nilGuardRanges(pass.TypesInfo, fn.Body, ctxParams)
	walkSkippingFuncLits(fn.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := astq.PkgFunc(pass.TypesInfo, call, "context")
		if !ok || (name != "Background" && name != "TODO") {
			return
		}
		for _, r := range guarded {
			if call.Pos() >= r[0] && call.End() <= r[1] {
				return
			}
		}
		pass.Reportf(call.Pos(), "context.%s inside a function that already receives a context; propagate the caller's context", name)
	})
}

// contextParams returns the context.Context parameters of ft with their
// flat positional index; an unnamed context parameter counts as
// dropped and is named "_".
func contextParams(info *types.Info, ft *ast.FuncType) []param {
	var out []param
	if ft.Params == nil {
		return nil
	}
	idx := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContext(info, field.Type) {
			if len(field.Names) == 0 {
				out = append(out, param{index: idx, name: "_", pos: field.Pos()})
			}
			for i, name := range field.Names {
				out = append(out, param{index: idx + i, name: name.Name, pos: name.Pos(), obj: info.Defs[name]})
			}
		}
		idx += width
	}
	return out
}

// nilGuardRanges finds `if ctx == nil { ... }` (or `nil == ctx`) blocks
// guarding one of the context parameters and returns their position
// ranges, inside which Background/TODO are allowed.
func nilGuardRanges(info *types.Info, body *ast.BlockStmt, params []param) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			return true
		}
		ident := asIdent(bin.X)
		if ident == nil {
			ident = asIdent(bin.Y)
		}
		if ident == nil {
			return true
		}
		obj := info.Uses[ident]
		for _, p := range params {
			if p.obj != nil && obj == p.obj {
				out = append(out, [2]token.Pos{ifStmt.Body.Pos(), ifStmt.Body.End()})
				break
			}
		}
		return true
	})
	return out
}

func asIdent(e ast.Expr) *ast.Ident {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return ident
}

// walkSkippingFuncLits visits every node in body except the bodies of
// nested function literals (they are analyzed as their own functions).
func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func isContext(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return astq.IsNamed(tv.Type, "context", "Context")
}
