package apps

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// srad is Speckle Reducing Anisotropic Diffusion (Rodinia lineage): a PDE
// method that removes locally correlated noise from ultrasonic/radar
// images without destroying features. Each iteration computes directional
// derivatives of the working image, a diffusion coefficient per pixel from
// the local statistics of a region of interest, and applies the divergence
// update. The output is the corrected image, compared with MAE.
//
// Inventory (Table II: TV=29, TC=14): the working image J and the
// coefficient grid c form pointer webs; the four directional-derivative
// grids each pair with a parameter; the ROI statistics travel in one
// struct-pointer cluster of eight; seven scalars are independent.
//
// Performance character: the paper's cautionary case. The working image
// holds exponentiated intensities, and the brightest speckles exceed the
// float32 range: the demoted image overflows to +Inf, the derivative of
// two infinities is NaN, and the NaN floods the output. Table IV records
// a 1.48x speedup for the full conversion with quality "NaN" - the time
// improves, the result is garbage - and every searched configuration that
// touches the arrays fails verification, leaving SRAD effectively
// untunable (speedups ~1.0 across Table V).
type srad struct {
	app
	vJ, vDN, vDS, vDW, vDE, vC mp.VarID
	vQ0sqr                     mp.VarID
}

const (
	sradRows  = 64
	sradCols  = 64
	sradIters = 12
	sradScale = 60
	sradLam   = 0.25 // diffusion rate lambda (float32-exact)
	// Per-pixel per-iteration flop split: exp on the libm double path.
	sradArithFlops = 30
	sradLibmFlops  = 75
)

// sradStatNames is the ROI-statistics struct cluster.
var sradStatNames = []string{
	"q0sqr", "sum", "sum2", "tmp", "meanROI", "varROI", "qsqr", "den",
}

// sradSingleNames are the independent scalars.
var sradSingleNames = []string{
	"lambda", "cN", "cS", "cW", "cE", "D", "r_factor",
}

// NewSRAD constructs the application.
func NewSRAD() bench.Benchmark {
	s := &srad{app: app{
		name:   "SRAD",
		desc:   "Speckle reducing anisotropic diffusion for ultrasonic/radar imaging",
		metric: verify.MAE,
		graph:  typedep.NewGraph(),
	}}
	g := s.graph
	s.vJ = g.Add("J", "main", typedep.ArrayVar)
	addAliases(g, s.vJ, "srad_main", "J", 2)
	s.vDN = g.Add("dN", "srad_main", typedep.ArrayVar)
	addAliases(g, s.vDN, "derivative", "dN", 1)
	s.vDS = g.Add("dS", "srad_main", typedep.ArrayVar)
	addAliases(g, s.vDS, "derivative", "dS", 1)
	s.vDW = g.Add("dW", "srad_main", typedep.ArrayVar)
	addAliases(g, s.vDW, "derivative", "dW", 1)
	s.vDE = g.Add("dE", "srad_main", typedep.ArrayVar)
	addAliases(g, s.vDE, "derivative", "dE", 1)
	s.vC = g.Add("c", "srad_main", typedep.ArrayVar)
	addAliases(g, s.vC, "diffusion", "c", 2)
	stats := make([]mp.VarID, len(sradStatNames))
	for i, n := range sradStatNames {
		stats[i] = g.Add(n, "roi_stats", typedep.Scalar)
	}
	//mixplint:alias -- the ROI statistics chain (sum, sum2, mean, variance, q0sqr) is a pure scalar pipeline in the C source; no element co-location exists for the analyzer to witness
	g.ConnectAll(stats...)
	s.vQ0sqr = stats[0]
	for _, n := range sradSingleNames {
		g.Add(n, "srad_main", typedep.Scalar)
	}
	if g.NumVars() != 29 || g.NumClusters() != 14 {
		panic(fmt.Sprintf("srad: inventory %d/%d, want 29/14", g.NumVars(), g.NumClusters()))
	}
	return s
}

func (s *srad) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(sradScale)
	rng := t.Rand(seed)
	rows, cols := sradRows, sradCols
	n := rows * cols
	j := t.NewArray(s.vJ, n)
	dN := t.NewArray(s.vDN, n)
	dS := t.NewArray(s.vDS, n)
	dW := t.NewArray(s.vDW, n)
	dE := t.NewArray(s.vDE, n)
	c := t.NewArray(s.vC, n)

	// Exponentiated log-compressed intensities: the bulk of the image sits
	// in a benign range, but the brightest speckles exceed float32's
	// maximum exponent once exponentiated.
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			intensity := 2 + 4*rng.Float64()
			// Bright speckles land outside the quiet ROI corner used for
			// the noise statistics.
			if (r >= 8 || cc >= 8) && rng.Intn(257) == 0 {
				intensity = 90 + 5*rng.Float64() // exp(90) > float32 max
			}
			j.Set(r*cols+cc, math.Exp(intensity))
		}
	}
	lam := sradLam

	for iter := 0; iter < sradIters; iter++ {
		// ROI statistics over a quiet corner of the image.
		sum, sum2 := 0.0, 0.0
		for r := 0; r < 8; r++ {
			for cc := 0; cc < 8; cc++ {
				v := j.Get(r*cols + cc)
				sum += v
				sum2 += v * v
			}
		}
		mean := sum / 64
		variance := sum2/64 - mean*mean
		q0sqr := t.Assign(s.vQ0sqr, variance/(mean*mean), 4, s.vJ)

		// Directional derivatives and diffusion coefficient.
		for r := 0; r < rows; r++ {
			for cc := 0; cc < cols; cc++ {
				i := r*cols + cc
				jc := j.Get(i)
				up, down, left, right := i, i, i, i
				if r > 0 {
					up = i - cols
				}
				if r < rows-1 {
					down = i + cols
				}
				if cc > 0 {
					left = i - 1
				}
				if cc < cols-1 {
					right = i + 1
				}
				dN.Set(i, j.Get(up)-jc)
				dS.Set(i, j.Get(down)-jc)
				dW.Set(i, j.Get(left)-jc)
				dE.Set(i, j.Get(right)-jc)

				g2 := (dN.Get(i)*dN.Get(i) + dS.Get(i)*dS.Get(i) +
					dW.Get(i)*dW.Get(i) + dE.Get(i)*dE.Get(i)) / (jc * jc)
				l := (dN.Get(i) + dS.Get(i) + dW.Get(i) + dE.Get(i)) / jc
				num := 0.5*g2 - 1.0/16.0*l*l
				den := 1 + 0.25*l
				qsqr := num / (den * den)
				cd := 1.0 / (1.0 + (qsqr-q0sqr)/(q0sqr*(1+q0sqr)))
				if cd < 0 {
					cd = 0
				} else if cd > 1 {
					cd = 1
				}
				c.Set(i, cd)
			}
		}
		// Divergence update.
		for r := 0; r < rows; r++ {
			for cc := 0; cc < cols; cc++ {
				i := r*cols + cc
				cS := c.Get(i)
				cE := c.Get(i)
				if r < rows-1 {
					cS = c.Get(i + cols)
				}
				if cc < cols-1 {
					cE = c.Get(i + 1)
				}
				d := c.Get(i)*dN.Get(i) + cS*dS.Get(i) +
					c.Get(i)*dW.Get(i) + cE*dE.Get(i)
				j.Set(i, j.Get(i)+0.25*lam*d)
			}
		}
	}

	work := uint64(n * sradIters)
	t.AddFlops(t.Prec(s.vJ), sradArithFlops*work)
	t.AddFlops(mp.F64, sradLibmFlops*work)

	// The corrected image leaves through the runtime library's file path
	// (mp_fwrite with a DOUBLE-declared output file, Listing 3), so the
	// on-disk layout matches the original program's no matter what width
	// the configuration gave the image buffer. Verification reads the
	// file back, exactly as the harness's quality command does.
	var outputFile bytes.Buffer
	if err := mp.WriteFrom(&outputFile, mp.F64, j); err != nil {
		panic("srad: writing output file: " + err.Error())
	}
	vals, err := mp.ReadValues(&outputFile, mp.F64, n)
	if err != nil {
		panic("srad: reading output file back: " + err.Error())
	}
	return bench.Output{Values: vals}
}
