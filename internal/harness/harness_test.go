package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/verify"
)

const kmeansYAML = `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
        threshold: 1e-3
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MCR'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
`

func TestParseConfig(t *testing.T) {
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	s := specs[0]
	if s.Name != "kmeans" || s.Bin != "kmeans" {
		t.Errorf("spec identity = %q/%q", s.Name, s.Bin)
	}
	if s.Metric != verify.MCR {
		t.Errorf("metric = %v", s.Metric)
	}
	if s.Analysis.Name != "floatSmith" || s.Analysis.Algorithm != "DD" {
		t.Errorf("analysis = %+v", s.Analysis)
	}
	if s.Analysis.Threshold != 1e-3 {
		t.Errorf("threshold = %g", s.Analysis.Threshold)
	}
	if s.Output.Option != "-o" || s.Output.Name != "outputFile.bin" {
		t.Errorf("output = %+v", s.Output)
	}
	if len(s.Copy) != 2 || s.Copy[1] != "kdd_bin" {
		t.Errorf("copy = %v", s.Copy)
	}
}

func TestParseConfigDefaultsThreshold(t *testing.T) {
	specs, err := ParseConfig(strings.Replace(kmeansYAML, "        threshold: 1e-3\n", "", 1))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Analysis.Threshold != DefaultThreshold {
		t.Errorf("threshold = %g, want default %g", specs[0].Analysis.Threshold, DefaultThreshold)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"missing bin":   strings.Replace(kmeansYAML, "bin: 'kmeans'", "notbin: 'x'", 1),
		"bad metric":    strings.Replace(kmeansYAML, "'MCR'", "'XXX'", 1),
		"bad algorithm": strings.Replace(kmeansYAML, "'ddebug'", "'simulated-annealing'", 1),
		"bad threshold": strings.Replace(kmeansYAML, "1e-3", "'not-a-number'", 1),
		"no analysis":   strings.Replace(kmeansYAML, "analysis:", "analyses:", 1),
		"two plugins":   strings.Replace(kmeansYAML, "    floatsmith:", "    other:\n      name: 'x'\n      extra_args:\n        algorithm: 'ddebug'\n    floatsmith:", 1),
		"not yaml":      "a b c",
	}
	for name, src := range cases {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCanonicalAlgorithm(t *testing.T) {
	cases := map[string]string{
		"ddebug": "DD", "deltadebug": "DD", "combinational": "CB",
		"compositional": "CM", "hierarchical": "HR", "hiercomp": "HC",
		"genetic": "GA", "DD": "DD", "GA": "GA",
	}
	for in, want := range cases {
		got, err := CanonicalAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("CanonicalAlgorithm(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := CanonicalAlgorithm("bogus"); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestResolveChecksMetric(t *testing.T) {
	specs, err := ParseConfig(strings.Replace(kmeansYAML, "'MCR'", "'MAE'", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specs[0].Resolve(); err == nil {
		t.Error("expected metric mismatch error")
	}
}

func TestResolveUnknownBenchmark(t *testing.T) {
	specs, err := ParseConfig(strings.Replace(kmeansYAML, "bin: 'kmeans'", "bin: 'doom'", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specs[0].Resolve(); err == nil {
		t.Error("expected unknown benchmark error")
	}
}

func TestFloatSmithAnalyzeKMeans(t *testing.T) {
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := JobsFromSpecs(specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FloatSmith{}.Analyze(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "K-means" || rep.Algorithm != "DD" {
		t.Errorf("report identity = %s/%s", rep.Benchmark, rep.Algorithm)
	}
	if rep.Variables != 26 || rep.Clusters != 15 {
		t.Errorf("complexity = %d/%d", rep.Variables, rep.Clusters)
	}
	// K-means at 1e-3: the full conversion keeps MCR 0, so DD accepts it
	// in one shot.
	if !rep.Found || rep.TimedOut {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Quality != 0 {
		t.Errorf("quality = %g, want 0 (assignments stable)", rep.Quality)
	}
	if rep.Demoted == 0 {
		t.Error("no variables demoted")
	}
}

func TestSchedulerOrderAndParallel(t *testing.T) {
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs with different algorithms.
	var jobs []Job
	for _, algo := range []string{"DD", "GA", "HR"} {
		s := specs[0]
		s.Analysis.Algorithm = algo
		b, err := s.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Spec: s, Benchmark: b, Seed: 42})
	}
	results := Scheduler{Workers: 3}.Run(jobs)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, algo := range []string{"DD", "GA", "HR"} {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		if results[i].Report.Algorithm != algo {
			t.Errorf("result %d = %s, want %s (order not preserved)", i, results[i].Report.Algorithm, algo)
		}
	}
}

func TestSchedulerEmptyAndErrors(t *testing.T) {
	if got := (Scheduler{}).Run(nil); len(got) != 0 {
		t.Errorf("empty run returned %d results", len(got))
	}
	specs, _ := ParseConfig(kmeansYAML)
	s := specs[0]
	s.Analysis.Name = "no-such-plugin"
	b, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	results := Scheduler{}.Run([]Job{{Spec: s, Benchmark: b, Seed: 1}})
	if results[0].Err == nil {
		t.Error("expected plugin lookup error")
	}
}

func TestTimedOutReportHasNaNMetrics(t *testing.T) {
	specs, _ := ParseConfig(kmeansYAML)
	jobs, err := JobsFromSpecs(specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	jobs[0].BudgetSeconds = 1 // nothing fits
	rep, err := FloatSmith{}.Analyze(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut || rep.Found {
		t.Fatalf("report = %+v, want pure timeout", rep)
	}
	if !math.IsNaN(rep.Speedup) || !math.IsNaN(rep.Quality) {
		t.Error("timed-out metrics should be NaN")
	}
}

func TestRegisterAnalysisDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	RegisterAnalysis(FloatSmith{})
}

// panicAnalysis is a failure-injection plugin: it always panics, as a
// misdeclared benchmark would.
type panicAnalysis struct{}

func (panicAnalysis) Name() string { return "panic-for-test" }
func (panicAnalysis) Analyze(Job) (Report, error) {
	panic("injected failure")
}

func TestSchedulerRecoversFromPanickingAnalysis(t *testing.T) {
	RegisterAnalysis(panicAnalysis{})
	specs, _ := ParseConfig(kmeansYAML)
	s := specs[0]
	s.Analysis.Name = "panic-for-test"
	b, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	good := specs[0]
	gb, err := good.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	results := Scheduler{Workers: 2}.Run([]Job{
		{Spec: good, Benchmark: gb, Seed: 42},
		{Spec: s, Benchmark: b, Seed: 1},
	})
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("panicking job error = %v", results[1].Err)
	}
	// The recovered error names the failing job's index and carries the
	// panic stack, so a misdeclared benchmark is diagnosable from the
	// campaign report alone.
	if err := results[1].Err; err != nil {
		if !strings.Contains(err.Error(), "job 1") {
			t.Errorf("panic error does not name the job index: %v", err)
		}
		if !strings.Contains(err.Error(), "goroutine ") || !strings.Contains(err.Error(), "Analyze") {
			t.Errorf("panic error carries no stack trace: %v", err)
		}
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d", i, r.Index)
		}
	}
	if results[0].Err != nil {
		t.Errorf("healthy job failed alongside panicking one: %v", results[0].Err)
	}
	if !results[0].Report.Found {
		t.Error("healthy job produced no result")
	}
}

// telemetryJobs builds a three-entry campaign over distinct algorithms.
func telemetryJobs(t *testing.T) []Job {
	t.Helper()
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, algo := range []string{"DD", "GP", "HR"} {
		s := specs[0]
		s.Analysis.Algorithm = algo
		b, err := s.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Spec: s, Benchmark: b, Seed: 42})
	}
	return jobs
}

// TestSchedulerTelemetryDeterministic locks in the determinism guarantee:
// the same seeded campaign yields byte-identical metric snapshots and a
// job-ordered event stream under any worker count. Run under -race with
// Workers > 1 it also locks in the data-race-free claim.
func TestSchedulerTelemetryDeterministic(t *testing.T) {
	run := func(workers int) (string, []telemetry.Event) {
		mem := telemetry.NewMemorySink()
		tel := telemetry.New(mem)
		results := Scheduler{Workers: workers, Telemetry: tel}.Run(telemetryJobs(t))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
		}
		var buf bytes.Buffer
		if err := tel.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), mem.Events()
	}

	metrics1, events1 := run(1)
	metrics8, events8 := run(8)
	if metrics1 != metrics8 {
		t.Errorf("metric snapshots differ between Workers=1 and Workers=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", metrics1, metrics8)
	}
	if len(events1) != len(events8) {
		t.Errorf("event counts differ: %d vs %d", len(events1), len(events8))
	}

	// The stream is job-major: campaign_start, then for each job in
	// submission order its job_start / per-evaluation block / job_end,
	// then campaign_end - with contiguous sequence numbers throughout.
	for _, events := range [][]telemetry.Event{events1, events8} {
		if events[0].Name != "campaign_start" || events[len(events)-1].Name != "campaign_end" {
			t.Fatalf("stream not bracketed: first=%s last=%s", events[0].Name, events[len(events)-1].Name)
		}
		lastJob := -1
		for i, e := range events {
			if e.Seq != uint64(i+1) {
				t.Errorf("event %d has seq %d", i, e.Seq)
			}
			if e.Name != "job_start" {
				continue
			}
			job, ok := e.Fields["job"].(int)
			if !ok || job != lastJob+1 {
				t.Errorf("job_start out of order: fields=%v after job %d", e.Fields, lastJob)
			}
			lastJob = job
		}
		if lastJob != 2 {
			t.Errorf("saw job_start up to %d, want 2", lastJob)
		}
	}
}

// TestSchedulerTelemetryMergesJobMetrics checks that per-job evaluation
// counters survive the merge into the campaign registry and the spans
// reflect the simulated clock.
func TestSchedulerTelemetryMergesJobMetrics(t *testing.T) {
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	results := Scheduler{Workers: 2, Telemetry: tel}.Run(telemetryJobs(t))

	snap := tel.Snapshot()
	var evals, completed float64
	for _, p := range snap.Counters {
		switch p.Name {
		case "mixpbench_search_evaluations_total":
			evals += p.Value
		case "mixpbench_harness_jobs_completed_total":
			completed = p.Value
		}
	}
	wantEvals := 0
	for _, r := range results {
		wantEvals += r.Report.Evaluated
	}
	if evals != float64(wantEvals) {
		t.Errorf("merged evaluations = %g, reports say %d", evals, wantEvals)
	}
	if completed != 3 {
		t.Errorf("jobs completed counter = %g, want 3", completed)
	}
	for _, g := range snap.Gauges {
		if g.Name == "mixpbench_harness_progress" && g.Value != 1 {
			t.Errorf("progress gauge = %g, want 1", g.Value)
		}
	}

	// Spans: job_end run_seconds equals the report's simulated spend.
	for _, e := range mem.Events() {
		if e.Name != "job_end" {
			continue
		}
		job := e.Fields["job"].(int)
		if got := e.Fields["run_seconds"].(float64); got != results[job].Report.SpentSeconds {
			t.Errorf("job %d span run_seconds = %g, report spent %g", job, got, results[job].Report.SpentSeconds)
		}
	}
}

// TestListSchedule pins the simulated cluster clock: earliest-free worker
// wins, ties go to the lowest id.
func TestListSchedule(t *testing.T) {
	starts, assigned := listSchedule([]float64{10, 4, 3, 5}, 2)
	wantStarts := []float64{0, 0, 4, 7}
	wantWorkers := []int{0, 1, 1, 1}
	for i := range starts {
		if starts[i] != wantStarts[i] || assigned[i] != wantWorkers[i] {
			t.Errorf("job %d scheduled at %.0f on worker %d, want %.0f on %d",
				i, starts[i], assigned[i], wantStarts[i], wantWorkers[i])
		}
	}
}

func TestReportCarriesConfigArtifact(t *testing.T) {
	specs, err := ParseConfig(kmeansYAML)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := JobsFromSpecs(specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FloatSmith{}.Analyze(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found {
		t.Fatal("analysis found nothing")
	}
	if len(rep.Config) != rep.Variables {
		t.Fatalf("artifact config covers %d of %d variables", len(rep.Config), rep.Variables)
	}
	if rep.Config.Singles() != rep.Demoted {
		t.Errorf("artifact singles %d != Demoted %d", rep.Config.Singles(), rep.Demoted)
	}
}

func TestGreedyAlgorithmThroughConfig(t *testing.T) {
	specs, err := ParseConfig(strings.Replace(kmeansYAML, "'ddebug'", "'greedy'", 1))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Analysis.Algorithm != "GP" {
		t.Fatalf("algorithm = %q", specs[0].Analysis.Algorithm)
	}
	jobs, err := JobsFromSpecs(specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FloatSmith{}.Analyze(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "GP" || !rep.Found {
		t.Errorf("report = %+v", rep)
	}
	// One evaluation per cluster at most.
	if rep.Evaluated > rep.Clusters {
		t.Errorf("GP evaluated %d > %d clusters", rep.Evaluated, rep.Clusters)
	}
}
