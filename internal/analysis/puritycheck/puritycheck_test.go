package puritycheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestPuritycheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "purity")
}
