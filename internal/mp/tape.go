package mp

import "fmt"

// Tape carries one precision configuration through one benchmark execution
// and meters the work performed against it. A benchmark's Run method
// receives a fresh Tape per evaluation; the search framework sets the
// precision of each variable before the run and reads the accumulated Cost
// afterwards.
//
// The zero Tape is not usable; construct with NewTape.
type Tape struct {
	prec        []Prec
	cost        Cost
	scale       uint64
	perVar      []VarProfile
	computeOnly bool

	// byteFactor[v] is storageWidth(v).Size()*scale and byteSink[v] points
	// at the Cost counter that width accumulates into. Both are refreshed
	// whenever precision, scale, or semantics change, so Array.charge - the
	// hottest call of every kernel loop - is a multiply and two adds with
	// no branching.
	byteFactor []uint64
	byteSink   []*uint64

	// Frozen-mode state (see Freeze): arrays lists every live Array so
	// deferred traffic can be flushed before any observation or factor
	// change, and recycled/reuseCursor recycle the previous run's buffers
	// when a reset tape re-executes the same allocation sequence.
	frozen      bool
	arrays      []*Array
	recycled    []*Array
	reuseCursor int

	// Deferred arithmetic meters of the frozen fast path: Assign counts
	// unscaled flops per expression width class, casts (total and by
	// width-class pair), and per-variable attribution here, and flushMeter
	// multiplies the sums through the scale once per observation point
	// (exact in uint64, like the deferred array traffic).
	pendFlops     [3]uint64
	pendCasts     uint64
	pendCastPairs [3][3]uint64
	pendVar       []VarProfile

	// rec/rep attach an input-stream recorder or replayer (see Stream).
	rec *streamRecorder
	rep *streamReplayer
}

// NewTape returns a Tape for a program with n tunable variables, all at
// double precision (the original program).
func NewTape(n int) *Tape {
	t := &Tape{
		prec:       make([]Prec, n),
		scale:      1,
		perVar:     make([]VarProfile, n),
		byteFactor: make([]uint64, n),
		byteSink:   make([]*uint64, n),
	}
	for v := range t.byteFactor {
		t.refreshVar(VarID(v))
	}
	return t
}

// refreshVar recomputes variable v's precomputed charge factors.
func (t *Tape) refreshVar(v VarID) {
	w := t.storageWidth(v)
	t.byteFactor[v] = w.Size() * t.scale
	switch w.wclass() {
	case 1:
		t.byteSink[v] = &t.cost.Bytes32
	case 2:
		t.byteSink[v] = &t.cost.Bytes16
	default:
		t.byteSink[v] = &t.cost.Bytes64
	}
}

// refreshAll recomputes every variable's charge factors (scale or
// semantics changed).
func (t *Tape) refreshAll() {
	for v := range t.byteFactor {
		t.refreshVar(VarID(v))
	}
}

// SetScale sets the problem-size multiplier k (at least 1): every metered
// quantity - flops, traffic, footprint, casts - is charged k times.
//
// Benchmarks use this to model the paper's problem sizes while computing on
// proportionally smaller arrays: numeric accuracy is evaluated on the real
// computation, and the cost counters describe the same loops run at k times
// the size. The search algorithms never observe the difference because they
// only consume (error, modelled time) pairs.
func (t *Tape) SetScale(k uint64) {
	if k < 1 {
		panic("mp: scale must be at least 1")
	}
	t.flushArrays() // deferred traffic was accrued under the old factors
	t.scale = k
	t.refreshAll()
}

// Scale returns the active problem-size multiplier.
func (t *Tape) Scale() uint64 { return t.scale }

// SetComputeOnly switches the tape to IR-level demotion semantics: a
// demoted variable's arithmetic narrows (values round, flops retire at the
// narrow rate) but its storage does not - arrays stay at their declared
// double width, so traffic and footprint are unchanged.
//
// This models the paper's lower-level analysis tier (Section II,
// "for example on LLVM IR ... the locations can be any SSA register"):
// an IR tool rewrites instructions, not allocations. The paper's LavaMD
// insight - that the cache-behaviour speedups of source-level demotion
// "cannot be discovered from tools that operate on the intermediate
// representation ... because the application memory is not changed" -
// falls out of this switch; see BenchmarkAblationIRLevel.
func (t *Tape) SetComputeOnly(on bool) {
	if t.frozen {
		panic("mp: SetComputeOnly on a frozen tape; semantics are fixed at Freeze")
	}
	t.computeOnly = on
	t.refreshAll()
}

// ComputeOnly reports whether IR-level demotion semantics are active.
func (t *Tape) ComputeOnly() bool { return t.computeOnly }

// storageWidth returns the width variable v's storage uses: its
// configured precision at source level, always double under IR-level
// semantics.
func (t *Tape) storageWidth(v VarID) Prec {
	if t.computeOnly {
		return F64
	}
	return t.prec[v]
}

// NumVars returns the number of tunable variables the tape was built for.
func (t *Tape) NumVars() int { return len(t.prec) }

// SetPrec assigns precision p to variable v. It panics on an out-of-range
// ID, which always indicates a benchmark declaring fewer variables than its
// Run method uses.
func (t *Tape) SetPrec(v VarID, p Prec) {
	if t.frozen {
		panic("mp: SetPrec on a frozen tape; the configuration is fixed at Freeze")
	}
	t.prec[v] = p
	t.refreshVar(v)
}

// Prec reports the precision the configuration assigns to variable v.
func (t *Tape) Prec(v VarID) Prec { return t.prec[v] }

// Cost returns the work metered so far.
func (t *Tape) Cost() Cost {
	t.flushArrays()
	return t.cost
}

// AddFlops records n floating-point operations retired at precision p;
// the counter is picked by p's width class (a custom format retires at
// its container width). Benchmarks use it for work that is not tied to an
// Assign site, such as reductions folded into library calls.
func (t *Tape) AddFlops(p Prec, n uint64) {
	switch p.wclass() {
	case 1:
		t.cost.Flops32 += n * t.scale
	case 2:
		t.cost.Flops16 += n * t.scale
	default:
		t.cost.Flops64 += n * t.scale
	}
}

// AddCasts records n precision-conversion operations with no width-pair
// attribution (they price at the machine's scalar cast rate).
func (t *Tape) AddCasts(n uint64) { t.cost.Casts += n * t.scale }

// AddCastsBetween records n conversions between formats a and b,
// attributed to their width-class pair so a machine model with a cast
// matrix can price them; the Casts total includes them.
func (t *Tape) AddCastsBetween(a, b Prec, n uint64) {
	t.cost.Casts += n * t.scale
	t.cost.CastPairs[a.wclass()][b.wclass()] += n * t.scale
}

// AddBytes records n bytes of array traffic at precision p (by width
// class), for work that is not routed through an Array accessor.
func (t *Tape) AddBytes(p Prec, n uint64) {
	switch p.wclass() {
	case 1:
		t.cost.Bytes32 += n * t.scale
	case 2:
		t.cost.Bytes16 += n * t.scale
	default:
		t.cost.Bytes64 += n * t.scale
	}
}

// Assign stores x into variable dst: the value is rounded to dst's
// configured precision and returned, flops operations are charged at the
// precision the expression executes in, and one cast is charged for every
// source variable whose precision differs from dst's.
//
// The expression precision rule mirrors C usual-arithmetic conversions
// after a source-level demotion: the arithmetic runs at the widest
// precision among the destination and the named sources, so a narrow
// store only buys narrow arithmetic when the whole expression is narrow.
func (t *Tape) Assign(dst VarID, x float64, flops uint64, srcs ...VarID) float64 {
	// Kept to a dispatch so call sites inline it: benchmark Run loops then
	// jump straight into the path their tape uses instead of paying an
	// extra call level on every scalar assignment.
	if t.frozen {
		return t.assignFrozen(dst, x, flops, srcs)
	}
	return t.assignEager(dst, x, flops, srcs)
}

// assignEager is Assign on an unfrozen tape: every charge lands in the
// cost counters immediately.
func (t *Tape) assignEager(dst VarID, x float64, flops uint64, srcs []VarID) float64 {
	dp := t.prec[dst]
	ep := dp // expression precision: the widest operand wins (widerPrec)
	for _, s := range srcs {
		sp := t.prec[s]
		if sp != dp {
			t.cost.Casts += t.scale
			t.cost.CastPairs[sp.wclass()][dp.wclass()] += t.scale
			t.attributeCasts(dst, t.scale)
		}
		if widerPrec(sp, ep) {
			ep = sp
		}
	}
	t.AddFlops(ep, flops)
	t.attributeFlops(dst, flops*t.scale)
	return dp.Round(x)
}

// assignFrozen is Assign on a frozen tape: identical semantics, with the
// scale multiplies and the flop-counter switch deferred to flushMeter.
func (t *Tape) assignFrozen(dst VarID, x float64, flops uint64, srcs []VarID) float64 {
	dp := t.prec[dst]
	ep := dp
	attr := int(dst) < len(t.pendVar)
	for _, s := range srcs {
		sp := t.prec[s]
		if sp != dp {
			t.pendCasts++
			t.pendCastPairs[sp.wclass()][dp.wclass()]++
			if attr {
				t.pendVar[dst].Casts++
			}
		}
		if widerPrec(sp, ep) {
			ep = sp
		}
	}
	t.pendFlops[ep.wclass()] += flops
	if attr {
		t.pendVar[dst].Flops += flops
	}
	return dp.Round(x)
}

// Value rounds x to the precision of v without charging any work. It models
// reading a constant or an input value through a typed variable.
func (t *Tape) Value(v VarID, x float64) float64 {
	return t.prec[v].Round(x)
}

// String summarises the configuration: the variable count and how many
// variables the configuration demotes below double precision.
func (t *Tape) String() string {
	demoted := 0
	for _, p := range t.prec {
		if p != F64 {
			demoted++
		}
	}
	return fmt.Sprintf("tape{vars: %d, demoted: %d}", len(t.prec), demoted)
}
