package search

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/kernels"
)

// fourRung is the deepest standard ladder: double, single, half, bfloat16.
func fourRung(t *testing.T) mp.Ladder {
	t.Helper()
	l, err := mp.ParseLadder("f64,f32,f16,bf16")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestAllAlgorithmsOnLadder exercises every strategy - the paper's six
// plus the extensions - end-to-end on a real kernel over a four-rung
// ladder. The threshold is loose enough that half-precision formats
// pass, so a correct staged search must descend past single precision:
// the best configuration has to carry at least one sub-single format.
func TestAllAlgorithmsOnLadder(t *testing.T) {
	k := kernels.NewHydro1D()
	ladder := fourRung(t)
	names := append(append([]string{}, AlgorithmNames...), ExtensionNames...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			algo, err := ByName(name, 99)
			if err != nil {
				t.Fatal(err)
			}
			space := NewSpaceWithLadder(k.Graph(), algo.Mode(), ladder)
			e := NewEvaluator(space, bench.NewRunner(42), k, 1e-2)
			out := algo.Search(e)
			if out.TimedOut {
				t.Fatalf("%s timed out on a kernel", name)
			}
			if !out.Found {
				t.Fatalf("%s found nothing on hydro-1d at 1e-2", name)
			}
			if !out.BestResult.Passed {
				t.Error("best result does not pass")
			}
			cfg, valid := space.Expand(out.Best, algo.Name() == "CM")
			if !valid {
				t.Errorf("%s returned a non-compiling config %s", name, out.Best)
			}
			deep := 0
			for _, p := range cfg {
				if p == mp.F16 || p == mp.BF16 {
					deep++
				}
			}
			if deep == 0 {
				t.Errorf("%s never descended below single precision on a 1e-2 threshold (best %s)",
					name, out.Best)
			}
			t.Logf("%s: EV=%d SU=%.3f err=%.3g demoted=%d sub-single=%d",
				name, out.Evaluated, out.BestResult.Speedup,
				out.BestResult.Verdict.Error, cfg.Demoted(), deep)
		})
	}
}

// TestLadderSearchDeterministic locks per-algorithm determinism on a
// ladder: two independent evaluators over the same four-rung space
// produce identical outcomes and identical evaluation counts.
func TestLadderSearchDeterministic(t *testing.T) {
	k := kernels.NewHydro1D()
	ladder := fourRung(t)
	run := func(name string) (Outcome, int) {
		algo, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		space := NewSpaceWithLadder(k.Graph(), algo.Mode(), ladder)
		e := NewEvaluator(space, bench.NewRunner(42), k, 1e-4)
		out := algo.Search(e)
		return out, e.Evaluated()
	}
	for _, name := range append(append([]string{}, AlgorithmNames...), ExtensionNames...) {
		o1, n1 := run(name)
		o2, n2 := run(name)
		if n1 != n2 {
			t.Errorf("%s: evaluation count differs across runs: %d vs %d", name, n1, n2)
		}
		if !o1.Best.Equal(o2.Best) || o1.Evaluated != o2.Evaluated ||
			o1.BestResult.Speedup != o2.BestResult.Speedup {
			t.Errorf("%s: outcome differs across identical runs", name)
		}
	}
}

// TestParetoFrontDeterministic locks the Pareto-front contract: the
// front is reproducible across independent runs, contains the
// all-double reference point, is sorted by configuration key, and is
// pairwise non-dominated in (time, energy, error).
func TestParetoFrontDeterministic(t *testing.T) {
	k := kernels.NewHydro1D()
	ladder := fourRung(t)
	run := func() []ParetoPoint {
		algo, err := ByName("DD", 0)
		if err != nil {
			t.Fatal(err)
		}
		space := NewSpaceWithLadder(k.Graph(), algo.Mode(), ladder)
		e := NewEvaluator(space, bench.NewRunner(42), k, 1e-8)
		e.SetObjective(ObjectivePareto)
		algo.Search(e)
		return e.ParetoFront()
	}
	front := run()
	if len(front) == 0 {
		t.Fatal("pareto search produced an empty front")
	}
	if again := run(); !reflect.DeepEqual(front, again) {
		t.Errorf("front differs across identical runs:\n%v\n%v", front, again)
	}
	n := k.Graph().NumVars()
	refKey := bench.NewConfig(n).Key()
	foundRef := false
	for i, p := range front {
		if p.Config == refKey {
			foundRef = true
			if p.Error != 0 || p.Speedup != 1 {
				t.Errorf("reference point carries err=%g speedup=%g", p.Error, p.Speedup)
			}
		}
		if p.Time <= 0 || p.Energy <= 0 {
			t.Errorf("point %d has non-positive time/energy: %+v", i, p)
		}
		if i > 0 && front[i-1].Config >= p.Config {
			t.Errorf("front not sorted by config key: %q before %q", front[i-1].Config, p.Config)
		}
	}
	if !foundRef {
		t.Errorf("front omits the all-double reference point %q", refKey)
	}
	for i, p := range front {
		for j, q := range front {
			if i == j {
				continue
			}
			if q.Time <= p.Time && q.Energy <= p.Energy && q.Error <= p.Error &&
				(q.Time < p.Time || q.Energy < p.Energy || q.Error < p.Error) {
				t.Errorf("front point %d (%s) is dominated by point %d (%s)", i, p.Config, j, q.Config)
			}
		}
	}
}

// TestThresholdObjectiveRecordsNoFront guards the default: without
// SetObjective(ObjectivePareto) the evaluator records nothing and
// ParetoFront returns nil, so threshold campaigns carry no new state.
func TestThresholdObjectiveRecordsNoFront(t *testing.T) {
	k := kernels.NewHydro1D()
	algo, _ := ByName("DD", 0)
	space := NewSpace(k.Graph(), algo.Mode())
	e := NewEvaluator(space, bench.NewRunner(42), k, 1e-8)
	algo.Search(e)
	if f := e.ParetoFront(); f != nil {
		t.Errorf("threshold objective recorded a %d-point front", len(f))
	}
}
