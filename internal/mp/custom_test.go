package mp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestCustomValidation(t *testing.T) {
	for _, c := range []struct {
		e, m int
		ok   bool
	}{
		{5, 10, true}, {8, 7, true}, {11, 52, true}, {2, 1, true},
		{8, 23, true}, {8, 40, true},
		{1, 10, false}, {12, 10, false}, {5, 0, false}, {5, 53, false},
	} {
		p, err := Custom(c.e, c.m)
		if c.ok != (err == nil) {
			t.Errorf("Custom(%d,%d) err = %v, want ok=%v", c.e, c.m, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if !p.IsCustom() || p.ExpBits() != c.e || p.MantBits() != c.m {
			t.Errorf("Custom(%d,%d) widths = (%d,%d)", c.e, c.m, p.ExpBits(), p.MantBits())
		}
	}
}

func TestCustomSizes(t *testing.T) {
	for _, c := range []struct {
		e, m int
		size uint64
	}{
		{5, 10, 2},  // 16 bits: binary16 shape
		{4, 10, 2},  // 15 bits fits a 2-byte container
		{8, 7, 2},   // bfloat16 shape
		{8, 23, 4},  // binary32 shape
		{8, 8, 4},   // 17 bits spills to 4 bytes
		{11, 52, 8}, // binary64 shape
		{8, 40, 8},  // 49 bits needs 8 bytes
	} {
		if got := MustCustom(c.e, c.m).Size(); got != c.size {
			t.Errorf("custom(%d,%d).Size() = %d, want %d", c.e, c.m, got, c.size)
		}
	}
}

// The generic rounder must agree exactly with the hand-written format
// rounders when parameterized to the same widths, and be the identity at
// full float64 width.
func TestRoundBinaryMatchesHalf(t *testing.T) {
	f := func(x float64) bool {
		a, b := roundBinary(x, 5, 10), roundToHalf(x)
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) && math.IsNaN(b)
		}
		return a == b || (math.IsInf(a, 0) && a == b)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
	// The quick generator rarely lands in half's narrow dynamic range, so
	// sweep every binary16 value and its neighbourhood explicitly.
	for b := 0; b < 1<<16; b++ {
		v := halfFromBits(uint16(b))
		if math.IsNaN(v) {
			continue
		}
		for _, x := range []float64{v, math.Nextafter(v, math.Inf(1)), v * 1.0001} {
			a, h := roundBinary(x, 5, 10), roundToHalf(x)
			if a != h && !(math.IsInf(a, 0) && a == h) {
				t.Fatalf("roundBinary(%v,5,10) = %v, roundToHalf = %v", x, a, h)
			}
		}
	}
}

func TestRoundBinaryIdentityAtFullWidth(t *testing.T) {
	f := func(x float64) bool {
		y := roundBinary(x, 11, 52)
		if math.IsNaN(x) {
			return math.IsNaN(y)
		}
		return y == x
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestCustomMatchesBuiltins(t *testing.T) {
	pairs := []struct {
		custom  Prec
		builtin Prec
	}{
		{MustCustom(5, 10), F16},
		{MustCustom(8, 7), BF16},
		{MustCustom(8, 23), F32},
		{MustCustom(11, 52), F64},
	}
	for _, pr := range pairs {
		f := func(x float64) bool {
			a, b := pr.custom.Round(x), pr.builtin.Round(x)
			if math.IsNaN(a) || math.IsNaN(b) {
				return math.IsNaN(a) && math.IsNaN(b)
			}
			return a == b
		}
		if err := quick.Check(f, quickConfig()); err != nil {
			t.Errorf("custom(%d,%d) vs %s: %v", pr.custom.ExpBits(), pr.custom.MantBits(), pr.builtin, err)
		}
	}
}

// ladderFormats is the menu the property tests sweep: every built-in plus
// custom formats at the container boundaries.
func ladderFormats() []Prec {
	return []Prec{
		F64, F32, F16, BF16,
		MustCustom(5, 10), MustCustom(8, 7), MustCustom(11, 52),
		MustCustom(3, 2), MustCustom(8, 40), MustCustom(8, 23),
	}
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 2000}
}

// Round must be idempotent for every format a ladder can name: rounding a
// rounded value is the identity.
func TestRoundIdempotentAllFormats(t *testing.T) {
	for _, p := range ladderFormats() {
		f := func(x float64) bool {
			once := p.Round(x)
			twice := p.Round(once)
			if math.IsNaN(once) {
				return math.IsNaN(twice)
			}
			return once == twice
		}
		if err := quick.Check(f, quickConfig()); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// Round must be monotone for every format: a <= b implies
// Round(a) <= Round(b), the property that makes narrowing order-safe.
func TestRoundMonotoneAllFormats(t *testing.T) {
	for _, p := range ladderFormats() {
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			if a > b {
				a, b = b, a
			}
			return p.Round(a) <= p.Round(b)
		}
		if err := quick.Check(f, quickConfig()); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// Specials survive every format: NaN stays NaN, infinities and signed
// zero pass through.
func TestRoundSpecialsAllFormats(t *testing.T) {
	for _, p := range ladderFormats() {
		if !math.IsNaN(p.Round(math.NaN())) {
			t.Errorf("%s: NaN not preserved", p.Name())
		}
		if !math.IsInf(p.Round(math.Inf(1)), 1) || !math.IsInf(p.Round(math.Inf(-1)), -1) {
			t.Errorf("%s: infinities not preserved", p.Name())
		}
		nz := p.Round(math.Copysign(0, -1))
		if nz != 0 || !math.Signbit(nz) {
			t.Errorf("%s: negative zero not preserved", p.Name())
		}
	}
}

func TestCustomIO(t *testing.T) {
	// Custom formats serialize as rounded float64 payloads (8-byte
	// stride): no interchange encoding exists for an (e,m) format, but
	// the round trip must still be value-exact.
	p := MustCustom(6, 9)
	vals := []float64{0, 1, -1.5, 0.1, 1e-12, 12345.678}
	var buf bytes.Buffer
	if err := WriteValues(&buf, p, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*8 {
		t.Fatalf("wrote %d bytes, want 8-byte stride", buf.Len())
	}
	back, err := ReadValues(&buf, p, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := p.Round(v); back[i] != want {
			t.Errorf("[%d] = %v, want %v", i, back[i], want)
		}
	}
}

func TestWiderPrec(t *testing.T) {
	cases := []struct {
		a, b Prec
		want bool
	}{
		{F64, F32, true}, {F32, F64, false},
		{F32, F16, true}, {F32, BF16, true},
		{F16, BF16, true}, {BF16, F16, false}, // mantissa bits decide
		{F64, F64, false},
		{MustCustom(11, 52), F32, true},
		{F32, MustCustom(8, 23), false}, // same widths: not strictly wider
		{MustCustom(8, 23), F32, false},
		{MustCustom(5, 10), MustCustom(8, 7), true},
		{MustCustom(8, 7), MustCustom(5, 7), true}, // mantissa tie: exponent decides
	}
	for _, c := range cases {
		if got := widerPrec(c.a, c.b); got != c.want {
			t.Errorf("widerPrec(%s, %s) = %v, want %v", c.a.Name(), c.b.Name(), got, c.want)
		}
	}
}
