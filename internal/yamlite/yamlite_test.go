package yamlite

import (
	"strings"
	"testing"
)

// kmeansConfig is the paper's Listing 4 (the K-means harness file).
const kmeansConfig = `
kmeans:
  build_dir: 'kmeans'
  build: ['make']
  clean: ['make clean']
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
  output:
    option: '-o'
    name: 'outputFile.bin'
  metric: 'MAE'
  bin: 'kmeans'
  copy: ['kmeans', 'kdd_bin']
  args: '-i kdd_bin -k 5 -n 5'
`

func TestParseListingFour(t *testing.T) {
	doc, err := Parse(kmeansConfig)
	if err != nil {
		t.Fatal(err)
	}
	km, err := doc.GetMap("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := km.GetString("build_dir"); got != "kmeans" {
		t.Errorf("build_dir = %q", got)
	}
	build, err := km.GetStrings("build")
	if err != nil || len(build) != 1 || build[0] != "make" {
		t.Errorf("build = %v, %v", build, err)
	}
	analysis, err := km.GetMap("analysis")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := analysis.GetMap("floatsmith")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.GetString("name"); got != "floatSmith" {
		t.Errorf("analysis name = %q", got)
	}
	extra, err := fs.GetMap("extra_args")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := extra.GetString("algorithm"); got != "ddebug" {
		t.Errorf("algorithm = %q", got)
	}
	copyList, err := km.GetStrings("copy")
	if err != nil || len(copyList) != 2 || copyList[1] != "kdd_bin" {
		t.Errorf("copy = %v, %v", copyList, err)
	}
	if got, _ := km.GetString("args"); got != "-i kdd_bin -k 5 -n 5" {
		t.Errorf("args = %q", got)
	}
}

func TestKeyOrderPreserved(t *testing.T) {
	doc, err := Parse("b: 1\na: 2\nz: 3\n")
	if err != nil {
		t.Fatal(err)
	}
	got := doc.Keys()
	want := []string{"b", "a", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestScalarTypes(t *testing.T) {
	doc, err := Parse(`
i: 42
neg: -7
f: 3.5
sci: 1e-8
b1: true
b2: False
n: null
s: plain string
q: 'quoted # not comment'
d: "double"
`)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]any{
		"i": int64(42), "neg": int64(-7), "f": 3.5, "sci": 1e-8,
		"b1": true, "b2": false, "n": nil,
		"s": "plain string", "q": "quoted # not comment", "d": "double",
	}
	for k, want := range checks {
		v, ok := doc.Get(k)
		if !ok {
			t.Errorf("missing %q", k)
			continue
		}
		if v != want {
			t.Errorf("%q = %#v, want %#v", k, v, want)
		}
	}
}

func TestComments(t *testing.T) {
	doc, err := Parse(`
# full-line comment
a: 1 # trailing comment
b: 'kept # inside quotes'
`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Get("a"); v != int64(1) {
		t.Errorf("a = %v", v)
	}
	if v, _ := doc.Get("b"); v != "kept # inside quotes" {
		t.Errorf("b = %v", v)
	}
}

func TestBlockSequence(t *testing.T) {
	doc, err := Parse(`
steps:
  - make
  - make install
  - 42
`)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := doc.Get("steps")
	seq, ok := v.([]any)
	if !ok || len(seq) != 3 {
		t.Fatalf("steps = %#v", v)
	}
	if seq[0] != "make" || seq[1] != "make install" || seq[2] != int64(42) {
		t.Errorf("steps = %#v", seq)
	}
}

func TestFlowSequenceNested(t *testing.T) {
	doc, err := Parse("v: [1, [2, 3], 'a, b']\nempty: []\n")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := doc.Get("v")
	seq := v.([]any)
	if len(seq) != 3 {
		t.Fatalf("v = %#v", seq)
	}
	inner := seq[1].([]any)
	if inner[0] != int64(2) || inner[1] != int64(3) {
		t.Errorf("inner = %#v", inner)
	}
	if seq[2] != "a, b" {
		t.Errorf("quoted comma item = %#v", seq[2])
	}
	e, _ := doc.Get("empty")
	if len(e.([]any)) != 0 {
		t.Errorf("empty = %#v", e)
	}
}

func TestNullBlockValue(t *testing.T) {
	doc, err := Parse("a:\nb: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := doc.Get("a"); !ok || v != nil {
		t.Errorf("a = %#v, %v", v, ok)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":            "a:\n\tb: 1\n",
		"bad indent":            "a: 1\n   b: 2\n",
		"no colon":              "just words\n",
		"duplicate key":         "a: 1\na: 2\n",
		"unterminated flow":     "a: [1, 2\n",
		"unterminated quote":    "a: 'oops\n",
		"flow mapping":          "a: {b: 1}\n",
		"empty document":        "   \n# only comments\n",
		"unterminated q key":    "'a: 1\n",
		"seq item with mapping": "a:\n  - k: v\n",
		"unbalanced brackets":   "a: [[1]\n",
		"quote in flow":         "a: ['x, 2]\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestGetters(t *testing.T) {
	doc, err := Parse("m:\n  k: v\nlist: [a, b]\nscalar: one\nnum: 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.GetMap("missing"); err == nil {
		t.Error("GetMap(missing) should error")
	}
	if _, err := doc.GetMap("scalar"); err == nil {
		t.Error("GetMap(scalar) should error")
	}
	if _, err := doc.GetString("m"); err == nil {
		t.Error("GetString(m) should error")
	}
	if _, err := doc.GetString("missing"); err == nil {
		t.Error("GetString(missing) should error")
	}
	// GetStrings accepts both a sequence and a bare string.
	if got, err := doc.GetStrings("list"); err != nil || len(got) != 2 {
		t.Errorf("GetStrings(list) = %v, %v", got, err)
	}
	if got, err := doc.GetStrings("scalar"); err != nil || got[0] != "one" {
		t.Errorf("GetStrings(scalar) = %v, %v", got, err)
	}
	if _, err := doc.GetStrings("num"); err == nil {
		t.Error("GetStrings(num) should error")
	}
	if _, err := doc.GetStrings("missing"); err == nil {
		t.Error("GetStrings(missing) should error")
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("l0:\n")
	for d := 1; d <= 6; d++ {
		b.WriteString(strings.Repeat("  ", d))
		if d == 6 {
			b.WriteString("leaf: deep\n")
		} else {
			b.WriteString("l")
			b.WriteByte(byte('0' + d))
			b.WriteString(":\n")
		}
	}
	doc, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	cur := doc
	for d := 0; d < 6; d++ {
		if d == 5 {
			m, err := cur.GetMap("l5")
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := m.GetString("leaf"); v != "deep" {
				t.Errorf("leaf = %q", v)
			}
			return
		}
		next, err := cur.GetMap("l" + string(byte('0'+d)))
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
}

func TestEmptyFlowItemIsError(t *testing.T) {
	// Regression: "a: [,]" used to panic in the scalar parser.
	for _, src := range []string{"a: [,]\n", "a: [1, ]\n", "a: [ ,1]\n"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

// BenchmarkParse measures harness-config parsing throughput on the
// paper's Listing 4 document.
func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(kmeansConfig); err != nil {
			b.Fatal(err)
		}
	}
}
