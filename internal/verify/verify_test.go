package verify

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricString(t *testing.T) {
	cases := map[Metric]string{MAE: "MAE", RMSE: "RMSE", MSE: "MSE", R2: "R2", MCR: "MCR"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if got := Metric(99).String(); got != "Metric(99)" {
		t.Errorf("unknown metric String() = %q", got)
	}
}

func TestParseMetric(t *testing.T) {
	for _, name := range []string{"MAE", "RMSE", "MSE", "R2", "MCR"} {
		m, err := ParseMetric(name)
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", name, err)
		}
		if m.String() != name {
			t.Errorf("round trip %q -> %v", name, m)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("expected error for unknown metric name")
	}
}

func TestComputeKnownValues(t *testing.T) {
	ref := []float64{1, 2, 3, 4}
	got := []float64{1, 2, 3, 6} // one error of 2
	cases := []struct {
		m    Metric
		want float64
	}{
		{MAE, 0.5},
		{MSE, 1.0},
		{RMSE, 1.0},
		{MCR, 0.25},
	}
	for _, c := range cases {
		v, err := Compute(c.m, ref, got)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		if math.Abs(v-c.want) > 1e-15 {
			t.Errorf("%v = %g, want %g", c.m, v, c.want)
		}
	}
}

func TestR2Loss(t *testing.T) {
	ref := []float64{1, 2, 3, 4}
	if v, err := Compute(R2, ref, ref); err != nil || v != 0 {
		t.Errorf("perfect R2 loss = %g, %v", v, err)
	}
	// Constant reference, exact match.
	if v, err := Compute(R2, []float64{2, 2}, []float64{2, 2}); err != nil || v != 0 {
		t.Errorf("constant exact R2 loss = %g, %v", v, err)
	}
	// Constant reference, mismatch: infinite loss.
	if v, err := Compute(R2, []float64{2, 2}, []float64{2, 3}); err != nil || !math.IsInf(v, 1) {
		t.Errorf("constant mismatched R2 loss = %g, %v", v, err)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(MAE, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Compute(MAE, nil, nil); err == nil {
		t.Error("expected empty outputs error")
	}
	if _, err := Compute(Metric(99), []float64{1}, []float64{1}); err == nil {
		t.Error("expected unknown metric error")
	}
}

func TestMetricsNonNegative(t *testing.T) {
	f := func(pairs []struct{ A, B float64 }) bool {
		if len(pairs) == 0 {
			return true
		}
		ref := make([]float64, len(pairs))
		got := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p.A) || math.IsNaN(p.B) || math.IsInf(p.A, 0) || math.IsInf(p.B, 0) {
				return true // non-finite inputs are Check's territory
			}
			ref[i], got[i] = p.A, p.B
		}
		for _, m := range []Metric{MAE, RMSE, MSE, MCR} {
			v, err := Compute(m, ref, got)
			if err != nil || math.IsNaN(v) || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdenticalOutputsScoreZero(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		for _, m := range []Metric{MAE, RMSE, MSE, R2, MCR} {
			v, err := Compute(m, vals, vals)
			if err != nil || v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMCRCountsLabelFlips(t *testing.T) {
	ref := []float64{0, 1, 2, 3}
	got := []float64{0.4, 1.4, 2.6, 3} // 2.6 rounds to 3: one flip
	v, err := Compute(MCR, ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.25 {
		t.Errorf("MCR = %g, want 0.25", v)
	}
}

func TestCheckPassFail(t *testing.T) {
	ref := []float64{1, 2}
	got := []float64{1, 2.001}
	v, err := Check(MAE, ref, got, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed {
		t.Errorf("want pass, error = %g", v.Error)
	}
	v, err = Check(MAE, ref, got, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Errorf("want fail, error = %g", v.Error)
	}
}

func TestCheckRejectsNonFiniteOutput(t *testing.T) {
	ref := []float64{1, 2}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		v, err := Check(MAE, ref, []float64{1, bad}, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if v.Passed {
			t.Errorf("non-finite output %g passed", bad)
		}
		if !math.IsNaN(v.Error) {
			t.Errorf("error = %g, want NaN", v.Error)
		}
	}
}

func TestCheckToleratesNonFiniteReference(t *testing.T) {
	// If the reference itself is non-finite at a position, the candidate is
	// not penalised for matching it.
	ref := []float64{1, math.Inf(1)}
	got := []float64{1, math.Inf(1)}
	v, err := Check(MAE, ref, got, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	// MAE over Inf-Inf is NaN, so the verdict still fails, but via the
	// metric rather than the finiteness screen.
	if v.Passed {
		t.Error("NaN metric passed")
	}
}

func TestCheckThresholdIsInclusive(t *testing.T) {
	ref := []float64{0}
	got := []float64{0.5}
	v, err := Check(MAE, ref, got, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed {
		t.Error("error equal to threshold should pass")
	}
}

func TestCheckLengthMismatch(t *testing.T) {
	if _, err := Check(MAE, []float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestRegisterMetric(t *testing.T) {
	// A max-absolute-error (Linf) extension metric, as a downstream user
	// would add it.
	linf := RegisterMetric("LINF-test", func(ref, got []float64) float64 {
		worst := 0.0
		for i := range ref {
			if d := math.Abs(ref[i] - got[i]); d > worst {
				worst = d
			}
		}
		return worst
	})
	if linf.String() != "LINF-test" {
		t.Errorf("String() = %q", linf)
	}
	parsed, err := ParseMetric("LINF-test")
	if err != nil || parsed != linf {
		t.Errorf("ParseMetric = %v, %v", parsed, err)
	}
	v, err := Compute(linf, []float64{1, 2, 3}, []float64{1, 2.5, 2})
	if err != nil || v != 1 {
		t.Errorf("Compute = %g, %v", v, err)
	}
	// Check integrates it like a built-in, including NaN rejection.
	verdict, err := Check(linf, []float64{1}, []float64{1.2}, 0.5)
	if err != nil || !verdict.Passed {
		t.Errorf("Check = %+v, %v", verdict, err)
	}
	verdict, err = Check(linf, []float64{1}, []float64{math.NaN()}, math.Inf(1))
	if err != nil || verdict.Passed {
		t.Errorf("NaN Check = %+v, %v", verdict, err)
	}
}

func TestRegisterMetricCollisions(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("builtin collision", func() { RegisterMetric("MAE", func(a, b []float64) float64 { return 0 }) })
	mustPanic("nil function", func() { RegisterMetric("NILFN", nil) })
	RegisterMetric("DUP-test", func(a, b []float64) float64 { return 0 })
	mustPanic("duplicate", func() { RegisterMetric("DUP-test", func(a, b []float64) float64 { return 0 }) })
}
