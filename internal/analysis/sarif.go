package analysis

import "encoding/json"

// SARIF 2.1.0 export, the GitHub code-scanning ingestion format:
// `mixplint -sarif` output uploads through codeql-action/upload-sarif
// and surfaces findings as pull-request annotations. One run, one tool
// (mixplint), one rule per analyzer plus the "directive" pseudo-rule
// for malformed mixplint comments. Suppressed findings are included
// with an inSource suppression carrying the mandatory justification —
// code scanning then shows them as dismissed instead of open — and
// results keep the report's deterministic file/line/col/analyzer
// order.

const (
	sarifSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool     `json:"tool"`
	Results    []sarifResult `json:"results"`
	ColumnKind string        `json:"columnKind"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// directiveDoc is the rule description for the "directive" pseudo-rule.
const directiveDoc = "malformed or unknown //mixplint: directive"

// SARIF renders the report as a SARIF 2.1.0 log. docs maps analyzer
// names to their one-line rule descriptions (the Analyzer.Doc strings);
// names missing from the map get an empty description rather than an
// invalid rule.
func (r *Report) SARIF(docs map[string]string) ([]byte, error) {
	ruleIndex := make(map[string]int)
	var rules []sarifRule
	addRule := func(name, doc string) {
		if _, ok := ruleIndex[name]; ok {
			return
		}
		ruleIndex[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, name := range r.Analyzers {
		addRule(name, docs[name])
	}
	addRule("directive", directiveDoc)

	results := make([]sarifResult, 0, len(r.Findings)+len(r.Suppressed))
	add := func(f Finding, suppressed bool) {
		// A finding the driver could not position still needs a valid
		// region: SARIF requires startLine >= 1.
		line, col := f.Line, f.Col
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		addRule(f.Analyzer, docs[f.Analyzer])
		res := sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "SRCROOT"},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		}
		if suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Justification}}
		}
		results = append(results, res)
	}
	for _, f := range r.Findings {
		add(f, false)
	}
	for _, f := range r.Suppressed {
		add(f, true)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:       sarifTool{Driver: sarifDriver{Name: "mixplint", Rules: rules}},
			Results:    results,
			ColumnKind: "utf16CodeUnits",
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
