package search

import (
	"math/rand"
	"sort"
)

// Genetic is the paper's GA strategy, added to CRAFT for the study: it
// mimics natural selection over precision configurations. A configuration
// is a rung vector over the clusters (a bit array on the default
// two-rung ladder); the population starts random, the
// fittest individuals (fastest among those satisfying the error
// criterion) produce offspring by crossover, offspring mutate, and the
// loop stops after a fixed number of generations or when the best
// individual stagnates.
//
// Two properties the paper reports fall out of the parameters: the
// evaluation count is nearly constant (population x generations, bounded
// by the strict termination criterion, minus memoised duplicates), making
// GA's analysis time the easiest to predict; and the small iteration
// budget means the random walk sometimes misses configurations the
// deterministic strategies find - GA's result is the least deterministic
// of the six.
type Genetic struct {
	// Population is the number of individuals per generation.
	Population int
	// Generations bounds the number of generations.
	Generations int
	// Stagnation stops the search after this many generations without
	// improvement of the best individual.
	Stagnation int
	// Seed drives all randomness; a zero value seeds deterministically.
	Seed int64
}

// NewGenetic returns the configuration used in the paper's evaluation:
// a small population and few generations ("we significantly decrease the
// search time of GA by providing a small number of maximum iterations").
func NewGenetic(seed int64) Genetic {
	return Genetic{Population: 5, Generations: 4, Stagnation: 2, Seed: seed}
}

// Name returns "GA".
func (Genetic) Name() string { return "GA" }

// Mode returns ByCluster.
func (Genetic) Mode() Mode { return ByCluster }

// individual pairs a genome with its evaluation.
type individual struct {
	set Set
	res Result
}

// fitness orders individuals: passing beats failing, faster beats slower,
// and among failures a smaller error is closer to viability.
func fitness(r Result) float64 {
	if r.Passed {
		return 1 + r.Speedup
	}
	if !r.Valid {
		return 0
	}
	e := r.Verdict.Error
	if e != e { // NaN output: worst
		return 0
	}
	return 1 / (2 + e)
}

// Search runs the evolutionary loop. Each generation is evaluated as one
// batch: the genomes of a generation depend only on the previous
// generation and the strategy RNG, never on each other's evaluations, so
// the whole population can be proposed up front and handed to
// EvaluateBatch (which prewarms the compiled kernels, then evaluates in
// proposal order - results are byte-identical to the one-at-a-time loop).
func (g Genetic) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	p := e.Space().NumRungs()
	rng := rand.New(rand.NewSource(g.Seed + 0x9e3779b9))
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
	// evalBatch evaluates one generation's genomes and folds the results
	// into individuals, tracking the best passing configuration.
	evalBatch := func(genomes []Set) []individual {
		res, err := e.EvaluateBatch(genomes)
		inds := make([]individual, 0, len(res))
		for i, r := range res {
			if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
				best, bestRes, found = genomes[i].Clone(), r, true
			}
			inds = append(inds, individual{set: genomes[i], res: r})
		}
		if err != nil {
			stopErr = err
		}
		return inds
	}

	// Initial random population: each unit draws a uniform rung. On the
	// default ladder this is the historical coin flip, same RNG draws.
	genomes := make([]Set, 0, g.Population)
	for i := 0; i < g.Population; i++ {
		set := NewSet(n)
		for b := 0; b < n; b++ {
			if d := rng.Intn(p); d > 0 {
				set.SetRung(b, uint8(d))
			}
		}
		genomes = append(genomes, set)
	}
	pop := evalBatch(genomes)

	stale := 0
	for gen := 1; gen < g.Generations && stopErr == nil && stale < g.Stagnation; gen++ {
		sort.SliceStable(pop, func(a, b int) bool {
			return fitness(pop[a].res) > fitness(pop[b].res)
		})
		prevBest := fitness(pop[0].res)

		// Breed the full generation first - selection draws on the sorted
		// previous generation, so offspring are independent of each other's
		// evaluations - then evaluate it as one batch.
		children := make([]Set, 0, g.Population-1)
		for len(children) < g.Population-1 {
			a := tournament(pop, rng)
			b := tournament(pop, rng)
			child := crossover(a.set, b.set, rng)
			mutate(&child, p, rng)
			children = append(children, child)
		}
		pop = append([]individual{pop[0]}, evalBatch(children)...) // elitism

		sort.SliceStable(pop, func(a, b int) bool {
			return fitness(pop[a].res) > fitness(pop[b].res)
		})
		if fitness(pop[0].res) > prevBest {
			stale = 0
		} else {
			stale++
		}
	}
	return finish(g.Name(), e, best, bestRes, found, stopErr)
}

// tournament picks the fitter of two random individuals.
func tournament(pop []individual, rng *rand.Rand) individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if fitness(a.res) >= fitness(b.res) {
		return a
	}
	return b
}

// crossover mixes two genomes rung-wise (uniform crossover).
func crossover(a, b Set, rng *rand.Rand) Set {
	child := NewSet(a.Len())
	for i := 0; i < a.Len(); i++ {
		src := a
		if rng.Intn(2) == 1 {
			src = b
		}
		child.SetRung(i, uint8(src.Rung(i)))
	}
	return child
}

// mutate reassigns each unit's rung with probability 1/n. On the default
// two-rung ladder the reassignment is the historical bit flip and draws
// nothing extra from the RNG; on deeper ladders it draws one of the p-1
// other rungs uniformly.
func mutate(s *Set, p int, rng *rand.Rand) {
	n := s.Len()
	for i := 0; i < n; i++ {
		if rng.Intn(n) == 0 {
			if p == 2 {
				if s.Has(i) {
					s.Remove(i)
				} else {
					s.Add(i)
				}
			} else {
				s.SetRung(i, uint8((s.Rung(i)+1+rng.Intn(p-1))%p))
			}
		}
	}
}
