package search

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// tunableBench is a synthetic benchmark with n singleton clusters, a
// per-cluster error contribution, and a per-cluster speedup weight, for
// exercising strategy dynamics on larger spaces than fakeBench's three.
type tunableBench struct {
	graph *typedep.Graph
	errs  []float64
	gain  []uint64
}

func newTunableBench(errs []float64, gain []uint64) *tunableBench {
	g := typedep.NewGraph()
	for i := range errs {
		g.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), "u", typedep.Scalar)
	}
	return &tunableBench{graph: g, errs: errs, gain: gain}
}

func (b *tunableBench) Name() string          { return "tunable" }
func (b *tunableBench) Kind() bench.Kind      { return bench.Kernel }
func (b *tunableBench) Description() string   { return "synthetic scenario target" }
func (b *tunableBench) Metric() verify.Metric { return verify.MAE }
func (b *tunableBench) Graph() *typedep.Graph { return b.graph }

func (b *tunableBench) Run(t *mp.Tape, seed int64) bench.Output {
	out := 1.0
	for i := range b.errs {
		if t.Prec(mp.VarID(i)) == mp.F32 {
			out += b.errs[i]
			t.AddFlops(mp.F32, b.gain[i])
		} else {
			t.AddFlops(mp.F64, b.gain[i])
		}
	}
	return bench.Output{Values: []float64{out}}
}

// TestDeltaDebugBisectionDepth pins DD's effort scaling: with exactly one
// poisoned cluster among 16, the bisection must isolate it in O(log n)
// failing probes rather than O(n).
func TestDeltaDebugBisectionDepth(t *testing.T) {
	errs := make([]float64, 16)
	gain := make([]uint64, 16)
	for i := range gain {
		gain[i] = 1e6
	}
	errs[11] = 1 // the poisoned cluster
	b := newTunableBench(errs, gain)
	e := newEval(t, b, ByCluster, 1e-8)
	out := DeltaDebug{}.Search(e)
	if !out.Found {
		t.Fatal("DD found nothing")
	}
	if out.Best.Count() != 15 || out.Best.Has(11) {
		t.Errorf("DD best = %s, want all but unit 11", out.Best)
	}
	// Full set fails, then binary descent: about 2*log2(16) probes, far
	// below the 16 a linear scan would need... and certainly below 2^16.
	if out.Evaluated > 12 {
		t.Errorf("DD evaluated %d configurations, expected bisection (~9)", out.Evaluated)
	}
}

// TestGeneticStagnationStops pins the GA termination rule: on a flat
// fitness surface (everything passes, equal speedups) the best individual
// cannot improve, so the run must stop after the stagnation window rather
// than exhausting all generations.
func TestGeneticStagnationStops(t *testing.T) {
	errs := make([]float64, 8)
	gain := make([]uint64, 8) // zero gain: all configs cost the same
	b := newTunableBench(errs, gain)
	e := newEval(t, b, ByCluster, 1e-8)
	ga := Genetic{Population: 4, Generations: 50, Stagnation: 2, Seed: 5}
	out := ga.Search(e)
	// 50 generations x 4 individuals would be ~200 proposals; stagnation
	// must cut this to a handful of generations.
	if out.Evaluated > 40 {
		t.Errorf("GA evaluated %d configurations, stagnation did not stop it", out.Evaluated)
	}
}

// TestCompositionalPrefersCompositions pins CM's reason to exist: two
// clusters that individually pass and are faster together must be
// composed, and the composition must be the reported best.
func TestCompositionalPrefersCompositions(t *testing.T) {
	b := newTunableBench([]float64{0, 0, 1}, []uint64{5e6, 5e6, 5e6})
	e := newEval(t, b, ByVariable, 1e-8)
	out := Compositional{}.Search(e)
	if !out.Found {
		t.Fatal("CM found nothing")
	}
	if out.Best.Count() != 2 || out.Best.Has(2) {
		t.Errorf("CM best = %s, want units 0+1", out.Best)
	}
	if out.BestResult.Speedup <= 1.2 {
		t.Errorf("composed speedup = %.3f, expected the combined gain", out.BestResult.Speedup)
	}
}

// TestBudgetMidSearchKeepsPartialResult pins the timeout contract for the
// strategies that track a best-so-far: when the budget dies mid-search,
// the outcome must be flagged TimedOut while still carrying whatever
// passing configuration had been seen.
func TestBudgetMidSearchKeepsPartialResult(t *testing.T) {
	errs := make([]float64, 12)
	gain := make([]uint64, 12)
	for i := range gain {
		gain[i] = 1e6
	}
	b := newTunableBench(errs, gain)
	e := newEval(t, b, ByVariable, 1e-8)
	// Enough budget for the individual phase plus a little composing.
	e.SetBudget(e.Spent() + 16*DefaultBuildSeconds)
	out := Compositional{}.Search(e)
	if !out.TimedOut {
		t.Fatal("CM should have timed out")
	}
	if !out.Found {
		t.Fatal("CM saw passing singles before the budget died; Found must hold them")
	}
	if out.BestResult.Speedup <= 1.0 {
		t.Errorf("partial best speedup = %.3f", out.BestResult.Speedup)
	}
}

// TestHierarchicalAccumulatesAcrossGroups pins HR's accumulation: two
// passing function groups must both end up accepted, not just the first.
func TestHierarchicalAccumulatesAcrossGroups(t *testing.T) {
	g := typedep.NewGraph()
	g.Add("a", "f1", typedep.Scalar)
	g.Add("b", "f1", typedep.Scalar)
	g.Add("c", "f2", typedep.Scalar)
	g.Add("d", "f2", typedep.Scalar)
	g.Add("poison", "f3", typedep.Scalar)
	b := &tunableBench{graph: g,
		errs: []float64{0, 0, 0, 0, 1},
		gain: []uint64{1e6, 1e6, 1e6, 1e6, 1e6}}
	e := newEval(t, b, ByVariable, 1e-8)
	out := Hierarchical{}.Search(e)
	if !out.Found {
		t.Fatal("HR found nothing")
	}
	// Root fails (poison), groups f1 and f2 pass and accumulate, f3
	// fails, its leaf fails.
	if out.Best.Count() != 4 {
		t.Errorf("HR accepted %d units, want 4 (both clean groups)", out.Best.Count())
	}
	if out.Best.Has(4) {
		t.Error("HR accepted the poisoned variable")
	}
}

// TestGreedyStopsAddingWhatFails pins GP's acceptance rule: a cluster
// whose demotion fails verification must be skipped without poisoning the
// clusters after it in the ranking.
func TestGreedyStopsAddingWhatFails(t *testing.T) {
	// Heavy cluster is poisoned: greedy tries it first, rejects it, and
	// still picks up the lighter clean ones.
	b := newTunableBench([]float64{1, 0, 0}, []uint64{9e6, 4e6, 2e6})
	e := newEval(t, b, ByCluster, 1e-8)
	out := GreedyProfile{}.Search(e)
	if !out.Found {
		t.Fatal("GP found nothing")
	}
	if out.Best.Has(0) {
		t.Error("GP accepted the poisoned cluster")
	}
	if out.Best.Count() != 2 {
		t.Errorf("GP accepted %d clusters, want 2", out.Best.Count())
	}
	if out.Evaluated != 3 {
		t.Errorf("GP evaluated %d, want exactly one per cluster", out.Evaluated)
	}
}

// TestCombinationalBudgetPartial pins CB's large-space behaviour: on a
// space too big to enumerate, it must time out with the best-so-far from
// the size-descending order (the full set, which passes here).
func TestCombinationalBudgetPartial(t *testing.T) {
	errs := make([]float64, 30)
	gain := make([]uint64, 30)
	for i := range gain {
		gain[i] = 1e6
	}
	b := newTunableBench(errs, gain)
	e := newEval(t, b, ByCluster, 1e-8)
	e.SetBudget(e.Spent() + 10*DefaultBuildSeconds)
	out := Combinational{}.Search(e)
	if !out.TimedOut {
		t.Fatal("CB should have timed out on 2^30 configurations")
	}
	if !out.Found || out.Best.Count() != 30 {
		t.Errorf("CB best = %v (found=%v), want the full set from the descending order", out.Best, out.Found)
	}
}

// TestVerdictErrorSurfacesInResult pins the plumbing: the verified error
// of the converged configuration must flow through Outcome untouched.
func TestVerdictErrorSurfacesInResult(t *testing.T) {
	b := newTunableBench([]float64{1e-10}, []uint64{1e6})
	e := newEval(t, b, ByCluster, 1e-8)
	out := DeltaDebug{}.Search(e)
	if !out.Found {
		t.Fatal("DD found nothing")
	}
	if math.Abs(out.BestResult.Verdict.Error-1e-10) > 1e-12 {
		t.Errorf("verdict error = %g, want 1e-10", out.BestResult.Verdict.Error)
	}
}
