package harness

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/faults"
	"repro/internal/mp"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// CampaignOptions configures one fault-tolerant campaign run.
type CampaignOptions struct {
	// Workers is the simulated node-pool size (0 = GOMAXPROCS).
	Workers int
	// Seed drives the workload and analysis randomness.
	Seed int64
	// Telemetry receives the campaign's metrics and events (nil = off).
	Telemetry *telemetry.Recorder
	// Faults is the fault model; the zero plan injects nothing.
	Faults faults.Plan
	// Retry governs transient-failure retries; zero = DefaultRetryPolicy.
	Retry RetryPolicy
	// CheckpointPath, when set, journals each completed job there.
	CheckpointPath string
	// ResumePath, when set, loads a previous checkpoint journal and skips
	// the jobs it records as cleanly completed. It may equal
	// CheckpointPath, in which case the journal is extended in place.
	ResumePath string
	// Cache, when non-nil, is the shared run cache to install on the
	// scheduler. When nil and NoCache is false, RunCampaign creates a
	// fresh campaign-private cache, so sharing is the default.
	Cache *bench.Cache
	// NoCache disables run caching for this campaign: every job executes
	// every configuration it proposes. Output is identical either way;
	// this exists for benchmarking the cache itself and as an escape
	// hatch.
	NoCache bool
	// Interpreted disables compiled evaluation for this campaign: every
	// uncached execution interprets against a fresh tape instead of
	// running its precision-specialized kernel. Output is identical
	// either way (see Scheduler.Interpreted); the escape hatch and the
	// compiler's benchmarking baseline.
	Interpreted bool
	// Compiler, when non-nil, is the compile cache to install on the
	// scheduler; nil compiled campaigns use the process-wide shared
	// compiler.
	Compiler *compile.Compiler
	// Precisions, when non-empty, is the default precision ladder (e.g.
	// "f64,f32,bf16") applied to every spec whose analysis clause does not
	// set its own precisions. The default ladder leaves specs - and hence
	// the campaign fingerprint - untouched.
	Precisions string
	// Objective, when non-empty, is the default analysis objective
	// ("threshold" or "pareto") applied to every spec whose analysis
	// clause leaves the objective at its threshold default.
	Objective string
	// OnJobDone, when non-nil, is called once per completed job from
	// whichever worker finished it (see Scheduler.OnJobDone).
	OnJobDone func(idx int, r JobResult)
	// TraceDiag, when non-nil, collects live per-job run-cache attribution
	// (see Scheduler.TraceDiag). Diagnostic only; deterministic traces are
	// built post-hoc with BuildTrace.
	TraceDiag *trace.Diag
}

// RunCampaign executes one campaign over the specs: it builds the jobs,
// arms the fault injector, wires checkpoint/resume, and runs the
// scheduler. Per-job failures (including degraded jobs) live in the
// returned results; the error return is reserved for campaign-level
// problems - unresolvable specs, an invalid fault plan, or a journal
// that cannot be read or written.
func RunCampaign(specs []Spec, opts CampaignOptions) ([]JobResult, error) {
	return RunCampaignContext(context.Background(), specs, opts)
}

// RunCampaignContext is RunCampaign under a cancellation context: once
// ctx is done, in-flight jobs report canceled best-so-far analyses and
// unstarted jobs come back Skipped (see Scheduler.RunContext). The
// checkpoint journal records only what actually ran, so a canceled
// campaign resumes exactly like an interrupted one.
func RunCampaignContext(ctx context.Context, specs []Spec, opts CampaignOptions) ([]JobResult, error) {
	specs, err := applyCampaignDefaults(specs, opts)
	if err != nil {
		return nil, err
	}
	jobs, err := JobsFromSpecs(specs, opts.Seed)
	if err != nil {
		return nil, err
	}
	inj, err := faults.NewInjector(opts.Faults)
	if err != nil {
		return nil, err
	}
	fp := CampaignFingerprint(specs, opts.Seed, opts.Faults)

	var resume map[int]JournalRecord
	if opts.ResumePath != "" {
		if resume, err = ReadJournal(opts.ResumePath, fp, len(jobs)); err != nil {
			return nil, err
		}
	}
	var journal *Journal
	if opts.CheckpointPath != "" {
		if opts.CheckpointPath == opts.ResumePath {
			journal, err = AppendJournal(opts.CheckpointPath, fp, len(jobs))
		} else {
			journal, err = CreateJournal(opts.CheckpointPath, fp, len(jobs))
			if err == nil {
				// Carry the resumed records into the fresh journal so it
				// alone can restart the campaign.
				for i := 0; i < len(jobs); i++ {
					if rec, ok := resume[i]; ok {
						journal.Append(rec)
					}
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}

	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = bench.NewCache(nil)
	}
	s := Scheduler{
		Workers:     opts.Workers,
		Telemetry:   opts.Telemetry,
		Faults:      inj,
		Retry:       opts.Retry,
		Journal:     journal,
		Resume:      resume,
		Cache:       cache,
		Interpreted: opts.Interpreted,
		Compiler:    opts.Compiler,
		OnJobDone:   opts.OnJobDone,
		TraceDiag:   opts.TraceDiag,
	}
	results := s.RunContext(ctx, jobs)
	if err := journal.Close(); err != nil {
		return results, fmt.Errorf("harness: checkpoint journal: %w", err)
	}
	return results, nil
}

// applyCampaignDefaults resolves the campaign-wide precisions and
// objective options onto the specs that do not set their own, before jobs
// and the fingerprint are built (the applied values are part of the
// campaign definition). Specs are copied; the caller's slice is never
// mutated. Empty options - and the default ladder - change nothing.
func applyCampaignDefaults(specs []Spec, opts CampaignOptions) ([]Spec, error) {
	if opts.Precisions == "" && opts.Objective == "" {
		return specs, nil
	}
	var ladder mp.Ladder
	if opts.Precisions != "" {
		l, err := mp.ParseLadder(opts.Precisions)
		if err != nil {
			return nil, fmt.Errorf("harness: campaign precisions: %w", err)
		}
		if !l.IsDefault() {
			ladder = l
		}
	}
	objective := search.ObjectiveThreshold
	if opts.Objective != "" {
		o, err := search.ParseObjective(opts.Objective)
		if err != nil {
			return nil, fmt.Errorf("harness: campaign objective: %w", err)
		}
		objective = o
	}
	out := make([]Spec, len(specs))
	copy(out, specs)
	for i := range out {
		if ladder != nil && out[i].Analysis.Precisions == nil {
			out[i].Analysis.Precisions = ladder
		}
		if objective != search.ObjectiveThreshold && out[i].Analysis.Objective == search.ObjectiveThreshold {
			out[i].Analysis.Objective = objective
		}
	}
	return out, nil
}
