// Package trace is the campaign tracing layer: every campaign produces a
// deterministic, hierarchical span tree - campaign → job → attempt →
// phases (build, run, straggler slowdown, retry backoff) - whose
// timestamps come from the simulated analysis clock and whose IDs are
// pure functions of (campaign, job index, attempt). Because every input
// is itself deterministic (the evaluator charges identical simulated
// time with the run cache on or off, and per-job accounting never
// depends on which worker ran the job), the exported trace for a given
// campaign spec is byte-identical at any worker count and with caching
// on or off - the property the harness trace tests lock under -race.
//
// The tree is laid out on a single canonical timeline: jobs in
// submission order, each job's attempts (and the backoff waits between
// them) back to back. This is the workers=1 schedule, i.e. the total
// simulated analysis cost of the campaign - the quantity the paper's
// Figure 3 plots - so the root span's duration answers "where did the
// analysis time go" independent of how the pool happened to interleave.
// The scheduling-dependent view (which worker ran what, queue waits,
// run-cache leader/waiter attribution) is explicitly NOT part of the
// span tree; it lives in the telemetry event stream and in the Probe
// diagnostics of this package, which are documented as
// scheduling-dependent and kept out of the exported artifacts.
//
// Span IDs follow a fixed scheme:
//
//	campaign
//	job:<index>
//	job:<index>/attempt:<n>
//	job:<index>/attempt:<n>/<phase>
//	job:<index>/backoff:<n>
//
// so two traces of the same spec can be diffed span by span.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Span categories, in tree order.
const (
	CatCampaign = "campaign"
	CatJob      = "job"
	CatAttempt  = "attempt"
	CatPhase    = "phase"
)

// Phase names. A job attempt decomposes into build (configuration
// transformation + recompilation charges), run (measurement-protocol
// executions), and - when a straggler fault inflated the attempt - the
// slowdown residual; the simulated wait between retried attempts is the
// backoff phase. Every simulated second of a campaign lands in exactly
// one phase, so the profile's per-phase totals sum to the campaign's
// reported analysis time.
const (
	PhaseBuild     = "build"
	PhaseRun       = "run"
	PhaseStraggler = "straggler"
	PhaseBackoff   = "backoff"
)

// PhaseOrder is the canonical rendering order of the phases.
var PhaseOrder = []string{PhaseBuild, PhaseRun, PhaseStraggler, PhaseBackoff}

// Span is one node of the tree. Start and End are simulated seconds on
// the campaign's canonical timeline; Args carries deterministic
// attributes only (encoding/json marshals map keys sorted, so
// serialised spans are deterministic).
type Span struct {
	ID     string         `json:"id"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Cat    string         `json:"cat"`
	Start  float64        `json:"start_seconds"`
	End    float64        `json:"end_seconds"`
	Args   map[string]any `json:"args,omitempty"`

	children []*Span
}

// AddSpan appends a child span. Children are ordered - the tree is
// serialised depth-first in insertion order - so callers must never
// feed AddSpan from a map iteration (the orderedemit analyzer enforces
// this statically).
func (s *Span) AddSpan(child *Span) *Span {
	child.Parent = s.ID
	s.children = append(s.children, child)
	return child
}

// Children returns the child spans in insertion order.
func (s *Span) Children() []*Span { return s.children }

// Duration is the span's simulated length in seconds.
func (s *Span) Duration() float64 { return s.End - s.Start }

// Walk visits the span and its subtree depth-first, pre-order.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.children {
		c.Walk(fn)
	}
}

// Attempt is the deterministic accounting of one execution attempt of a
// job, the input the span builder consumes. All durations are simulated
// seconds.
type Attempt struct {
	// Number is the 1-based attempt number.
	Number int
	// BuildSeconds is the total configuration build time charged.
	BuildSeconds float64
	// RunSeconds is the total measured execution time charged.
	RunSeconds float64
	// SpentSeconds is the attempt's full simulated spend. It equals
	// BuildSeconds+RunSeconds except under a straggler fault, where the
	// surplus becomes the attempt's straggler phase.
	SpentSeconds float64
	// BackoffSeconds is the simulated wait after this attempt before the
	// next one (0 on the final attempt).
	BackoffSeconds float64
	// Evaluations is the paper's EV count for this attempt.
	Evaluations int
	// CacheHits counts evaluator-memo hits (proposals served without a
	// build). Unlike the shared run cache's hit/miss split, this count is
	// a pure function of the search sequence, hence deterministic.
	CacheHits int
	// Fault names the injected fault that fired on this attempt ("" for
	// a clean attempt).
	Fault string
	// Err is the attempt's failure summary ("" on success).
	Err string
}

// Job is one campaign job's deterministic trace input.
type Job struct {
	// Index is the job's position in campaign submission order.
	Index int
	// Entry is the configuration entry name, Bench the benchmark binary,
	// Algorithm and Threshold the analysis parameters.
	Entry     string
	Bench     string
	Algorithm string
	Threshold float64
	// Attempts is the execution history in order (empty for a skipped
	// job).
	Attempts []Attempt
	// Degraded, Skipped, and Canceled qualify the job's end state.
	Degraded bool
	Skipped  bool
	Canceled bool
}

// Trace is one campaign's assembled span tree.
type Trace struct {
	// Campaign is the campaign's name or ID.
	Campaign string `json:"campaign"`
	// Root is the campaign span; every other span is in its subtree.
	Root *Span `json:"root"`
	// Jobs is the job count, Spans the total span count.
	Jobs  int `json:"jobs"`
	Spans int `json:"spans"`
}

// TotalSeconds is the campaign's total simulated analysis time (the
// root span's duration).
func (t *Trace) TotalSeconds() float64 { return t.Root.Duration() }

// Assemble lays the jobs out on the canonical timeline and returns the
// campaign's span tree. It is a pure function of its inputs: assembling
// the same jobs always yields an identical tree, which is what makes
// exported traces byte-comparable across worker counts and cache modes.
func Assemble(campaign string, jobs []Job) *Trace {
	root := &Span{ID: "campaign", Name: campaign, Cat: CatCampaign, Args: map[string]any{
		"jobs": len(jobs),
	}}
	spans := 1
	cursor := 0.0
	for _, j := range jobs {
		job := root.AddSpan(jobSpan(j, cursor))
		spans += countSpans(job)
		cursor = job.End
	}
	root.End = cursor
	// The canonical timeline is also the campaign's simulated analysis
	// cost; stamp it on the root so a trimmed trace still reports it.
	root.Args["total_seconds"] = cursor
	return &Trace{Campaign: campaign, Root: root, Jobs: len(jobs), Spans: spans}
}

// jobSpan builds one job's subtree starting at the timeline cursor.
func jobSpan(j Job, start float64) *Span {
	id := fmt.Sprintf("job:%d", j.Index)
	job := &Span{
		ID:    id,
		Name:  fmt.Sprintf("%s (%s)", j.Entry, j.Algorithm),
		Cat:   CatJob,
		Start: start,
		Args: map[string]any{
			"job":       j.Index,
			"entry":     j.Entry,
			"bench":     j.Bench,
			"algorithm": j.Algorithm,
			"threshold": j.Threshold,
		},
	}
	if j.Degraded {
		job.Args["degraded"] = true
	}
	if j.Canceled {
		job.Args["canceled"] = true
	}
	if j.Skipped {
		// Nothing ran: the job span is a zero-length marker.
		job.Args["skipped"] = true
		job.End = start
		return job
	}
	t := start
	for _, a := range j.Attempts {
		att := job.AddSpan(attemptSpan(id, a, t))
		t = att.End
		if a.BackoffSeconds > 0 {
			backoff := job.AddSpan(&Span{
				ID:    fmt.Sprintf("%s/backoff:%d", id, a.Number),
				Name:  PhaseBackoff,
				Cat:   CatPhase,
				Start: t,
				End:   t + a.BackoffSeconds,
				Args:  map[string]any{"phase": PhaseBackoff, "after_attempt": a.Number},
			})
			t = backoff.End
		}
	}
	job.End = t
	return job
}

// attemptSpan builds one attempt's subtree: build, run, and (when a
// straggler inflated the attempt) the slowdown residual, back to back.
func attemptSpan(jobID string, a Attempt, start float64) *Span {
	id := fmt.Sprintf("%s/attempt:%d", jobID, a.Number)
	att := &Span{
		ID:    id,
		Name:  fmt.Sprintf("attempt %d", a.Number),
		Cat:   CatAttempt,
		Start: start,
		Args: map[string]any{
			"attempt":     a.Number,
			"evaluations": a.Evaluations,
			"cache_hits":  a.CacheHits,
		},
	}
	if a.Fault != "" {
		att.Args["fault"] = a.Fault
	}
	if a.Err != "" {
		att.Args["error"] = a.Err
	}
	t := start
	t = phase(att, id, PhaseBuild, t, a.BuildSeconds)
	t = phase(att, id, PhaseRun, t, a.RunSeconds)
	// A straggler fault bills more simulated time than the analysis
	// itself consumed; the surplus is its own phase so slow-node cost is
	// attributable. Tiny negative residuals (floating-point reassociation
	// between spent and build+run) are clamped to zero.
	if residual := a.SpentSeconds - a.BuildSeconds - a.RunSeconds; residual > 1e-9 {
		t = phase(att, id, PhaseStraggler, t, residual)
	}
	att.End = t
	return att
}

// phase appends one phase span of the given duration and returns the
// advanced cursor. Zero-duration phases are kept: a well-formed attempt
// always shows its build and run phases, even when one is empty.
func phase(parent *Span, id, name string, start, dur float64) float64 {
	if dur < 0 || math.IsNaN(dur) {
		dur = 0
	}
	parent.AddSpan(&Span{
		ID:    id + "/" + name,
		Name:  name,
		Cat:   CatPhase,
		Start: start,
		End:   start + dur,
		Args:  map[string]any{"phase": name},
	})
	return start + dur
}

// countSpans counts a subtree.
func countSpans(s *Span) int {
	n := 0
	s.Walk(func(*Span) { n++ })
	return n
}

// SortJobs orders trace inputs by job index; builders that collect jobs
// out of order (completion-order callbacks) normalise through it before
// Assemble.
func SortJobs(jobs []Job) {
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Index < jobs[k].Index })
}
