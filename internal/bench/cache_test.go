package bench

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// cacheBench is a minimal deterministic benchmark whose executions the
// tests can count.
type cacheBench struct {
	graph  *typedep.Graph
	hidden int
	runs   *int
}

func newCacheBench(vars, hidden int, runs *int) *cacheBench {
	g := typedep.NewGraph()
	for i := 0; i < vars; i++ {
		g.Add(fmt.Sprintf("v%d", i), "unit", typedep.Scalar)
	}
	return &cacheBench{graph: g, hidden: hidden, runs: runs}
}

func (b *cacheBench) Name() string          { return "cache-bench" }
func (b *cacheBench) Kind() Kind            { return Kernel }
func (b *cacheBench) Description() string   { return "test benchmark" }
func (b *cacheBench) Metric() verify.Metric { return verify.MAE }
func (b *cacheBench) Graph() *typedep.Graph { return b.graph }
func (b *cacheBench) HiddenVars() int       { return b.hidden }

func (b *cacheBench) Run(t *mp.Tape, seed int64) Output {
	if b.runs != nil {
		*b.runs++
	}
	var srcs []mp.VarID
	if t.NumVars() > 1 {
		srcs = []mp.VarID{1}
	}
	a := t.NewArray(0, 8)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, t.Assign(0, float64(seed)+float64(i)*1.25, 1, srcs...))
	}
	return Output{Values: a.Snapshot()}
}

// TestJitterSeedMatchesReference locks the allocation-free jitterSeed to
// the byte stream the original fmt.Fprintf+fnv implementation hashed:
// existing measured results must not shift.
func TestJitterSeedMatchesReference(t *testing.T) {
	ref := func(seed int64, name string, cfg Config) int64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s/%s", seed, name, cfg.Key())
		return int64(h.Sum64())
	}
	cases := []struct {
		seed int64
		name string
		cfg  Config
	}{
		{42, "hydro-1d", nil},
		{42, "hydro-1d", Config{}},
		{42, "hydro-1d", Config{mp.F64, mp.F32}},
		{-17, "K-means/ir", Config{mp.F32, mp.F32, mp.F16}},
		{0, "", nil},
		{9223372036854775807, "eos", AllSingle(30)},
		{-9223372036854775808, "x", Config{mp.F64}},
	}
	for _, c := range cases {
		r := &Runner{Seed: c.seed}
		if got, want := r.jitterSeed(c.name, c.cfg), ref(c.seed, c.name, c.cfg); got != want {
			t.Errorf("jitterSeed(%d, %q, %q) = %d, want %d", c.seed, c.name, c.cfg.Key(), got, want)
		}
	}
}

// TestAppendKeyMatchesKey checks AppendKey produces exactly Key's bytes,
// reusing a buffer across calls.
func TestAppendKeyMatchesKey(t *testing.T) {
	var buf []byte
	for _, cfg := range []Config{nil, {}, {mp.F64}, {mp.F32, mp.F64, mp.F16}, AllSingle(40)} {
		buf = cfg.AppendKey(buf[:0])
		if string(buf) != cfg.Key() {
			t.Errorf("AppendKey = %q, Key = %q", buf, cfg.Key())
		}
	}
}

// TestManualSingleProfile checks the manual conversion populates
// Result.Profile like Run and RunIR do, covering hidden sites.
func TestManualSingleProfile(t *testing.T) {
	b := newCacheBench(2, 1, nil)
	res := NewRunner(42).RunManualSingle(b)
	if len(res.Profile) != 3 {
		t.Fatalf("Profile has %d entries, want vars+hidden = 3", len(res.Profile))
	}
	var bytes uint64
	for _, p := range res.Profile {
		bytes += p.Bytes
	}
	if bytes == 0 {
		t.Fatal("Profile carries no attributed traffic")
	}
}

// TestCacheTransparent checks the core determinism contract: with a shared
// cache installed, every Run/RunIR/RunManualSingle result is deeply equal
// to the uncached runner's, while the benchmark executes a fraction of the
// calls.
func TestCacheTransparent(t *testing.T) {
	var coldRuns, cachedRuns int
	cold := newCacheBench(2, 1, &coldRuns)
	cached := newCacheBench(2, 1, &cachedRuns)

	cfgs := []Config{nil, {mp.F32, mp.F64}, {mp.F32, mp.F32}, {mp.F64, mp.F64}}

	run := func(b Benchmark, r *Runner) []Result {
		var out []Result
		for round := 0; round < 3; round++ {
			for _, cfg := range cfgs {
				out = append(out, r.Run(b, cfg))
				out = append(out, r.RunIR(b, cfg))
			}
			out = append(out, r.RunManualSingle(b))
		}
		return out
	}

	coldRunner := NewRunner(42)
	cachedRunner := NewRunner(42)
	cachedRunner.Cache = NewCache(nil)

	coldRes := run(cold, coldRunner)
	cachedRes := run(cached, cachedRunner)

	if !reflect.DeepEqual(coldRes, cachedRes) {
		t.Fatal("cached results diverge from uncached results")
	}
	// 3 rounds x (4 source + 4 IR + 1 manual) calls; the cache executes
	// each distinct key once.
	if wantCold := 27; coldRuns != wantCold {
		t.Fatalf("uncached benchmark executed %d times, want %d", coldRuns, wantCold)
	}
	if wantCached := 9; cachedRuns != wantCached {
		t.Fatalf("cached benchmark executed %d times, want %d (one per distinct key)", cachedRuns, wantCached)
	}
}

// TestCacheResultIsolation checks that mutating one returned Result cannot
// corrupt what later calls observe.
func TestCacheResultIsolation(t *testing.T) {
	b := newCacheBench(1, 0, nil)
	r := NewRunner(42)
	r.Cache = NewCache(nil)
	first := r.Run(b, Config{mp.F32})
	first.Output.Values[0] = -1e9
	first.Profile[0].Bytes = 0
	second := r.Run(b, Config{mp.F32})
	if second.Output.Values[0] == -1e9 {
		t.Fatal("cached Output corrupted through a returned Result")
	}
	if second.Profile[0].Bytes == 0 {
		t.Fatal("cached Profile corrupted through a returned Result")
	}
}

// TestCacheKeysSeparateRunners checks the fingerprint components that keep
// one shared cache safe across heterogeneous runners: seed, machine model,
// and repetition count must all separate entries.
func TestCacheKeysSeparateRunners(t *testing.T) {
	var runs int
	b := newCacheBench(1, 0, &runs)
	cache := NewCache(nil)
	cfg := Config{mp.F32}

	base := NewRunner(42)
	base.Cache = cache
	baseRes := base.Run(b, cfg)

	otherSeed := NewRunner(43)
	otherSeed.Cache = cache
	if res := otherSeed.Run(b, cfg); reflect.DeepEqual(res, baseRes) {
		t.Fatal("different seeds served the same cached result")
	}

	otherModel := NewRunner(42)
	otherModel.Cache = cache
	otherModel.Machine.Rate32 *= 2
	if res := otherModel.Run(b, cfg); res.Measured == baseRes.Measured {
		t.Fatal("different machine models served the same cached measurement")
	}

	otherRuns := NewRunner(42)
	otherRuns.Cache = cache
	otherRuns.Runs = base.Runs + 5
	if res := otherRuns.Run(b, cfg); res.Measured.Runs == baseRes.Measured.Runs {
		t.Fatal("different protocols served the same cached measurement")
	}

	if runs != 4 {
		t.Fatalf("benchmark executed %d times, want 4 distinct entries", runs)
	}

	// And the matching runner is served from the cache.
	same := NewRunner(42)
	same.Cache = cache
	if res := same.Run(b, cfg); !reflect.DeepEqual(res, baseRes) {
		t.Fatal("identical runner not served the shared entry")
	}
	if runs != 4 {
		t.Fatalf("identical runner re-executed (runs = %d)", runs)
	}
}

func BenchmarkConfigKey(b *testing.B) {
	cfg := AllSingle(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cfg.Key()
	}
}

func BenchmarkConfigAppendKey(b *testing.B) {
	cfg := AllSingle(64)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = cfg.AppendKey(buf[:0])
	}
}

func BenchmarkJitterSeed(b *testing.B) {
	r := NewRunner(42)
	cfg := AllSingle(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.jitterSeed("hydro-1d", cfg)
	}
}
