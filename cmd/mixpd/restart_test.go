package main

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

// sseFrames reads one /events stream to completion, returning the raw
// "id:"/"event:"/"data:" frames (done frame excluded) and the last SSE
// id seen. The `after` query resumes mid-stream exactly like a
// reconnecting EventSource sending Last-Event-ID.
func sseFrames(t *testing.T, url string, lastEventID string) (frames []string, lastID string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var frame []string
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			frame = append(frame, line)
			if id, ok := strings.CutPrefix(line, "id: "); ok {
				lastID = id
			}
			continue
		}
		if len(frame) > 0 {
			joined := strings.Join(frame, "\n")
			frame = nil
			if strings.HasPrefix(joined, "event: done") {
				return frames, lastID
			}
			frames = append(frames, joined)
		}
	}
	t.Fatalf("stream %s ended without a done frame: %v", url, sc.Err())
	return nil, ""
}

// TestServerRestartServesStoredCampaign is the service-level tentpole
// acceptance test: generation 1 runs a campaign with -store wiring,
// generation 2 boots over the same directory and (a) serves the
// campaign's results byte-identically from the archive, (b) resumes
// the SSE event stream across the restart - a client holding a
// mid-stream Last-Event-ID receives exactly the frames it was owed,
// byte for byte - and (c) serves a re-submitted identical campaign
// almost entirely from the durable result store.
func TestServerRestartServesStoredCampaign(t *testing.T) {
	dir := t.TempDir()

	boot := func() (*engine.Engine, *httptest.Server, func()) {
		eng, st, err := openService(dir, engine.Options{Workers: 2})
		if err != nil {
			t.Fatalf("openService: %v", err)
		}
		ts := httptest.NewServer(newServer(eng, serverOptions{store: st}))
		return eng, ts, func() {
			ts.Close()
			eng.Close()
			if err := st.Close(); err != nil {
				t.Errorf("store close: %v", err)
			}
		}
	}

	// Generation 1: run the campaign, capture results and event frames.
	eng1, ts1, stop1 := boot()
	st := postCampaign(t, ts1, "?name=durable")
	st = waitDone(t, ts1, st.ID)
	if st.State != engine.StateDone {
		t.Fatalf("campaign state %s: %s", st.State, st.Error)
	}
	var gen1Results, gen2Results string
	{
		resp, err := http.Get(ts1.URL + "/campaigns/" + st.ID + "/results")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		gen1Results = string(b)
	}
	frames1, _ := sseFrames(t, ts1.URL+"/campaigns/"+st.ID+"/events", "")
	if len(frames1) < 4 {
		t.Fatalf("campaign emitted only %d event frames", len(frames1))
	}
	// A client that consumed half the stream live remembers its last id.
	resume := len(frames1) / 2
	var resumeID string
	for _, line := range strings.Split(frames1[resume-1], "\n") {
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			resumeID = id
		}
	}
	if resumeID == "" {
		t.Fatalf("frame %d carries no SSE id:\n%s", resume-1, frames1[resume-1])
	}
	hc1 := eng1.Cache().Stats()
	if hc1.TierWrites == 0 {
		t.Fatalf("generation 1 never wrote to the store: %+v", hc1)
	}
	stop1()

	// Generation 2 boots over the same -store directory.
	eng2, ts2, stop2 := boot()
	defer stop2()

	// (a) Byte-identical archived results.
	resp, err := http.Get(ts2.URL + "/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	gen2Results = string(b)
	if gen2Results != gen1Results {
		t.Errorf("results changed across restart:\n--- gen1 ---\n%s\n--- gen2 ---\n%s", gen1Results, gen2Results)
	}

	// (b) SSE resume across generations: the tail from Last-Event-ID is
	// byte-identical to the frames the live stream would have sent.
	tail, _ := sseFrames(t, ts2.URL+"/campaigns/"+st.ID+"/events", resumeID)
	want := frames1[resume:]
	if len(tail) != len(want) {
		t.Fatalf("resumed stream has %d frames, want %d", len(tail), len(want))
	}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("resumed frame %d diverges:\n--- live ---\n%s\n--- resumed ---\n%s", i, want[i], tail[i])
		}
	}

	// Live-only artifacts answer 410 Gone, distinctly from 404/409.
	for _, path := range []string{"/trace", "/profile", "/cachediag", "/metrics"} {
		if code := getJSON(t, ts2.URL+"/campaigns/"+st.ID+path, nil); code != http.StatusGone {
			t.Errorf("GET %s on archived campaign: status %d, want 410", path, code)
		}
	}

	// (c) A re-submitted identical campaign is served from the store:
	// byte-identical records, near-100% tier hit rate.
	st2 := postCampaign(t, ts2, "?name=durable")
	st2 = waitDone(t, ts2, st2.ID)
	if st2.State != engine.StateDone {
		t.Fatalf("gen2 campaign state %s: %s", st2.State, st2.Error)
	}
	resp, err = http.Get(ts2.URL + "/campaigns/" + st2.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != gen1Results {
		t.Errorf("gen2 re-run records diverge from gen1:\n--- gen1 ---\n%s\n--- gen2 ---\n%s", gen1Results, b)
	}
	cs := eng2.Cache().Stats()
	if cs.Misses != 0 || cs.TierHits == 0 {
		t.Errorf("gen2 re-run executed instead of hitting the store: %+v", cs)
	}

	// /healthz on the warm generation: ok, with store stats attached.
	var hb healthBody
	if code := getJSON(t, ts2.URL+"/healthz", &hb); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
	if hb.Status != "ok" || hb.Store == nil || !hb.Store.Healthy || hb.Store.GetHits == 0 {
		t.Errorf("healthz body: %+v (store %+v)", hb, hb.Store)
	}
	if hb.Engine.Archived != 1 {
		t.Errorf("healthz engine health: %+v", hb.Engine)
	}

	// /cachediag on the warm campaign now carries the store section.
	var diag cacheDiagBody
	if code := getJSON(t, ts2.URL+"/campaigns/"+st2.ID+"/cachediag", &diag); code != http.StatusOK {
		t.Fatalf("GET cachediag: status %d", code)
	}
	if diag.Store == nil || diag.Store.Records == 0 {
		t.Errorf("cachediag store section: %+v", diag.Store)
	}
}

// TestServerHealthzDraining locks the probe contract: a draining
// server answers 503 with status "draining" so load balancers stop
// routing to it while in-flight campaigns finish.
func TestServerHealthzDraining(t *testing.T) {
	eng, st, err := openService("", engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{store: st}))
	defer ts.Close()

	var hb healthBody
	if code := getJSON(t, ts.URL+"/healthz", &hb); code != http.StatusOK || hb.Status != "ok" {
		t.Fatalf("healthy healthz: status %d body %+v", code, hb)
	}
	if hb.Store != nil {
		t.Errorf("storeless healthz reports a store: %+v", hb.Store)
	}
	if err := eng.Drain(nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), `"draining"`) {
		t.Errorf("draining healthz body: %s", b)
	}
}
