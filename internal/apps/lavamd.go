package apps

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// lavamd computes particle potential and force relocation due to mutual
// forces between particles within a large 3D space (Rodinia lavaMD
// lineage). The space is cut into boxes; particles interact with the
// particles of their home box and its 26 neighbour boxes, under a smooth
// exponential cutoff kernel. The quality metric applies MAE over the
// updated particle state (positions and velocities/forces).
//
// Inventory (Table II: TV=47, TC=11): the position vector rv, charge
// vector qv, and force vector fv form three large pointer webs; the
// interaction temporaries travel in a FOUR_VECTOR struct passed by
// pointer, binding nine of them into one cluster; the cutoff parameters
// alpha and a2 are computed through one init routine; six scalars remain
// independent.
//
// Performance character: the paper's headline case. At double precision
// the modelled particle state sits just above the L3 capacity; full
// demotion halves it into cache, so the speedup (Table IV: 2.66x)
// exceeds what traffic halving alone allows - the cache-miss-rate
// mechanism the paper calls out. Demoting only rv+qv (positions and
// charges) keeps the accumulator exact with a mid-range speedup but a
// small position-rounding error; demoting fv rounds every accumulation
// and only survives loose thresholds.
type lavamd struct {
	app
	vRv, vQv, vFv  mp.VarID
	vR2, vVij, vFs mp.VarID
	vA2            mp.VarID
}

const (
	// The space is a periodic lavaDim^3 grid of boxes; each home box
	// interacts with itself and its 26 surrounding boxes, the paper's
	// cutoff neighbourhood.
	lavaDim       = 4
	lavaBoxes     = lavaDim * lavaDim * lavaDim
	lavaPerBox    = 10
	lavaNeighbors = 26
	lavaBoxSize   = 0.05
	lavaScale     = 700
	// Per-interaction flop split: the exponential stays on libm's double
	// path, the surrounding vector arithmetic follows the clusters.
	lavaArithFlops = 24
	lavaLibmFlops  = 6
)

// lavaTmpNames is the FOUR_VECTOR temporary cluster.
var lavaTmpNames = []string{
	"r2", "u2", "vij", "fs", "d_x", "d_y", "d_z", "fxij", "fyij",
}

// lavaSingleNames are the independent scalars.
var lavaSingleNames = []string{
	"cutoff", "dot", "extent", "space", "par_scale", "box_dim",
}

// NewLavaMD constructs the application.
func NewLavaMD() bench.Benchmark {
	g := typedep.NewGraph()
	l := &lavamd{app: app{
		name:   "LavaMD",
		desc:   "Particle potential and relocation from mutual forces within a 3D space",
		metric: verify.MAE,
		graph:  g,
	}}
	l.vRv = g.Add("rv", "main", typedep.ArrayVar)
	addAliases(g, l.vRv, "kernel_cpu", "rv", 11)
	l.vQv = g.Add("qv", "main", typedep.ArrayVar)
	addAliases(g, l.vQv, "kernel_cpu", "qv", 5)
	l.vFv = g.Add("fv", "main", typedep.ArrayVar)
	addAliases(g, l.vFv, "kernel_cpu", "fv", 11)
	tmp := make([]mp.VarID, len(lavaTmpNames))
	for i, n := range lavaTmpNames {
		tmp[i] = g.Add(n, "kernel_cpu", typedep.Scalar)
	}
	//mixplint:alias -- the FOUR_VECTOR temporaries live in one C struct the kernel threads share; the port's flattened scalars never meet in an array store
	g.ConnectAll(tmp...)
	l.vR2, l.vVij, l.vFs = tmp[0], tmp[2], tmp[3]
	l.vA2 = g.Add("a2", "main", typedep.Scalar)
	alpha := g.Add("alpha", "main", typedep.Scalar)
	//mixplint:alias -- a2 = 2*alpha*alpha is computed once in the C main before the kernel launch; the port folds the product into its sampled input
	g.Connect(l.vA2, alpha)
	for _, n := range lavaSingleNames {
		g.Add(n, "main", typedep.Scalar)
	}
	if g.NumVars() != 47 || g.NumClusters() != 11 {
		panic(fmt.Sprintf("lavamd: inventory %d/%d, want 47/11", g.NumVars(), g.NumClusters()))
	}
	return l
}

func (l *lavamd) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(lavaScale)
	rng := t.Rand(seed)
	n := lavaBoxes * lavaPerBox
	// rv holds x,y,z,extent per particle; qv one charge; fv accumulates
	// the potential and three force components.
	rv := t.NewArray(l.vRv, 4*n)
	qv := t.NewArray(l.vQv, n)
	fv := t.NewArray(l.vFv, 4*n)
	// Particles live inside their box in a periodic lavaDim^3 lattice.
	boxOrigin := func(b int) (x, y, z float64) {
		return float64(b%lavaDim) * lavaBoxSize,
			float64((b/lavaDim)%lavaDim) * lavaBoxSize,
			float64(b/(lavaDim*lavaDim)) * lavaBoxSize
	}
	for b := 0; b < lavaBoxes; b++ {
		ox, oy, oz := boxOrigin(b)
		for p := 0; p < lavaPerBox; p++ {
			i := b*lavaPerBox + p
			rv.Set(4*i, ox+lavaBoxSize*rng.Float64())
			rv.Set(4*i+1, oy+lavaBoxSize*rng.Float64())
			rv.Set(4*i+2, oz+lavaBoxSize*rng.Float64())
			rv.Set(4*i+3, 0.05+0.01*rng.Float64())
			qv.Set(i, 0.5+0.5*rng.Float64())
		}
	}
	fv.Fill(0)
	a2 := t.Value(l.vA2, 0.5*0.5*2) // 2*alpha^2 with alpha=0.5 (exact)

	// neighbours enumerates the home box plus its 26 surrounding boxes in
	// the periodic lattice, exactly the paper's neighbourhood.
	neighbours := func(hb int) []int {
		hx, hy, hz := hb%lavaDim, (hb/lavaDim)%lavaDim, hb/(lavaDim*lavaDim)
		out := make([]int, 0, lavaNeighbors+1)
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx := (hx + dx + lavaDim) % lavaDim
					ny := (hy + dy + lavaDim) % lavaDim
					nz := (hz + dz + lavaDim) % lavaDim
					out = append(out, nz*lavaDim*lavaDim+ny*lavaDim+nx)
				}
			}
		}
		return out
	}

	interactions := uint64(0)
	for hb := 0; hb < lavaBoxes; hb++ {
		for _, nb := range neighbours(hb) {
			for i := hb * lavaPerBox; i < (hb+1)*lavaPerBox; i++ {
				xi, yi, zi := rv.Get(4*i), rv.Get(4*i+1), rv.Get(4*i+2)
				// The force accumulator is a FOUR_VECTOR local: it lives
				// in registers across the neighbour-box scan (one store
				// per particle per box) but rounds at fv's precision on
				// every accumulation, as the demoted struct type would.
				av := fv.Get(4 * i)
				ax := fv.Get(4*i + 1)
				ay := fv.Get(4*i + 2)
				az := fv.Get(4*i + 3)
				for j := nb * lavaPerBox; j < (nb+1)*lavaPerBox; j++ {
					dx := xi - rv.Get(4*j)
					dy := yi - rv.Get(4*j+1)
					dz := zi - rv.Get(4*j+2)
					r2 := t.Assign(l.vR2, dx*dx+dy*dy+dz*dz, 5, l.vRv)
					vij := t.Assign(l.vVij, math.Exp(-a2*r2), 1, l.vR2, l.vA2)
					fs := t.Assign(l.vFs, 2*vij*qv.Get(j), 2, l.vVij, l.vQv)
					av = t.Value(l.vFv, av+qv.Get(j)*vij)
					ax = t.Value(l.vFv, ax+fs*dx)
					ay = t.Value(l.vFv, ay+fs*dy)
					az = t.Value(l.vFv, az+fs*dz)
					interactions++
				}
				fv.Set(4*i, av)
				fv.Set(4*i+1, ax)
				fv.Set(4*i+2, ay)
				fv.Set(4*i+3, az)
			}
		}
	}
	t.AddFlops(t.Prec(l.vRv), lavaArithFlops*interactions)
	t.AddFlops(mp.F64, lavaLibmFlops*interactions)
	return bench.Output{Values: fv.Snapshot()}
}
