package apps

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// hpccg is the preconditioned conjugate gradient proxy application
// (Mantevo HPCCG lineage): it assembles a sparse symmetric
// positive-definite system and runs CG until the residual norm meets the
// tolerance or the iteration cap. The output is the solution vector.
//
// Inventory (Table II: TV=54, TC=27): the matrix values and the five CG
// vectors form six pointer webs; fourteen solver scalars are each paired
// with the pointer parameter that returns them from the dot-product and
// axpy routines; seven timing/diagnostic doubles remain independent.
//
// Performance character: the paper's Table IV reports no speedup (1.00)
// for the full single-precision conversion, and this port preserves the
// reason: at single precision the residual stalls above the tolerance, so
// the solver runs to its iteration cap - roughly twice the iterations at
// half the per-iteration cost. Demoting only the matrix values (the
// largest buffer) keeps double iteration counts and wins ~1.2x, but
// perturbs the assembled system enough to fail tight thresholds; that is
// the shape of the paper's Table V rows.
type hpccg struct {
	app
	vA, vX, vB, vR, vP, vAp mp.VarID
	vAlpha, vBeta, vRtrans  mp.VarID
}

const (
	hpccgN       = 1024
	hpccgBands   = 6 // off-diagonal bands per side: 13 stored values/row
	hpccgTol     = 1e-8
	hpccgMaxIter = 105
	hpccgScale   = 32
)

// hpccgPairNames are the solver scalars returned through pointer
// out-params (each forms a two-member cluster with its parameter).
var hpccgPairNames = []string{
	"alpha", "beta", "rtrans", "oldrtrans", "normr", "residual",
	"dot_local", "dot_global", "waxpby_alpha", "waxpby_beta",
	"sparsemv_sum", "norm_local", "norm_global", "rtrans_local",
}

// hpccgSingleNames are the independent diagnostics (HPCCG's timers are
// doubles too).
var hpccgSingleNames = []string{
	"tolerance", "t_begin", "t_total", "t_dot", "t_waxpby", "t_sparsemv",
	"mflops",
}

// NewHPCCG constructs the application.
func NewHPCCG() bench.Benchmark {
	g := typedep.NewGraph()
	h := &hpccg{app: app{
		name:   "HPCCG",
		desc:   "Preconditioned conjugate gradient solver for a sparse linear system",
		metric: verify.MAE,
		graph:  g,
	}}
	h.vA = g.Add("A_values", "main", typedep.ArrayVar)
	addAliases(g, h.vA, "HPC_sparsemv", "A_values", 2)
	h.vX = g.Add("x", "main", typedep.ArrayVar)
	addAliases(g, h.vX, "HPCCG_solve", "x", 3)
	h.vB = g.Add("b", "main", typedep.ArrayVar)
	addAliases(g, h.vB, "HPCCG_solve", "b", 1)
	h.vR = g.Add("r", "HPCCG_solve", typedep.ArrayVar)
	addAliases(g, h.vR, "compute_residual", "r", 2)
	h.vP = g.Add("p", "HPCCG_solve", typedep.ArrayVar)
	addAliases(g, h.vP, "HPC_sparsemv", "p", 3)
	h.vAp = g.Add("Ap", "HPCCG_solve", typedep.ArrayVar)
	addAliases(g, h.vAp, "HPC_sparsemv", "Ap", 2)
	pairIDs := make(map[string]mp.VarID)
	for _, n := range hpccgPairNames {
		owner := g.Add(n, "HPCCG_solve", typedep.Scalar)
		param := g.Add(n+"_p", "ddot", typedep.Param)
		g.Connect(owner, param)
		pairIDs[n] = owner
	}
	for _, n := range hpccgSingleNames {
		g.Add(n, "main", typedep.Scalar)
	}
	h.vAlpha = pairIDs["alpha"]
	h.vBeta = pairIDs["beta"]
	h.vRtrans = pairIDs["rtrans"]
	if g.NumVars() != 54 || g.NumClusters() != 27 {
		panic(fmt.Sprintf("hpccg: inventory %d/%d, want 54/27", g.NumVars(), g.NumClusters()))
	}
	return h
}

func (h *hpccg) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(hpccgScale)
	rng := t.Rand(seed)
	n := hpccgN
	width := 2*hpccgBands + 1
	// Banded SPD system modelled on HPCCG's 27-point stencil rows: a
	// dominant diagonal near 2.1 and twelve small negative off-band
	// values, all carrying assembly jitter (so the stored values are not
	// float32-exact and demoting the matrix perturbs the system).
	vals := t.NewArray(h.vA, n*width)
	bandVal := make([]float64, width) // symmetric per-band coefficients
	for k := 1; k <= hpccgBands; k++ {
		v := -1.0 / 6.0 * (0.98 + 0.04*rng.Float64())
		bandVal[hpccgBands-k] = v
		bandVal[hpccgBands+k] = v
	}
	for i := 0; i < n; i++ {
		for k := 0; k < width; k++ {
			if k == hpccgBands {
				vals.Set(i*width+k, 2.08+0.04*rng.Float64())
			} else {
				vals.Set(i*width+k, bandVal[k])
			}
		}
	}
	b := t.NewArray(h.vB, n)
	fillRandExact(b, rng, 2)

	x := t.NewArray(h.vX, n)
	r := t.NewArray(h.vR, n)
	p := t.NewArray(h.vP, n)
	ap := t.NewArray(h.vAp, n)
	x.Fill(0)

	// spmv computes dst = A*src over the stored bands.
	spmv := func(src, dst *mp.Array) {
		for i := 0; i < n; i++ {
			v := 0.0
			for k := 0; k < width; k++ {
				j := i + k - hpccgBands
				if j < 0 || j >= n {
					continue
				}
				v += vals.Get(i*width+k) * src.Get(j)
			}
			dst.Set(i, v)
		}
		t.AddFlops(t.Prec(h.vA), uint64(2*width*n))
	}
	dot := func(a, c *mp.Array) float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			s = t.Assign(h.vRtrans, s+a.Get(i)*c.Get(i), 2, a.Var(), c.Var())
		}
		return s
	}

	// r = b - A*x = b (x starts at zero); p = r.
	for i := 0; i < n; i++ {
		r.Set(i, b.Get(i))
		p.Set(i, r.Get(i))
	}
	// normr computes the true residual ||b - A*x|| (HPCCG's
	// compute_residual): the recurrence residual keeps shrinking at single
	// precision even after the true residual has stalled at its rounding
	// floor, so convergence must be judged against the real thing.
	normr := func() float64 {
		spmv(x, ap)
		s := 0.0
		for i := 0; i < n; i++ {
			d := b.Get(i) - ap.Get(i)
			s += d * d
		}
		t.AddFlops(t.Prec(h.vR), uint64(3*n))
		return math.Sqrt(s)
	}

	rtrans := dot(r, r)
	iters := 0
	for iters < hpccgMaxIter && normr() > hpccgTol {
		spmv(p, ap)
		pap := dot(p, ap)
		if !(pap > 0) {
			// Loss of positive definiteness in working precision: the
			// solver cannot make further progress.
			break
		}
		alpha := t.Assign(h.vAlpha, rtrans/pap, 1, h.vRtrans)
		for i := 0; i < n; i++ {
			x.Set(i, x.Get(i)+alpha*p.Get(i))
			r.Set(i, r.Get(i)-alpha*ap.Get(i))
		}
		t.AddFlops(t.Prec(h.vX), uint64(4*n))
		old := rtrans
		rtrans = dot(r, r)
		beta := t.Assign(h.vBeta, rtrans/old, 1, h.vRtrans)
		for i := 0; i < n; i++ {
			p.Set(i, r.Get(i)+beta*p.Get(i))
		}
		t.AddFlops(t.Prec(h.vP), uint64(2*n))
		iters++
	}
	return bench.Output{Values: x.Snapshot()}
}
