package mp

import "math"

// Half-precision support. The paper's study restricts itself to double and
// single precision (the levels Typeforge can refactor between), but its
// search-space framing is p^loc with p=3 on accelerators that add IEEE-754
// binary16, and it lists half precision as the obvious extension. The
// runtime supports it so extension studies (see examples/halfprecision)
// can explore three-level configurations; the paper-table regenerations
// never assign it.

// Half-precision limits.
const (
	// halfMaxFinite is the largest finite binary16 value.
	halfMaxFinite = 65504
	// halfOverflow is the rounding boundary to infinity: values with
	// magnitude >= 65520 round away from the largest finite half.
	halfOverflow = 65520
	// halfMinNormal is the smallest normal binary16 value, 2^-14.
	halfMinNormal = 6.103515625e-05
	// halfSubQuantum is the subnormal quantum, 2^-24.
	halfSubQuantum = 5.960464477539063e-08
)

// roundToHalf rounds x to the nearest IEEE-754 binary16 value
// (round-to-nearest-even), returning it as a float64. The arithmetic runs
// entirely in float64, whose 53-bit significand represents every
// intermediate exactly, so no double rounding occurs.
func roundToHalf(x float64) float64 {
	if x != x || math.IsInf(x, 0) || x == 0 {
		return x
	}
	ax := math.Abs(x)
	if ax >= halfOverflow {
		return math.Inf(int(math.Copysign(1, x)))
	}
	if ax < halfMinNormal {
		// Subnormal range: fixed quantum of 2^-24.
		return math.RoundToEven(x/halfSubQuantum) * halfSubQuantum
	}
	// Normal range: 11 significant bits.
	f, e := math.Frexp(x) // x = f * 2^e with |f| in [0.5, 1)
	m := math.RoundToEven(f*(1<<11)) / (1 << 11)
	y := math.Ldexp(m, e)
	if math.Abs(y) >= halfOverflow {
		// Rounding carried the significand past the largest finite half.
		return math.Inf(int(math.Copysign(1, x)))
	}
	return y
}

// halfBits encodes a half-rounded value as its IEEE-754 binary16 bit
// pattern (used by the mixed-precision file IO).
func halfBits(x float64) uint16 {
	var sign uint16
	if math.Signbit(x) {
		sign = 0x8000
	}
	switch {
	case x != x:
		return sign | 0x7E00 // quiet NaN
	case math.IsInf(x, 0):
		return sign | 0x7C00
	case x == 0:
		return sign
	}
	ax := math.Abs(x)
	if ax < halfMinNormal {
		// Subnormal: magnitude is a multiple of the quantum.
		return sign | uint16(math.Round(ax/halfSubQuantum))
	}
	f, e := math.Frexp(ax) // ax = f * 2^e, f in [0.5, 1)
	// binary16 exponent field for value 1.m * 2^(e-1) is (e-1)+15.
	exp := uint16(e-1+15) << 10
	mant := uint16(math.Round((2*f - 1) * (1 << 10)))
	return sign | exp | mant
}

// halfFromBits decodes an IEEE-754 binary16 bit pattern.
func halfFromBits(b uint16) float64 {
	sign := 1.0
	if b&0x8000 != 0 {
		sign = -1
	}
	exp := int(b>>10) & 0x1F
	mant := float64(b & 0x3FF)
	switch exp {
	case 0:
		return sign * mant * halfSubQuantum
	case 0x1F:
		if mant != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		return sign * math.Ldexp(1+mant/(1<<10), exp-15)
	}
}
