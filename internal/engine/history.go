package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// archive is the persisted form of one terminal campaign: everything
// the service endpoints need to answer for it after a restart. Records
// are the journal-shaped results (JSON-safe by construction) and
// Events the full event log, already normalised by EventLog.Emit, so
// a restarted process re-serves both byte-identically - an SSE client
// resuming with Last-Event-ID across the restart sees the exact
// frames it would have seen live.
type archive struct {
	ID        string                  `json:"id"`
	Name      string                  `json:"name"`
	State     State                   `json:"state"`
	Error     string                  `json:"error,omitempty"`
	Jobs      int                     `json:"jobs"`
	Completed int                     `json:"completed"`
	Records   []harness.JournalRecord `json:"records,omitempty"`
	Events    []telemetry.Event       `json:"events,omitempty"`
}

// archivePath is the campaign's history file: one JSON document per
// campaign, named by ID so boot-time loading is order-independent.
func (e *Engine) archivePath(id string) string {
	return filepath.Join(e.opts.HistoryDir, id+".json")
}

// archiveCampaign persists a campaign that just reached a terminal
// state. It is write-ahead in spirit but best-effort in practice: a
// history write failure never fails the campaign (the results are
// still live in memory), it is counted and surfaced through Health so
// /healthz can report degraded durability. The write is crash-safe:
// temp file, fsync, rename, parent-directory fsync - a crash leaves
// either the old state or the new file, never a torn document.
func (e *Engine) archiveCampaign(c *campaign) {
	if e.opts.HistoryDir == "" {
		return
	}
	c.mu.Lock()
	a := archive{
		ID:        c.id,
		Name:      c.name,
		State:     c.state,
		Jobs:      c.jobs,
		Completed: c.completed,
	}
	if c.err != nil {
		a.Error = c.err.Error()
	}
	for i, ok := range c.filled {
		if ok {
			a.Records = append(a.Records, c.records[i])
		}
	}
	c.mu.Unlock()
	a.Events, _ = c.events.Since(0)

	if err := e.writeArchive(a); err != nil {
		e.mu.Lock()
		e.histWriteErrs++
		e.histLastErr = err.Error()
		e.mu.Unlock()
	}
}

// writeArchive writes one archive document with full fsync discipline.
func (e *Engine) writeArchive(a archive) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: marshal campaign %s archive: %w", a.ID, err)
	}
	path := e.archivePath(a.ID)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("engine: create campaign archive: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: write campaign archive: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: close campaign archive: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: publish campaign archive: %w", err)
	}
	if err := store.SyncParentDir(path); err != nil {
		return fmt.Errorf("engine: sync history directory: %w", err)
	}
	return nil
}

// loadHistory restores archived campaigns on boot. A corrupt archive
// is quarantined (renamed aside with a .corrupt suffix) and counted,
// never a reason to refuse to start - the same policy the result
// store applies to corrupt segments. Restored campaigns answer
// Status, Results, Err, and Events exactly as the process that ran
// them would; artifacts that need live state (Trace, Profile,
// CacheDiag, WriteMetrics) report ErrArchived. The ID counter resumes
// past the highest archived ID so new submissions never collide.
func (e *Engine) loadHistory() {
	dir := e.opts.HistoryDir
	if dir == "" {
		return
	}
	if err := store.EnsureDir(dir); err != nil {
		e.histLoadErrs++
		e.histLastErr = err.Error()
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		e.histLoadErrs++
		e.histLastErr = err.Error()
		return
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".json") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		a, err := readArchive(path)
		if err == nil && (a.ID == "" || !a.State.Terminal()) {
			err = fmt.Errorf("engine: archive %s: missing id or non-terminal state %q", name, a.State)
		}
		if err != nil {
			e.histLoadErrs++
			e.histLastErr = err.Error()
			// Quarantine the corrupt archive and make the rename durable:
			// without the dir fsync a crash could resurrect it and fail
			// every subsequent load the same way.
			if os.Rename(path, path+".corrupt") == nil {
				store.SyncDir(dir)
			}
			continue
		}
		c := restoreCampaign(a)
		e.campaigns[c.id] = c
		e.order = append(e.order, c.id)
		if n, ok := campaignNumber(c.id); ok && n > e.counter {
			e.counter = n
		}
	}
}

// readArchive loads and strictly decodes one archive document.
func readArchive(path string) (archive, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return archive{}, err
	}
	var a archive
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return archive{}, fmt.Errorf("engine: archive %s: %w", filepath.Base(path), err)
	}
	return a, nil
}

// restoreCampaign rebuilds a serveable campaign from its archive: the
// event log is replayed and closed (so SSE tails and Last-Event-ID
// resumes work immediately), the done channel is pre-closed, and the
// records slice answers Results in the original order.
func restoreCampaign(a archive) *campaign {
	c := &campaign{
		id:        a.ID,
		name:      a.Name,
		cancel:    func(error) {},
		events:    NewEventLog(),
		done:      make(chan struct{}),
		jobs:      a.Jobs,
		archived:  true,
		state:     a.State,
		completed: a.Completed,
		records:   a.Records,
		filled:    make([]bool, len(a.Records)),
	}
	for i := range c.filled {
		c.filled[i] = true
	}
	if a.Error != "" {
		c.err = errors.New(a.Error)
	}
	for _, ev := range a.Events {
		c.events.Emit(ev)
	}
	c.events.Close()
	close(c.done)
	return c
}

// campaignNumber parses the numeric part of a "c0042"-style ID.
func campaignNumber(id string) (int, bool) {
	if !strings.HasPrefix(id, "c") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Health is a point-in-time view of the engine's service health for
// the /healthz endpoint: whether it still accepts work and whether
// campaign history persistence is keeping up.
type Health struct {
	// Draining reports that Drain or Close sealed the engine; new
	// submissions are refused.
	Draining bool `json:"draining"`
	// Campaigns counts every campaign the engine knows, archived ones
	// included.
	Campaigns int `json:"campaigns"`
	// Archived counts campaigns restored from history at boot.
	Archived int `json:"archived"`
	// HistoryWriteErrors counts terminal campaigns whose archive write
	// failed (their results stayed live in memory only).
	HistoryWriteErrors uint64 `json:"history_write_errors"`
	// HistoryLoadErrors counts corrupt archives quarantined at boot.
	HistoryLoadErrors uint64 `json:"history_load_errors"`
	// LastHistoryError is the most recent history read or write
	// failure, empty while persistence is healthy.
	LastHistoryError string `json:"last_history_error,omitempty"`
}

// Healthy reports whether history persistence has seen no errors.
func (h Health) Healthy() bool {
	return h.HistoryWriteErrors == 0 && h.HistoryLoadErrors == 0
}

// Health snapshots the engine's service health.
func (e *Engine) Health() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := Health{
		Draining:           e.draining,
		Campaigns:          len(e.campaigns),
		HistoryWriteErrors: e.histWriteErrs,
		HistoryLoadErrors:  e.histLoadErrs,
		LastHistoryError:   e.histLastErr,
	}
	for _, c := range e.campaigns {
		if c.archived {
			h.Archived++
		}
	}
	return h
}
