package kernels

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/verify"
)

// kernelProfile captures the qualitative behaviour the paper's Table III
// reports for each kernel at the 1e-8 quality threshold:
//
//   - demotable: the array cluster (and for single-cluster kernels, the
//     whole program) can be demoted within threshold, with the given
//     speedup band;
//   - not demotable: full demotion fails the threshold, and the best
//     passing configuration leaves the arrays at double precision, so the
//     speedup stays near 1.0.
type kernelProfile struct {
	demotable  bool
	minSpeedup float64 // demoted speedup lower bound (if demotable)
	maxSpeedup float64 // demoted speedup upper bound (if demotable)
}

var kernelProfiles = map[string]kernelProfile{
	"banded-lin-eq":  {demotable: true, minSpeedup: 3.5, maxSpeedup: 5.5},
	"diff-predictor": {demotable: true, minSpeedup: 1.3, maxSpeedup: 2.0},
	"eos":            {demotable: false},
	"gen-lin-recur":  {demotable: false},
	"hydro-1d":       {demotable: true, minSpeedup: 1.4, maxSpeedup: 2.0},
	"iccg":           {demotable: true, minSpeedup: 1.6, maxSpeedup: 2.2},
	"innerprod":      {demotable: true, minSpeedup: 0.95, maxSpeedup: 1.15},
	"int-predict":    {demotable: true, minSpeedup: 1.3, maxSpeedup: 1.9},
	"planckian":      {demotable: false},
	"tridiag":        {demotable: false},
}

const kernelThreshold = 1e-8

// arrayClusterConfig demotes every cluster that contains an array variable
// and leaves scalar-only clusters at double precision.
func arrayClusterConfig(b bench.Benchmark) bench.Config {
	g := b.Graph()
	cfg := bench.NewConfig(g.NumVars())
	for _, c := range g.Clusters() {
		hasArray := false
		for _, m := range c.Members {
			k := g.Var(m).Kind
			if k == 1 { // typedep.ArrayVar
				hasArray = true
			}
		}
		if hasArray {
			for _, m := range c.Members {
				cfg[m] = mp.F32
			}
		}
	}
	return cfg
}

func TestKernelCalibration(t *testing.T) {
	runner := bench.NewRunner(42)
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			prof, ok := kernelProfiles[b.Name()]
			if !ok {
				t.Fatalf("no profile for kernel %s", b.Name())
			}
			ref := runner.Reference(b)
			// A search would consider both the array-cluster demotion and
			// the uniform full demotion; take the fastest passing one.
			arrayOnly := runner.Run(b, arrayClusterConfig(b))
			full := runner.Run(b, bench.AllSingle(b.Graph().NumVars()))
			bestSU, anyPassed := 0.0, false
			for _, cand := range []bench.Result{arrayOnly, full} {
				v, err := verify.Check(b.Metric(), ref.Output.Values, cand.Output.Values, kernelThreshold)
				if err != nil {
					t.Fatal(err)
				}
				su := ref.Measured.Mean / cand.Measured.Mean
				t.Logf("err=%.3g pass=%v speedup=%.3f (model %.3g -> %.3g s)",
					v.Error, v.Passed, su, ref.ModelTime, cand.ModelTime)
				if v.Passed {
					anyPassed = true
					if su > bestSU {
						bestSU = su
					}
				}
			}
			if prof.demotable {
				if !anyPassed {
					t.Error("some demotion should pass 1e-8")
				}
				if bestSU < prof.minSpeedup || bestSU > prof.maxSpeedup {
					t.Errorf("best speedup %.3f outside [%.2f, %.2f]", bestSU, prof.minSpeedup, prof.maxSpeedup)
				}
			} else if anyPassed {
				t.Error("array demotion should fail 1e-8")
			}
		})
	}
}

// TestKernelScalarDemotionIsLossless checks the float32-exact scalar design:
// for kernels whose scalar clusters are pure inputs (not accumulators),
// demoting the scalar-only clusters must leave the output bit-identical,
// which is the zero-error cell of Table III. innerprod's scalar is an
// accumulator and gen-lin-recur's scalars sit in the array cluster, so
// they are excluded.
func TestKernelScalarDemotionIsLossless(t *testing.T) {
	losslessScalars := map[string]bool{
		"eos": true, "hydro-1d": true, "planckian": true, "int-predict": true,
	}
	runner := bench.NewRunner(42)
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if !losslessScalars[b.Name()] {
				t.Skip("kernel has no pure-input scalar cluster")
			}
			g := b.Graph()
			cfg := bench.NewConfig(g.NumVars())
			for _, c := range g.Clusters() {
				scalarOnly := true
				for _, m := range c.Members {
					if g.Var(m).Kind == 1 {
						scalarOnly = false
					}
				}
				if scalarOnly {
					for _, m := range c.Members {
						cfg[m] = mp.F32
					}
				}
			}
			ref := runner.Reference(b)
			cand := runner.Run(b, cfg)
			e, err := verify.Compute(b.Metric(), ref.Output.Values, cand.Output.Values)
			if err != nil {
				t.Fatal(err)
			}
			if e != 0 {
				t.Errorf("scalar-only demotion error = %g, want exactly 0", e)
			}
		})
	}
}

func TestKernelDeterminism(t *testing.T) {
	runner := bench.NewRunner(7)
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			a := runner.Reference(b)
			c := runner.Reference(b)
			if a.Cost != c.Cost {
				t.Error("cost differs between identical runs")
			}
			if len(a.Output.Values) != len(c.Output.Values) {
				t.Fatal("output length differs")
			}
			for i := range a.Output.Values {
				if a.Output.Values[i] != c.Output.Values[i] {
					t.Fatalf("output[%d] differs", i)
				}
			}
		})
	}
}

// TestKernelProfilesStableAcrossSeeds guards the calibration against
// workload luck: the demotable/not-demotable classification of every
// kernel must hold for workload seeds other than the canonical one.
func TestKernelProfilesStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 99, 1234} {
		runner := bench.NewRunner(seed)
		for _, b := range All() {
			prof := kernelProfiles[b.Name()]
			ref := runner.Reference(b)
			arrayOnly := runner.Run(b, arrayClusterConfig(b))
			full := runner.Run(b, bench.AllSingle(b.Graph().NumVars()))
			anyPassed := false
			for _, cand := range []bench.Result{arrayOnly, full} {
				v, err := verify.Check(b.Metric(), ref.Output.Values, cand.Output.Values, kernelThreshold)
				if err != nil {
					t.Fatalf("seed %d, %s: %v", seed, b.Name(), err)
				}
				if v.Passed {
					anyPassed = true
				}
			}
			if anyPassed != prof.demotable {
				t.Errorf("seed %d: %s demotable=%v, calibrated as %v",
					seed, b.Name(), anyPassed, prof.demotable)
			}
		}
	}
}
