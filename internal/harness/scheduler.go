package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Scheduler fans analysis jobs out over a pool of workers, reproducing the
// paper's setup: "the harness offloads the search for each combination of
// an application/algorithm to a separate node" of the cluster. One worker
// stands in for one node; results come back in job order regardless of
// completion order, so harness output is deterministic.
type Scheduler struct {
	// Workers is the pool size (simulated node count). Zero means
	// GOMAXPROCS.
	Workers int
	// Telemetry, when non-nil, receives the campaign's metrics and event
	// stream. Each job runs against a private recorder; after the pool
	// drains, the per-job registries are merged and the per-job event
	// buffers replayed in job submission order, so metric snapshots are
	// byte-identical under any worker count. Job spans (queue wait, run
	// duration, worker id) come from the simulated cluster clock - list
	// scheduling of each job's simulated analysis seconds over the pool -
	// not from host goroutine timing. Only the campaign progress gauge
	// and completion counter update live while jobs execute.
	Telemetry *telemetry.Recorder
}

// JobResult pairs a job's report with its error, positionally aligned
// with the submitted jobs.
type JobResult struct {
	// Index is the job's position in the submitted slice, so a result
	// extracted from the batch still names the entry it belongs to.
	Index  int
	Report Report
	Err    error
}

// Run executes all jobs and returns their results in submission order.
func (s Scheduler) Run(jobs []Job) []JobResult {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	// Per-job private recorders keep concurrent telemetry deterministic:
	// nothing is shared while workers race, everything merges in job
	// order afterwards.
	var recs []*telemetry.Recorder
	var mems []*telemetry.MemorySink
	if s.Telemetry != nil {
		s.Telemetry.Emit("campaign_start", map[string]any{"jobs": len(jobs), "workers": workers})
		s.Telemetry.Counter("mixpbench_harness_jobs_total").Add(float64(len(jobs)))
		mems = make([]*telemetry.MemorySink, len(jobs))
		recs = make([]*telemetry.Recorder, len(jobs))
		for i := range jobs {
			mems[i] = telemetry.NewMemorySink()
			recs[i] = telemetry.New(mems[i])
		}
	}

	type task struct {
		idx int
		job Job
	}
	queue := make(chan task)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if recs != nil {
					t.job.Telemetry = recs[t.idx]
				}
				results[t.idx] = runOne(t.idx, t.job)
				if s.Telemetry != nil {
					done := completed.Add(1)
					s.Telemetry.Counter("mixpbench_harness_jobs_completed_total").Inc()
					s.Telemetry.Gauge("mixpbench_harness_progress").SetMax(float64(done) / float64(len(jobs)))
				}
			}
		}()
	}
	for i, j := range jobs {
		queue <- task{idx: i, job: j}
	}
	close(queue)
	wg.Wait()

	if s.Telemetry != nil {
		s.flushTelemetry(jobs, results, recs, mems, workers)
	}
	return results
}

// flushTelemetry folds the per-job recorders into the campaign recorder
// in job submission order and emits the per-job span events against the
// simulated cluster schedule.
func (s Scheduler) flushTelemetry(jobs []Job, results []JobResult, recs []*telemetry.Recorder, mems []*telemetry.MemorySink, workers int) {
	durations := make([]float64, len(jobs))
	for i, r := range results {
		durations[i] = r.Report.SpentSeconds
	}
	starts, assigned := listSchedule(durations, workers)
	errs := 0
	for i := range jobs {
		spec := jobs[i].Spec
		s.Telemetry.Emit("job_start", map[string]any{
			"job":           i,
			"entry":         spec.Name,
			"bench":         spec.Bin,
			"algorithm":     spec.Analysis.Algorithm,
			"threshold":     spec.Analysis.Threshold,
			"worker":        assigned[i],
			"queue_seconds": starts[i],
		})
		s.Telemetry.Stream().Replay(mems[i].Events())
		s.Telemetry.Registry().Merge(recs[i].Registry())
		end := map[string]any{
			"job":         i,
			"worker":      assigned[i],
			"run_seconds": durations[i],
			"evaluated":   results[i].Report.Evaluated,
			"found":       results[i].Report.Found,
			"timed_out":   results[i].Report.TimedOut,
		}
		if err := results[i].Err; err != nil {
			end["error"] = err.Error()
			errs++
			s.Telemetry.Counter("mixpbench_harness_job_errors_total").Inc()
		}
		s.Telemetry.Emit("job_end", end)
		// Queue wait depends on the pool size, so it stays event-only:
		// the registry must snapshot byte-identically for any -workers.
		s.Telemetry.Histogram("mixpbench_harness_job_seconds", telemetry.SecondsBuckets).Observe(durations[i])
	}
	s.Telemetry.Emit("campaign_end", map[string]any{"jobs": len(jobs), "errors": errs})
}

// listSchedule assigns each job, in submission order, to the worker that
// frees earliest (ties to the lowest worker id), over the jobs' simulated
// durations. This is the simulated cluster's clock: it is deterministic
// for a given worker count, where the host goroutine timing is not.
func listSchedule(durations []float64, workers int) (starts []float64, assigned []int) {
	free := make([]float64, workers)
	starts = make([]float64, len(durations))
	assigned = make([]int, len(durations))
	for i, d := range durations {
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		starts[i] = free[w]
		assigned[i] = w
		free[w] += d
	}
	return starts, assigned
}

// runOne resolves and executes a single job, converting panics from
// misdeclared benchmarks into errors so one bad entry cannot take down a
// whole campaign. The recovered error carries the panicking job's index
// and stack so the failure is diagnosable from the campaign report alone.
func runOne(idx int, job Job) (jr JobResult) {
	jr.Index = idx
	defer func() {
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: job %d (%s/%s) panicked: %v\n%s",
				idx, job.Spec.Name, job.Spec.Analysis.Algorithm, r, debug.Stack())
		}
	}()
	plugin, err := LookupAnalysis(job.Spec.Analysis.Name)
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Report, jr.Err = plugin.Analyze(job)
	return jr
}

// JobsFromSpecs resolves each spec's benchmark and builds one job per
// spec with the given workload seed.
func JobsFromSpecs(specs []Spec, seed int64) ([]Job, error) {
	jobs := make([]Job, 0, len(specs))
	for _, s := range specs {
		b, err := s.Resolve()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Spec: s, Benchmark: b, Seed: seed})
	}
	return jobs, nil
}
