package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// innerProd is the inner product kernel (Livermore loop 3 lineage):
//
//	q += z[k] * x[k]
//
// Inventory (Table II: TV=3, TC=2): the operand vectors z and x are passed
// by pointer into the dot-product routine and share a cluster; the
// accumulator q is returned by value and forms its own.
//
// The inputs are drawn float32-exact, so demoting the operand cluster alone
// is lossless (the accumulation still runs in double): that is the zero
// error cell of the paper's Table III. Demoting the accumulator rounds
// every partial sum and fails any realistic threshold.
type innerProd struct {
	kernel
	vZ, vX, vQ mp.VarID
}

const (
	innerN     = 4096
	innerReps  = 6
	innerScale = 2
)

// NewInnerProd constructs the kernel.
func NewInnerProd() bench.Benchmark {
	g := typedep.NewGraph()
	k := &innerProd{kernel: kernel{
		name:  "innerprod",
		desc:  "Inner product",
		graph: g,
	}}
	k.vZ = g.Add("z", "dot", typedep.ArrayVar)
	k.vX = g.Add("x", "dot", typedep.ArrayVar)
	k.vQ = g.Add("q", "dot", typedep.Scalar)
	g.Connect(k.vZ, k.vX)
	return k
}

func (k *innerProd) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(innerScale)
	rng := t.Rand(seed)
	z := t.NewArray(k.vZ, innerN)
	x := t.NewArray(k.vX, innerN)
	// float32-exact inputs scaled by an exact power of two.
	for i := 0; i < innerN; i++ {
		z.Set(i, float64(rng.Float32())*0.0625)
		x.Set(i, float64(rng.Float32())*0.0625)
	}

	q := 0.0
	for rep := 0; rep < innerReps; rep++ {
		q = 0
		for i := 0; i < innerN; i++ {
			// q += z[k]*x[k]: the accumulation runs at q's precision; a
			// double q widens the products (error-free for exact inputs),
			// a single q rounds every partial sum.
			q = t.Assign(k.vQ, q+z.Get(i)*x.Get(i), 2, k.vZ, k.vX)
		}
	}
	return bench.Output{Values: []float64{q}}
}
