package apps

import (
	"bytes"
	"fmt"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// hotspot simulates heat dissipation across a processor floor plan
// (Rodinia HotSpot lineage): an iterative five-point stencil solves the
// thermal differential equations on a grid of cells, driven by simulated
// per-cell power draw. The output is the final temperature of every grid
// cell, expressed as the rise over ambient (the port normalises
// temperatures, which keeps the values small and is why the paper's
// quality loss for full demotion is down at 3e-10).
//
// Inventory (Table II: TV=36, TC=22): the temperature, power, and result
// grids form three pointer-parameter clusters; six thermal constants are
// passed by pointer into the iteration routine, pairing each with its
// parameter; thirteen scalars remain independent.
//
// Performance character: a memory-bound stencil whose traffic halves under
// demotion (Table IV: 1.78x). The stencil expression carries double
// literals that a source tool cannot retype, so searched configurations
// pay a conversion per cell per iteration - the paper's explanation for
// the searched 1.69x falling short of the manual 1.78x.
type hotspot struct {
	app
	vTemp, vPower, vResult           mp.VarID
	vRx, vRy, vRz, vCap, vStep, vAmb mp.VarID
	vLiterals                        mp.VarID // hidden: double literals
}

const (
	hotspotRows  = 96
	hotspotCols  = 96
	hotspotIters = 20
	hotspotScale = 24
	// Per-cell per-iteration arithmetic of the stencil.
	hotspotFlops = 14
)

// hotspotSingleNames are the 13 independent scalars of the merged program.
var hotspotSingleNames = []string{
	"grid_height", "grid_width", "t_chip", "chip_height", "chip_width",
	"max_slope", "delta", "temp_val", "total_power", "precision",
	"factor_chip", "delta_x", "delta_y",
}

// NewHotspot constructs the application.
func NewHotspot() bench.Benchmark {
	g := typedep.NewGraph()
	h := &hotspot{app: app{
		name:   "Hotspot",
		desc:   "Thermal simulation of a processor floor plan under simulated power",
		metric: verify.MAE,
		graph:  g,
	}}
	h.vTemp = g.Add("temp", "main", typedep.ArrayVar)
	addAliases(g, h.vTemp, "single_iteration", "temp", 3)
	h.vPower = g.Add("power", "main", typedep.ArrayVar)
	addAliases(g, h.vPower, "single_iteration", "power", 2)
	h.vResult = g.Add("result", "main", typedep.ArrayVar)
	addAliases(g, h.vResult, "single_iteration", "result", 3)
	// Thermal constants, each paired with its pointer parameter.
	pair := func(name string) mp.VarID {
		owner := g.Add(name, "main", typedep.Scalar)
		param := g.Add(name+"_p", "single_iteration", typedep.Param)
		g.Connect(owner, param)
		return owner
	}
	h.vRx = pair("Rx")
	h.vRy = pair("Ry")
	h.vRz = pair("Rz")
	h.vCap = pair("cap")
	h.vStep = pair("step")
	h.vAmb = pair("amb_temp")
	for _, n := range hotspotSingleNames {
		g.Add(n, "hotspot", typedep.Scalar)
	}
	if g.NumVars() != 36 || g.NumClusters() != 22 {
		panic(fmt.Sprintf("hotspot: inventory %d/%d, want 36/22", g.NumVars(), g.NumClusters()))
	}
	h.vLiterals = mp.VarID(g.NumVars())
	return h
}

// HiddenVars implements bench.HiddenVarser: one site for the stencil's
// double literals.
func (h *hotspot) HiddenVars() int { return 1 }

func (h *hotspot) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(hotspotScale)
	rng := t.Rand(seed)
	cells := hotspotRows * hotspotCols
	temp := t.NewArray(h.vTemp, cells)
	power := t.NewArray(h.vPower, cells)
	result := t.NewArray(h.vResult, cells)

	// Temperature rise over ambient; power in normalised units. The
	// constants are float32-exact (they come from short config literals).
	// Both grids arrive through the runtime library's file path (the
	// temp_1024/power_1024 input files): stored as doubles, converted on
	// load to the configured buffer width.
	rawTemp := make([]float64, cells)
	rawPower := make([]float64, cells)
	for i := 0; i < cells; i++ {
		rawTemp[i] = 0.002 + 0.001*rng.Float64()
		rawPower[i] = float64(rng.Float32()) * 0.0625 // 2^-6
	}
	var tempFile, powerFile bytes.Buffer
	if err := mp.WriteValues(&tempFile, mp.F64, rawTemp); err != nil {
		panic("hotspot: writing temp file: " + err.Error())
	}
	if err := mp.WriteValues(&powerFile, mp.F64, rawPower); err != nil {
		panic("hotspot: writing power file: " + err.Error())
	}
	if err := mp.ReadInto(&tempFile, mp.F64, temp); err != nil {
		panic("hotspot: reading temp file: " + err.Error())
	}
	if err := mp.ReadInto(&powerFile, mp.F64, power); err != nil {
		panic("hotspot: reading power file: " + err.Error())
	}
	rx := t.Value(h.vRx, 1.0)
	ry := t.Value(h.vRy, 1.0)
	rz := t.Value(h.vRz, 0.0625)
	cap := t.Value(h.vCap, 0.5)
	step := t.Value(h.vStep, 0.0078125) // 2^-7
	amb := t.Value(h.vAmb, 0.0)

	sdc := step / cap
	for iter := 0; iter < hotspotIters; iter++ {
		for r := 0; r < hotspotRows; r++ {
			for c := 0; c < hotspotCols; c++ {
				i := r*hotspotCols + c
				center := temp.Get(i)
				north, south, west, east := center, center, center, center
				if r > 0 {
					north = temp.Get(i - hotspotCols)
				}
				if r < hotspotRows-1 {
					south = temp.Get(i + hotspotCols)
				}
				if c > 0 {
					west = temp.Get(i - 1)
				}
				if c < hotspotCols-1 {
					east = temp.Get(i + 1)
				}
				result.Set(i, center+sdc*(power.Get(i)+
					(north+south-2*center)/ry+
					(east+west-2*center)/rx+
					(amb-center)/rz))
			}
		}
		temp, result = result, temp
	}

	work := uint64(cells * hotspotIters)
	t.AddFlops(t.Prec(h.vTemp), hotspotFlops*work)
	if t.Prec(h.vTemp) != t.Prec(h.vLiterals) {
		t.AddCasts(work)
	}
	if t.Prec(h.vTemp) != t.Prec(h.vResult) {
		// Split temp/result clusters convert at every store.
		t.AddCasts(work)
	}
	return bench.Output{Values: temp.Snapshot()}
}
