package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// diffPredictor is the difference predictors kernel (Livermore loop 10
// lineage): a cascade of divided differences flows through each element's
// prediction history,
//
//	ar = cx[i]; br = ar - px[i][0]; px[i][0] = ar;
//	cr = br - px[i][1]; px[i][1] = br; ... (chain of depth D)
//
// Inventory (Table II: TV=5, TC=1): the history matrix px, the correction
// vector cx, and the cascade temporaries ar, br, cr are all bound through
// the predictor routine's pointer interface (the temporaries are spilled
// through a state struct), forming one cluster.
//
// Inputs sit below 0.1 and the cascade is short, so the demoted error
// stays just inside the kernel threshold (the paper's 9.94e-9 band) and
// the kernel demotes fully.
type diffPredictor struct {
	kernel
	vPx, vCx, vAr, vBr, vCr mp.VarID
}

const (
	dpN     = 4096
	dpDepth = 6
	dpReps  = 10
	dpScale = 4
)

// NewDiffPredictor constructs the kernel.
func NewDiffPredictor() bench.Benchmark {
	g := typedep.NewGraph()
	k := &diffPredictor{kernel: kernel{
		name:  "diff-predictor",
		desc:  "Difference predictor",
		graph: g,
	}}
	k.vPx = g.Add("px", "predict", typedep.ArrayVar)
	k.vCx = g.Add("cx", "predict", typedep.ArrayVar)
	k.vAr = g.Add("ar", "predict", typedep.Scalar)
	k.vBr = g.Add("br", "predict", typedep.Scalar)
	k.vCr = g.Add("cr", "predict", typedep.Scalar)
	//mixplint:alias -- the cascade temporaries ar, br, cr are spilled through the predictor's C state struct alongside px and cx; scalar-to-array flow leaves no element co-location for the analyzer to see
	g.ConnectAll(k.vPx, k.vCx, k.vAr, k.vBr, k.vCr)
	return k
}

func (k *diffPredictor) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(dpScale)
	rng := t.Rand(seed)
	px := t.NewArray(k.vPx, dpN*dpDepth)
	cx := t.NewArray(k.vCx, dpN)
	fillRand(cx, rng, 0.01, 0.09)

	for rep := 0; rep < dpReps; rep++ {
		// Each repetition predicts against a fresh history window, as the
		// original fragment receives new observations per time step.
		repRng := t.Rand(seed + 1)
		fillRand(px, repRng, 0.01, 0.09)
		for i := 0; i < dpN; i++ {
			ar := t.Assign(k.vAr, cx.Get(i), 0, k.vCx)
			for d := 0; d < dpDepth; d++ {
				br := t.Assign(k.vBr, ar-px.Get(i*dpDepth+d), 1, k.vAr, k.vPx)
				px.Set(i*dpDepth+d, ar)
				// The C fragment spills each difference through the cr
				// state slot before it seeds the next level; px/cx/ar/br/cr
				// share one cluster, so the extra rounding hop is exact and
				// free under every per-cluster configuration.
				cr := t.Assign(k.vCr, br, 0, k.vBr)
				ar = t.Assign(k.vAr, cr, 0, k.vCr)
			}
		}
	}
	return bench.Output{Values: px.Snapshot()}
}
