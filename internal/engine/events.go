package engine

import (
	"context"
	"sync"

	"repro/internal/telemetry"
)

// EventLog is a telemetry sink that keeps every event it receives and
// lets readers tail the log while it grows: each campaign gets one, and
// the service streams it to any number of subscribers without perturbing
// the campaign's deterministic event order. Close marks the log complete
// (the campaign finished); late readers still see the full history.
type EventLog struct {
	mu      sync.Mutex
	events  []telemetry.Event
	closed  bool
	waiters []chan struct{}
}

// NewEventLog returns an empty, open event log.
func NewEventLog() *EventLog { return &EventLog{} }

// Emit appends one event and wakes blocked readers. Events are
// normalised on the way in (non-finite floats become strings, exactly
// as the JSONL sink renders them) so a live SSE frame, the archived
// copy a restarted process replays, and the JSONL file all marshal to
// the same bytes.
func (l *EventLog) Emit(e telemetry.Event) {
	e = telemetry.FiniteEvent(e)
	l.mu.Lock()
	l.events = append(l.events, e)
	l.wakeLocked()
	l.mu.Unlock()
}

// Close marks the log complete and wakes blocked readers. It never
// fails; the error return satisfies telemetry.Sink.
func (l *EventLog) Close() error {
	l.mu.Lock()
	l.closed = true
	l.wakeLocked()
	l.mu.Unlock()
	return nil
}

// wakeLocked releases every waiter registered since the last change.
func (l *EventLog) wakeLocked() {
	for _, ch := range l.waiters {
		close(ch)
	}
	l.waiters = nil
}

// Len returns the number of events logged so far.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Since returns a copy of the events from offset n onward (n is a count
// of events already consumed) and whether the log is complete. A reader
// tails the log by alternating Since and Wait until closed.
func (l *EventLog) Since(n int) (events []telemetry.Event, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(l.events) {
		events = make([]telemetry.Event, len(l.events)-n)
		copy(events, l.events[n:])
	}
	return events, l.closed
}

// Wait blocks until the log grows past n events, is closed, or ctx is
// done, and reports the context's error in the last case.
func (l *EventLog) Wait(ctx context.Context, n int) error {
	l.mu.Lock()
	if len(l.events) > n || l.closed {
		l.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	l.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// multiSink fans one event stream out to several sinks; the engine uses
// it to feed a campaign's EventLog and a caller-supplied sink from the
// same recorder.
type multiSink []telemetry.Sink

// Emit forwards to every sink in order.
func (m multiSink) Emit(e telemetry.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Close closes every sink, reporting the first error.
func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
