package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evals_total", "bench", "fake")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %g, want 3", got)
	}
	if r.Counter("evals_total", "bench", "fake") != c {
		t.Error("same name+labels did not return the same counter")
	}

	g := r.Gauge("progress")
	g.Set(0.5)
	g.SetMax(0.25) // smaller: must not lower
	if got := g.Value(); got != 0.5 {
		t.Errorf("gauge = %g, want 0.5 (SetMax lowered it)", got)
	}
	g.SetMax(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}

	h := r.Histogram("speedup", []float64{1, 2})
	for _, v := range []float64{0.5, 1.0, 1.5, 5, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4 (NaN dropped)", h.Count())
	}
	if h.Sum() != 8 {
		t.Errorf("histogram sum = %g, want 8", h.Sum())
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative counter delta")
		}
	}()
	NewRegistry().Counter("x").Add(-1)
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric")
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering gauge under a counter's name")
		}
	}()
	r.Gauge("metric")
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	// Labels given out of order must render sorted.
	r.Counter("b_total", "kind", "candidate", "bench", "fake").Add(4)
	r.Counter("b_total", "kind", "reference", "bench", "fake").Inc()
	r.Gauge("a_progress").Set(0.25)
	h := r.Histogram("c_speedup", []float64{1, 2}, "bench", "fake")
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_progress gauge
a_progress 0.25
# TYPE b_total counter
b_total{bench="fake",kind="candidate"} 4
b_total{bench="fake",kind="reference"} 1
# TYPE c_speedup histogram
c_speedup_bucket{bench="fake",le="1"} 1
c_speedup_bucket{bench="fake",le="2"} 3
c_speedup_bucket{bench="fake",le="+Inf"} 4
c_speedup_sum{bench="fake"} 6.5
c_speedup_count{bench="fake"} 4
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestMergeIsDeterministicAndAdditive(t *testing.T) {
	mk := func(evals float64, speedups ...float64) *Registry {
		r := NewRegistry()
		r.Counter("evals_total", "bench", "fake").Add(evals)
		r.Gauge("budget_fraction", "bench", "fake").Set(evals / 10)
		h := r.Histogram("speedup", SpeedupBuckets, "bench", "fake")
		for _, s := range speedups {
			h.Observe(s)
		}
		return r
	}
	render := func(r *Registry) string {
		var buf bytes.Buffer
		r.WriteText(&buf)
		return buf.String()
	}

	a := NewRegistry()
	a.Merge(mk(2, 1.5, 1.2))
	a.Merge(mk(3, 0.9))

	b := NewRegistry()
	b.Merge(mk(2, 1.5, 1.2))
	b.Merge(mk(3, 0.9))
	if render(a) != render(b) {
		t.Error("identical merge sequences rendered differently")
	}
	if got := a.Counter("evals_total", "bench", "fake").Value(); got != 5 {
		t.Errorf("merged counter = %g, want 5", got)
	}
	// Gauge takes the last merged value.
	if got := a.Gauge("budget_fraction", "bench", "fake").Value(); got != 0.3 {
		t.Errorf("merged gauge = %g, want 0.3", got)
	}
	if got := a.Histogram("speedup", SpeedupBuckets, "bench", "fake").Count(); got != 3 {
		t.Errorf("merged histogram count = %d, want 3", got)
	}
}

func TestSnapshotCopies(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Inc()
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 1 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	snap.Histograms[0].Counts[0] = 99
	if r.Snapshot().Histograms[0].Counts[0] != 1 {
		t.Error("mutating a snapshot leaked into the registry")
	}
}

func TestStreamSequenceAndReplay(t *testing.T) {
	mem := NewMemorySink()
	s := NewStream(mem)
	s.Emit("a", nil)
	s.Emit("b", map[string]any{"k": 1})
	events := mem.Events()
	if len(events) != 2 || events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("events = %+v", events)
	}

	// Replay into a fresh stream renumbers from its own sequence.
	mem2 := NewMemorySink()
	s2 := NewStream(mem2)
	s2.Emit("campaign_start", nil)
	s2.Replay(events)
	got := mem2.Events()
	if len(got) != 3 {
		t.Fatalf("%d replayed events", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if got[1].Name != "a" || got[2].Name != "b" {
		t.Errorf("replay reordered events: %+v", got)
	}
}

func TestJSONLSinkEmitsValidLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	s := NewStream(sink)
	s.Emit("evaluation", map[string]any{"speedup": 1.5, "config": "0101"})
	s.Emit("timeout", map[string]any{"speedup": math.NaN(), "bound": math.Inf(1)})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("line %d seq = %d", i, e.Seq)
		}
	}
	// Non-finite floats serialised as strings.
	if !strings.Contains(lines[1], `"speedup":"NaN"`) || !strings.Contains(lines[1], `"bound":"+Inf"`) {
		t.Errorf("non-finite floats not stringified: %s", lines[1])
	}
}

// failAfterWriter accepts n writes, then fails every one that follows.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestJSONLSinkReportsWriteErrors locks the mid-stream failure
// contract: the sink counts every lost event and Close names the
// sequence number of the event whose write failed.
func TestJSONLSinkReportsWriteErrors(t *testing.T) {
	boom := errors.New("disk full")
	sink := NewJSONLSink(&failAfterWriter{n: 2, err: boom})
	s := NewStream(sink)
	for i := 0; i < 5; i++ {
		s.Emit("evaluation", nil)
	}
	// Events 1 and 2 landed; 3 failed; 4 and 5 were dropped.
	if n := sink.WriteErrors(); n != 3 {
		t.Errorf("WriteErrors = %d, want 3", n)
	}
	err := sink.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("Close does not wrap the write error: %v", err)
	}
	for _, frag := range []string{"seq 3", "3 events lost"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Close error missing %q: %v", frag, err)
		}
	}

	healthy := NewJSONLSink(&bytes.Buffer{})
	NewStream(healthy).Emit("ok", nil)
	if n := healthy.WriteErrors(); n != 0 {
		t.Errorf("healthy sink WriteErrors = %d", n)
	}
	if err := healthy.Close(); err != nil {
		t.Errorf("healthy sink Close: %v", err)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", SpeedupBuckets).Observe(1)
	r.Emit("e", nil)
	if err := r.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil recorder produced a snapshot")
	}
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Merge(NewRegistry())
}

func TestConcurrentUse(t *testing.T) {
	r := New(NewMemorySink())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("n", "worker", "any").Inc()
				r.Histogram("h", SecondsBuckets).Observe(float64(i))
				r.Gauge("g").SetMax(float64(i))
				r.Emit("tick", map[string]any{"i": i})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n", "worker", "any").Value(); got != 1600 {
		t.Errorf("counter = %g, want 1600", got)
	}
	if got := r.Histogram("h", SecondsBuckets).Count(); got != 1600 {
		t.Errorf("histogram count = %d, want 1600", got)
	}
	if got := r.Stream().Seq(); got != 1600 {
		t.Errorf("stream seq = %d, want 1600", got)
	}
}

// TestAddSnapshotRoundTrip locks in the checkpoint/resume contract: a
// snapshot folded into a fresh registry - including after a JSON round
// trip, which is how the harness journal stores it - reproduces the
// original registry's text exposition byte for byte.
func TestAddSnapshotRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Counter("c_total", "bench", "k").Add(7.25)
	src.Counter("c_total", "bench", "h").Add(3)
	src.Gauge("g").Set(0.1 + 0.2) // a value without a short decimal form
	src.Histogram("h_seconds", SecondsBuckets, "bench", "k").Observe(0.5)
	src.Histogram("h_seconds", SecondsBuckets, "bench", "k").Observe(1e5)

	var want bytes.Buffer
	if err := src.WriteText(&want); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(src.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	dst := NewRegistry()
	dst.AddSnapshot(snap)
	var got bytes.Buffer
	if err := dst.WriteText(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("restored registry differs:\n--- want ---\n%s\n--- got ---\n%s", want.String(), got.String())
	}

	// Folding into a non-empty registry accumulates counters/histograms.
	dst.AddSnapshot(snap)
	if v := dst.Counter("c_total", "bench", "k").Value(); v != 14.5 {
		t.Errorf("double-folded counter = %g, want 14.5", v)
	}
	if n := dst.Histogram("h_seconds", SecondsBuckets, "bench", "k").Count(); n != 4 {
		t.Errorf("double-folded histogram count = %d, want 4", n)
	}

	// Nil registry tolerates the call.
	var nilReg *Registry
	nilReg.AddSnapshot(snap)
}
