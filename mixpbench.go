// Package mixpbench is the public API of the HPC-MixPBench reproduction:
// a benchmark suite for mixed-precision analysis (Parasyris et al., IISWC
// 2020) ported to Go.
//
// The suite bundles ten HPC kernels and seven proxy applications, each
// exposing its floating-point variables as tunable precision sites
// together with the type-dependence clusters a source-level tool must
// respect. On top sit the six mixed-precision search strategies the paper
// compares (combinational, compositional, delta debugging, hierarchical,
// hierarchical-compositional, genetic), a verification library with the
// paper's error metrics, and a YAML-driven harness that deploys analyses
// over benchmarks.
//
// # Quick start
//
//	b, _ := mixpbench.Benchmark("hydro-1d")
//	out, err := mixpbench.Tune(b, mixpbench.TuneOptions{
//		Algorithm: "DD",
//		Threshold: 1e-8,
//	})
//
// Tune returns the configuration the strategy converged to, its speedup
// under the calibrated machine model, its verified error, and the number
// of configurations evaluated. Lower-level control - custom thresholds,
// budgets, evaluators, or new strategies - is available through the
// re-exported types below; regeneration of every table and figure of the
// paper lives in Study and the cmd/mptables command.
package mixpbench

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/mp"
	"repro/internal/report"
	"repro/internal/runcache"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/suite"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// Re-exported core types. These aliases are the supported public names;
// the internal packages they point at are implementation layout.
type (
	// BenchmarkProgram is one suite program: a kernel or application.
	BenchmarkProgram = bench.Benchmark
	// Config assigns a precision to every tunable variable.
	Config = bench.Config
	// Runner executes configurations under the machine model.
	Runner = bench.Runner
	// RunResult is one configuration's execution record.
	RunResult = bench.Result
	// Prec is a precision level (F64 or F32).
	Prec = mp.Prec
	// Metric is a verification metric (MAE, RMSE, MSE, R2, MCR).
	Metric = verify.Metric
	// Verdict is a quality-check outcome.
	Verdict = verify.Verdict
	// Graph is a type-dependence graph over tunable variables.
	Graph = typedep.Graph
	// Space is a search space over clusters or variables.
	Space = search.Space
	// Evaluator runs configurations for a search strategy.
	Evaluator = search.Evaluator
	// Algorithm is one search strategy.
	Algorithm = search.Algorithm
	// Outcome is a strategy's result.
	Outcome = search.Outcome
	// HarnessSpec is one benchmark entry of a harness configuration.
	HarnessSpec = harness.Spec
	// HarnessJob is one deployed analysis.
	HarnessJob = harness.Job
	// HarnessReport is an analysis result.
	HarnessReport = harness.Report
	// HarnessCampaign is a parsed configuration with its fault clause.
	HarnessCampaign = harness.Campaign
	// HarnessJobResult is one job's result with its attempt history.
	HarnessJobResult = harness.JobResult
	// HarnessAttempt is one execution attempt under fault injection.
	HarnessAttempt = harness.Attempt
	// FaultPlan configures the deterministic fault injector.
	FaultPlan = faults.Plan
	// RetryPolicy governs retry/backoff for transient job failures.
	RetryPolicy = harness.RetryPolicy
	// Study is a full regeneration of the paper's evaluation.
	Study = report.Study
	// RunCache memoises benchmark executions process-wide. One cache can
	// back any number of Runners and harness jobs concurrently; sharing
	// never changes results, budgets, or telemetry (see bench.Runner.Cache
	// for the determinism contract).
	RunCache = bench.Cache
	// RunCacheStats is a point-in-time view of a cache's hit/miss/wait
	// counters and entry count.
	RunCacheStats = runcache.Stats
)

// NewRunCache returns an empty shared run cache. tel, when non-nil,
// receives the cache's own hit/miss/inflight-wait counters and
// runcache_hit events; keep it separate from deterministic campaign
// telemetry, because the hit/wait split between concurrent workers
// depends on real scheduling.
func NewRunCache(tel *Telemetry) *RunCache { return bench.NewCache(tel) }

// Durable result store types. A ResultStore persists benchmark
// executions on disk behind the run cache - append-only checksummed
// segments, fsync'd on write, recovered past torn tails and corrupt
// segments at Open - so a second process (or a restarted one) serves a
// prior campaign's executions without re-running them. Results served
// from the store are bit-identical to fresh executions, and campaigns
// stay byte-identical with the store on, off, cold, or warm (hits
// still charge the simulated build and run time).
type (
	// ResultStore is the disk-backed, content-addressed result store.
	ResultStore = store.Store
	// ResultStoreOptions configures a custom store open (fingerprint,
	// read-only mode, segment sizing, eviction budget) via store.Open;
	// OpenResultStore covers the common case.
	ResultStoreOptions = store.Options
	// ResultStoreStats is a point-in-time view of a store's record,
	// traffic, and health counters.
	ResultStoreStats = store.Stats
)

// Result store sentinel errors, for errors.Is against Open failures.
var (
	// ErrStoreFingerprint refuses a store written under an incompatible
	// machine model or result encoding.
	ErrStoreFingerprint = store.ErrFingerprint
	// ErrStoreVersion refuses a store whose segment format this build
	// does not speak.
	ErrStoreVersion = store.ErrVersion
)

// OpenResultStore opens (creating as needed) the durable result store
// at dir, fingerprinted for the default machine model - the one every
// standard Runner and harness campaign uses. A store written under a
// different model or result encoding is refused with
// ErrStoreFingerprint rather than silently misread.
func OpenResultStore(dir string) (*ResultStore, error) {
	return store.Open(dir, store.Options{Fingerprint: bench.DefaultStoreFingerprint()})
}

// NewStoredRunCache returns a run cache that consults st before
// executing and publishes fresh executions to it (write-behind; close
// the store to flush). A nil store yields a plain in-memory cache.
func NewStoredRunCache(tel *Telemetry, st *ResultStore) *RunCache {
	return bench.NewStoredCache(tel, st)
}

// Telemetry types. A Telemetry recorder bundles a metrics registry
// (counters, gauges, histograms with Prometheus-style text exposition)
// with a structured event stream; Tune and RunHarnessWith accept one, and
// downstream users can attach their own sinks. All timings fed into it
// come from the simulated clock, so seeded runs are byte-reproducible.
type (
	// Telemetry records metrics and events for an instrumented run.
	Telemetry = telemetry.Recorder
	// TelemetryEvent is one structured record of the event stream.
	TelemetryEvent = telemetry.Event
	// TelemetrySink consumes telemetry events (JSONL, in-memory, or a
	// user implementation).
	TelemetrySink = telemetry.Sink
	// MetricsRegistry holds a run's metrics.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = telemetry.Snapshot
	// MemoryEventSink buffers telemetry events in memory.
	MemoryEventSink = telemetry.MemorySink
	// JSONLEventSink writes one JSON event per line and accounts for
	// mid-stream write failures (WriteErrors, and a Close error naming
	// the failed event's sequence number).
	JSONLEventSink = telemetry.JSONLSink
)

// NewTelemetry returns a recorder whose events go to sink (nil keeps
// metrics but drops events).
func NewTelemetry(sink TelemetrySink) *Telemetry { return telemetry.New(sink) }

// NewJSONLSink returns a telemetry sink writing one JSON event per line.
func NewJSONLSink(w io.Writer) *JSONLEventSink { return telemetry.NewJSONLSink(w) }

// NewMemorySink returns a telemetry sink buffering events in memory.
func NewMemorySink() *MemoryEventSink { return telemetry.NewMemorySink() }

// Types needed to implement a new benchmark against the public API.
type (
	// Tape carries a precision configuration through one benchmark run
	// and meters its cost.
	Tape = mp.Tape
	// Array is a precision-tracked buffer allocated from a Tape.
	Array = mp.Array
	// VarID names one tunable variable.
	VarID = mp.VarID
	// VarKind classifies a tunable variable.
	VarKind = typedep.Kind
	// Output is a benchmark's verification payload.
	Output = bench.Output
	// ProgramKind separates kernels from applications.
	ProgramKind = bench.Kind
)

// Precision levels. F16 is the extension level for accelerator-style
// three-level studies; the paper-table regenerations only assign F64 and
// F32.
const (
	F64 = mp.F64
	F32 = mp.F32
	F16 = mp.F16
)

// Variable kinds for dependence-graph declarations.
const (
	Scalar   = typedep.Scalar
	ArrayVar = typedep.ArrayVar
	Param    = typedep.Param
	Pointer  = typedep.Pointer
)

// Program kinds.
const (
	Kernel = bench.Kernel
	App    = bench.App
)

// NewGraph returns an empty type-dependence graph for declaring a new
// benchmark's tunable variables.
func NewGraph() *Graph { return typedep.NewGraph() }

// ComputeMetric evaluates metric m over a reference and a candidate
// output.
func ComputeMetric(m Metric, ref, got []float64) (float64, error) {
	return verify.Compute(m, ref, got)
}

// CheckMetric evaluates metric m and applies a quality threshold,
// rejecting non-finite candidate output.
func CheckMetric(m Metric, ref, got []float64, threshold float64) (Verdict, error) {
	return verify.Check(m, ref, got, threshold)
}

// RegisterMetric installs a custom verification metric under the given
// name (usable in harness configuration files like a built-in). The
// function must return 0 for exact agreement and grow with error. It
// panics on name collisions, as registration runs at program start.
func RegisterMetric(name string, fn func(ref, got []float64) float64) Metric {
	return verify.RegisterMetric(name, fn)
}

// Verification metrics.
const (
	MAE  = verify.MAE
	RMSE = verify.RMSE
	MSE  = verify.MSE
	R2   = verify.R2
	MCR  = verify.MCR
)

// Benchmark resolves a suite benchmark by name (case- and
// separator-insensitive, so "kmeans" finds "K-means").
func Benchmark(name string) (BenchmarkProgram, error) {
	return suite.Lookup(name)
}

// Benchmarks returns the whole suite: kernels first, then applications.
func Benchmarks() []BenchmarkProgram { return suite.All() }

// Kernels returns the ten kernel benchmarks of Table I.
func Kernels() []BenchmarkProgram { return suite.Kernels() }

// Apps returns the seven proxy applications.
func Apps() []BenchmarkProgram { return suite.Apps() }

// Algorithms lists the six strategy names in table order.
func Algorithms() []string {
	return append([]string(nil), search.AlgorithmNames...)
}

// ExtensionAlgorithms lists strategies beyond the paper's six (currently
// GP, the greedy profile-guided search); they are accepted everywhere an
// algorithm name is, but excluded from the table regenerations.
func ExtensionAlgorithms() []string {
	return append([]string(nil), search.ExtensionNames...)
}

// CanonicalAlgorithm resolves an algorithm spelling (abbreviation or long
// name like "ddebug") to its table abbreviation, erroring on unknown
// names. It is the validation the CLI and harness configs share.
func CanonicalAlgorithm(name string) (string, error) {
	return harness.CanonicalAlgorithm(name)
}

// ParsePrecisions validates a precision-ladder specification such as
// "f64,f32,bf16" and returns its canonical rendering. An empty spec is
// the default two-level double/single ladder. It is the validation the
// CLI flags and harness configs share.
func ParsePrecisions(spec string) (string, error) {
	ladder, err := mp.ParseLadder(spec)
	if err != nil {
		return "", err
	}
	return ladder.String(), nil
}

// ParseObjective validates an analysis-objective name ("threshold" or
// "pareto"; empty = threshold) and returns its canonical rendering.
func ParseObjective(name string) (string, error) {
	o, err := search.ParseObjective(name)
	if err != nil {
		return "", err
	}
	return o.String(), nil
}

// NewRunner returns a Runner with the calibrated default machine model,
// the paper's ten-repetition measurement protocol, and the given workload
// seed.
func NewRunner(seed int64) *Runner { return bench.NewRunner(seed) }

// TuneOptions parameterises Tune.
type TuneOptions struct {
	// Algorithm is the strategy name: CB, CM, DD, HR, HC, or GA (long
	// names like "ddebug" are accepted).
	Algorithm string
	// Threshold is the quality bound; zero means the kernel-study default
	// of 1e-8.
	Threshold float64
	// Seed drives the workload and any strategy randomness; zero means
	// the canonical study seed.
	Seed int64
	// BudgetSeconds caps the analysis in simulated seconds; zero means
	// the paper's 24-hour limit.
	BudgetSeconds float64
	// Trace records every configuration the analysis builds (CRAFT's
	// per-configuration log), returned in TuneResult.Trace.
	Trace bool
	// Telemetry, when non-nil, receives per-evaluation metrics and
	// events for the whole tuning run (evaluator and runner included).
	Telemetry *Telemetry
	// Cache, when non-nil, memoises benchmark executions: repeated Tune
	// calls over the same benchmark and seed (different algorithms, say)
	// skip re-executing configurations they share. Results are identical
	// with or without it.
	Cache *RunCache
	// Interpreted disables compiled evaluation: every uncached execution
	// interprets against a fresh tape instead of running its
	// precision-specialized kernel (the default). Results are identical
	// either way; this is the escape hatch and the baseline for
	// benchmarking the compiler.
	Interpreted bool
	// Precisions is the precision ladder to search over, e.g.
	// "f64,f32,bf16" or "f64,f32,f16"; empty means the paper's two-level
	// double/single study.
	Precisions string
	// Objective selects "threshold" (the default) or "pareto", which
	// additionally records every evaluated configuration's (time, energy,
	// error) point and returns the non-dominated front in
	// TuneResult.Front.
	Objective string
}

// TuneResult is what Tune reports.
type TuneResult struct {
	// Found reports whether any passing configuration was identified; the
	// remaining fields describe the converged configuration when it was.
	Found bool
	// Config is the converged precision assignment.
	Config Config
	// Speedup is the modelled speedup over the original program.
	Speedup float64
	// Error is the verified quality loss.
	Error float64
	// Evaluated counts the configurations built and tested (the paper's
	// EV metric).
	Evaluated int
	// TimedOut reports budget expiry before the strategy terminated.
	TimedOut bool
	// Canceled reports that the tuning context was canceled before the
	// strategy terminated; the result is the best found so far.
	Canceled bool
	// Energy is the modelled energy per run of the converged
	// configuration in joules.
	Energy float64
	// Front is the Pareto front over every evaluated configuration
	// (only under the pareto objective): deterministic,
	// worker-count-invariant, sorted by configuration key, each point
	// carrying modelled time, energy, and verified error.
	Front []search.ParetoPoint
	// Trace is the per-configuration log (only when TuneOptions.Trace).
	Trace []search.TraceEntry
}

// Tune searches b for a mixed-precision configuration that passes the
// quality threshold and speeds the program up, using the named strategy.
func Tune(b BenchmarkProgram, opts TuneOptions) (TuneResult, error) {
	return TuneContext(context.Background(), b, opts)
}

// TuneContext is Tune under a cancellation context: once ctx is done the
// strategy stops at its next evaluation boundary and the result carries
// the best configuration found so far with Canceled set. A background
// (or never-canceled) context leaves the result identical to Tune.
func TuneContext(ctx context.Context, b BenchmarkProgram, opts TuneOptions) (TuneResult, error) {
	if opts.Algorithm == "" {
		return TuneResult{}, fmt.Errorf("mixpbench: TuneOptions.Algorithm is required (one of %v)", Algorithms())
	}
	name, err := harness.CanonicalAlgorithm(opts.Algorithm)
	if err != nil {
		return TuneResult{}, err
	}
	if opts.Threshold == 0 {
		opts.Threshold = harness.DefaultThreshold
	}
	if opts.Seed == 0 {
		opts.Seed = report.Seed
	}
	algo, err := search.ByName(name, opts.Seed)
	if err != nil {
		return TuneResult{}, err
	}
	ladder, err := mp.ParseLadder(opts.Precisions)
	if err != nil {
		return TuneResult{}, fmt.Errorf("mixpbench: %w", err)
	}
	objective, err := search.ParseObjective(opts.Objective)
	if err != nil {
		return TuneResult{}, fmt.Errorf("mixpbench: %w", err)
	}
	space := search.NewSpaceWithLadder(b.Graph(), algo.Mode(), ladder)
	runner := bench.NewRunner(opts.Seed)
	runner.Telemetry = opts.Telemetry
	runner.Cache = opts.Cache
	runner.Compiled = !opts.Interpreted
	eval := search.NewEvaluator(space, runner, b, opts.Threshold)
	eval.SetObjective(objective)
	if opts.BudgetSeconds > 0 {
		eval.SetBudget(opts.BudgetSeconds)
	}
	eval.SetTrace(opts.Trace)
	eval.SetTelemetry(opts.Telemetry)
	if ctx != nil {
		eval.SetContext(ctx)
	}
	out := algo.Search(eval)
	res := TuneResult{
		Found:     out.Found,
		Evaluated: out.Evaluated,
		TimedOut:  out.TimedOut,
		Canceled:  out.Canceled,
		Trace:     eval.Trace(),
	}
	if out.Found {
		cfg, _ := space.Expand(out.Best, name == "CM")
		res.Config = cfg
		res.Speedup = out.BestResult.Speedup
		res.Error = out.BestResult.Verdict.Error
		res.Energy = out.BestResult.Energy
	}
	if objective == search.ObjectivePareto {
		res.Front = eval.ParetoFront()
	}
	return res, nil
}

// RunStudy regenerates the paper's full evaluation: Tables III, IV, V and
// the data behind Figures 2a, 2b, and 3. It is expensive (the equivalent
// of the paper's multi-day cluster campaign, compressed to under a
// minute); progress, when non-nil, receives one line per completed stage.
func RunStudy(workers int, progress func(string)) *Study {
	return report.Run(report.Options{Workers: workers, Progress: progress})
}

// ParseHarnessConfig parses a YAML harness configuration (the paper's
// Listing 4 format) into benchmark entries.
func ParseHarnessConfig(src string) ([]HarnessSpec, error) {
	return harness.ParseConfig(src)
}

// ParseHarnessCampaign parses a YAML harness configuration keeping the
// reserved top-level faults clause (fault rates, retry policy) alongside
// the benchmark entries.
func ParseHarnessCampaign(src string) (HarnessCampaign, error) {
	return harness.ParseCampaign(src)
}

// ParseFaultSpec parses a CLI-style fault specification such as
// "transient=0.2,crash=0.05,slowdown=4,seed=7" into a validated plan.
func ParseFaultSpec(spec string) (FaultPlan, error) {
	return faults.ParseSpec(spec)
}

// CampaignOptions parameterises RunCampaign: HarnessOptions plus the
// fault model, retry policy, and checkpoint/resume paths.
type CampaignOptions = harness.CampaignOptions

// Campaign engine types. An Engine multiplexes any number of campaigns
// over one process - each under its own cancellation context, telemetry
// recorder, and event log, all sharing a single run cache - with
// submit/status/cancel semantics and a bounded queue. The cmd/mixpd
// server is an HTTP facade over exactly this API.
type (
	// Engine is the concurrent campaign service.
	Engine = engine.Engine
	// EngineOptions configures an Engine (queue depth, concurrency,
	// shared cache).
	EngineOptions = engine.Options
	// SubmitOptions parameterises one campaign submission.
	SubmitOptions = engine.SubmitOptions
	// CampaignStatus is a point-in-time view of one campaign.
	CampaignStatus = engine.Status
	// CampaignState is a campaign's lifecycle position (queued, running,
	// done, canceled, failed).
	CampaignState = engine.State
	// CampaignEventLog is a campaign's tailable telemetry event log.
	CampaignEventLog = engine.EventLog
	// CampaignRecord is one finished job in the JSON-safe journal shape
	// the engine's results API and the checkpoint journal share.
	CampaignRecord = harness.JournalRecord
)

// Engine sentinel errors, for errors.Is against Submit and lookups.
var (
	// ErrCampaignQueueFull rejects a submission when the engine's queue
	// is at capacity.
	ErrCampaignQueueFull = engine.ErrQueueFull
	// ErrEngineDraining rejects submissions after Drain or Close began.
	ErrEngineDraining = engine.ErrDraining
	// ErrCampaignNotFound reports an unknown campaign ID.
	ErrCampaignNotFound = engine.ErrNotFound
)

// NewEngine starts a campaign engine; stop it with Drain (finish
// everything accepted) or Close (cancel everything).
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// RunCampaign executes a fault-tolerant campaign over the specs and
// returns per-job results (reports, attempt histories, degraded flags)
// in entry order. Unlike RunHarnessWith, a failing job does not abort
// the campaign; inspect each result's Err. The workload seed defaults to
// the canonical study seed.
func RunCampaign(specs []HarnessSpec, opts CampaignOptions) ([]HarnessJobResult, error) {
	return RunCampaignContext(context.Background(), specs, opts)
}

// RunCampaignContext is RunCampaign under a cancellation context: once
// ctx is done, in-flight jobs report canceled best-so-far analyses and
// unstarted jobs come back Skipped. Both entry points are thin wrappers
// over the campaign engine (see Engine); routing through it changes
// nothing observable.
func RunCampaignContext(ctx context.Context, specs []HarnessSpec, opts CampaignOptions) ([]HarnessJobResult, error) {
	if opts.Seed == 0 {
		opts.Seed = report.Seed
	}
	return engine.RunOnce(ctx, specs, opts)
}

// HarnessOptions parameterises RunHarnessWith.
type HarnessOptions struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// Seed is the workload seed (0 = the canonical study seed).
	Seed int64
	// Telemetry, when non-nil, receives the campaign's metrics and a
	// deterministic event stream: per-job telemetry is merged in entry
	// order, so snapshots are byte-identical under any worker count.
	Telemetry *Telemetry
	// Cache, when non-nil, is shared by every job of the run; when nil a
	// run-private cache is created, so configuration executions shared
	// between jobs run once. Set NoCache to disable caching entirely.
	Cache *RunCache
	// NoCache disables run caching (reports are identical either way).
	NoCache bool
}

// RunHarness resolves and executes every entry of a harness configuration
// on a worker pool, returning reports in entry order.
func RunHarness(specs []HarnessSpec, workers int, seed int64) ([]HarnessReport, error) {
	return RunHarnessWith(specs, HarnessOptions{Workers: workers, Seed: seed})
}

// RunHarnessWith is RunHarness with the full option set. It is a thin
// wrapper over the campaign engine; reports are byte-identical to
// driving the scheduler directly.
func RunHarnessWith(specs []HarnessSpec, opts HarnessOptions) ([]HarnessReport, error) {
	return RunHarnessContext(context.Background(), specs, opts)
}

// RunHarnessContext is RunHarnessWith under a cancellation context. A
// canceled run surfaces the first interrupted entry's error, like any
// other failing entry.
func RunHarnessContext(ctx context.Context, specs []HarnessSpec, opts HarnessOptions) ([]HarnessReport, error) {
	if opts.Seed == 0 {
		opts.Seed = report.Seed
	}
	results, err := engine.RunOnce(ctx, specs, harness.CampaignOptions{
		Workers:   opts.Workers,
		Seed:      opts.Seed,
		Telemetry: opts.Telemetry,
		Cache:     opts.Cache,
		NoCache:   opts.NoCache,
	})
	if err != nil {
		return nil, err
	}
	out := make([]HarnessReport, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("mixpbench: entry %q: %w", specs[i].Name, r.Err)
		}
		out[i] = r.Report
	}
	return out, nil
}

// RegisterAnalysis installs a custom harness analysis plugin.
func RegisterAnalysis(a harness.Analysis) { harness.RegisterAnalysis(a) }

// Campaign tracing types. A campaign's trace is a deterministic span
// tree - campaign → job → attempt → phases (build, run, straggler,
// backoff) - on the simulated analysis clock: the exported bytes are
// identical at any worker count and with the run cache on or off.
type (
	// CampaignTrace is one campaign's assembled span tree.
	CampaignTrace = trace.Trace
	// TraceSpan is one node of a campaign trace.
	TraceSpan = trace.Span
	// TraceProfile is the per-phase / critical-path aggregation of a
	// campaign trace.
	TraceProfile = trace.Profile
)

// BuildCampaignTrace assembles the deterministic span tree of a
// finished campaign from its specs and results (see RunCampaign).
func BuildCampaignTrace(name string, specs []HarnessSpec, results []HarnessJobResult) *CampaignTrace {
	return harness.BuildTrace(name, specs, results)
}

// BuildTraceProfile aggregates a campaign trace into its per-phase and
// critical-path profile; topN caps the job table (<=0 keeps all jobs).
func BuildTraceProfile(t *CampaignTrace, topN int) *TraceProfile {
	return trace.BuildProfile(t, topN)
}

// WriteChromeTrace serialises a campaign trace as Chrome trace_event
// JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *CampaignTrace) error {
	return trace.WriteChromeTrace(w, t)
}

// WriteTraceJSONL serialises a campaign trace as one span per line,
// depth-first.
func WriteTraceJSONL(w io.Writer, t *CampaignTrace) error {
	return trace.WriteJSONL(w, t)
}

// WriteTraceProfile serialises a trace profile as indented JSON.
func WriteTraceProfile(w io.Writer, p *TraceProfile) error {
	return trace.WriteProfile(w, p)
}

// WriteTraceProfileText renders a trace profile as a human-readable
// table: per-phase totals, then the critical-path jobs.
func WriteTraceProfileText(w io.Writer, p *TraceProfile) error {
	return trace.WriteProfileText(w, p)
}

// ValidateChromeTrace checks that r holds schema-conformant Chrome
// trace_event JSON (object format, well-nested complete events).
func ValidateChromeTrace(r io.Reader) error { return trace.ValidateChrome(r) }

// ValidateTraceOutputs validates CLI-style export paths (flag name →
// path): paths must be non-empty and pairwise distinct.
func ValidateTraceOutputs(paths map[string]string) error {
	return trace.ValidateOutputPaths(paths)
}

// CreateTraceOutput creates an export file, making parent directories
// as needed.
func CreateTraceOutput(path string) (*os.File, error) { return trace.CreateOutput(path) }
