package typedepcheck

// Run-body dataflow: a flow-insensitive taint analysis over a port's
// Run method (plus the closures and same-package helpers it calls) that
// gathers the evidence the partition diff consumes:
//
//   - which declared variables Run exercises (NewArray/Value/Assign/
//     Prec/Var sites);
//   - co-location events: the sets of arrays whose elements meet in one
//     store's or one tape-Assign's dataflow, including flow through
//     local float temporaries (P2 evidence);
//   - fill bindings: arr.Fill(x) where x is the untouched tracked value
//     of one scalar (P3 evidence);
//   - per-site kind violations (NewArray on a non-array id, Assign into
//     a non-scalar id) and Assign source lists that disagree with the
//     actual dataflow of the assigned expression.
//
// Local VarID expressions (fields like k.vW, locals bound from
// b.lookup("xD1"), elements of k.coeff) are resolved with the same
// interpreter that evaluated the constructor, seeded with the
// constructed port instance, so the two stages can never disagree about
// which id a site touches.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

type intset map[int]bool

func (s intset) add(ids ...int) {
	for _, id := range ids {
		s[id] = true
	}
}

func (s intset) addSet(o intset) bool {
	grew := false
	for id := range o {
		if !s[id] {
			s[id] = true
			grew = true
		}
	}
	return grew
}

func (s intset) sorted() []int {
	out := make([]int, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// eres is the abstract result of one expression.
type eres struct {
	arrays  intset       // ids of mp.Array objects the expr denotes
	taints  intset       // ids whose tracked values flow into the value
	vids    intset       // possible mp.VarID values
	dynamic bool         // vids not statically resolvable
	lit     *ast.FuncLit // function-literal values
}

func newERes() eres {
	return eres{arrays: intset{}, taints: intset{}, vids: intset{}}
}

func (r *eres) merge(o eres) {
	r.arrays.addSet(o.arrays)
	r.taints.addSet(o.taints)
	r.vids.addSet(o.vids)
	r.dynamic = r.dynamic || o.dynamic
	if o.lit != nil {
		r.lit = o.lit
	}
}

// binding is the accumulated abstract state of one local object.
type binding struct {
	eres
}

// event is one co-location observation: tracked ids meeting in one
// store or tape-assign dataflow.
type event struct {
	ids intset
	pos token.Pos
}

// fillEvent is P3 evidence: arr.Fill(scalar value).
type fillEvent struct {
	scalar int
	arrays intset
	pos    token.Pos
}

// runFacts is everything the diff needs from the Run analysis.
type runFacts struct {
	used   intset
	events []event
	fills  []fillEvent
	diags  []analysis.Diagnostic
}

type runAnalyzer struct {
	pass    *analysis.Pass
	p       *port
	in      *interp
	recvObj types.Object
	env     map[types.Object]*binding
	facts   *runFacts
	record  bool
	active  map[*ast.BlockStmt]bool // recursion guard
}

// analyzeRun performs the fixpoint walk over Run and returns the facts.
func analyzeRun(pass *analysis.Pass, p *port) *runFacts {
	ra := &runAnalyzer{
		pass:  pass,
		p:     p,
		in:    newInterp(pass.TypesInfo, pass.Files, pass.Pkg),
		env:   make(map[types.Object]*binding),
		facts: &runFacts{used: intset{}},
	}
	if recv := p.runDecl.Recv; recv != nil && len(recv.List) == 1 && len(recv.List[0].Names) == 1 {
		ra.recvObj = pass.TypesInfo.Defs[recv.List[0].Names[0]]
	}
	// Flow-insensitive fixpoint: closure parameters and loop-carried
	// temporaries stabilize within a few passes; the final recording
	// pass then emits events and diagnostics once.
	for i := 0; i < 3; i++ {
		ra.active = make(map[*ast.BlockStmt]bool)
		ra.walkBody(p.runDecl.Body)
	}
	ra.record = true
	ra.active = make(map[*ast.BlockStmt]bool)
	ra.walkBody(p.runDecl.Body)
	return ra.facts
}

func (ra *runAnalyzer) bindingOf(obj types.Object) *binding {
	b, ok := ra.env[obj]
	if !ok {
		b = &binding{eres: newERes()}
		ra.env[obj] = b
	}
	return b
}

func (ra *runAnalyzer) reportf(pos token.Pos, format string, args ...any) {
	if !ra.record {
		return
	}
	ra.facts.diags = append(ra.facts.diags, analysis.Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

func (ra *runAnalyzer) use(ids intset) {
	for id := range ids {
		if id >= 0 && id < len(ra.p.graph.vars) {
			ra.facts.used[id] = true
		}
	}
}

func (ra *runAnalyzer) addEvent(pos token.Pos, ids intset) {
	if !ra.record || len(ids) < 2 {
		return
	}
	cp := intset{}
	cp.addSet(ids)
	ra.facts.events = append(ra.facts.events, event{ids: cp, pos: pos})
}

// resolveVIDs statically resolves an mp.VarID-typed expression to the
// set of ids it may hold.
func (ra *runAnalyzer) resolveVIDs(e ast.Expr) (intset, bool) {
	if id, ok := e.(*ast.Ident); ok {
		obj := ra.pass.TypesInfo.Uses[id]
		if b, ok := ra.env[obj]; ok && (len(b.vids) > 0 || b.dynamic) {
			return b.vids, b.dynamic
		}
	}
	// a.Var() resolves to the array binding's ids.
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Var" && ra.isArrayExpr(sel.X) {
			r := ra.walkExpr(sel.X)
			return r.arrays, false
		}
	}
	env := newEnv(nil)
	if ra.recvObj != nil {
		env.define(ra.recvObj, ra.p.instance)
	}
	for obj, b := range ra.env {
		if len(b.vids) == 1 && !b.dynamic {
			env.define(obj, varID(b.vids.sorted()[0]))
		}
	}
	v, err := ra.in.evalExpr(e, env)
	if err != nil {
		return intset{}, true
	}
	out := intset{}
	collectVarIDs(v, out, 0)
	if len(out) == 0 {
		return out, true
	}
	return out, false
}

func collectVarIDs(v value, out intset, depth int) {
	if depth > 4 {
		return
	}
	switch v := v.(type) {
	case varID:
		out.add(int(v))
	case *sliceVal:
		for _, el := range v.elems {
			collectVarIDs(el, out, depth+1)
		}
	}
}

func (ra *runAnalyzer) isArrayExpr(e ast.Expr) bool {
	tv, ok := ra.pass.TypesInfo.Types[e]
	return ok && astq.IsNamed(tv.Type, "repro/internal/mp", "Array")
}

func (ra *runAnalyzer) isTapeExpr(e ast.Expr) bool {
	tv, ok := ra.pass.TypesInfo.Types[e]
	return ok && astq.IsNamed(tv.Type, "repro/internal/mp", "Tape")
}

// ---- statement walk ----

func (ra *runAnalyzer) walkBody(b *ast.BlockStmt) {
	if b == nil || ra.active[b] {
		return
	}
	ra.active[b] = true
	defer delete(ra.active, b)
	for _, s := range b.List {
		ra.walkStmt(s)
	}
}

func (ra *runAnalyzer) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		ra.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							r := ra.walkExpr(vs.Values[i])
							ra.mergeInto(name, r)
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		ra.walkExpr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			ra.walkStmt(s.Init)
		}
		ra.walkExpr(s.Cond)
		ra.walkBody(s.Body)
		if s.Else != nil {
			ra.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ra.walkStmt(s.Init)
		}
		if s.Cond != nil {
			ra.walkExpr(s.Cond)
		}
		if s.Post != nil {
			ra.walkStmt(s.Post)
		}
		ra.walkBody(s.Body)
	case *ast.RangeStmt:
		ra.walkRange(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ra.walkExpr(r)
		}
	case *ast.BlockStmt:
		ra.walkBody(s)
	case *ast.IncDecStmt:
		ra.walkExpr(s.X)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			ra.walkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ra.walkExpr(e)
				}
				for _, st := range cc.Body {
					ra.walkStmt(st)
				}
			}
		}
	case *ast.DeferStmt:
		ra.walkExpr(s.Call)
	}
}

// mergeInto accumulates an expression result into an ident's binding.
func (ra *runAnalyzer) mergeInto(lhs ast.Expr, r eres) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := ra.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = ra.pass.TypesInfo.Uses[lhs]
		}
		if obj == nil {
			return
		}
		ra.bindingOf(obj).merge(r)
	case *ast.IndexExpr:
		// c[i] = v: taint the backing collection's binding.
		ra.walkExpr(lhs.Index)
		ra.mergeInto(lhs.X, r)
	case *ast.SelectorExpr:
		// Field writes in Run are not part of any port's shape; walk
		// for completeness.
		ra.walkExpr(lhs.X)
	}
}

func (ra *runAnalyzer) walkAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			r := ra.walkExpr(s.Rhs[i])
			ra.mergeInto(s.Lhs[i], r)
		}
		return
	}
	// Multi-assign from one call: distribute the union.
	var r eres
	if len(s.Rhs) == 1 {
		r = ra.walkExpr(s.Rhs[0])
	}
	for _, lhs := range s.Lhs {
		ra.mergeInto(lhs, r)
	}
}

func (ra *runAnalyzer) walkRange(s *ast.RangeStmt) {
	r := ra.walkExpr(s.X)
	// Ranging over a VarID collection binds the element var to the ids;
	// ranging over anything tracked propagates taints.
	if s.Value != nil {
		ra.mergeInto(s.Value, eres{arrays: intset{}, taints: r.taints, vids: r.vids, dynamic: r.dynamic})
	}
	if s.Key != nil {
		ra.mergeInto(s.Key, newERes())
	}
	ra.walkBody(s.Body)
}

// ---- expression walk ----

func (ra *runAnalyzer) walkExpr(e ast.Expr) eres {
	switch e := e.(type) {
	case *ast.Ident:
		obj := ra.pass.TypesInfo.Uses[e]
		if obj == nil {
			return newERes()
		}
		if b, ok := ra.env[obj]; ok {
			out := newERes()
			out.merge(b.eres)
			return out
		}
		return newERes()
	case *ast.ParenExpr:
		return ra.walkExpr(e.X)
	case *ast.StarExpr:
		return ra.walkExpr(e.X)
	case *ast.UnaryExpr:
		return ra.walkExpr(e.X)
	case *ast.BinaryExpr:
		out := ra.walkExpr(e.X)
		out.merge(ra.walkExpr(e.Y))
		return out
	case *ast.SelectorExpr:
		return ra.walkSelector(e)
	case *ast.IndexExpr:
		out := ra.walkExpr(e.X)
		out.merge(ra.walkExpr(e.Index))
		return out
	case *ast.CompositeLit:
		out := newERes()
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out.merge(ra.walkExpr(kv.Value))
				continue
			}
			out.merge(ra.walkExpr(elt))
		}
		return out
	case *ast.CallExpr:
		return ra.walkCall(e)
	case *ast.FuncLit:
		out := newERes()
		out.lit = e
		return out
	case *ast.SliceExpr:
		return ra.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		return ra.walkExpr(e.X)
	}
	return newERes()
}

// walkSelector handles field reads: VarID(-collection) fields resolve
// through the port instance; everything else walks the base.
func (ra *runAnalyzer) walkSelector(e *ast.SelectorExpr) eres {
	out := newERes()
	if sel, ok := ra.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
		ids, dynamic := ra.resolveVIDs(e)
		if len(ids) > 0 || !dynamic {
			out.vids.addSet(ids)
			out.dynamic = dynamic
			return out
		}
	}
	out.merge(ra.walkExpr(e.X))
	return out
}

func (ra *runAnalyzer) walkCall(call *ast.CallExpr) eres {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if ra.isTapeExpr(sel.X) {
			return ra.walkTapeCall(call, sel)
		}
		if ra.isArrayExpr(sel.X) {
			return ra.walkArrayCall(call, sel)
		}
		// Package-qualified or foreign-method call (math.Exp, rng.*,
		// mp.ReadInto): taints flow through from the arguments.
		if fn, ok := ra.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != ra.pass.Pkg {
			return ra.walkArgsUnion(call)
		}
		// Same-package method (b.lookup): resolve like a helper.
		if fn, ok := ra.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			return ra.walkHelperCall(call, fn)
		}
		return ra.walkArgsUnion(call)
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		obj := ra.pass.TypesInfo.Uses[id]
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return ra.walkArgsUnion(call)
		}
		if tv, ok := ra.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return ra.walkArgsUnion(call) // conversion
		}
		// Closure held in a local.
		if b, ok := ra.env[obj]; ok && b.lit != nil {
			return ra.callClosure(b.lit, call)
		}
		if fn, ok := obj.(*types.Func); ok {
			return ra.walkHelperCall(call, fn)
		}
	}
	return ra.walkArgsUnion(call)
}

func (ra *runAnalyzer) walkArgsUnion(call *ast.CallExpr) eres {
	out := newERes()
	for _, a := range call.Args {
		out.merge(ra.walkExpr(a))
	}
	// A value computed from tracked inputs stays tracked through
	// foreign calls (math.Exp etc.); array-ness does not.
	out.taints.addSet(out.arrays)
	out.arrays = intset{}
	out.lit = nil
	return out
}

// walkHelperCall analyzes a same-package function (fillRand) or method
// (blackscholes.lookup): parameters accumulate argument state, the body
// is walked, and VarID-returning helpers resolve via the interpreter.
func (ra *runAnalyzer) walkHelperCall(call *ast.CallExpr, fn *types.Func) eres {
	decl := ra.in.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		return ra.walkArgsUnion(call)
	}
	ra.bindCallParams(decl.Type, call)
	ra.walkBody(decl.Body)
	out := newERes()
	// VarID-typed results (b.lookup) resolve statically.
	if tv, ok := ra.pass.TypesInfo.Types[call]; ok && astq.IsNamed(tv.Type, "repro/internal/mp", "VarID") {
		ids, dynamic := ra.resolveVIDs(call)
		out.vids.addSet(ids)
		out.dynamic = dynamic
		ra.use(ids)
	}
	return out
}

func (ra *runAnalyzer) callClosure(lit *ast.FuncLit, call *ast.CallExpr) eres {
	ra.bindCallParams(lit.Type, call)
	ra.walkBody(lit.Body)
	out := newERes()
	// Propagate taints from the closure's return expressions.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				rr := ra.walkExpr(r)
				out.taints.addSet(rr.taints)
				out.taints.addSet(rr.arrays)
			}
		}
		return true
	})
	return out
}

// bindCallParams merges argument state into the callee's parameter
// bindings (union over all call sites; the fixpoint loop stabilizes).
func (ra *runAnalyzer) bindCallParams(ft *ast.FuncType, call *ast.CallExpr) {
	if ft.Params == nil {
		return
	}
	var params []*ast.Ident
	for _, f := range ft.Params.List {
		params = append(params, f.Names...)
	}
	for i, arg := range call.Args {
		r := ra.walkExpr(arg)
		if i < len(params) {
			obj := ra.pass.TypesInfo.Defs[params[i]]
			if obj != nil {
				ra.bindingOf(obj).merge(r)
			}
		}
	}
}
