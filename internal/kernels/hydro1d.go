package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// hydro1d is the hydrodynamics fragment (Livermore loop 1 lineage):
//
//	x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
//
// Inventory (Table II: TV=6, TC=2): the arrays x, y, z are threaded by
// pointer through the fragment and form one cluster; the scalars q, r, t
// are initialised through a shared pointer-based setup routine and form the
// second. Demoting only one of the clusters leaves a precision boundary in
// the update expression, paid as one conversion per element - which is why
// the search settles on the uniform configuration.
type hydro1d struct {
	kernel
	vX, vY, vZ, vQ, vR, vT mp.VarID
}

const (
	hydroN     = 8192
	hydroReps  = 12
	hydroScale = 4
)

// NewHydro1D constructs the kernel.
func NewHydro1D() bench.Benchmark {
	g := typedep.NewGraph()
	k := &hydro1d{kernel: kernel{
		name:  "hydro-1d",
		desc:  "Hydrodynamics fragment",
		graph: g,
	}}
	k.vX = g.Add("x", "hydro", typedep.ArrayVar)
	k.vY = g.Add("y", "hydro", typedep.ArrayVar)
	k.vZ = g.Add("z", "hydro", typedep.ArrayVar)
	k.vQ = g.Add("q", "setup", typedep.Scalar)
	k.vR = g.Add("r", "setup", typedep.Scalar)
	k.vT = g.Add("t", "setup", typedep.Scalar)
	g.ConnectAll(k.vX, k.vY, k.vZ)
	//mixplint:alias -- q, r and t are initialised together by the C driver's setup routine; the port samples them directly, so the coupling is visible only in the original source
	g.ConnectAll(k.vQ, k.vR, k.vT)
	return k
}

func (k *hydro1d) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(hydroScale)
	rng := t.Rand(seed)
	x := t.NewArray(k.vX, hydroN+11)
	y := t.NewArray(k.vY, hydroN+11)
	z := t.NewArray(k.vZ, hydroN+11)
	fillRand(y, rng, 0.01, 0.10)
	fillRand(z, rng, 0.01, 0.10)
	// Scalars drawn float32-exact, so demoting their cluster is lossless.
	q := t.Value(k.vQ, float64(rng.Float32())*0.0625)
	r := t.Value(k.vR, float64(rng.Float32())*0.5)
	tt := t.Value(k.vT, float64(rng.Float32())*0.5)

	arrP, sclP := t.Prec(k.vX), t.Prec(k.vQ)
	for rep := 0; rep < hydroReps; rep++ {
		for i := 0; i < hydroN; i++ {
			x.Set(i, q+y.Get(i)*(r*z.Get(i+10)+tt*z.Get(i+11)))
		}
	}
	// 5 flops per element at the expression precision (double unless every
	// operand cluster is single).
	exprP := mp.F64
	if arrP == mp.F32 && sclP == mp.F32 {
		exprP = mp.F32
	}
	t.AddFlops(exprP, 5*hydroN*hydroReps)
	if arrP != sclP {
		// One conversion per element store at the precision boundary.
		t.AddCasts(hydroN * hydroReps)
	}
	return bench.Output{Values: x.Snapshot()[:hydroN]}
}
