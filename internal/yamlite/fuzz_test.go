package yamlite

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser's robustness contract: arbitrary input must
// produce either a document or an error, never a panic, and a returned
// document must satisfy its own invariants (keys unique, getters
// consistent).
func FuzzParse(f *testing.F) {
	seeds := []string{
		kmeansConfig,
		"a: 1\nb:\n  c: 2\n",
		"list: [1, 2, 'x, y']\n",
		"s:\n  - one\n  - two\n",
		"k: 'unterminated\n",
		"deep:\n  a:\n    b:\n      c: v\n",
		"# comment only\n",
		": empty key\n",
		"a: [1, [2, [3]]]\n",
		"tab:\n\tbad: 1\n",
		"'q': quoted key\n",
		"a: 1 # trailing\n",
		strings.Repeat("x: 1\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must yield a self-consistent document.
		keys := doc.Keys()
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate key %q in parsed document", k)
			}
			seen[k] = true
			if _, ok := doc.Get(k); !ok {
				t.Fatalf("listed key %q not gettable", k)
			}
		}
		if doc.Len() != len(keys) {
			t.Fatalf("Len()=%d, Keys()=%d", doc.Len(), len(keys))
		}
	})
}
