package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mp"
	"repro/internal/perfmodel"
	"repro/internal/runcache"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// This file adapts the durable result store (internal/store) to the run
// cache as a runcache.Tier: records are addressed by the canonical
// binary form of the purity key and hold a versioned binary encoding of
// Result. Decoding is strict - any trailing or missing bytes fail - so a
// codec change can never be misread as data; it surfaces as a
// fingerprint change instead (see StoreFingerprint).

// resultCodecVersion is bumped on any change to the Result encoding.
// It is mixed into the store fingerprint, so a store written under an
// older encoding is refused at Open rather than misdecoded.
//
// Version 2: Cost gained the CastPairs width-class matrix (9 extra
// counter words) and Result gained the modelled Energy.
const resultCodecVersion = 2

// nilSlice marks a nil slice in the encoding, distinguishing it from an
// empty one so decoded results are deep-equal to the originals.
const nilSlice = 0xffffffff

// EncodeResult appends the versioned binary encoding of r to dst. The
// encoding is little-endian and bit-exact: float64s are stored as raw
// bits, so NaNs and infinities round-trip.
//
//mixplint:key Result -- a Result field missing from the codec is silently dropped by the durable tier and replays wrong; bump resultCodecVersion when extending
func EncodeResult(dst []byte, r Result) []byte {
	dst = append(dst, resultCodecVersion)
	dst = appendFloatSlice(dst, r.Output.Values)
	for _, u := range costWords(r.Cost) {
		dst = binary.LittleEndian.AppendUint64(dst, u)
	}
	if r.Profile == nil {
		dst = binary.LittleEndian.AppendUint32(dst, nilSlice)
	} else {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Profile)))
		for _, p := range r.Profile {
			dst = binary.LittleEndian.AppendUint64(dst, p.Bytes)
			dst = binary.LittleEndian.AppendUint64(dst, p.Flops)
			dst = binary.LittleEndian.AppendUint64(dst, p.Casts)
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.ModelTime))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Energy))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Measured.Mean))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Measured.Runs))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Measured.Total))
	return dst
}

// DecodeResult decodes one EncodeResult payload. Every byte must be
// consumed; a version or length mismatch is an error, never a guess.
func DecodeResult(b []byte) (Result, error) {
	var r Result
	d := decoder{b: b}
	if v := d.u8(); v != resultCodecVersion {
		return r, fmt.Errorf("bench: result codec version %d, this build reads %d", v, resultCodecVersion)
	}
	r.Output.Values = d.floatSlice()
	var words [19]uint64
	for i := range words {
		words[i] = d.u64()
	}
	r.Cost = costFromWords(words)
	if n := d.u32(); n != nilSlice {
		if d.err == nil && int(n) > d.remaining()/24 {
			return r, fmt.Errorf("bench: profile length %d exceeds payload", n)
		}
		prof := make([]mp.VarProfile, n)
		for i := range prof {
			prof[i] = mp.VarProfile{Bytes: d.u64(), Flops: d.u64(), Casts: d.u64()}
		}
		r.Profile = prof
	}
	r.ModelTime = math.Float64frombits(d.u64())
	r.Energy = math.Float64frombits(d.u64())
	r.Measured = perfmodel.Measurement{
		Mean:  math.Float64frombits(d.u64()),
		Runs:  int(d.u64()),
		Total: math.Float64frombits(d.u64()),
	}
	if d.err != nil {
		return Result{}, d.err
	}
	if d.remaining() != 0 {
		return Result{}, fmt.Errorf("bench: %d trailing bytes after result", d.remaining())
	}
	return r, nil
}

// costWords flattens a Cost into its counter words, in field order: the
// ten historical counters followed by the CastPairs matrix in row-major
// order.
func costWords(c mp.Cost) [19]uint64 {
	w := [19]uint64{
		c.Flops64, c.Flops32, c.Flops16, c.Casts,
		c.Bytes64, c.Bytes32, c.Bytes16,
		c.Footprint64, c.Footprint32, c.Footprint16,
	}
	k := 10
	for i := range c.CastPairs {
		for j := range c.CastPairs[i] {
			w[k] = c.CastPairs[i][j]
			k++
		}
	}
	return w
}

// costFromWords is the inverse of costWords.
func costFromWords(w [19]uint64) mp.Cost {
	c := mp.Cost{
		Flops64: w[0], Flops32: w[1], Flops16: w[2], Casts: w[3],
		Bytes64: w[4], Bytes32: w[5], Bytes16: w[6],
		Footprint64: w[7], Footprint32: w[8], Footprint16: w[9],
	}
	k := 10
	for i := range c.CastPairs {
		for j := range c.CastPairs[i] {
			c.CastPairs[i][j] = w[k]
			k++
		}
	}
	return c
}

// appendFloatSlice appends a nil-aware float64 slice.
func appendFloatSlice(dst []byte, vals []float64) []byte {
	if vals == nil {
		return binary.LittleEndian.AppendUint32(dst, nilSlice)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decoder is a tiny bounds-checked little-endian reader. After the first
// short read it returns zeros and keeps the error.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) remaining() int { return len(d.b) }

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.b) < n {
		if d.err == nil {
			d.err = fmt.Errorf("bench: result payload truncated (%d bytes short)", n-len(d.b))
		}
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) floatSlice() []float64 {
	n := d.u32()
	if n == nilSlice || d.err != nil {
		return nil
	}
	if int(n) > d.remaining()/8 {
		d.err = fmt.Errorf("bench: value slice length %d exceeds payload", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out
}

// StoreFingerprint derives the fingerprint a result store must be
// opened with: the runner's machine-model fingerprint mixed with the
// codec version. Either a model change or an encoding change makes the
// stored records unusable, and both flip this value, so store.Open's
// header check refuses them together.
func StoreFingerprint(model uint64) uint64 {
	h := model
	h = (h ^ uint64(resultCodecVersion)) * runcache.FNVPrime64
	h = (h ^ 0x73746f7265) * runcache.FNVPrime64 // "store", separating this derivation from raw model fingerprints
	return h
}

// ModelFingerprint exposes the runner's model fingerprint so callers
// opening a store before constructing runners (mixpd boot, the CLI) can
// compute the store fingerprint from the same inputs the cache keys use.
func (r *Runner) ModelFingerprint() uint64 { return r.modelFingerprint() }

// DefaultStoreFingerprint is the store fingerprint for the default
// machine model - the one every NewRunner-built runner uses. The model
// fingerprint covers only the machine and measurement protocol (never
// the workload seed), so one store serves campaigns at any seed.
func DefaultStoreFingerprint() uint64 {
	return StoreFingerprint(NewRunner(0).ModelFingerprint())
}

// storeTier adapts a *store.Store to runcache.Tier[Result].
type storeTier struct {
	st  *store.Store
	tel *telemetry.Recorder
}

// Load fetches and decodes the record for k. A record that fails to
// decode is treated as a miss (and counted); the purity key plus the
// fingerprint check make this near-impossible, but a miss merely
// re-executes, while trusting a bad decode would corrupt a campaign.
func (t storeTier) Load(k runcache.Key) (Result, bool) {
	raw, ok := t.st.Get(k.AppendBinary(nil))
	if !ok {
		return Result{}, false
	}
	r, err := DecodeResult(raw)
	if err != nil {
		if t.tel != nil {
			t.tel.Counter("mixpbench_store_decode_errors_total", "bench", k.Bench).Inc()
		}
		return Result{}, false
	}
	return r, true
}

// Store encodes and enqueues the record (write-behind; see store.Put).
func (t storeTier) Store(k runcache.Key, r Result) {
	t.st.Put(k.AppendBinary(nil), EncodeResult(nil, r))
}

// NewStoredCache returns a run cache backed by st as its durable tier:
// leaders consult the store before executing and publish fresh
// executions to it. A nil st yields a plain in-memory cache, so callers
// can thread an optional store unconditionally.
func NewStoredCache(tel *telemetry.Recorder, st *store.Store) *Cache {
	opts := runcache.Options[Result]{Clone: cloneResult, Telemetry: tel}
	if st != nil {
		opts.Tier = storeTier{st: st, tel: tel}
	}
	return runcache.New(opts)
}
