package search

import "sort"

// Hierarchical is the paper's HR strategy (CRAFT lineage): use program
// structure to search for large groups of variables that can be replaced
// together, falling back to lower-level components - and eventually
// individual variables - when a group fails. The hierarchy here is the
// one CRAFT derives from the program: the whole program, then each
// function/module, then single variables.
//
// As the paper stresses, this strategy does not incorporate cluster
// information, because clusters may cross function boundaries and there is
// no straightforward way to respect them without breaking the hierarchy.
// Group selections that split a type-change set do not compile; they are
// charged as failed evaluations, which is how HR "wastes time creating
// useless configurations" and why it examines far more configurations
// than the cluster-level strategies on some benchmarks.
type Hierarchical struct{}

// Name returns "HR".
func (Hierarchical) Name() string { return "HR" }

// Mode returns ByVariable.
func (Hierarchical) Mode() Mode { return ByVariable }

// hierNode is one node of the program tree.
type hierNode struct {
	units    []int // variable units under this node
	children []*hierNode
}

// buildHierarchy assembles program -> function group -> variable.
func buildHierarchy(s *Space) *hierNode {
	groups := map[string][]int{}
	var order []string
	for i := 0; i < s.NumUnits(); i++ {
		g := s.Unit(i).Group
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], i)
	}
	sort.Strings(order)
	root := &hierNode{}
	for _, g := range order {
		fn := &hierNode{units: groups[g]}
		for _, u := range groups[g] {
			fn.children = append(fn.children, &hierNode{units: []int{u}})
		}
		root.units = append(root.units, groups[g]...)
		root.children = append(root.children, fn)
	}
	return root
}

// Search walks the hierarchy, accumulating every component that can be
// demoted on top of what was already accepted. On ladders with more than
// two rungs the walk repeats per stage: stage r raises the components
// sitting at rung r-1 to rung r on top of everything accepted so far (one
// stage, the historical walk, on the default ladder).
func (h Hierarchical) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	p := e.Space().NumRungs()
	root := buildHierarchy(e.Space())
	accepted := NewSet(n)
	var (
		acceptedRes Result
		found       bool
		stopErr     error
	)

	for r := uint8(1); int(r) < p && stopErr == nil; r++ {
		var walk func(node *hierNode)
		walk = func(node *hierNode) {
			if stopErr != nil {
				return
			}
			set := accepted.Clone()
			for _, u := range node.units {
				if set.Rung(u) == int(r)-1 {
					set.SetRung(u, r)
				}
			}
			if set.Equal(accepted) {
				return
			}
			res, err := e.Evaluate(set)
			if err != nil {
				stopErr = err
				return
			}
			if res.Passed {
				accepted, acceptedRes, found = set, res, true
				return
			}
			for _, c := range node.children {
				walk(c)
			}
		}
		walk(root)
	}

	if !found {
		return finish(h.Name(), e, Set{}, Result{}, false, stopErr)
	}
	return finish(h.Name(), e, accepted, acceptedRes, true, stopErr)
}
