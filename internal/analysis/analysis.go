// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built on the standard library
// only (go/parser, go/types, and the gc export-data importer) so the repo
// keeps its zero-dependency go.mod. It exists to machine-check invariants
// the ports and the harness otherwise enforce by convention: the
// type-dependence graphs every benchmark declares (see typedepcheck,
// the Typeforge analogue from the paper's §II-C) and the determinism
// rules the campaign layers rely on (simclock, seededrand, orderedemit,
// ctxfirst). cmd/mixplint is the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. It mirrors the x/tools type of
// the same name so the analyzers read like stock go/analysis code and
// could be ported to the real framework without structural change.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression
	// directives ("//mixplint:ignore <name> -- why"), and -json output.
	Name string

	// Doc is a one-paragraph description; the first line is the summary
	// shown by `mixplint -help`.
	Doc string

	// Run applies the check to one package and reports findings through
	// pass.Report. A non-nil error aborts the whole mixplint run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info
	Dir       string // package directory on disk
	PkgPath   string // import path ("repro/internal/harness")

	report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// NewPass builds a pass over pkg that reports through report; the
// driver and analysistest both construct passes this way.
func NewPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Dir:       pkg.Dir,
		PkgPath:   pkg.PkgPath,
		report:    report,
	}
}

// Report emits a diagnostic. Suppression directives are applied by the
// driver, not here, so analyzers stay oblivious to the mechanism.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
