package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression and annotation directives are line comments of the form
//
//	//mixplint:ignore <analyzer> -- <justification>
//	//mixplint:package <analyzer> -- <justification>
//	//mixplint:alias -- <justification>
//	//mixplint:key <Struct|pkgpath.Struct>... -- <justification>
//	//mixplint:keyexempt <Struct.Field> -- <justification>
//
// "ignore" suppresses findings of one analyzer on the directive's own
// line or the line directly below it (so it works both as a trailing
// comment and as a comment above the offending line). "package"
// suppresses an analyzer for the whole package containing the file.
// "alias" is not a suppression: typedepcheck reads it as an axiom that
// the Connect call on that line encodes a dependence visible only in
// the original C source (see that analyzer's doc). "key" and
// "keyexempt" are likewise annotations, read by keycheck: "key" in a
// function's doc comment declares it the fingerprint/codec writer for
// the named struct types, and "keyexempt" exempts one field from the
// every-field-fingerprinted rule (see that analyzer's doc).
//
// The justification after " -- " is mandatory for every kind; a
// directive without one is itself reported as a finding, so the
// suppression inventory stays reviewable.

// A Directive is one parsed mixplint comment.
type Directive struct {
	Kind          string   // "ignore", "package", "alias", "key", or "keyexempt"
	Analyzer      string   // target analyzer for ignore/package
	Args          []string // struct/field references for key/keyexempt
	Justification string
	Pos           token.Pos
	Line          int // source line of the comment itself
}

const directivePrefix = "//mixplint:"

// ParseDirectives extracts every mixplint directive from the files and
// reports malformed ones as diagnostics under the "directive" name.
func ParseDirectives(fset *token.FileSet, files []*ast.File) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				d, msg := parseDirective(rest)
				if msg != "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  msg,
					})
					continue
				}
				d.Pos = c.Pos()
				d.Line = fset.Position(c.Pos()).Line
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// parseDirective parses the text after "//mixplint:". It returns a
// non-empty message describing the problem for malformed directives.
func parseDirective(text string) (Directive, string) {
	head, just, found := strings.Cut(text, "--")
	just = strings.TrimSpace(just)
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return Directive{}, "empty mixplint directive"
	}
	d := Directive{Kind: fields[0], Justification: just}
	switch d.Kind {
	case "ignore", "package":
		if len(fields) != 2 {
			return Directive{}, "mixplint:" + d.Kind + " needs exactly one analyzer name"
		}
		d.Analyzer = fields[1]
	case "alias":
		if len(fields) != 1 {
			return Directive{}, "mixplint:alias takes no arguments before the justification"
		}
	case "key":
		if len(fields) < 2 {
			return Directive{}, "mixplint:key needs at least one struct type"
		}
		d.Args = fields[1:]
	case "keyexempt":
		if len(fields) != 2 || !strings.Contains(fields[1], ".") {
			return Directive{}, "mixplint:keyexempt needs exactly one Struct.Field reference"
		}
		d.Args = fields[1:]
	default:
		return Directive{}, "unknown mixplint directive " + d.Kind + " (want ignore, package, alias, key, or keyexempt)"
	}
	if !found || just == "" {
		return Directive{}, "mixplint:" + d.Kind + ` requires a justification after " -- "`
	}
	return d, ""
}

// suppresses reports whether directive d suppresses a finding from the
// named analyzer at the given line of the same file.
func (d *Directive) suppresses(analyzer string, line int) bool {
	switch d.Kind {
	case "package":
		return d.Analyzer == analyzer
	case "ignore":
		return d.Analyzer == analyzer && (line == d.Line || line == d.Line+1)
	}
	return false
}

// AliasAt returns the justification of an alias directive whose comment
// sits on the given line (or the line above it), and whether one exists.
// typedepcheck uses this to accept declared edges whose evidence lives
// only in the original C source.
func AliasAt(dirs []Directive, file string, line int, fset *token.FileSet) (string, bool) {
	for i := range dirs {
		d := &dirs[i]
		if d.Kind != "alias" {
			continue
		}
		if fset.Position(d.Pos).Filename != file {
			continue
		}
		if line == d.Line || line == d.Line+1 {
			return d.Justification, true
		}
	}
	return "", false
}
