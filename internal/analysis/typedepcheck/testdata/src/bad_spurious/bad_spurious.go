// Package bad_spurious is a typedepcheck fixture with a spurious edge
// (declared but unwitnessed), an idle declared variable, an Assign
// whose source list disagrees with its dataflow, and kind mismatches.
package bad_spurious

import (
	"repro/internal/mp"
	"repro/internal/typedep"
)

type badSpurious struct {
	name  string
	graph *typedep.Graph

	vA, vB, vIdle, vS, vT mp.VarID
}

// NewBadSpurious connects a and b although Run never lets their
// elements meet, and declares idle without ever exercising it.
func NewBadSpurious() *badSpurious {
	g := typedep.NewGraph()
	k := &badSpurious{name: "bad-spurious", graph: g}
	k.vA = g.Add("a", "loop", typedep.ArrayVar)
	k.vB = g.Add("b", "loop", typedep.ArrayVar)
	k.vIdle = g.Add("idle", "loop", typedep.Scalar) // want `declared variable loop::idle is never exercised by Run`
	k.vS = g.Add("s", "loop", typedep.Scalar)
	k.vT = g.Add("t", "loop", typedep.Scalar)
	g.Connect(k.vA, k.vB) // want `declared edge loop::a -- loop::b is unwitnessed`
	// Scalar-scalar edges have no element co-location to witness them;
	// without an alias axiom they are spurious too.
	g.Connect(k.vS, k.vT) // want `declared edge loop::s -- loop::t is unwitnessed`
	return k
}

func (k *badSpurious) Run(t *mp.Tape, seed int64) []float64 {
	a := t.NewArray(k.vA, 8)
	b := t.NewArray(k.vB, 8)
	a.Fill(1.0)
	b.Fill(2.0)
	s := t.Assign(k.vS, a.Get(0), 0, k.vT) // want `Assign lists source loop::t but the assigned expression does not read it`
	_ = t.Assign(k.vT, s, 0, k.vT)         // want `Assign source loop::t is the destination itself`
	_ = t.NewArray(k.vS, 4)                // want `NewArray uses loop::s declared as scalar, want array`
	_ = t.Assign(k.vA, 1.0, 0)             // want `Assign destination uses loop::a declared as array, want scalar`
	return b.Snapshot()
}
