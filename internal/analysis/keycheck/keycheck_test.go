package keycheck

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestKeycheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "key")
}

// TestExemptionAudit asserts the exemption-audit diagnostics directly:
// they anchor on the directive comments, where fixture want comments
// cannot sit.
func TestExemptionAudit(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "keybad"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.LoadDir(dir, "testdata/keybad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysistest.RunPackage(Analyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"mixplint:keyexempt Model.Rate is stale",
		"mixplint:keyexempt names unknown field Model.Gone",
		"mixplint:key directive is not attached to a function declaration",
		"mixplint:keyexempt without a mixplint:key audit in this file",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q; got %+v", want, diags)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("want %d diagnostics, got %d: %+v", len(wants), len(diags), diags)
	}
}
