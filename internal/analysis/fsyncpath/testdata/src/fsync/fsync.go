// Package fsync is the fsyncpath fixture: creates and renames without
// the full fsync discipline are flagged; the store's tmp-sync-rename-
// dirsync idiom passes clean.
package fsync

import (
	"os"

	"repro/internal/store"
)

// badRename renames without any directory fsync afterwards (R1).
func badRename(path string) {
	os.Rename(path, path+".corrupt") // want `os.Rename is not followed by a directory fsync`
}

// badCreate creates a file and never fsyncs its directory entry (R2).
func badCreate(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want `file create is not followed by a directory fsync`
	if err != nil {
		return err
	}
	return f.Close()
}

// badPublish renames a .tmp file into place without fsyncing its
// contents first (R3); the directory fsync alone does not make the
// payload durable.
func badPublish(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Close()
	if err := os.Rename(tmp, path); err != nil { // want `os.Rename publishes a .tmp file without a preceding file fsync`
		return err
	}
	return store.SyncParentDir(path)
}

// goodPublish is the full PR 7 idiom: create tmp, write, file fsync,
// rename, parent-directory fsync.
func goodPublish(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return store.SyncParentDir(path)
}

// goodAppend reopens an existing file for appending: no create flag, no
// rename, nothing to check.
func goodAppend(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// quarantine shows the rename-only shape: moving an existing file still
// needs the directory barrier (this is the engine archive-quarantine
// bug shape), but not a preceding file fsync — the contents are not
// new.
func quarantine(dir, path string) {
	os.Rename(path, path+".corrupt") // want `os.Rename is not followed by a directory fsync`
}

// goodQuarantine is the fixed shape.
func goodQuarantine(dir, path string) {
	if err := os.Rename(path, path+".corrupt"); err == nil {
		store.SyncDir(dir)
	}
}
