// Package typedepcheck is mixplint's headline analyzer: Typeforge in
// Go (paper §II-C). Every benchmark port hand-declares the
// type-dependence graph Typeforge extracted from the original C source;
// this analyzer re-derives it from the port's own Go code and reports
// any disagreement, so the Table II inventories are machine-checked
// rather than trusted.
//
// It works in two stages. First, an abstract interpreter executes the
// port's constructor (the function calling typedep.NewGraph) to recover
// the declared inventory: every g.Add tunable site with name, unit and
// kind, and every Connect/ConnectAll edge with its source position —
// including declarations made in loops over name tables or through
// helpers like addAliases. Second, a flow-insensitive dataflow analysis
// of the port's Run method gathers the evidence that forces shared
// precision, and the two are diffed:
//
//   - P1 (parameter web): a declared edge with a Param-kind endpoint is
//     self-witnessing — it transliterates a C call-site binding, which
//     is exactly the aliasing Typeforge derives from the C AST.
//   - P2 (array co-location): two web-free arrays whose elements meet
//     in one statement's dataflow (including through local float
//     temporaries) must share a cluster: the values flow through the
//     same expressions and stores.
//   - P3 (fill binding): arr.Fill(x) where x is the unmodified tracked
//     value of a web-free scalar binds the scalar to the array.
//   - P4 (alias axiom): a `//mixplint:alias -- why` comment on a
//     Connect line imports a dependence fact that exists only in the
//     original C source (pointer out-params, struct spills) and that
//     no Go-side evidence can witness; the justification is mandatory.
//
// A declared edge with no witness under P1-P4 is reported as
// unwitnessed (spurious); a P2/P3 inference that crosses declared
// cluster boundaries is reported as a missing edge. The analyzer also
// checks per-site kind consistency (NewArray needs an ArrayVar id,
// Assign destinations must be Scalars), that statically-known Assign
// source lists are a subset of the actual dataflow, and — for ports
// without parameter webs, i.e. the kernels — that every declared
// tunable is actually exercised by Run.
package typedepcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/typedep"
)

var Analyzer = &analysis.Analyzer{
	Name: "typedepcheck",
	Doc:  "diff each port's declared typedep.Graph against the dependence partition inferred from its source",
	Run:  run,
}

// port is one discovered benchmark port.
type port struct {
	bench    string // benchmark name ("gen-lin-recur")
	ctorName string
	ctorPos  token.Pos
	graph    *graphVal
	instance *structVal
	named    *types.Named
	runDecl  *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	ports, diags := evalPorts(pass.TypesInfo, pass.Files, pass.Pkg)
	for _, d := range diags {
		pass.Report(d)
	}
	dirs, _ := analysis.ParseDirectives(pass.Fset, pass.Files)
	for _, p := range ports {
		checkPort(pass, p, dirs)
	}
	return nil
}

// evalPorts finds every constructor calling typedep.NewGraph and
// abstract-interprets it.
func evalPorts(info *types.Info, files []*ast.File, pkg *types.Package) ([]*port, []analysis.Diagnostic) {
	var ports []*port
	var diags []analysis.Diagnostic
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !callsNewGraph(info, fd.Body) {
				continue
			}
			p, err := evalPort(info, files, pkg, fd)
			if err != nil {
				diags = append(diags, analysis.Diagnostic{
					Pos:     fd.Pos(),
					Message: fmt.Sprintf("constructor %s is not statically analyzable: %v", fd.Name.Name, err),
				})
				continue
			}
			ports = append(ports, p)
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i].bench < ports[j].bench })
	return ports, diags
}

func callsNewGraph(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Name() == "NewGraph" && fn.Pkg() != nil &&
			fn.Pkg().Path() == "repro/internal/typedep" {
			found = true
			return false
		}
		return true
	})
	return found
}

// evalPort interprets one constructor and locates the port's pieces.
func evalPort(info *types.Info, files []*ast.File, pkg *types.Package, ctor *ast.FuncDecl) (*port, error) {
	in := newInterp(info, files, pkg)
	rets, err := in.callBody(ctor.Body, newEnv(nil))
	if err != nil {
		return nil, err
	}
	if len(rets) != 1 {
		return nil, fmt.Errorf("constructor does not return a single value")
	}
	sv, ok := rets[0].(*structVal)
	if !ok {
		return nil, fmt.Errorf("constructor returns %T, not a struct", rets[0])
	}
	p := &port{ctorName: ctor.Name.Name, ctorPos: ctor.Pos(), instance: sv}
	if p.graph = findGraph(sv, 0); p.graph == nil {
		return nil, fmt.Errorf("no typedep.Graph field on the returned struct")
	}
	if p.bench, ok = findName(sv, 0); !ok {
		return nil, fmt.Errorf("no name field on the returned struct")
	}
	named, err := namedOf(sv.typ)
	if err != nil {
		return nil, err
	}
	p.named = named
	p.runDecl = findMethod(info, files, named, "Run")
	if p.runDecl == nil {
		return nil, fmt.Errorf("no Run method found for %s", named.Obj().Name())
	}
	return p, nil
}

// findGraph locates the *graphVal field, searching embedded structs.
func findGraph(sv *structVal, depth int) *graphVal {
	if depth > 4 {
		return nil
	}
	for _, v := range sv.fields {
		if g, ok := v.(*graphVal); ok {
			return g
		}
	}
	for _, v := range sv.fields {
		if inner, ok := v.(*structVal); ok {
			if g := findGraph(inner, depth+1); g != nil {
				return g
			}
		}
	}
	return nil
}

// findName locates the string field "name", searching embedded structs.
func findName(sv *structVal, depth int) (string, bool) {
	if depth > 4 {
		return "", false
	}
	if s, ok := sv.fields["name"].(string); ok {
		return s, true
	}
	for _, v := range sv.fields {
		if inner, ok := v.(*structVal); ok {
			if s, ok := findName(inner, depth+1); ok {
				return s, true
			}
		}
	}
	return "", false
}

func namedOf(t types.Type) (*types.Named, error) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named, nil
	}
	return nil, fmt.Errorf("port struct has unnamed type %v", t)
}

// findMethod locates a method declaration on *T or T.
func findMethod(info *types.Info, files []*ast.File, named *types.Named, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			obj := info.Defs[fd.Name]
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			rt := recv.Type()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if n, ok := rt.(*types.Named); ok && n.Obj() == named.Obj() {
				return fd
			}
		}
	}
	return nil
}

// kindName renders a typedep.Kind constant value.
func kindName(k int64) string {
	switch typedep.Kind(k) {
	case typedep.Scalar:
		return "scalar"
	case typedep.ArrayVar:
		return "array"
	case typedep.Param:
		return "param"
	case typedep.Pointer:
		return "pointer"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Inventory is the canonical per-benchmark artifact the golden test
// locks: the full variable list in declaration order and the declared
// clusters, plus the Table II counts they imply.
type Inventory struct {
	Bench    string     `json:"bench"`
	TV       int        `json:"tv"`
	TC       int        `json:"tc"`
	Vars     []string   `json:"vars"`     // "unit::name kind", id order
	Clusters [][]string `json:"clusters"` // each sorted, list sorted by first member
}

// Inventories derives the declared inventory of every port in the
// package from source, without executing any benchmark code. An error
// from any constructor is returned rather than silently skipped.
func Inventories(info *types.Info, files []*ast.File, pkg *types.Package) ([]Inventory, error) {
	ports, diags := evalPorts(info, files, pkg)
	if len(diags) > 0 {
		return nil, fmt.Errorf("%s", diags[0].Message)
	}
	var out []Inventory
	for _, p := range ports {
		out = append(out, p.inventory())
	}
	return out, nil
}

func (p *port) inventory() Inventory {
	g := p.graph
	inv := Inventory{Bench: p.bench, TV: len(g.vars), TC: g.numClusters()}
	for _, v := range g.vars {
		inv.Vars = append(inv.Vars, fmt.Sprintf("%s::%s %s", v.unit, v.name, kindName(v.kind)))
	}
	roots := partition(len(g.vars), g.edges())
	byRoot := make(map[int][]string)
	for id, r := range roots {
		v := g.vars[id]
		byRoot[r] = append(byRoot[r], fmt.Sprintf("%s::%s", v.unit, v.name))
	}
	for _, members := range byRoot {
		sort.Strings(members)
		inv.Clusters = append(inv.Clusters, members)
	}
	sort.Slice(inv.Clusters, func(i, j int) bool { return inv.Clusters[i][0] < inv.Clusters[j][0] })
	return inv
}
