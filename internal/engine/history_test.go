package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestEngineRestartServesArchivedCampaigns is the engine-level half of
// the tentpole restart guarantee: a second engine generation over the
// same history directory answers for the first generation's campaigns
// - status, journal-shaped results, and the full event log - byte for
// byte, so SSE clients resume with Last-Event-ID across the restart
// and see exactly the frames they would have seen live.
func TestEngineRestartServesArchivedCampaigns(t *testing.T) {
	dir := t.TempDir()

	// Generation 1 runs the campaign to completion.
	e1 := New(Options{Workers: 2, HistoryDir: dir})
	id, err := e1.Submit(engineYAML, SubmitOptions{Seed: 42, Name: "gen1"})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := e1.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != StateDone {
		t.Fatalf("state %s, want done (err %q)", st1.State, st1.Error)
	}
	recs1, err := e1.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	log1, err := e1.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	events1, _ := log1.Since(0)
	e1.Close()

	// Generation 2 boots over the same history directory.
	e2 := New(Options{Workers: 2, HistoryDir: dir})
	defer e2.Close()

	st2, err := e2.Status(id)
	if err != nil {
		t.Fatalf("restarted engine lost campaign %s: %v", id, err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("status changed across restart:\n gen1 %+v\n gen2 %+v", st1, st2)
	}
	recs2, err := e2.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := recordsJSON(t, recs2), recordsJSON(t, recs1); got != want {
		t.Errorf("results diverge across restart:\n--- gen1 ---\n%s\n--- gen2 ---\n%s", want, got)
	}

	// The archived event log replays byte-identically: a client that
	// consumed the first N events live resumes from N and the frames
	// marshal to the same bytes.
	log2, err := e2.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	events2, closed := log2.Since(0)
	if !closed {
		t.Error("archived event log not closed")
	}
	if len(events2) != len(events1) {
		t.Fatalf("event count changed across restart: %d vs %d", len(events2), len(events1))
	}
	for i := range events1 {
		b1, err1 := json.Marshal(events1[i])
		b2, err2 := json.Marshal(events2[i])
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal event %d: %v / %v", i, err1, err2)
		}
		if string(b1) != string(b2) {
			t.Fatalf("event %d changed across restart:\n gen1 %s\n gen2 %s", i, b1, b2)
		}
	}
	resume := len(events1) / 2
	tail, _ := log2.Since(resume)
	if len(tail) != len(events1)-resume {
		t.Fatalf("Since(%d) returned %d events, want %d", resume, len(tail), len(events1)-resume)
	}

	// Live-only artifacts are gone, distinctly: ErrArchived, not
	// ErrNotFound or ErrNotReady.
	if _, err := e2.Trace(id); !errors.Is(err, ErrArchived) {
		t.Errorf("Trace on archived campaign: %v, want ErrArchived", err)
	}
	if _, err := e2.Profile(id, 0); !errors.Is(err, ErrArchived) {
		t.Errorf("Profile on archived campaign: %v, want ErrArchived", err)
	}
	if _, err := e2.CacheDiag(id); !errors.Is(err, ErrArchived) {
		t.Errorf("CacheDiag on archived campaign: %v, want ErrArchived", err)
	}
	if err := e2.WriteMetrics(id, os.NewFile(0, "")); !errors.Is(err, ErrArchived) {
		t.Errorf("WriteMetrics on archived campaign: %v, want ErrArchived", err)
	}
	if err := e2.Cancel(id); err != nil {
		t.Errorf("Cancel on archived campaign: %v, want no-op", err)
	}

	// New submissions never collide with restored IDs.
	id2, err := e2.Submit(engineYAML, SubmitOptions{Seed: 42, Name: "gen2"})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted engine reissued campaign ID %s", id)
	}
	if _, err := e2.Wait(context.Background(), id2); err != nil {
		t.Fatal(err)
	}

	h := e2.Health()
	if !h.Healthy() || h.Archived != 1 || h.Campaigns != 2 {
		t.Errorf("health after restart: %+v", h)
	}
}

// TestEngineHistoryQuarantinesCorruptArchive locks the boot policy: a
// corrupt history document is renamed aside and counted, never a
// reason to refuse to start, and intact archives still load.
func TestEngineHistoryQuarantinesCorruptArchive(t *testing.T) {
	dir := t.TempDir()

	e1 := New(Options{Workers: 2, HistoryDir: dir})
	id, err := e1.Submit(engineYAML, SubmitOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// One intact archive, one torn, one that is not JSON at all.
	if err := os.WriteFile(filepath.Join(dir, "c0002.json"), []byte(`{"id":"c0002","state":"done"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c0003.json"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New(Options{HistoryDir: dir})
	defer e2.Close()
	if _, err := e2.Status(id); err != nil {
		t.Errorf("intact archive lost alongside corrupt ones: %v", err)
	}
	for _, gone := range []string{"c0002", "c0003"} {
		if _, err := e2.Status(gone); !errors.Is(err, ErrNotFound) {
			t.Errorf("corrupt archive %s served: %v", gone, err)
		}
		if _, err := os.Stat(filepath.Join(dir, gone+".json.corrupt")); err != nil {
			t.Errorf("corrupt archive %s not quarantined: %v", gone, err)
		}
	}
	h := e2.Health()
	if h.HistoryLoadErrors != 2 || h.Healthy() {
		t.Errorf("health after corrupt boot: %+v", h)
	}
	if h.LastHistoryError == "" || !strings.Contains(h.LastHistoryError, "c0003") {
		t.Errorf("last history error not actionable: %q", h.LastHistoryError)
	}

	// The counter resumed past the corrupt IDs' survivor: a fresh
	// submission gets a fresh ID.
	id2, err := e2.Submit(engineYAML, SubmitOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("ID %s reissued after corrupt boot", id2)
	}
}
