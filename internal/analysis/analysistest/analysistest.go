// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest. Fixtures live in
// testdata/src/<name> next to the analyzer's test and are type-checked
// against the real module's export data, so they can import repro
// packages (internal/mp, internal/typedep, ...) like genuine ports.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loadOnce sync.Once
	loadMod  *analysis.Module
	loadErr  error
)

// module loads the repo once per test binary; go list output and the
// build cache make repeat loads cheap, but parsing every package per
// subtest is still worth avoiding.
func module() (*analysis.Module, error) {
	loadOnce.Do(func() {
		root, err := analysis.FindModuleRoot(".")
		if err != nil {
			loadErr = err
			return
		}
		loadMod, loadErr = analysis.Load(root)
	})
	return loadMod, loadErr
}

// Run applies the analyzer to testdata/src/<name> and fails the test
// unless the diagnostics and the fixture's // want comments agree
// exactly: every diagnostic must match a want regexp on its line, and
// every want must be matched by some diagnostic.
func Run(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()
	m, err := module()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.LoadDir(dir, "testdata/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := RunPackage(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		if !wants.consume(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

// RunPackage applies the analyzer to an already-loaded package and
// returns its raw diagnostics (no want matching, no suppression).
func RunPackage(a *analysis.Analyzer, pkg *analysis.Package) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg, func(d analysis.Diagnostic) { out = append(out, d) })
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}

// wantSet tracks expected diagnostics per "file:line" key.
type wantSet map[string][]*wantEntry

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
	key     string
}

// wantRE matches one expectation: a double-quoted pattern (with
// escapes) or a backquoted raw pattern.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// parseWants collects `// want "re" "re"...` comments from the fixture.
func parseWants(t *testing.T, pkg *analysis.Package) wantSet {
	t.Helper()
	ws := make(wantSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment (no quoted pattern): %s", key, c.Text)
					continue
				}
				for _, m := range ms {
					pat := m[2]
					if m[1] != "" || m[2] == "" {
						pat = strings.ReplaceAll(m[1], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
						continue
					}
					ws[key] = append(ws[key], &wantEntry{re: re, key: key})
				}
			}
		}
	}
	return ws
}

func cutWant(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	return strings.CutPrefix(text, "want ")
}

// consume marks the first unmatched want on the line that matches msg.
func (ws wantSet) consume(key, msg string) bool {
	for _, w := range ws[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, entries := range ws {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", w.key, w.re)
			}
		}
	}
}
