package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

// TestServerTraceAndProfile exercises the observability endpoints over
// a finished campaign: the trace validates as Chrome trace_event JSON,
// the JSONL form parses span-per-line, the profile's phase totals sum
// to its campaign total, and the live cache diagnostics cover the jobs.
func TestServerTraceAndProfile(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	var accessLog bytes.Buffer
	ts := httptest.NewServer(newServer(eng, serverOptions{accessLog: &accessLog}))
	defer ts.Close()

	st := postCampaign(t, ts, "?name=obs")
	st = waitDone(t, ts, st.ID)
	if st.State != engine.StateDone {
		t.Fatalf("campaign state %s: %s", st.State, st.Error)
	}

	// Chrome trace: loadable bytes that pass the schema validator.
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", resp.StatusCode, chrome)
	}
	if err := trace.ValidateChrome(bytes.NewReader(chrome)); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}

	// JSONL span log: one parseable span per line, root first.
	resp, err = http.Get(ts.URL + "/campaigns/" + st.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	jsonl, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimRight(string(jsonl), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("jsonl trace has %d lines", len(lines))
	}
	var rootSpan trace.Span
	if err := json.Unmarshal([]byte(lines[0]), &rootSpan); err != nil || rootSpan.ID != "campaign" {
		t.Fatalf("first jsonl line not the campaign span: %v %q", err, lines[0])
	}

	// Bad format is rejected.
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/trace?format=xml", nil); code != http.StatusBadRequest {
		t.Fatalf("bad trace format: status %d", code)
	}

	// Profile: phases sum to the total, jobs are all present.
	var p trace.Profile
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/profile", &p); code != http.StatusOK {
		t.Fatalf("GET profile: status %d", code)
	}
	var sum float64
	for _, ph := range p.Phases {
		sum += ph.Seconds
	}
	if sum != p.TotalSeconds || p.TotalSeconds <= 0 {
		t.Fatalf("profile phases sum %v, total %v", sum, p.TotalSeconds)
	}
	if p.Jobs != 2 || len(p.TopJobs) != 2 {
		t.Fatalf("profile jobs: %d top %d", p.Jobs, len(p.TopJobs))
	}
	var p1 trace.Profile
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/profile?top=1", &p1); code != http.StatusOK {
		t.Fatalf("GET profile?top=1: status %d", code)
	}
	if len(p1.TopJobs) != 1 {
		t.Fatalf("top=1 returned %d jobs", len(p1.TopJobs))
	}
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/profile?top=x", nil); code != http.StatusBadRequest {
		t.Fatalf("bad top: status %d", code)
	}

	// Live cache diagnostics: one row per executed job, every lookup
	// attributed as a hit, miss, or wait. Without -store the store
	// section is absent.
	var diag cacheDiagBody
	if code := getJSON(t, ts.URL+"/campaigns/"+st.ID+"/cachediag", &diag); code != http.StatusOK {
		t.Fatalf("GET cachediag: status %d", code)
	}
	if len(diag.Jobs) != 2 {
		t.Fatalf("cachediag rows: %d", len(diag.Jobs))
	}
	for _, d := range diag.Jobs {
		if d.Hits+d.Misses == 0 {
			t.Fatalf("job %d saw no cache traffic: %+v", d.Job, d)
		}
	}
	if diag.Store != nil {
		t.Fatalf("cachediag reports a store on a storeless server: %+v", diag.Store)
	}

	// Unknown campaign: 404 for each artifact route.
	for _, path := range []string{"/trace", "/profile", "/cachediag"} {
		if code := getJSON(t, ts.URL+"/campaigns/nope"+path, nil); code != http.StatusNotFound {
			t.Fatalf("GET nope%s: status %d", path, code)
		}
	}

	// Server-wide metrics: per-route counters with the registration
	// pattern as label.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"mixpd_http_requests_total",
		`route="GET /campaigns/{id}/trace"`,
		`code="200"`,
		"mixpd_http_request_seconds",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("GET /metrics missing %q", want)
		}
	}

	// Access log: structured JSON lines carrying route and status.
	sawTrace := false
	for _, line := range strings.Split(strings.TrimRight(accessLog.String(), "\n"), "\n") {
		var rec struct {
			Method string `json:"method"`
			Route  string `json:"route"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable access log line %q: %v", line, err)
		}
		if rec.Route == "GET /campaigns/{id}/trace" && rec.Status == http.StatusOK {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Errorf("access log missing the trace request:\n%s", accessLog.String())
	}
}

// TestServerTraceNotReady locks the 409 contract: trace and profile are
// refused until the campaign reaches a terminal state.
func TestServerTraceNotReady(t *testing.T) {
	// MaxConcurrent 1 with a queue: the second submission stays queued
	// (non-terminal) while we probe it.
	eng := engine.New(engine.Options{Workers: 1, MaxConcurrent: 1, QueueDepth: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts.Close()

	first := postCampaign(t, ts, "")
	second := postCampaign(t, ts, "")
	var body errorBody
	code := getJSON(t, ts.URL+"/campaigns/"+second.ID+"/profile", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("GET profile on queued campaign: status %d (%+v)", code, body)
	}
	if code == http.StatusOK {
		t.Skip("campaign finished before the probe; timing too fast to observe queued state")
	}
	waitDone(t, ts, first.ID)
	waitDone(t, ts, second.ID)
	if code := getJSON(t, ts.URL+"/campaigns/"+second.ID+"/trace", nil); code != http.StatusOK {
		t.Fatalf("GET trace after done: status %d", code)
	}
}

// TestServerPprof checks the -pprof mount.
func TestServerPprof(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, serverOptions{pprof: true}))
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: status %d", code)
	}
	// Without the flag the debug surface stays closed.
	ts2 := httptest.NewServer(newServer(eng, serverOptions{}))
	defer ts2.Close()
	if code := getJSON(t, ts2.URL+"/debug/pprof/cmdline", nil); code == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}
}
