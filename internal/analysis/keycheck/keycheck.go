// Package keycheck defines the fingerprint-completeness analyzer: the
// guard against the "field added in PR 12 silently poisons every PR 11
// store" bug class. The run cache, the durable result store, and the
// compile cache all address results by fingerprints and versioned
// codecs (Config.AppendKey, runcache.Key.AppendBinary, the runner's
// machine-model fingerprint behind StoreFingerprint, EncodeResult);
// a struct field that can change a result but is not mixed into its
// fingerprint or codec makes two different configurations collide on
// one stored record, and nothing fails until the wrong result is
// replayed.
//
// The analyzer is annotation-driven. A fingerprint or codec writer
// declares its coverage obligation in its doc comment:
//
//	//mixplint:key repro/internal/perfmodel.Machine -- why
//	func (r *Runner) modelFingerprint() uint64 { ... }
//
// Each named type must be a struct (own-package references may omit the
// package path). keycheck enumerates its fields recursively — nested
// module-local structs, behind pointers, slices, arrays, and maps,
// included — and requires every field to be referenced in the writer's
// body or in any same-package function the writer reaches
// (astq.CallGraph). A field that genuinely cannot affect results is
// exempted, in the same file, with its own justified annotation:
//
//	//mixplint:keyexempt CacheLevel.Name -- display label, never read by Time/Energy
//
// Exemptions are themselves audited, which is where the
// fingerprinted-but-dead report comes from: a keyexempt naming a field
// the writer does reference is stale and flagged, as is one naming a
// field that no longer exists. Malformed directives are reported by the
// driver under the "directive" name like every other mixplint comment.
package keycheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "keycheck",
	Doc:  "every field of a fingerprinted struct must be written by its annotated fingerprint/codec function or carry a justified exemption",
	Run:  run,
}

// audit is one resolved //mixplint:key obligation.
type audit struct {
	writer *types.Func
	decl   *ast.FuncDecl
	roots  []*types.Named
}

func run(pass *analysis.Pass) error {
	dirs, _ := analysis.ParseDirectives(pass.Fset, pass.Files)
	graph := astq.NewCallGraph(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		checkFile(pass, f, dirs, graph)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File, dirs []analysis.Directive, graph *astq.CallGraph) {
	fname := pass.Fset.Position(f.Pos()).Filename
	var audits []audit
	exempts := make(map[string]*analysis.Directive) // "Type.Field" -> directive
	for i := range dirs {
		d := &dirs[i]
		if pass.Fset.Position(d.Pos).Filename != fname {
			continue
		}
		switch d.Kind {
		case "key":
			if a, ok := resolveAudit(pass, f, d); ok {
				audits = append(audits, a)
			}
		case "keyexempt":
			exempts[d.Args[0]] = d
		}
	}
	if len(audits) == 0 {
		for _, d := range exempts {
			pass.Reportf(d.Pos, "mixplint:keyexempt without a mixplint:key audit in this file; nothing to exempt from")
		}
		return
	}

	// A field key ("Type.Field") is satisfied if any audit in the file
	// references it; exemption staleness is judged against the same set.
	needed := make(map[string]*types.Var)
	satisfied := make(map[string]bool)
	for _, a := range audits {
		referenced := referencedFields(pass, graph, a.writer)
		auditNeeded := make(map[string]*types.Var)
		for _, root := range a.roots {
			enumerateFields(pass, root, auditNeeded, make(map[*types.Named]bool))
		}
		for key, fv := range auditNeeded {
			needed[key] = fv
			if referenced[fv] {
				satisfied[key] = true
				continue
			}
			if _, exempted := exempts[key]; exempted {
				continue
			}
			pass.Reportf(a.decl.Name.Pos(),
				"field %s is not written by %s; fingerprinted structs must cover every field or carry a //mixplint:keyexempt",
				key, a.writer.Name())
		}
	}
	for key, d := range exempts {
		if _, exists := needed[key]; !exists {
			pass.Reportf(d.Pos, "mixplint:keyexempt names unknown field %s; the struct changed under the exemption", key)
			continue
		}
		if satisfied[key] {
			pass.Reportf(d.Pos, "mixplint:keyexempt %s is stale: the writer references the field (fingerprinted-but-dead exemption)", key)
		}
	}
}

// resolveAudit attaches a key directive to the function it documents and
// resolves its struct references. Unresolvable directives are reported
// and dropped.
func resolveAudit(pass *analysis.Pass, f *ast.File, d *analysis.Directive) (audit, bool) {
	decl := declFor(pass, f, d)
	if decl == nil {
		pass.Reportf(d.Pos, "mixplint:key directive is not attached to a function declaration")
		return audit{}, false
	}
	fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return audit{}, false
	}
	a := audit{writer: fn, decl: decl}
	for _, ref := range d.Args {
		root, err := resolveStruct(pass, ref)
		if err != nil {
			pass.Reportf(d.Pos, "mixplint:key: %v", err)
			continue
		}
		a.roots = append(a.roots, root)
	}
	return a, len(a.roots) > 0
}

// declFor finds the function declaration whose doc comment holds the
// directive (or that starts on the line right below it).
func declFor(pass *analysis.Pass, f *ast.File, d *analysis.Directive) *ast.FuncDecl {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Doc != nil && d.Pos >= fd.Doc.Pos() && d.Pos <= fd.Doc.End() {
			return fd
		}
		if pass.Fset.Position(fd.Pos()).Line == d.Line+1 {
			return fd
		}
	}
	return nil
}

// resolveStruct resolves "Type" (own package) or "import/path.Type" to
// a named struct type visible from the analyzed package.
func resolveStruct(pass *analysis.Pass, ref string) (*types.Named, error) {
	pkgPath, name := "", ref
	if i := strings.LastIndex(ref, "."); i >= 0 {
		pkgPath, name = ref[:i], ref[i+1:]
	}
	scope := pass.Pkg.Scope()
	if pkgPath != "" && pkgPath != pass.Pkg.Path() {
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, fmt.Errorf("package %q is not imported by this package", pkgPath)
		}
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, fmt.Errorf("unknown type %s", ref)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, fmt.Errorf("%s is not a named type", ref)
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, fmt.Errorf("%s is not a struct type", ref)
	}
	return named, nil
}

// enumerateFields records every field of the struct (keyed
// "Type.Field") and recurses into module-local struct-typed fields,
// through pointers, slices, arrays, and map values.
func enumerateFields(pass *analysis.Pass, named *types.Named, out map[string]*types.Var, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		out[named.Obj().Name()+"."+fv.Name()] = fv
		if nested, ok := structElem(fv.Type()); ok && inModule(pass, nested) {
			enumerateFields(pass, nested, out, seen)
		}
	}
}

// structElem unwraps pointers, slices, arrays, and map values down to a
// named struct type.
func structElem(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// inModule reports whether the named type belongs to this module (same
// first import-path segment as the analyzed package) — recursion stays
// inside the codebase the writer can actually cover.
func inModule(pass *analysis.Pass, named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	seg := func(path string) string {
		if i := strings.IndexByte(path, '/'); i >= 0 {
			return path[:i]
		}
		return path
	}
	return pkg == pass.Pkg || seg(pkg.Path()) == seg(pass.Pkg.Path())
}

// referencedFields collects every struct field referenced in the writer
// or any same-package function it reaches: selector field accesses and
// composite-literal keys both count.
func referencedFields(pass *analysis.Pass, graph *astq.CallGraph, writer *types.Func) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for fn := range graph.Reachable(writer) {
		decl := graph.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if fv, ok := sel.Obj().(*types.Var); ok {
						out[fv] = true
					}
				}
			case *ast.Ident:
				if fv, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && fv.IsField() {
					out[fv] = true
				}
			}
			return true
		})
	}
	return out
}
