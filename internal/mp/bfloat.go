package mp

import "math"

// bfloat16 support: the truncated-significand single-precision format of
// ML accelerators (1 sign, 8 exponent, 7 mantissa bits). Its exponent
// field matches binary32 exactly, so every bfloat16 value - normals,
// subnormals, infinities - is the float32 value whose low 16 mantissa
// bits are zero; the bit codecs below lean on that. Rounding must still
// happen directly from float64 (a float64 -> float32 -> bfloat16 trip
// would double-round), so roundToBfloat goes through the generic
// round-to-nearest-even machinery.

// bfloat16 limits.
const (
	// bfloatMaxFinite is the largest finite bfloat16 value, (2-2^-7)*2^127.
	bfloatMaxFinite = 3.3895313892515355e+38
	// bfloatMinNormal is the smallest normal bfloat16 value, 2^-126.
	bfloatMinNormal = 1.1754943508222875e-38
	// bfloatSubQuantum is the subnormal quantum, 2^-133.
	bfloatSubQuantum = 9.183549615799121e-41
)

// roundToBfloat rounds x to the nearest bfloat16 value
// (round-to-nearest-even), returning it as a float64.
func roundToBfloat(x float64) float64 {
	return roundBinary(x, 8, 7)
}

// bfloatBits encodes a bfloat16-rounded value as its bit pattern (used by
// the mixed-precision file IO). A rounded value is exactly representable
// in float32 with zero low mantissa bits, so the encoding is the top half
// of the float32 pattern.
func bfloatBits(x float64) uint16 {
	if x != x {
		return 0x7FC0 // canonical quiet NaN
	}
	return uint16(math.Float32bits(float32(x)) >> 16)
}

// bfloatFromBits decodes a bfloat16 bit pattern.
func bfloatFromBits(b uint16) float64 {
	return float64(math.Float32frombits(uint32(b) << 16))
}
