package store

import (
	"os"
	"path/filepath"
)

// Durability in this package follows the classic WAL discipline: a record
// is durable only after (a) its bytes are fsync'd in the segment file and
// (b) the segment's directory entry is fsync'd in the parent directory.
// Skipping (b) is the textbook crash bug - a file created moments before
// a power cut can vanish entirely even though its contents were synced -
// so every create, rename, and remove of a segment is followed by a
// SyncDir on the containing directory. The helpers are exported because
// the checkpoint journal in internal/harness follows the same rules.

// SyncDir fsyncs a directory so entries created, renamed, or removed in
// it survive a crash. Filesystems that do not support fsync on
// directories report EINVAL/ENOTSUP; those errors are swallowed, because
// on such systems the rename itself is the best available barrier.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if isSyncUnsupported(serr) {
			return cerr
		}
		return serr
	}
	return cerr
}

// SyncParentDir fsyncs the directory containing path.
func SyncParentDir(path string) error {
	return SyncDir(filepath.Dir(path))
}

// EnsureDir creates dir (and parents) and fsyncs its parent so the new
// directory entry itself is durable.
func EnsureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return SyncParentDir(dir)
}

// isSyncUnsupported reports whether err means "this filesystem cannot
// fsync a directory" rather than a real failure.
func isSyncUnsupported(err error) bool {
	pe, ok := err.(*os.PathError)
	if !ok {
		return false
	}
	return pe.Err == os.ErrInvalid || pe.Err.Error() == "invalid argument" ||
		pe.Err.Error() == "operation not supported"
}
