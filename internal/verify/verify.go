// Package verify is the HPC-MixPBench verification library. It quantifies
// the accuracy loss of an approximated execution by comparing its output to
// the output of the original double-precision run, using the error metrics
// the paper ships: Mean Absolute Error (MAE), Root Mean Square Error
// (RMSE), Mean Square Error (MSE), coefficient of determination (R2), and
// Misclassification Rate (MCR).
//
// Metric choice is per benchmark: continuous outputs use MAE (easy to
// interpret) or RMSE (penalises large errors), classification outputs such
// as K-means cluster assignments use MCR. The library is also the single
// point where a quality threshold is enforced, including the policy for
// non-finite output: a configuration whose output contains NaN or Inf where
// the reference does not has destroyed the result and always fails, which
// is how SRAD's full-single conversion is rejected no matter how loose the
// threshold is.
package verify

import (
	"fmt"
	"math"
)

// Metric identifies one of the library's error metrics.
type Metric uint8

const (
	// MAE is the mean absolute error, mean(|ref-got|).
	MAE Metric = iota
	// RMSE is the root mean square error, sqrt(mean((ref-got)^2)).
	RMSE
	// MSE is the mean square error, mean((ref-got)^2).
	MSE
	// R2 is 1 - coefficient of determination. The library reports it as a
	// loss (0 is perfect agreement) so every metric obeys "lower is
	// better" and a single threshold comparison works for all of them.
	R2
	// MCR is the misclassification rate: the fraction of positions whose
	// rounded integer label differs from the reference label.
	MCR
)

// metricNames indexes Metric values; ParseMetric accepts these names.
var metricNames = [...]string{"MAE", "RMSE", "MSE", "R2", "MCR"}

// String returns the paper's abbreviation for the metric (or the
// registered name of a custom metric).
func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	if r, ok := lookupCustom(m); ok {
		return r.name
	}
	return fmt.Sprintf("Metric(%d)", uint8(m))
}

// ParseMetric converts a metric abbreviation (as used in the harness YAML
// configuration files) to a Metric, consulting both the built-ins and the
// registered custom metrics.
func ParseMetric(s string) (Metric, error) {
	for i, n := range metricNames {
		if n == s {
			return Metric(i), nil
		}
	}
	if id, ok := lookupCustomName(s); ok {
		return id, nil
	}
	return 0, fmt.Errorf("verify: unknown metric %q", s)
}

// Compute evaluates metric m over the reference and approximated outputs.
// The slices must have equal non-zero length. A NaN result is a valid
// outcome (it reports that the approximation produced non-finite values)
// and is handled by Check.
func Compute(m Metric, ref, got []float64) (float64, error) {
	if len(ref) != len(got) {
		return 0, fmt.Errorf("verify: output length %d does not match reference length %d", len(got), len(ref))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("verify: empty outputs")
	}
	switch m {
	case MAE:
		return mae(ref, got), nil
	case RMSE:
		return math.Sqrt(mse(ref, got)), nil
	case MSE:
		return mse(ref, got), nil
	case R2:
		return r2Loss(ref, got), nil
	case MCR:
		return mcr(ref, got), nil
	default:
		if r, ok := lookupCustom(m); ok {
			return r.fn(ref, got), nil
		}
		return 0, fmt.Errorf("verify: unknown metric %v", m)
	}
}

func mae(ref, got []float64) float64 {
	sum := 0.0
	for i := range ref {
		sum += math.Abs(ref[i] - got[i])
	}
	return sum / float64(len(ref))
}

func mse(ref, got []float64) float64 {
	sum := 0.0
	for i := range ref {
		d := ref[i] - got[i]
		sum += d * d
	}
	return sum / float64(len(ref))
}

// r2Loss returns 1 - R^2 where R^2 = 1 - SS_res/SS_tot. A constant
// reference makes SS_tot zero; the loss is then 0 for exact agreement and
// +Inf otherwise.
func r2Loss(ref, got []float64) float64 {
	mean := 0.0
	for _, v := range ref {
		mean += v
	}
	mean /= float64(len(ref))
	ssRes, ssTot := 0.0, 0.0
	for i := range ref {
		d := ref[i] - got[i]
		ssRes += d * d
		t := ref[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return ssRes / ssTot
}

// mcr treats each value as a class label (rounded to nearest integer) and
// returns the fraction of mismatches. NaN labels always mismatch.
func mcr(ref, got []float64) float64 {
	wrong := 0
	for i := range ref {
		r, g := math.Round(ref[i]), math.Round(got[i])
		if r != g || math.IsNaN(r) != math.IsNaN(g) {
			wrong++
		}
	}
	return float64(wrong) / float64(len(ref))
}

// Verdict is the outcome of checking one configuration against a quality
// threshold.
type Verdict struct {
	// Error is the computed metric value. NaN records a run whose output
	// contains non-finite values the reference does not.
	Error float64
	// Passed reports whether the configuration satisfies the threshold.
	Passed bool
}

// Check computes metric m and compares it against threshold. A
// configuration passes when the error is finite and does not exceed the
// threshold. Outputs that are non-finite where the reference is finite fail
// unconditionally and report a NaN error, matching the paper's treatment of
// SRAD ("the output quality is completely destroyed ... NaN").
func Check(m Metric, ref, got []float64, threshold float64) (Verdict, error) {
	for i := range got {
		if i < len(ref) && !finite(ref[i]) {
			continue // reference itself is non-finite: nothing to preserve
		}
		if !finite(got[i]) {
			return Verdict{Error: math.NaN(), Passed: false}, nil
		}
	}
	e, err := Compute(m, ref, got)
	if err != nil {
		return Verdict{}, err
	}
	if math.IsNaN(e) {
		return Verdict{Error: e, Passed: false}, nil
	}
	return Verdict{Error: e, Passed: e <= threshold}, nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
