// Command mixpbench is the suite's harness entry point, the counterpart of
// the paper's Python harness: it reads a YAML configuration file
// describing benchmarks and the analyses to apply (Listing 4 of the
// paper), deploys each analysis on the worker pool, and prints one report
// per entry.
//
// Usage:
//
//	mixpbench -config path/to/config.yaml [-workers N] [-seed S]
//	mixpbench -list
//	mixpbench -tune bench -algorithm DD [-threshold 1e-8]
//
// Telemetry: -metrics PATH writes a Prometheus-style snapshot of the
// run's metrics on exit, and -events PATH streams structured JSONL events
// while it executes ("-" selects stdout for either). Snapshots are
// deterministic: the same seed produces byte-identical metrics for any
// -workers value.
//
// Tracing (with -config): -trace PATH exports the campaign's span tree
// as Chrome trace_event JSON (open it in Perfetto or chrome://tracing)
// and -profile PATH exports the per-phase / critical-path profile.
// Both run on the simulated analysis clock, so the files are
// byte-identical for any -workers value and with the run cache on or
// off. Parent directories are created as needed; the two flags must
// name distinct files. (The per-configuration evaluation log formerly
// printed by "-trace" with -tune is now -evallog.)
//
// Fault tolerance (with -config): -faults injects deterministic failures
// ("transient=0.2,crash=0.05,straggler=0.1,seed=7"), -retries caps the
// attempts per job, -checkpoint PATH journals each completed job, and
// -resume PATH restarts an interrupted campaign from such a journal,
// skipping completed jobs. A campaign whose jobs failed exits with code
// 3 after printing every report, so one bad entry cannot hide the rest.
//
// Durability (with -config): -store DIR persists every benchmark
// execution to an append-only, checksummed result store in DIR/results
// (the same layout mixpd -store uses, so the CLI and the service can
// share one directory). A later campaign - same process or not - serves
// matching executions from disk instead of re-running them, with
// byte-identical reports; -store-stats PATH writes the store's traffic
// counters and hit rate as JSON on exit ("-" = stdout). The store
// survives crashes: a torn final record is truncated away at the next
// open and corrupt segments are quarantined, never trusted.
//
// Deadlines: -timeout S bounds the whole run by S wall-clock seconds.
// On expiry in-flight analyses stop at their next evaluation boundary
// and report best-so-far, unstarted jobs are skipped, and the process
// exits with code 4 after printing every report - so a checkpoint
// journal written under -timeout resumes exactly like an interrupted
// campaign.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	mixpbench "repro"
	"repro/internal/interchange"
)

func main() {
	var (
		configPath  = flag.String("config", "", "YAML harness configuration file")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 0, "workload seed (0 = canonical study seed)")
		list        = flag.Bool("list", false, "list the suite's benchmarks and exit")
		tune        = flag.String("tune", "", "tune one benchmark by name (bypasses the config file)")
		algorithm   = flag.String("algorithm", "DD", "search algorithm for -tune (CB, CM, DD, HR, HC, GA, GP)")
		threshold   = flag.Float64("threshold", 0, "quality threshold for -tune (0 = 1e-8)")
		exportSpace = flag.String("export-space", "", "write a benchmark's search space as interchange JSON and exit")
		jsonOut     = flag.Bool("json", false, "emit harness reports as interchange JSON instead of text")
		evallog     = flag.Bool("evallog", false, "with -tune: print the per-configuration evaluation log")
		traceOut    = flag.String("trace", "", "with -config: write the campaign's Chrome trace_event JSON to this file")
		profileOut  = flag.String("profile", "", "with -config: write the campaign's per-phase profile JSON to this file")
		metricsOut  = flag.String("metrics", "", `write a Prometheus-style metrics snapshot on exit ("-" = stdout)`)
		eventsOut   = flag.String("events", "", `stream telemetry events as JSONL ("-" = stdout)`)
		faultSpec   = flag.String("faults", "", `with -config: inject deterministic faults, e.g. "transient=0.2,crash=0.05,seed=7"`)
		retries     = flag.Int("retries", 0, "with -config: max attempts per job on transient faults (0 = default 3)")
		checkpoint  = flag.String("checkpoint", "", "with -config: journal completed jobs to this file")
		resume      = flag.String("resume", "", "with -config: resume from a checkpoint journal, skipping completed jobs")
		storeDir    = flag.String("store", "", "with -config: durable result store directory; executions persist in DIR/results and later campaigns reuse them")
		storeStats  = flag.String("store-stats", "", `with -config and -store: write the store's stats as JSON on exit ("-" = stdout)`)
		timeout     = flag.Float64("timeout", 0, "wall-clock deadline in seconds for -config or -tune (0 = none); expiry exits with code 4")
		compiled    = flag.Bool("compiled", true, "evaluate configurations through precision-specialized compiled kernels (-compiled=false interprets; results are identical)")
		precisions  = flag.String("precisions", "", `precision ladder to search, e.g. "f64,f32,bf16" (default: the two-level double/single study)`)
		objective   = flag.String("objective", "", `analysis objective: "threshold" (default) or "pareto" (records the time/energy/error Pareto front)`)
	)
	flag.Parse()

	cf := campaignFlags{
		workers:     *workers,
		seed:        *seed,
		interpreted: !*compiled,
		precisions:  *precisions,
		objective:   *objective,
		timeout:     *timeout,
		jsonOut:     *jsonOut,
		faultSpec:   *faultSpec,
		retries:     *retries,
		checkpoint:  *checkpoint,
		resume:      *resume,
		storeDir:    *storeDir,
		storeStats:  *storeStats,
		tracePath:   *traceOut,
		profilePath: *profileOut,
		// Validation must see the flags the user actually set: an
		// explicit -trace "" is an error, not an absent flag.
		outputs: visitedOutputs(),
	}
	if err := validateFlags(*configPath, *threshold, *tune, *algorithm, cf); err != nil {
		fatal(err)
	}
	ctx, cancel := deadlineContext(*timeout)
	defer cancel()

	switch {
	case *list:
		listBenchmarks(os.Stdout)
	case *exportSpace != "":
		if err := exportSpaceJSON(os.Stdout, *exportSpace); err != nil {
			fatal(err)
		}
	case *tune != "":
		tel, closeTel, err := openTelemetry(*metricsOut, *eventsOut)
		if err != nil {
			fatal(err)
		}
		canceled, err := tuneOne(ctx, os.Stdout, *tune, *algorithm, *threshold, *seed, *evallog, !*compiled, *precisions, *objective, tel)
		if err != nil {
			fatal(err)
		}
		if err := closeTel(); err != nil {
			fatal(err)
		}
		if canceled {
			fmt.Fprintf(os.Stderr, "mixpbench: deadline of %gs expired\n", *timeout)
			os.Exit(exitTimeout)
		}
	case *configPath != "":
		tel, closeTel, err := openTelemetry(*metricsOut, *eventsOut)
		if err != nil {
			fatal(err)
		}
		failed, err := runConfig(ctx, os.Stdout, *configPath, cf, tel)
		if err != nil {
			fatal(err)
		}
		if err := closeTel(); err != nil {
			fatal(err)
		}
		if ctx.Err() != nil {
			// The deadline outranks per-entry failures: canceled and
			// skipped entries land in failed too, and exiting 3 for them
			// would misreport an expiry as bad configuration entries.
			fmt.Fprintf(os.Stderr, "mixpbench: deadline of %gs expired with %d entries unfinished\n",
				*timeout, len(failed))
			os.Exit(exitTimeout)
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "mixpbench: %d entries failed: %s\n",
				len(failed), strings.Join(failed, ", "))
			os.Exit(exitJobErrors)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// exitJobErrors is the exit code for a campaign that completed but had
// failing jobs - distinct from 1 (the campaign itself could not run) so
// scripts can tell "some entries failed" from "nothing ran".
const exitJobErrors = 3

// exitTimeout is the exit code for a run cut short by -timeout: the
// reports printed are genuine but incomplete (best-so-far analyses,
// skipped entries), which is a different condition from exitJobErrors.
const exitTimeout = 4

// deadlineContext builds the run's context from -timeout (0 = no
// deadline).
func deadlineContext(seconds float64) (context.Context, context.CancelFunc) {
	if seconds <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(seconds*float64(time.Second)))
}

// campaignFlags bundles the -config mode's flags.
type campaignFlags struct {
	workers     int
	seed        int64
	interpreted bool
	precisions  string
	objective   string
	timeout     float64
	jsonOut     bool
	faultSpec   string
	retries     int
	checkpoint  string
	resume      string
	storeDir    string
	storeStats  string
	tracePath   string
	profilePath string
	// outputs holds the export flags the user explicitly set (flag name
	// with its dash → path), so validation can reject an explicit empty
	// or duplicate path that the plain string fields cannot distinguish
	// from an absent flag.
	outputs map[string]string
}

// visitedOutputs collects the explicitly-set output path flags: every
// flag naming a destination the run writes goes through the shared
// output-path validation (non-empty, pairwise distinct), so -store
// can never silently clobber a -checkpoint journal or vice versa.
// -resume stays out: it is an input, and the resume idiom points it
// at the same file as -checkpoint.
func visitedOutputs() map[string]string {
	out := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "trace", "profile", "checkpoint", "store", "store-stats":
			out["-"+f.Name] = f.Value.String()
		}
	})
	return out
}

// validateFlags rejects nonsense flag values with a clear error before
// any work starts.
func validateFlags(configPath string, threshold float64, tune, algorithm string, cf campaignFlags) error {
	if cf.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", cf.workers)
	}
	if threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0, got %g", threshold)
	}
	if cf.retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", cf.retries)
	}
	if cf.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 seconds, got %g", cf.timeout)
	}
	if tune != "" {
		if _, err := mixpbench.CanonicalAlgorithm(algorithm); err != nil {
			return fmt.Errorf("-algorithm: %w", err)
		}
	}
	if cf.storeStats != "" && cf.storeDir == "" {
		return fmt.Errorf("-store-stats requires -store")
	}
	if configPath == "" {
		for flagName, set := range map[string]bool{
			"-faults":      cf.faultSpec != "",
			"-retries":     cf.retries != 0,
			"-checkpoint":  cf.checkpoint != "",
			"-resume":      cf.resume != "",
			"-store":       cf.storeDir != "",
			"-store-stats": cf.storeStats != "",
		} {
			if set {
				return fmt.Errorf("%s requires -config", flagName)
			}
		}
		if len(cf.outputs) > 0 {
			names := make([]string, 0, len(cf.outputs))
			for name := range cf.outputs {
				names = append(names, name)
			}
			sort.Strings(names)
			return fmt.Errorf("%s requires -config", names[0])
		}
	}
	if err := mixpbench.ValidateTraceOutputs(cf.outputs); err != nil {
		return err
	}
	if cf.faultSpec != "" {
		if _, err := mixpbench.ParseFaultSpec(cf.faultSpec); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	if cf.precisions != "" {
		if _, err := mixpbench.ParsePrecisions(cf.precisions); err != nil {
			return fmt.Errorf("-precisions: %w", err)
		}
	}
	if cf.objective != "" {
		if _, err := mixpbench.ParseObjective(cf.objective); err != nil {
			return fmt.Errorf("-objective: %w", err)
		}
	}
	return nil
}

// openTelemetry builds the recorder behind -metrics/-events. The returned
// close function writes the metrics snapshot and reports any event-stream
// write error; it must run after the instrumented work completes. Both
// paths accept "-" for stdout; empty flags yield a nil recorder.
func openTelemetry(metricsPath, eventsPath string) (*mixpbench.Telemetry, func() error, error) {
	if metricsPath == "" && eventsPath == "" {
		return nil, func() error { return nil }, nil
	}
	var sink *mixpbench.JSONLEventSink
	var eventsFile *os.File
	if eventsPath != "" {
		w := io.Writer(os.Stdout)
		if eventsPath != "-" {
			f, err := os.Create(eventsPath)
			if err != nil {
				return nil, nil, err
			}
			eventsFile = f
			w = f
		}
		sink = mixpbench.NewJSONLSink(w)
	}
	var tel *mixpbench.Telemetry
	if sink != nil {
		tel = mixpbench.NewTelemetry(sink)
	} else {
		tel = mixpbench.NewTelemetry(nil)
	}
	closeFn := func() error {
		var firstErr error
		// Surface event-stream write failures in the metrics snapshot:
		// the instrumented work is done by now, so the count is final.
		if sink != nil {
			if n := sink.WriteErrors(); n > 0 {
				tel.Counter("mixpbench_telemetry_write_errors_total").Add(float64(n))
			}
		}
		if metricsPath != "" {
			w := io.Writer(os.Stdout)
			var f *os.File
			if metricsPath != "-" {
				var err error
				if f, err = os.Create(metricsPath); err != nil {
					return err
				}
				w = f
			}
			firstErr = tel.WriteMetrics(w)
			if f != nil {
				if err := f.Close(); firstErr == nil {
					firstErr = err
				}
			}
		}
		if sink != nil {
			if err := sink.Close(); firstErr == nil {
				firstErr = err
			}
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return tel, closeFn, nil
}

// exportSpaceJSON writes the named benchmark's variable inventory and
// type-change sets in the FloatSmith interchange format.
func exportSpaceJSON(w io.Writer, name string) error {
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		return err
	}
	return interchange.WriteSpace(w, b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixpbench:", err)
	os.Exit(1)
}

// profileTopJobs caps the critical-path job table in -profile exports.
const profileTopJobs = 10

// exportTrace writes the -trace and -profile artifacts of a finished
// campaign. The campaign name in the exports is the configuration
// file's base name (without extension), so the bytes depend only on the
// configuration and seed, never on where the file happens to live.
func exportTrace(configPath string, cf campaignFlags, specs []mixpbench.HarnessSpec, results []mixpbench.HarnessJobResult) error {
	if cf.tracePath == "" && cf.profilePath == "" {
		return nil
	}
	base := filepath.Base(configPath)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	tr := mixpbench.BuildCampaignTrace(name, specs, results)
	if cf.tracePath != "" {
		err := writeExport(cf.tracePath, func(w io.Writer) error {
			return mixpbench.WriteChromeTrace(w, tr)
		})
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if cf.profilePath != "" {
		p := mixpbench.BuildTraceProfile(tr, profileTopJobs)
		err := writeExport(cf.profilePath, func(w io.Writer) error {
			return mixpbench.WriteTraceProfile(w, p)
		})
		if err != nil {
			return fmt.Errorf("-profile: %w", err)
		}
	}
	return nil
}

// writeStoreStats renders the store's counters as indented JSON with a
// derived store_hit_rate (hits over lookups; 1.0 means the campaign
// ran entirely from disk), the number the store-smoke gate asserts on.
func writeStoreStats(path string, s mixpbench.ResultStoreStats) error {
	rate := 0.0
	if s.Gets > 0 {
		rate = float64(s.GetHits) / float64(s.Gets)
	}
	body := struct {
		mixpbench.ResultStoreStats
		HitRate float64 `json:"store_hit_rate"`
	}{s, rate}
	b, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	f, err := mixpbench.CreateTraceOutput(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExport creates path (making parent directories) and fills it
// with one export.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := mixpbench.CreateTraceOutput(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func listBenchmarks(w io.Writer) {
	fmt.Fprintln(w, "Kernels:")
	for _, b := range mixpbench.Kernels() {
		g := b.Graph()
		fmt.Fprintf(w, "  %-16s TV=%-3d TC=%-3d %s\n", b.Name(), g.NumVars(), g.NumClusters(), b.Description())
	}
	fmt.Fprintln(w, "Applications:")
	for _, b := range mixpbench.Apps() {
		g := b.Graph()
		fmt.Fprintf(w, "  %-16s TV=%-3d TC=%-3d %s\n", b.Name(), g.NumVars(), g.NumClusters(), b.Description())
	}
}

func tuneOne(ctx context.Context, w io.Writer, name, algorithm string, threshold float64, seed int64, evallog, interpreted bool, precisions, objective string, tel *mixpbench.Telemetry) (canceled bool, err error) {
	b, err := mixpbench.Benchmark(name)
	if err != nil {
		return false, err
	}
	res, err := mixpbench.TuneContext(ctx, b, mixpbench.TuneOptions{
		Algorithm:   algorithm,
		Threshold:   threshold,
		Seed:        seed,
		Trace:       evallog,
		Telemetry:   tel,
		Interpreted: interpreted,
		Precisions:  precisions,
		Objective:   objective,
	})
	if err != nil {
		return false, err
	}
	if evallog {
		fmt.Fprintln(w, "evaluation log:")
		for _, e := range res.Trace {
			status := "fail"
			switch {
			case !e.Result.Valid:
				status = "no-compile"
			case e.Result.Passed:
				status = "pass"
			}
			fmt.Fprintf(w, "  #%-4d singles=%-4d %-10s speedup=%.3f err=%.3g spent=%.0fs\n",
				e.Seq, e.Singles, status, e.Result.Speedup, e.Result.Verdict.Error, e.SpentSeconds)
		}
	}
	fmt.Fprintf(w, "benchmark : %s\n", b.Name())
	fmt.Fprintf(w, "algorithm : %s\n", algorithm)
	fmt.Fprintf(w, "evaluated : %d configurations\n", res.Evaluated)
	if res.TimedOut {
		fmt.Fprintln(w, "status    : analysis budget exhausted")
	}
	if res.Canceled {
		fmt.Fprintln(w, "status    : deadline expired, best-so-far result")
	}
	if !res.Found {
		fmt.Fprintln(w, "result    : no passing configuration found")
		return res.Canceled, nil
	}
	fmt.Fprintf(w, "speedup   : %.3fx\n", res.Speedup)
	fmt.Fprintf(w, "error     : %.3g (%s)\n", res.Error, b.Metric())
	if precisions == "" {
		fmt.Fprintf(w, "demoted   : %d of %d variables to single precision\n",
			res.Config.Singles(), b.Graph().NumVars())
	} else {
		fmt.Fprintf(w, "demoted   : %d of %d variables below working precision (ladder %s)\n",
			res.Config.Demoted(), b.Graph().NumVars(), precisions)
	}
	if res.Energy > 0 && objective != "" {
		fmt.Fprintf(w, "energy    : %.4g J per run\n", res.Energy)
	}
	if len(res.Front) > 0 {
		fmt.Fprintf(w, "pareto    : %d non-dominated points (time, energy, error)\n", len(res.Front))
		for _, p := range res.Front {
			fmt.Fprintf(w, "  %-24s time=%.4gs energy=%.4gJ err=%.3g speedup=%.3fx\n",
				p.Config, p.Time, p.Energy, p.Error, p.Speedup)
		}
	}
	return res.Canceled, nil
}

// runConfig executes a campaign from a configuration file and prints one
// line per entry. It returns the names of entries whose jobs failed
// (degraded, errored, canceled, or skipped when ctx died); campaign-level
// problems come back as err.
func runConfig(ctx context.Context, w io.Writer, path string, cf campaignFlags, tel *mixpbench.Telemetry) (failed []string, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	camp, err := mixpbench.ParseHarnessCampaign(string(raw))
	if err != nil {
		return nil, err
	}
	plan := camp.Faults
	if cf.faultSpec != "" {
		// The CLI spec replaces the config file's clause wholesale; mixing
		// the two would make the effective plan hard to reason about.
		if plan, err = mixpbench.ParseFaultSpec(cf.faultSpec); err != nil {
			return nil, err
		}
	}
	retry := camp.Retry
	if cf.retries > 0 {
		retry.MaxAttempts = cf.retries
	}
	opts := mixpbench.CampaignOptions{
		Workers:        cf.workers,
		Seed:           cf.seed,
		Telemetry:      tel,
		Faults:         plan,
		Retry:          retry,
		CheckpointPath: cf.checkpoint,
		ResumePath:     cf.resume,
		Interpreted:    cf.interpreted,
		Precisions:     cf.precisions,
		Objective:      cf.objective,
	}
	var st *mixpbench.ResultStore
	if cf.storeDir != "" {
		// Mirror mixpd's layout (results under DIR/results) so the CLI
		// and the service can share one durable directory.
		st, err = mixpbench.OpenResultStore(filepath.Join(cf.storeDir, "results"))
		if err != nil {
			return nil, fmt.Errorf("-store: %w", err)
		}
		defer st.Close()
		opts.Cache = mixpbench.NewStoredRunCache(nil, st)
	}
	results, err := mixpbench.RunCampaignContext(ctx, camp.Specs, opts)
	if err != nil {
		return nil, err
	}
	if st != nil {
		// Flush write-behind puts before reporting: once the process
		// prints its reports the store must already hold them.
		if err := st.Sync(); err != nil {
			return nil, fmt.Errorf("-store: %w", err)
		}
		if cf.storeStats != "" {
			if err := writeStoreStats(cf.storeStats, st.Stats()); err != nil {
				return nil, fmt.Errorf("-store-stats: %w", err)
			}
		}
	}
	for i, res := range results {
		if res.Err != nil {
			failed = append(failed, camp.Specs[i].Name)
		}
	}
	if err := exportTrace(path, cf, camp.Specs, results); err != nil {
		return nil, err
	}
	if cf.jsonOut {
		reports := make([]mixpbench.HarnessReport, len(results))
		for i, res := range results {
			reports[i] = res.Report
		}
		return failed, interchange.WriteReports(w, reports)
	}
	for i, res := range results {
		r := res.Report
		spec := camp.Specs[i]
		fmt.Fprintf(w, "%s [%s @ %.0e]: ", spec.Name, spec.Analysis.Algorithm, spec.Analysis.Threshold)
		switch {
		case res.Skipped:
			fmt.Fprintln(w, "SKIPPED: deadline expired before the job started")
		case r.Canceled:
			fmt.Fprintf(w, "CANCELED after %d configs evaluated (deadline expired)\n", r.Evaluated)
		case res.Degraded:
			fmt.Fprintf(w, "DEGRADED after %d attempts: %v\n", len(res.Attempts), res.Err)
		case res.Err != nil:
			fmt.Fprintf(w, "FAILED: %v\n", res.Err)
		case r.TimedOut && !r.Found:
			fmt.Fprintln(w, "no result within the analysis budget")
		case !r.Found:
			fmt.Fprintln(w, "no passing configuration")
		default:
			quality := fmt.Sprintf("%.3g", r.Quality)
			if math.IsNaN(r.Quality) {
				quality = "NaN"
			}
			demoted := "single"
			if r.Precisions != "" {
				demoted = "demoted [" + r.Precisions + "]"
			}
			fmt.Fprintf(w, "speedup %.3fx, quality %s, %d/%d vars %s, %d configs evaluated",
				r.Speedup, quality, r.Demoted, r.Variables, demoted, r.Evaluated)
			if n := len(res.Attempts); n > 1 {
				fmt.Fprintf(w, " (%d attempts)", n)
			}
			if len(r.Front) > 0 {
				fmt.Fprintf(w, ", pareto front %d points", len(r.Front))
			}
			fmt.Fprintln(w)
		}
	}
	return failed, nil
}
