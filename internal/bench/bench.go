// Package bench defines the benchmark contract of HPC-MixPBench and the
// runner that executes one precision configuration of one benchmark.
//
// A benchmark is a program ported into the suite: it declares its tunable
// floating-point variables (with the type-dependence edges Typeforge would
// extract from the original source), names the quality metric its output is
// verified with, and runs its computation against an mp.Tape that carries
// the active precision configuration. Everything a search algorithm learns
// about a configuration - output values, numeric error, modelled execution
// time - flows through this package.
package bench

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/mp"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// Kind separates the two benchmark classes of the suite.
type Kind uint8

const (
	// Kernel marks the small Livermore-style loop kernels (Table I): no
	// IO, randomly initialised inputs, few variables.
	Kernel Kind = iota
	// App marks the proxy/mini applications drawn from PARSEC, Rodinia,
	// and Mantevo.
	App
)

// String returns the class name.
func (k Kind) String() string {
	if k == Kernel {
		return "kernel"
	}
	return "application"
}

// Output is the verification payload of one run: the values the original
// program would write to its output file (or, for K-means, the cluster
// assignment labels scored with MCR).
type Output struct {
	Values []float64
}

// Benchmark is one program of the suite. Implementations must be stateless
// with respect to Run: all run state lives on the Tape and in locals, so a
// single Benchmark value can be evaluated concurrently.
type Benchmark interface {
	// Name is the suite-wide identifier (matches the paper's tables).
	Name() string
	// Kind reports whether this is a kernel or an application.
	Kind() Kind
	// Description is the one-line description from Table I / Section III-B.
	Description() string
	// Metric is the quality metric the paper verifies this benchmark with.
	Metric() verify.Metric
	// Graph is the variable inventory with type-dependence edges. The
	// returned graph is shared and must not be mutated.
	Graph() *typedep.Graph
	// Run executes the benchmark against the precision configuration
	// carried by the tape, with inputs generated deterministically from
	// seed, and returns the verification output.
	Run(t *mp.Tape, seed int64) Output
}

// HiddenVarser is implemented by benchmarks with precision sites that a
// source-level tool cannot retype - floating-point literals and library
// temporaries. The paper observes (Hotspot, Section IV-B) that Typeforge
// does not handle literals, so searched configurations execute extra
// typecasts that a manual whole-program conversion avoids. Hidden variables
// occupy tape slots beyond the dependence graph: the search never assigns
// them, but RunManualSingle demotes them along with everything else.
type HiddenVarser interface {
	// HiddenVars returns the number of non-searchable precision sites.
	HiddenVars() int
}

// hiddenVars returns b's hidden site count (zero for most benchmarks).
func hiddenVars(b Benchmark) int {
	if h, ok := b.(HiddenVarser); ok {
		return h.HiddenVars()
	}
	return 0
}

// Config is one precision assignment: element i is the precision of
// variable i. A nil Config means the original all-double program.
type Config []mp.Prec

// NewConfig returns an all-double configuration for n variables.
func NewConfig(n int) Config { return make(Config, n) }

// Clone returns an independent copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Singles returns the number of variables demoted to single precision.
func (c Config) Singles() int {
	n := 0
	for _, p := range c {
		if p == mp.F32 {
			n++
		}
	}
	return n
}

// Key returns a compact string identity usable as a cache key.
func (c Config) Key() string {
	b := make([]byte, len(c))
	for i, p := range c {
		b[i] = '0' + byte(p)
	}
	return string(b)
}

// AllSingle returns a configuration demoting every variable.
func AllSingle(n int) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = mp.F32
	}
	return c
}

// Result is everything one evaluation of one configuration yields.
type Result struct {
	// Output is the verification payload.
	Output Output
	// Cost is the metered machine work.
	Cost mp.Cost
	// Profile attributes the cost to the tunable variables (the
	// instrumentation half of the runtime library); profile-guided
	// strategies rank demotion candidates with it.
	Profile []mp.VarProfile
	// ModelTime is the noiseless modelled execution time in seconds.
	ModelTime float64
	// Measured is the paper-protocol timing (trimmed mean of repeated
	// jittered runs).
	Measured perfmodel.Measurement
}

// Runner executes benchmark configurations under one machine model and
// measurement protocol.
type Runner struct {
	// Machine is the analytic execution-time model.
	Machine perfmodel.Machine
	// Runs is the repetition count of the measurement protocol.
	Runs int
	// Seed generates benchmark workloads; a fixed Seed makes every
	// configuration of a benchmark see identical inputs, which the
	// verification comparison requires.
	Seed int64
	// Telemetry, when non-nil, records per-run timings and the perfmodel
	// cost breakdown (flops, casts, traffic) of every execution.
	Telemetry *telemetry.Recorder
}

// NewRunner returns a Runner with the default machine, the paper's
// ten-repetition protocol, and the given workload seed.
func NewRunner(seed int64) *Runner {
	return &Runner{Machine: perfmodel.Default(), Runs: perfmodel.DefaultRuns, Seed: seed}
}

// Run evaluates one configuration. A nil cfg runs the original program. The
// measurement jitter stream is derived from the workload seed and the
// configuration identity, so results are deterministic yet distinct per
// configuration.
func (r *Runner) Run(b Benchmark, cfg Config) Result {
	n := b.Graph().NumVars()
	if cfg != nil && len(cfg) != n {
		panic(fmt.Sprintf("bench: config for %s has %d entries, want %d", b.Name(), len(cfg), n))
	}
	tape := mp.NewTape(n + hiddenVars(b))
	for i, p := range cfg {
		tape.SetPrec(mp.VarID(i), p)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name(), cfg)))
	res := Result{
		Output:    out,
		Cost:      cost,
		Profile:   tape.Profile(),
		ModelTime: modelTime,
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
	kind := "candidate"
	if cfg == nil {
		kind = "reference"
	}
	r.observe(b, kind, res)
	return res
}

// observe records one execution's timing and cost breakdown.
func (r *Runner) observe(b Benchmark, kind string, res Result) {
	if r.Telemetry == nil {
		return
	}
	name := b.Name()
	r.Telemetry.Counter("mixpbench_bench_runs_total", "bench", name, "kind", kind).Inc()
	r.Telemetry.Histogram("mixpbench_bench_model_seconds", telemetry.SecondsBuckets, "bench", name).Observe(res.ModelTime)
	c := res.Cost
	r.Telemetry.Counter("mixpbench_bench_flops64_total", "bench", name).Add(float64(c.Flops64))
	r.Telemetry.Counter("mixpbench_bench_flops32_total", "bench", name).Add(float64(c.Flops32))
	if c.Flops16 > 0 {
		r.Telemetry.Counter("mixpbench_bench_flops16_total", "bench", name).Add(float64(c.Flops16))
	}
	r.Telemetry.Counter("mixpbench_bench_casts_total", "bench", name).Add(float64(c.Casts))
	r.Telemetry.Counter("mixpbench_bench_traffic_bytes_total", "bench", name).Add(float64(c.Bytes()))
}

// Reference evaluates the original double-precision program.
func (r *Runner) Reference(b Benchmark) Result {
	return r.Run(b, nil)
}

// RunIR evaluates a configuration under IR-level demotion semantics (the
// paper's lower-level analysis tier): demoted variables compute narrow but
// their storage stays at the declared double width, as an
// instruction-rewriting tool would leave it. Accuracy changes like the
// source-level run; traffic and footprint do not.
func (r *Runner) RunIR(b Benchmark, cfg Config) Result {
	n := b.Graph().NumVars()
	if cfg != nil && len(cfg) != n {
		panic(fmt.Sprintf("bench: IR config for %s has %d entries, want %d", b.Name(), len(cfg), n))
	}
	tape := mp.NewTape(n + hiddenVars(b))
	tape.SetComputeOnly(true)
	for i, p := range cfg {
		tape.SetPrec(mp.VarID(i), p)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name()+"/ir", cfg)))
	res := Result{
		Output:    out,
		Cost:      cost,
		Profile:   tape.Profile(),
		ModelTime: modelTime,
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
	r.observe(b, "ir", res)
	return res
}

// RunManualSingle evaluates the whole-program single-precision conversion
// of the paper's Table IV: every searchable variable and every hidden site
// (literals included) is demoted, as a programmer editing the source would
// do. This is the ceiling a search-based tool cannot quite reach when the
// program has literal-typed expressions.
func (r *Runner) RunManualSingle(b Benchmark) Result {
	n := b.Graph().NumVars()
	h := hiddenVars(b)
	tape := mp.NewTape(n + h)
	for i := 0; i < n+h; i++ {
		tape.SetPrec(mp.VarID(i), mp.F32)
	}
	out := b.Run(tape, r.Seed)
	cost := tape.Cost()
	modelTime := r.Machine.Time(cost)
	rng := rand.New(rand.NewSource(r.jitterSeed(b.Name(), AllSingle(n+h))))
	res := Result{
		Output:    out,
		Cost:      cost,
		ModelTime: modelTime,
		Measured:  perfmodel.Measure(modelTime, r.Runs, rng),
	}
	r.observe(b, "manual-single", res)
	return res
}

// jitterSeed mixes the workload seed, benchmark name, and configuration
// into one deterministic RNG seed.
func (r *Runner) jitterSeed(name string, cfg Config) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s", r.Seed, name, cfg.Key())
	return int64(h.Sum64())
}
