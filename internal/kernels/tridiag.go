package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// tridiag is the tri-diagonal linear systems solution kernel (Livermore
// loop 5 lineage), a first-order recurrence:
//
//	x[i] = z[i] * (y[i] - x[i-1])
//
// Inventory (Table II: TV=3, TC=1): x, y, z are threaded by pointer through
// the forward-elimination routine and form a single cluster, so the only
// non-trivial configuration demotes the whole recurrence.
//
// Rounding error compounds along the recurrence chain, so the demoted
// version fails the kernel quality threshold and the search keeps the
// original program: the paper's ~1.0 speedup, zero error row.
type tridiag struct {
	kernel
	vX, vY, vZ mp.VarID
}

const (
	tridiagN     = 8192
	tridiagReps  = 8
	tridiagScale = 4
)

// NewTridiag constructs the kernel.
func NewTridiag() bench.Benchmark {
	g := typedep.NewGraph()
	k := &tridiag{kernel: kernel{
		name:  "tridiag",
		desc:  "Tridiagonal linear systems solution",
		graph: g,
	}}
	k.vX = g.Add("x", "forward_elim", typedep.ArrayVar)
	k.vY = g.Add("y", "forward_elim", typedep.ArrayVar)
	k.vZ = g.Add("z", "forward_elim", typedep.ArrayVar)
	g.ConnectAll(k.vX, k.vY, k.vZ)
	return k
}

func (k *tridiag) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(tridiagScale)
	rng := t.Rand(seed)
	x := t.NewArray(k.vX, tridiagN)
	y := t.NewArray(k.vY, tridiagN)
	z := t.NewArray(k.vZ, tridiagN)
	fillRand(y, rng, 0.4, 1.2)
	fillRand(z, rng, 0.3, 0.9)
	x.Set(0, 0.5)

	for rep := 0; rep < tridiagReps; rep++ {
		for i := 1; i < tridiagN; i++ {
			x.Set(i, z.Get(i)*(y.Get(i)-x.Get(i-1)))
		}
	}
	t.AddFlops(t.Prec(k.vX), 2*(tridiagN-1)*tridiagReps)
	return bench.Output{Values: x.Snapshot()}
}
