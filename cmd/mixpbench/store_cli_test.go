package main

import (
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIStoreWarmRun re-execs the binary twice against one -store
// directory: the cold run fills the store, the warm run replays the
// campaign from it - byte-identical stdout, near-100% hit rate in the
// -store-stats artifact, and zero fresh writes. This is the CLI half
// of the tentpole's store-on/off/warm invariance guarantee.
func TestCLIStoreWarmRun(t *testing.T) {
	if os.Getenv("MIXPBENCH_RUN_MAIN") == "1" {
		flag.CommandLine = flag.NewFlagSet("mixpbench", flag.ExitOnError)
		os.Args = append([]string{"mixpbench"},
			strings.Split(os.Getenv("MIXPBENCH_ARGS"), "\x1f")...)
		main()
		os.Exit(0)
	}
	dir := t.TempDir()
	cfg := filepath.Join(dir, "cfg.yaml")
	if err := os.WriteFile(cfg, []byte(multiEntryYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	runMain := func(args ...string) (int, string) {
		cmd := exec.Command(os.Args[0], "-test.run", "TestCLIStoreWarmRun")
		cmd.Env = append(os.Environ(),
			"MIXPBENCH_RUN_MAIN=1",
			"MIXPBENCH_ARGS="+strings.Join(args, "\x1f"))
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		return ee.ExitCode(), string(out)
	}
	readStats := func(path string) (stats struct {
		Puts    uint64  `json:"puts"`
		Records uint64  `json:"records"`
		Healthy bool    `json:"healthy"`
		HitRate float64 `json:"store_hit_rate"`
	}) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &stats); err != nil {
			t.Fatalf("unparseable store stats %s: %v", b, err)
		}
		return stats
	}

	// Flag misuse is refused before any work.
	if code, out := runMain("-config", cfg, "-store-stats", filepath.Join(dir, "s.json")); code != 1 || !strings.Contains(out, "requires -store") {
		t.Errorf("-store-stats without -store: code %d, output:\n%s", code, out)
	}
	if code, out := runMain("-store", dir); code != 1 || !strings.Contains(out, "requires -config") {
		t.Errorf("-store without -config: code %d, output:\n%s", code, out)
	}
	ckpt := filepath.Join(dir, "shared")
	if code, out := runMain("-config", cfg, "-store", ckpt, "-checkpoint", ckpt); code != 1 || !strings.Contains(out, "duplicate output path") {
		t.Errorf("-store colliding with -checkpoint: code %d, output:\n%s", code, out)
	}

	storeDir := filepath.Join(dir, "durable")
	coldStats := filepath.Join(dir, "cold.json")
	warmStats := filepath.Join(dir, "warm.json")

	code, coldOut := runMain("-config", cfg, "-seed", "42", "-store", storeDir, "-store-stats", coldStats)
	if code != 0 {
		t.Fatalf("cold run: code %d, output:\n%s", code, coldOut)
	}
	cold := readStats(coldStats)
	if !cold.Healthy || cold.Puts == 0 || cold.Records == 0 {
		t.Fatalf("cold run store stats: %+v", cold)
	}

	code, warmOut := runMain("-config", cfg, "-seed", "42", "-store", storeDir, "-store-stats", warmStats)
	if code != 0 {
		t.Fatalf("warm run: code %d, output:\n%s", code, warmOut)
	}
	if warmOut != coldOut {
		t.Errorf("warm run stdout diverges from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
	warm := readStats(warmStats)
	if warm.HitRate < 0.99 {
		t.Errorf("warm run hit rate %.3f, want >= 0.99 (%+v)", warm.HitRate, warm)
	}
	if warm.Puts != 0 {
		t.Errorf("warm run wrote %d fresh records to the store", warm.Puts)
	}
}
