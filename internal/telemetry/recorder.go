package telemetry

import "io"

// Recorder bundles a metrics registry with an event stream: the single
// handle instrumented code (evaluator, runner, scheduler) and downstream
// users hold. A nil *Recorder is valid and drops everything, so telemetry
// can be threaded unconditionally through hot paths.
type Recorder struct {
	registry *Registry
	stream   *Stream
}

// New returns a recorder with a fresh registry whose events go to sink.
// A nil sink keeps metrics but drops events.
func New(sink Sink) *Recorder {
	return &Recorder{registry: NewRegistry(), stream: NewStream(sink)}
}

// Registry returns the underlying metrics registry (nil for a nil
// recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Stream returns the underlying event stream (nil for a nil recorder).
func (r *Recorder) Stream() *Stream {
	if r == nil {
		return nil
	}
	return r.stream
}

// Emit sends one event down the stream.
func (r *Recorder) Emit(name string, fields map[string]any) {
	if r == nil {
		return
	}
	r.stream.Emit(name, fields)
}

// Counter returns the named counter (see Registry.Counter).
func (r *Recorder) Counter(name string, labels ...string) *Counter {
	return r.Registry().Counter(name, labels...)
}

// Gauge returns the named gauge (see Registry.Gauge).
func (r *Recorder) Gauge(name string, labels ...string) *Gauge {
	return r.Registry().Gauge(name, labels...)
}

// Histogram returns the named histogram (see Registry.Histogram).
func (r *Recorder) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.Registry().Histogram(name, bounds, labels...)
}

// WriteMetrics writes the registry in the text exposition format.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	return r.Registry().WriteText(w)
}

// Snapshot copies the registry's current state.
func (r *Recorder) Snapshot() Snapshot {
	return r.Registry().Snapshot()
}
