package mp

// Frozen tapes are the execution vehicle of compiled precision-specialized
// kernels (see internal/compile). Freezing fixes the configuration - the
// precision vector, the demotion semantics - so the per-access bookkeeping
// that the interpreted tape performs eagerly can be constant-folded:
//
//   - Array traffic is deferred. Instead of multiplying through the
//     precomputed charge factors on every access, a frozen Array counts
//     elements (one add) and the totals are multiplied out once at the
//     next observation point. The factor is constant between flushes, so
//     sum(n_i)*f == sum(n_i*f) exactly in uint64 arithmetic and the
//     flushed counters are bit-identical to the eager ones.
//   - Rounding precision is cached on each Array at allocation, skipping
//     the tape indirection on every Set; F64 arrays skip rounding
//     entirely in the bulk stores.
//   - Reset rewinds the tape for the next run of the same kernel without
//     reallocating: counters zero, and the previous run's buffers are
//     recycled when the new run repeats the allocation sequence.
//
// A frozen tape rejects SetPrec and SetComputeOnly - the compiled kernel
// owns the configuration - but still accepts SetScale, which benchmark
// Run bodies invoke themselves (deferred traffic is flushed first, so
// scale changes observe exactly the eager accounting).

// Freeze fixes the tape's configuration and switches every Array it
// allocates to deferred traffic accounting. Call after the precision
// vector and semantics are final and before the benchmark runs.
func (t *Tape) Freeze() {
	if t.frozen {
		return
	}
	t.frozen = true
	t.pendVar = make([]VarProfile, len(t.perVar))
}

// Frozen reports whether the tape is frozen.
func (t *Tape) Frozen() bool { return t.frozen }

// flushArrays settles every live Array's deferred traffic and the
// deferred arithmetic meters into the cost and profile counters. A no-op
// on unfrozen tapes (which charge eagerly) and when nothing is pending.
func (t *Tape) flushArrays() {
	for _, a := range t.arrays {
		a.flush()
	}
	t.flushMeter()
}

// flushMeter settles the deferred Assign accounting. The scale is
// constant between flushes (SetScale flushes first), so multiplying the
// sums equals the eager per-call charges exactly.
func (t *Tape) flushMeter() {
	if t.pendFlops[0] != 0 {
		t.cost.Flops64 += t.pendFlops[0] * t.scale
		t.pendFlops[0] = 0
	}
	if t.pendFlops[1] != 0 {
		t.cost.Flops32 += t.pendFlops[1] * t.scale
		t.pendFlops[1] = 0
	}
	if t.pendFlops[2] != 0 {
		t.cost.Flops16 += t.pendFlops[2] * t.scale
		t.pendFlops[2] = 0
	}
	if t.pendCasts != 0 {
		t.cost.Casts += t.pendCasts * t.scale
		t.pendCasts = 0
		for i := range t.pendCastPairs {
			for j := range t.pendCastPairs[i] {
				if n := t.pendCastPairs[i][j]; n != 0 {
					t.cost.CastPairs[i][j] += n * t.scale
					t.pendCastPairs[i][j] = 0
				}
			}
		}
	}
	for v := range t.pendVar {
		p := &t.pendVar[v]
		if p.Flops != 0 {
			t.perVar[v].Flops += p.Flops * t.scale
			p.Flops = 0
		}
		if p.Casts != 0 {
			t.perVar[v].Casts += p.Casts * t.scale
			p.Casts = 0
		}
	}
}

// Reset rewinds a frozen tape for the next run of the same compiled
// kernel: cost and per-variable profiles zero, the scale returns to 1,
// any attached input stream detaches, and the run's arrays move to the
// recycle pool so the next run's allocations can reuse their buffers.
// The precision vector and semantics persist - they are the kernel's
// identity.
func (t *Tape) Reset() {
	if !t.frozen {
		panic("mp: Reset on an unfrozen tape; interpreted runs use a fresh tape per execution")
	}
	t.cost = Cost{}
	clear(t.perVar)
	clear(t.pendVar)
	t.pendFlops = [3]uint64{}
	t.pendCasts = 0
	t.pendCastPairs = [3][3]uint64{}
	for _, a := range t.arrays {
		a.pending = 0
	}
	// Swap the just-finished run's arrays into the recycle pool; the slice
	// previously used as the pool becomes the (emptied) live list.
	t.arrays, t.recycled = t.recycled[:0], t.arrays
	t.reuseCursor = 0
	t.rec = nil
	t.rep = nil
	if t.scale != 1 {
		t.scale = 1
		t.refreshAll()
	}
}

// reuseArray returns a recycled buffer for (v, n) when the run's
// allocation sequence matches the previous run's, zeroed as a fresh
// allocation would be. Benchmarks allocate deterministically, so after
// the first run this hits every time; on the first divergence the pool
// is dropped for the remainder of the run.
func (t *Tape) reuseArray(v VarID, n int) *Array {
	if t.reuseCursor >= len(t.recycled) {
		return nil
	}
	a := t.recycled[t.reuseCursor]
	if a.v != v || len(a.data) != n {
		t.recycled = t.recycled[:0]
		t.reuseCursor = 0
		return nil
	}
	t.reuseCursor++
	clear(a.data)
	a.pending = 0
	a.prec = t.prec[v]
	return a
}
