package mp

import "math"

// roundBinary rounds x to the nearest value of the binary floating-point
// format with eBits exponent bits and mBits mantissa bits
// (round-to-nearest-even), returning it as a float64. It is the generic
// form of roundToHalf: every format the ladder can name is a subset of
// float64 (e <= 11, m <= 52), the arithmetic runs entirely in float64
// whose 53-bit significand represents every intermediate exactly, so no
// double rounding occurs. For e=11, m=52 the function is the float64
// identity on every input.
func roundBinary(x float64, eBits, mBits int) float64 {
	if x != x || math.IsInf(x, 0) || x == 0 {
		return x
	}
	bias := 1<<(eBits-1) - 1
	// Values at or beyond the midpoint between the largest finite value,
	// (2 - 2^-m) * 2^bias, and the next representable step round to
	// infinity. For the full float64 widths this midpoint overflows to
	// +Inf and the comparison is never true, as it must be.
	overflow := math.Ldexp(2-math.Ldexp(1, -(mBits+1)), bias)
	ax := math.Abs(x)
	if ax >= overflow {
		return math.Inf(int(math.Copysign(1, x)))
	}
	minNormal := math.Ldexp(1, 1-bias)
	if ax < minNormal {
		// Subnormal range: fixed quantum of 2^(1-bias-m).
		q := math.Ldexp(1, 1-bias-mBits)
		return math.RoundToEven(x/q) * q
	}
	// Normal range: m+1 significant bits.
	f, e := math.Frexp(x) // x = f * 2^e with |f| in [0.5, 1)
	s := math.Ldexp(1, mBits+1)
	m := math.RoundToEven(f*s) / s
	y := math.Ldexp(m, e)
	if math.Abs(y) >= overflow {
		// Rounding carried the significand past the largest finite value.
		return math.Inf(int(math.Copysign(1, x)))
	}
	return y
}
