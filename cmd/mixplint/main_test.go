package main

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/analysis"
)

func TestNormalizePattern(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "repro"},
		{"./...", "repro/..."},
		{"...", "repro/..."},
		{"./cmd/mixpd", "repro/cmd/mixpd"},
		{"./internal/...", "repro/internal/..."},
		{"repro/internal/kernels", "repro/internal/kernels"},
	}
	for _, c := range cases {
		if got := normalizePattern("repro", c.in); got != c.want {
			t.Errorf("normalizePattern(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScopeRestrictsTypedepcheck(t *testing.T) {
	scope := scopeFor([]string{"repro/..."})
	var tdc, clock *analysis.Analyzer
	for _, a := range analyzers {
		switch a.Name {
		case "typedepcheck":
			tdc = a
		case "simclock":
			clock = a
		}
	}
	if tdc == nil || clock == nil {
		t.Fatal("expected analyzers not registered")
	}
	if !scope(tdc, "repro/internal/kernels") || !scope(tdc, "repro/internal/apps") {
		t.Error("typedepcheck must cover the port packages")
	}
	if scope(tdc, "repro/internal/harness") {
		t.Error("typedepcheck must not run outside the port packages")
	}
	if !scope(clock, "repro/internal/harness") {
		t.Error("determinism analyzers must cover the whole module")
	}
	narrow := scopeFor([]string{"repro/internal/engine"})
	if narrow(clock, "repro/internal/harness") {
		t.Error("explicit patterns must restrict the scope")
	}
}

// TestModuleIsClean runs the full multichecker over the repository: the
// build must stay at zero unsuppressed findings, and every suppression
// must carry a justification.
func TestModuleIsClean(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "mixplint*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if code := run([]string{"-json"}, out, os.Stderr); code != 0 {
		t.Fatalf("mixplint exited %d, want 0", code)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var rep analysis.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("module has %d unsuppressed findings: %+v", len(rep.Findings), rep.Findings)
	}
	for _, f := range rep.Suppressed {
		if f.Justification == "" {
			t.Errorf("%s:%d: suppressed without justification", f.File, f.Line)
		}
	}
	if len(rep.Analyzers) != len(analyzers) {
		t.Errorf("report lists %d analyzers, want %d", len(rep.Analyzers), len(analyzers))
	}
}
