package typedepcheck

// Call evaluation for the constructor interpreter: typedep.Graph
// operations are intrinsics recorded into the abstract graph; fmt and
// builtins get concrete implementations; same-package functions,
// methods, and closures are interpreted recursively.

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/mp"
)

func (in *interp) evalCall(call *ast.CallExpr, e *env) (value, error) {
	// Builtins first: len, append, make, cap, panic.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := in.info.Uses[id].(*types.Builtin); isBuiltin {
			return in.evalBuiltin(id.Name, call, e)
		}
	}
	// Type conversions: T(x).
	if tv, ok := in.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("bad conversion at %d", call.Pos())
		}
		v, err := in.evalExpr(call.Args[0], e)
		if err != nil {
			return nil, err
		}
		return convert(tv.Type, v)
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// Package-qualified calls: typedep.NewGraph, fmt.Sprintf.
		if obj, ok := in.info.Uses[sel.Sel].(*types.Func); ok && obj.Type().(*types.Signature).Recv() == nil {
			if obj.Pkg() != nil && obj.Pkg() != in.pkg {
				return in.evalForeignCall(obj, call, e)
			}
		}
		// Method calls: resolve the receiver value.
		if selection, ok := in.info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			recv, err := in.evalExpr(sel.X, e)
			if err != nil {
				return nil, err
			}
			if g, ok := recv.(*graphVal); ok {
				return in.evalGraphMethod(g, sel.Sel.Name, call, e)
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return nil, fmt.Errorf("unresolved method at %d", call.Pos())
			}
			decl := in.funcDecl(fn)
			if decl == nil {
				if v, handled, err := in.evalForeignMethod(fn, recv, call, e); handled {
					return v, err
				}
				return nil, fmt.Errorf("method %s has no source in this package (at %d)", fn.Name(), call.Pos())
			}
			args, err := in.evalArgs(call, e)
			if err != nil {
				return nil, err
			}
			return in.callDecl(decl, recv, args, call)
		}
	}

	// Plain identifier calls: closures and package functions.
	fnVal, err := in.evalExpr(call.Fun, e)
	if err != nil {
		return nil, err
	}
	args, err := in.evalArgs(call, e)
	if err != nil {
		return nil, err
	}
	switch fn := fnVal.(type) {
	case *closureVal:
		return in.callClosure(fn, args, call)
	case *funcVal:
		return in.callDecl(fn.decl, fn.recv, args, call)
	}
	return nil, fmt.Errorf("call of non-function %T at %d", fnVal, call.Pos())
}

// evalArgs evaluates the argument list, spreading a trailing slice for
// f(xs...) calls.
func (in *interp) evalArgs(call *ast.CallExpr, e *env) ([]value, error) {
	var args []value
	for i, a := range call.Args {
		v, err := in.evalExpr(a, e)
		if err != nil {
			return nil, err
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			sv, ok := v.(*sliceVal)
			if !ok {
				return nil, fmt.Errorf("spread of non-slice at %d", a.Pos())
			}
			args = append(args, sv.elems...)
			continue
		}
		args = append(args, v)
	}
	return args, nil
}

func (in *interp) evalBuiltin(name string, call *ast.CallExpr, e *env) (value, error) {
	switch name {
	case "len":
		v, err := in.evalExpr(call.Args[0], e)
		if err != nil {
			return nil, err
		}
		switch v := v.(type) {
		case *sliceVal:
			return int64(len(v.elems)), nil
		case string:
			return int64(len(v)), nil
		case *mapVal:
			return int64(len(v.entries)), nil
		}
		return nil, fmt.Errorf("len of %T at %d", v, call.Pos())
	case "append":
		args, err := in.evalArgs(call, e)
		if err != nil {
			return nil, err
		}
		base, ok := args[0].(*sliceVal)
		if !ok {
			if args[0] == nil {
				base = &sliceVal{}
			} else {
				return nil, fmt.Errorf("append to %T at %d", args[0], call.Pos())
			}
		}
		out := &sliceVal{elems: append(append([]value{}, base.elems...), args[1:]...)}
		return out, nil
	case "make":
		tv := in.info.Types[call.Args[0]]
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			return &mapVal{entries: make(map[string]value)}, nil
		case *types.Slice:
			n := int64(0)
			if len(call.Args) > 1 {
				v, err := in.evalExpr(call.Args[1], e)
				if err != nil {
					return nil, err
				}
				n, _ = v.(int64)
			}
			return &sliceVal{elems: make([]value, n)}, nil
		}
		return nil, fmt.Errorf("unsupported make at %d", call.Pos())
	case "cap":
		v, err := in.evalExpr(call.Args[0], e)
		if err != nil {
			return nil, err
		}
		if sv, ok := v.(*sliceVal); ok {
			return int64(len(sv.elems)), nil
		}
		return nil, fmt.Errorf("cap of %T at %d", v, call.Pos())
	case "panic":
		msg := "panic"
		if len(call.Args) == 1 {
			if v, err := in.evalExpr(call.Args[0], e); err == nil {
				msg = fmt.Sprintf("panic: %v", render(v))
			}
		}
		return nil, fmt.Errorf("constructor reaches %s at %d", msg, call.Pos())
	}
	return nil, fmt.Errorf("unsupported builtin %s at %d", name, call.Pos())
}

// evalForeignCall handles the cross-package functions constructors use:
// typedep.NewGraph, fmt.Sprintf/Errorf, and the ladder-era mp
// constructors (Custom formats and precision ladders), which run for
// real so the abstract values match the runtime exactly.
func (in *interp) evalForeignCall(fn *types.Func, call *ast.CallExpr, e *env) (value, error) {
	key := fn.Pkg().Path() + "." + fn.Name()
	switch key {
	case "repro/internal/typedep.NewGraph":
		return newGraphVal(), nil
	case "repro/internal/mp.DefaultLadder":
		return ladderVal(mp.DefaultLadder()), nil
	case "repro/internal/mp.Custom", "repro/internal/mp.MustCustom":
		args, err := in.evalArgs(call, e)
		if err != nil {
			return nil, err
		}
		eBits, ok1 := args[0].(int64)
		mBits, ok2 := args[1].(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("non-constant mp.%s arguments at %d", fn.Name(), call.Pos())
		}
		p, perr := mp.Custom(int(eBits), int(mBits))
		if fn.Name() == "MustCustom" {
			if perr != nil {
				return nil, fmt.Errorf("constructor reaches panic: %v at %d", perr, call.Pos())
			}
			return int64(p), nil
		}
		return tupleVal{elems: []value{int64(p), errVal(perr)}}, nil
	case "repro/internal/mp.ParsePrec":
		args, err := in.evalArgs(call, e)
		if err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("non-constant mp.ParsePrec argument at %d", call.Pos())
		}
		p, perr := mp.ParsePrec(s)
		return tupleVal{elems: []value{int64(p), errVal(perr)}}, nil
	case "repro/internal/mp.ParseLadder":
		args, err := in.evalArgs(call, e)
		if err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("non-constant mp.ParseLadder argument at %d", call.Pos())
		}
		l, lerr := mp.ParseLadder(s)
		if lerr != nil {
			return tupleVal{elems: []value{nil, errVal(lerr)}}, nil
		}
		return tupleVal{elems: []value{ladderVal(l), nil}}, nil
	case "fmt.Sprintf", "fmt.Errorf":
		args, err := in.evalArgs(call, e)
		if err != nil {
			return nil, err
		}
		format, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("non-constant format string at %d", call.Pos())
		}
		rest := make([]any, len(args)-1)
		for i, a := range args[1:] {
			switch a := a.(type) {
			case int64, string, bool, float64:
				rest[i] = a
			case varID:
				rest[i] = int(a)
			default:
				rest[i] = render(a)
			}
		}
		return fmt.Sprintf(format, rest...), nil
	}
	return nil, fmt.Errorf("call to unmodelled function %s at %d", key, call.Pos())
}

// evalForeignMethod models the mp.Prec and mp.Ladder methods ladder-era
// constructors call. The abstract receiver (a Prec is an int64, a
// Ladder a slice of them) converts to the real mp type and the real
// method runs, so the interpreter can never drift from the runtime's
// format arithmetic. handled is false for receivers the interpreter
// does not model.
func (in *interp) evalForeignMethod(fn *types.Func, recv value, call *ast.CallExpr, e *env) (value, bool, error) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/mp" {
		return nil, false, nil
	}
	rt := fn.Type().(*types.Signature).Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil, false, nil
	}
	switch named.Obj().Name() {
	case "Prec":
		n, ok := recv.(int64)
		if !ok {
			return nil, true, fmt.Errorf("non-constant Prec receiver for %s at %d", fn.Name(), call.Pos())
		}
		p := mp.Prec(n)
		switch fn.Name() {
		case "String":
			return p.String(), true, nil
		case "Name":
			return p.Name(), true, nil
		case "IsCustom":
			return p.IsCustom(), true, nil
		case "ExpBits":
			return int64(p.ExpBits()), true, nil
		case "MantBits":
			return int64(p.MantBits()), true, nil
		case "Size":
			return int64(p.Size()), true, nil
		}
		return nil, true, fmt.Errorf("unmodelled mp.Prec method %s at %d", fn.Name(), call.Pos())
	case "Ladder":
		l, ok := asLadder(recv)
		if !ok {
			return nil, true, fmt.Errorf("non-constant Ladder receiver for %s at %d", fn.Name(), call.Pos())
		}
		switch fn.Name() {
		case "Validate":
			return errVal(l.Validate()), true, nil
		case "IsDefault":
			return l.IsDefault(), true, nil
		case "String":
			return l.String(), true, nil
		case "Equal":
			args, err := in.evalArgs(call, e)
			if err != nil {
				return nil, true, err
			}
			o, ok := asLadder(args[0])
			if !ok {
				return nil, true, fmt.Errorf("non-constant Ladder argument to Equal at %d", call.Pos())
			}
			return l.Equal(o), true, nil
		}
		return nil, true, fmt.Errorf("unmodelled mp.Ladder method %s at %d", fn.Name(), call.Pos())
	}
	return nil, false, nil
}

// asLadder converts an abstract ladder (a slice of Prec ints, or nil)
// to the real mp.Ladder.
func asLadder(v value) (mp.Ladder, bool) {
	if v == nil {
		return nil, true
	}
	sv, ok := v.(*sliceVal)
	if !ok {
		return nil, false
	}
	l := make(mp.Ladder, len(sv.elems))
	for i, e := range sv.elems {
		n, ok := e.(int64)
		if !ok {
			return nil, false
		}
		l[i] = mp.Prec(n)
	}
	return l, true
}

// ladderVal is the inverse of asLadder.
func ladderVal(l mp.Ladder) *sliceVal {
	sv := &sliceVal{elems: make([]value, len(l))}
	for i, p := range l {
		sv.elems[i] = int64(p)
	}
	return sv
}

// errVal maps a real error onto the interpreter's representation: nil
// stays nil, anything else is its message string (matching fmt.Errorf).
func errVal(err error) value {
	if err == nil {
		return nil
	}
	return err.Error()
}

// evalGraphMethod implements the typedep.Graph intrinsics.
func (in *interp) evalGraphMethod(g *graphVal, name string, call *ast.CallExpr, e *env) (value, error) {
	args, err := in.evalArgs(call, e)
	if err != nil {
		return nil, err
	}
	asID := func(v value) (int, error) {
		id, ok := v.(varID)
		if !ok {
			return 0, fmt.Errorf("non-VarID argument %T to Graph.%s at %d", v, name, call.Pos())
		}
		if int(id) < 0 || int(id) >= len(g.vars) {
			return 0, fmt.Errorf("VarID %d out of range in Graph.%s at %d", int(id), name, call.Pos())
		}
		return int(id), nil
	}
	switch name {
	case "Add":
		if len(args) != 3 {
			return nil, fmt.Errorf("Graph.Add arity at %d", call.Pos())
		}
		vname, ok1 := args[0].(string)
		unit, ok2 := args[1].(string)
		kind, ok3 := args[2].(int64)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("non-constant Graph.Add arguments at %d", call.Pos())
		}
		id, err := g.add(vname, unit, kind, call.Pos())
		if err != nil {
			return nil, fmt.Errorf("%v at %d", err, call.Pos())
		}
		return id, nil
	case "Connect", "ConnectAll":
		ids := make([]int, len(args))
		for i, a := range args {
			id, err := asID(a)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		if name == "Connect" && len(ids) != 2 {
			return nil, fmt.Errorf("Graph.Connect arity at %d", call.Pos())
		}
		if len(ids) >= 2 {
			g.records = append(g.records, connectRec{pos: call.Pos(), ids: ids})
		}
		return nil, nil
	case "Lookup":
		vname, ok1 := args[0].(string)
		unit, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("non-constant Graph.Lookup arguments at %d", call.Pos())
		}
		id, found := g.index[unit+"::"+vname]
		return tupleVal{elems: []value{varID(id), found}}, nil
	case "NumVars":
		return int64(len(g.vars)), nil
	case "NumClusters":
		return int64(g.numClusters()), nil
	}
	return nil, fmt.Errorf("unmodelled Graph method %s at %d", name, call.Pos())
}

// callClosure interprets a function literal with its captured env.
func (in *interp) callClosure(c *closureVal, args []value, call *ast.CallExpr) (value, error) {
	e := newEnv(c.env)
	if err := in.bindParams(c.lit.Type, args, e, call); err != nil {
		return nil, err
	}
	return in.finishCall(c.lit.Body, e)
}

// callDecl interprets a package function or method declaration.
func (in *interp) callDecl(decl *ast.FuncDecl, recv value, args []value, call *ast.CallExpr) (value, error) {
	e := newEnv(nil)
	if decl.Recv != nil {
		if len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			e.define(in.info.Defs[decl.Recv.List[0].Names[0]], recv)
		}
	}
	if err := in.bindParams(decl.Type, args, e, call); err != nil {
		return nil, err
	}
	return in.finishCall(decl.Body, e)
}

func (in *interp) finishCall(body *ast.BlockStmt, e *env) (value, error) {
	rets, err := in.callBody(body, e)
	if err != nil {
		return nil, err
	}
	switch len(rets) {
	case 0:
		return nil, nil
	case 1:
		return rets[0], nil
	}
	return tupleVal{elems: rets}, nil
}

// bindParams maps evaluated arguments onto parameter objects, packing
// variadic tails into a slice.
func (in *interp) bindParams(ft *ast.FuncType, args []value, e *env, call *ast.CallExpr) error {
	var params []*ast.Ident
	variadic := false
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if _, isEllipsis := field.Type.(*ast.Ellipsis); isEllipsis {
				variadic = true
			}
			params = append(params, field.Names...)
		}
	}
	if variadic {
		if len(params) == 0 {
			return fmt.Errorf("unsupported variadic signature at %d", call.Pos())
		}
		fixed := len(params) - 1
		if len(args) < fixed {
			return fmt.Errorf("argument count mismatch at %d", call.Pos())
		}
		for i := 0; i < fixed; i++ {
			e.define(in.info.Defs[params[i]], args[i])
		}
		e.define(in.info.Defs[params[fixed]], &sliceVal{elems: append([]value{}, args[fixed:]...)})
		return nil
	}
	if len(args) != len(params) {
		return fmt.Errorf("argument count mismatch at %d (want %d, got %d)", call.Pos(), len(params), len(args))
	}
	for i, p := range params {
		e.define(in.info.Defs[p], args[i])
	}
	return nil
}

// convert implements the conversions constructors use.
func convert(t types.Type, v value) (value, error) {
	// Named numeric types (mp.VarID, typedep.Kind) keep their abstract
	// representation.
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/mp" && obj.Name() == "VarID" {
			switch v := v.(type) {
			case int64:
				return varID(v), nil
			case varID:
				return v, nil
			}
			return nil, fmt.Errorf("cannot convert %T to mp.VarID", v)
		}
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		// Identity conversions of non-basic types (interface wrapping).
		return v, nil
	}
	info := basic.Info()
	switch {
	case info&types.IsInteger != 0:
		switch v := v.(type) {
		case int64:
			return v, nil
		case float64:
			return int64(v), nil
		case varID:
			return int64(v), nil
		}
	case info&types.IsFloat != 0:
		if f, ok := toFloat(v); ok {
			return f, nil
		}
	case info&types.IsString != 0:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case info&types.IsBoolean != 0:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("unsupported conversion of %T to %v", v, t)
}

// render pretty-prints an abstract value for error messages.
func render(v value) string {
	switch v := v.(type) {
	case string:
		return v
	case int64:
		return fmt.Sprintf("%d", v)
	case varID:
		return fmt.Sprintf("VarID(%d)", int(v))
	case nil:
		return "nil"
	}
	return fmt.Sprintf("%T", v)
}
