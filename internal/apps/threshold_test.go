package apps

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
	"repro/internal/verify"
)

// demote returns a config with the clusters containing the named variables
// demoted (whole clusters, so the config always compiles).
func demote(t *testing.T, b bench.Benchmark, names ...string) bench.Config {
	t.Helper()
	g := b.Graph()
	cfg := bench.NewConfig(g.NumVars())
	for _, name := range names {
		var target mp.VarID = -1
		for _, v := range g.Vars() {
			if v.Name == name {
				target = v.ID
				break
			}
		}
		if target < 0 {
			t.Fatalf("%s: no variable named %q", b.Name(), name)
		}
		for _, c := range g.Clusters() {
			for _, m := range c.Members {
				if m == target {
					for _, mm := range c.Members {
						cfg[mm] = mp.F32
					}
				}
			}
		}
	}
	return cfg
}

// check evaluates a config against the reference at a threshold.
func check(t *testing.T, b bench.Benchmark, cfg bench.Config, threshold float64) (verify.Verdict, float64) {
	t.Helper()
	r := bench.NewRunner(42)
	ref := r.Reference(b)
	res := r.Run(b, cfg)
	v, err := verify.Check(b.Metric(), ref.Output.Values, res.Output.Values, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return v, ref.Measured.Mean / res.Measured.Mean
}

// TestLavaMDThresholdArc pins the paper's LavaMD story: full demotion
// passes only the loose threshold (with the cache-step speedup), the
// position+charge demotion survives 1e-6 with a mid-range speedup, and at
// 1e-8 both fail.
func TestLavaMDThresholdArc(t *testing.T) {
	l := NewLavaMD()
	full := bench.AllSingle(l.Graph().NumVars())
	rvqv := demote(t, l, "rv", "qv")

	v, su := check(t, l, full, 1e-3)
	if !v.Passed || su < 2.2 {
		t.Errorf("full @1e-3: passed=%v speedup=%.2f, want pass with >2.2x", v.Passed, su)
	}
	if v, _ := check(t, l, full, 1e-6); v.Passed {
		t.Errorf("full @1e-6 passed with err=%.3g", v.Error)
	}
	v, su = check(t, l, rvqv, 1e-6)
	if !v.Passed {
		t.Errorf("rv+qv @1e-6 failed with err=%.3g", v.Error)
	}
	if su < 1.3 {
		t.Errorf("rv+qv speedup = %.2f, want mid-range > 1.3", su)
	}
	if v, _ := check(t, l, rvqv, 1e-8); v.Passed {
		t.Errorf("rv+qv @1e-8 passed with err=%.3g", v.Error)
	}
}

// TestSRADNaN pins the destroyed-output mechanism: demoting the working
// image overflows float32 and floods the output with NaN, failing any
// threshold.
func TestSRADNaN(t *testing.T) {
	s := NewSRAD()
	jOnly := demote(t, s, "J")
	v, _ := check(t, s, jOnly, math.Inf(1))
	if v.Passed {
		t.Error("image demotion passed even an infinite threshold")
	}
	if !math.IsNaN(v.Error) {
		t.Errorf("error = %g, want NaN", v.Error)
	}
	// The derivative grids hold image-scale values and must blow up too.
	dn := demote(t, s, "dN")
	if v, _ := check(t, s, dn, 1e-3); v.Passed {
		t.Errorf("dN demotion passed with err=%.3g", v.Error)
	}
}

// TestHotspotPassesStrictest pins the paper's Hotspot row: the stencil's
// quality loss sits near 1e-10, inside even the strictest threshold, so
// the speedup is available at every tier.
func TestHotspotPassesStrictest(t *testing.T) {
	h := NewHotspot()
	full := bench.AllSingle(h.Graph().NumVars())
	v, su := check(t, h, full, 1e-8)
	if !v.Passed {
		t.Fatalf("full @1e-8 failed with err=%.3g", v.Error)
	}
	if su < 1.5 {
		t.Errorf("speedup = %.2f, want > 1.5", su)
	}
}

// TestHPCCGMatrixDemotion pins the HPCCG tiering: demoting the matrix
// values passes 1e-3 with a real speedup (same iteration count, less
// traffic) but perturbs the solution beyond 1e-6.
func TestHPCCGMatrixDemotion(t *testing.T) {
	h := NewHPCCG()
	aOnly := demote(t, h, "A_values")
	v, su := check(t, h, aOnly, 1e-3)
	if !v.Passed {
		t.Fatalf("A-only @1e-3 failed with err=%.3g", v.Error)
	}
	if su < 1.1 {
		t.Errorf("A-only speedup = %.2f, want > 1.1", su)
	}
	if v, _ := check(t, h, aOnly, 1e-6); v.Passed {
		t.Errorf("A-only @1e-6 passed with err=%.3g", v.Error)
	}
	// The right-hand side is float32-exact: lossless at any threshold.
	bOnly := demote(t, h, "b")
	if v, _ := check(t, h, bOnly, 1e-8); !v.Passed || v.Error != 0 {
		t.Errorf("b-only: passed=%v err=%.3g, want lossless", v.Passed, v.Error)
	}
}

// TestBlackscholesInputsLossless pins the input design: the market-data
// buffers are float32-exact, so demoting them alone changes nothing,
// while demoting the price output costs ~1e-6.
func TestBlackscholesInputsLossless(t *testing.T) {
	bs := NewBlackscholes()
	inputs := demote(t, bs, "sptprice", "strike", "rate", "volatility", "otime")
	v, _ := check(t, bs, inputs, 1e-8)
	if !v.Passed || v.Error != 0 {
		t.Errorf("input demotion: passed=%v err=%.3g, want lossless", v.Passed, v.Error)
	}
	prices := demote(t, bs, "prices")
	v, _ = check(t, bs, prices, 1e-6)
	if v.Passed {
		t.Errorf("price demotion @1e-6 passed with err=%.3g", v.Error)
	}
	if v, _ := check(t, bs, prices, 1e-3); !v.Passed {
		t.Errorf("price demotion @1e-3 failed with err=%.3g", v.Error)
	}
}

// TestKMeansAssignmentsStable pins the MCR design: demotions never flip an
// assignment on the separated blobs.
func TestKMeansAssignmentsStable(t *testing.T) {
	k := NewKMeans()
	full := bench.AllSingle(k.Graph().NumVars())
	v, su := check(t, k, full, 0) // MCR must be exactly zero
	if !v.Passed {
		t.Errorf("full demotion flipped assignments: MCR=%.3g", v.Error)
	}
	if su < 0.9 || su > 1.2 {
		t.Errorf("speedup = %.2f, want ~1.0 (assignment-bound)", su)
	}
}

// TestCFDLiteralCasts pins the hidden-literal mechanism: a searched full
// demotion (literals stay double) is slower than the manual conversion
// that rewrites literals too.
func TestCFDLiteralCasts(t *testing.T) {
	c := NewCFD()
	r := bench.NewRunner(42)
	ref := r.Reference(c)
	searched := r.Run(c, bench.AllSingle(c.Graph().NumVars()))
	manual := r.RunManualSingle(c)
	suSearched := ref.Measured.Mean / searched.Measured.Mean
	suManual := ref.Measured.Mean / manual.Measured.Mean
	if suSearched >= suManual {
		t.Errorf("searched %.3f >= manual %.3f: literal casts missing", suSearched, suManual)
	}
	if suManual-suSearched < 0.01 {
		t.Errorf("literal-cast penalty too small: %.3f vs %.3f", suSearched, suManual)
	}
}

// TestAppGraphsAreValidPartitions property-checks every application's
// dependence graph: clusters partition the variables and group labels are
// consistent.
func TestAppGraphsAreValidPartitions(t *testing.T) {
	for _, a := range All() {
		g := a.Graph()
		seen := map[mp.VarID]bool{}
		for _, c := range g.Clusters() {
			for _, m := range c.Members {
				if seen[m] {
					t.Errorf("%s: variable %d in two clusters", a.Name(), m)
				}
				seen[m] = true
			}
		}
		if len(seen) != g.NumVars() {
			t.Errorf("%s: clusters cover %d of %d vars", a.Name(), len(seen), g.NumVars())
		}
		for _, v := range g.Vars() {
			if v.Name == "" || v.Unit == "" {
				t.Errorf("%s: variable %d lacks name/unit", a.Name(), v.ID)
			}
		}
		_ = typedep.SearchSpaceSize(2, g.NumVars()) // must not panic
	}
}
