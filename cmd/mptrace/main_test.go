package main

import (
	"bytes"
	"strings"
	"testing"

	mixpbench "repro"
	"repro/internal/bench"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/trace"
)

// runTraced produces one strategy's outcome and trace for the tests.
func runTraced(t *testing.T, benchName, algo string, threshold float64) (search.Outcome, []search.TraceEntry) {
	t.Helper()
	b, err := mixpbench.Benchmark(benchName)
	if err != nil {
		t.Fatal(err)
	}
	a, err := search.ByName(algo, report.Seed)
	if err != nil {
		t.Fatal(err)
	}
	space := search.NewSpace(b.Graph(), a.Mode())
	eval := search.NewEvaluator(space, bench.NewRunner(report.Seed), b, threshold)
	eval.SetTrace(true)
	out := a.Search(eval)
	return out, eval.Trace()
}

func TestPrintSummaryMilestones(t *testing.T) {
	out, trace := runTraced(t, "lavamd", "GP", 1e-3)
	var buf bytes.Buffer
	printSummary(&buf, "GP", out, trace)
	s := buf.String()
	for _, frag := range []string{"GP: evaluated", "best-so-far", "(last evaluation)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
	if !strings.Contains(s, "converged at") {
		t.Errorf("summary missing convergence line:\n%s", s)
	}
}

func TestPrintCSVOneRowPerEvaluation(t *testing.T) {
	out, trace := runTraced(t, "hydro-1d", "CB", 1e-8)
	var buf bytes.Buffer
	printCSV(&buf, "CB", trace)
	lines := strings.Count(buf.String(), "\n")
	if lines != out.Evaluated {
		t.Errorf("CSV has %d rows, EV = %d", lines, out.Evaluated)
	}
	if !strings.HasPrefix(buf.String(), "CB,1,") {
		t.Errorf("CSV first row malformed: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

// TestRunAlgorithmsBuildsTraceJobs drives the pseudo-campaign export
// path: one job per strategy, a single clean attempt whose build+run
// accounting tiles its spend exactly, and a trace that validates as
// Chrome trace_event JSON.
func TestRunAlgorithmsBuildsTraceJobs(t *testing.T) {
	b, err := mixpbench.Benchmark("hydro-1d")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	jobs, err := runAlgorithms(&out, b, []string{"DD", "CB"}, 1e-8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want one per strategy", len(jobs))
	}
	for _, j := range jobs {
		if len(j.Attempts) != 1 {
			t.Fatalf("job %d has %d attempts", j.Index, len(j.Attempts))
		}
		a := j.Attempts[0]
		if a.BuildSeconds+a.RunSeconds != a.SpentSeconds || a.SpentSeconds <= 0 {
			t.Errorf("job %d: build %v + run %v != spent %v", j.Index, a.BuildSeconds, a.RunSeconds, a.SpentSeconds)
		}
		if a.Evaluations <= 0 {
			t.Errorf("job %d recorded no evaluations", j.Index)
		}
	}
	tr := trace.Assemble(b.Name(), jobs)
	var chrome bytes.Buffer
	if err := trace.WriteChromeTrace(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(bytes.NewReader(chrome.Bytes())); err != nil {
		t.Errorf("pseudo-campaign trace does not validate: %v", err)
	}
	if _, err := runAlgorithms(&out, b, []string{"nope"}, 1e-8, 0, false); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestPrintSummaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	printSummary(&buf, "DD", search.Outcome{Algorithm: "DD"}, nil)
	if !strings.Contains(buf.String(), "found nothing") {
		t.Errorf("empty-trace summary wrong:\n%s", buf.String())
	}
}
