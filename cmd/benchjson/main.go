// Command benchjson converts `go test -bench` output into the repo's
// machine-readable perf-trajectory artifact, so speed claims are
// tracked as data across PRs instead of living in commit messages.
//
// It reads benchmark output on stdin (or from file arguments), parses
// every result line into {benchmark, ns/op, B/op, allocs/op}, averages
// repeated runs of the same benchmark (-count=N), and writes one JSON
// document of records sorted by benchmark name:
//
//	go test -run '^$' -bench . -benchmem -count=5 ./... | benchjson -out BENCH_8.json
//
// With -comparison, it also maintains the "Compiled vs interpreted
// evaluation" section of the comparison artifact: the campaign
// benchmark pair (BenchmarkCampaignCompiled / BenchmarkCampaignInterpreted)
// side by side with the measured speedup, replacing the section in
// place when it exists and appending it otherwise, so `make tables`
// regenerating the rest of the file and `make bench` refreshing this
// section commute.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark's aggregated result. Repeated runs of the
// same benchmark (-count) are averaged; Samples says over how many.
type Record struct {
	Benchmark   string  `json:"benchmark"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the artifact's top-level shape.
type Report struct {
	Records []Record `json:"records"`
}

func main() {
	var (
		out        = flag.String("out", "-", `output path for the JSON artifact ("-" = stdout)`)
		comparison = flag.String("comparison", "", "markdown file whose compiled-vs-interpreted section to update")
	)
	flag.Parse()
	if err := run(*out, *comparison, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, comparison string, args []string) error {
	var input io.Reader = os.Stdin
	if len(args) > 0 {
		var readers []io.Reader
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		input = io.MultiReader(readers...)
	}
	records, err := Parse(input)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	data, err := json.MarshalIndent(Report{Records: records}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if comparison != "" {
		if err := updateComparison(comparison, records); err != nil {
			return err
		}
	}
	return nil
}

// resultLine matches one `go test -bench` result line. The -benchmem
// columns are optional; the GOMAXPROCS suffix (-8) is stripped so the
// trajectory compares across machines.
var resultLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse reads benchmark output and returns the aggregated records
// sorted by benchmark name. Non-result lines (headers, PASS/ok, test
// log output) are ignored.
func Parse(r io.Reader) ([]Record, error) {
	type sum struct {
		n                 int
		ns, bytes, allocs float64
	}
	sums := map[string]*sum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		s := sums[m[1]]
		if s == nil {
			s = &sum{}
			sums[m[1]] = s
		}
		s.n++
		s.ns += ns
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			s.bytes += v
		}
		if m[5] != "" {
			v, _ := strconv.ParseFloat(m[5], 64)
			s.allocs += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	records := make([]Record, 0, len(sums))
	for name, s := range sums {
		n := float64(s.n)
		records = append(records, Record{
			Benchmark:   name,
			Samples:     s.n,
			NsPerOp:     s.ns / n,
			BytesPerOp:  s.bytes / n,
			AllocsPerOp: s.allocs / n,
		})
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Benchmark < records[j].Benchmark })
	return records, nil
}

// The campaign pair the comparison section reports: one identical
// kernel campaign, evaluated through compiled kernels and through the
// interpreted tape (see bench_test.go).
const (
	compiledBench    = "BenchmarkCampaignCompiled"
	interpretedBench = "BenchmarkCampaignInterpreted"
	sectionHeader    = "## Compiled vs interpreted evaluation"
)

// comparisonSection renders the side-by-side pair table.
func comparisonSection(compiled, interpreted Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", sectionHeader)
	b.WriteString("One identical kernel campaign (2 workers, run cache off), evaluated\n")
	b.WriteString("through precision-specialized compiled kernels vs the interpreted\n")
	b.WriteString("tape. Outputs are byte-identical; only wall-clock moves.\n\n")
	b.WriteString("| Evaluation path | ns/op | B/op | allocs/op |\n")
	b.WriteString("|---|---|---|---|\n")
	row := func(label string, r Record) {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.0f |\n", label, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	row("compiled", compiled)
	row("interpreted", interpreted)
	fmt.Fprintf(&b, "\nSpeedup (interpreted / compiled): **%.2fx**\n", interpreted.NsPerOp/compiled.NsPerOp)
	return b.String()
}

// updateComparison rewrites the comparison file's compiled-vs-interpreted
// section from the parsed records: replaced in place when present,
// appended otherwise. Missing pair benchmarks are an error - the
// artifact must never silently report a stale pair.
func updateComparison(path string, records []Record) error {
	var compiled, interpreted *Record
	for i := range records {
		switch records[i].Benchmark {
		case compiledBench:
			compiled = &records[i]
		case interpretedBench:
			interpreted = &records[i]
		}
	}
	if compiled == nil || interpreted == nil {
		return fmt.Errorf("input lacks the %s / %s pair needed for -comparison", compiledBench, interpretedBench)
	}
	section := comparisonSection(*compiled, *interpreted)

	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	text := string(existing)
	if start := strings.Index(text, sectionHeader); start >= 0 {
		end := len(text)
		if next := strings.Index(text[start+len(sectionHeader):], "\n## "); next >= 0 {
			end = start + len(sectionHeader) + next + 1
		}
		text = text[:start] + section + text[end:]
	} else {
		if text != "" && !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		if text != "" {
			text += "\n"
		}
		text += section
	}
	return os.WriteFile(path, []byte(text), 0o644)
}
