// Package clock is the simclock fixture: wall-clock reads are flagged,
// deterministic time arithmetic is not.
package clock

import "time"

func bad() {
	_ = time.Now()                  // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)    // want `time.Sleep reads the wall clock`
	_ = time.Since(time.Time{})     // want `time.Since reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock`
}

func good() {
	d := 3 * time.Second
	_ = d
	_ = time.Unix(0, 0)
	_, _ = time.ParseDuration("1s")
	_ = time.Duration(42)
}

// shadow proves method calls with banned names do not match.
type shadow struct{}

func (shadow) Now() int { return 0 }

func goodMethod(s shadow) int { return s.Now() }
