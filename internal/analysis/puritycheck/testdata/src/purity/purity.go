// Package purity is the puritycheck fixture: Run bodies (and their
// same-package helpers) that reach outside the purity key are flagged;
// the seeded, table-driven port shape passes clean.
package purity

import (
	"math/rand"
	"os"
	"time"

	"repro/internal/mp"
)

// calls is cross-run mutable state: written by a Run-reachable path.
var calls int

// lastEnv is mutable package state read by a Run-reachable path.
var lastEnv string

func recordEnv() { lastEnv = os.Getenv("HOME") } // not Run-reachable itself; makes lastEnv mutable

// weights is an immutable package-level table: reads are legal.
var weights = [4]float64{0.1, 0.2, 0.3, 0.4}

type impurePort struct{ vA mp.VarID }

func (p *impurePort) Run(t *mp.Tape, seed int64) []float64 {
	calls++                      // want `write to package-level calls`
	start := time.Now()          // want `time.Now reads the wall clock`
	_ = os.Getenv("MIXP_SCALE")  // want `os.Getenv reads process or host state`
	jitter := rand.Float64()     // want `rand.Float64 draws from the global math/rand source`
	name := lastEnv              // want `read of mutable package-level lastEnv`
	_ = os.Args                  // want `read of foreign package-level os.Args`
	_, _, _, _ = start, jitter, name, seed
	return impureHelper(map[string]float64{"a": 1})
}

// impureHelper is reachable from Run, so its violations count too.
func impureHelper(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration in a Run-reachable path`
		out = append(out, v)
	}
	return out
}

type purePort struct{ vA mp.VarID }

func (p *purePort) Run(t *mp.Tape, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are how seeds enter: legal
	a := t.NewArray(p.vA, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, weights[i]*rng.Float64()) // immutable table read: legal
	}
	return a.Snapshot()
}

// notARun has a banned call but no seed parameter, so it is not a root
// and not reachable from one: no finding.
func notARun() time.Time { return time.Now() }
