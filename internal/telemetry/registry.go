// Package telemetry is the suite's observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with Prometheus-style
// text exposition) and a structured event stream with pluggable sinks.
//
// The paper's methodology is per-configuration accounting - EV counts,
// cumulative simulated seconds, the timeout cells of Table V - so the
// instrumented pipeline must be reproducible: every timing fed into a
// metric or event comes from the simulated clock (perfmodel seconds), not
// wall time, and the harness merges per-job telemetry in job submission
// order. Two campaigns with the same seed therefore produce byte-identical
// metric snapshots regardless of the worker pool size.
//
// All types are safe for concurrent use, and every method tolerates a nil
// receiver (a no-op), so instrumented code never needs "is telemetry on"
// branches.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric kinds, in exposition vocabulary.
const (
	counterKind   = "counter"
	gaugeKind     = "gauge"
	histogramKind = "histogram"
)

// Default bucket boundaries for the suite's two histogram families.
var (
	// SpeedupBuckets covers the paper's SU range: below 1.0 is a
	// slowdown, 2.0 is the precision-rate ceiling, beyond it is the
	// cache-capacity regime (LavaMD).
	SpeedupBuckets = []float64{0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 1.75, 2, 3}
	// SecondsBuckets spans simulated durations from a single kernel run
	// to the paper's 24-hour analysis budget.
	SecondsBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 600, 3600, 21600, 86400}
)

// Counter is a monotonically increasing metric.
type Counter struct {
	mu  sync.Mutex
	val float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates delta (negative deltas panic: a shrinking counter is an
// instrumentation bug).
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("telemetry: counter decrement %g", delta))
	}
	c.mu.Lock()
	c.val += delta
	c.mu.Unlock()
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Gauge is a metric that can move in both directions.
type Gauge struct {
	mu  sync.Mutex
	val float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// SetMax raises the value to v if v is larger. Progress-style gauges
// updated from concurrent workers use it so a late, smaller update cannot
// overwrite a newer, larger one.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if v > g.val {
		g.val = v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// Histogram counts observations into cumulative-exposition buckets with
// fixed upper bounds, plus a sum and a total count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1, per-bucket (not cumulative)
	sum    float64
	n      uint64
}

// Observe records one value. NaN observations are dropped: they carry no
// bucket and would poison the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// series is one (name, label set) time series in the registry.
type series struct {
	name   string
	labels string // canonical rendered {k="v",...} block, "" when unlabelled
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a process's metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op receiver.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// labelBlock renders alternating key/value pairs into the canonical
// (key-sorted) exposition label block.
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// get returns the series for (name, labels), creating it with mk on first
// use and panicking if the name is already registered under another kind.
func (r *Registry) get(name, kind string, labels []string, mk func(*series)) *series {
	block := labelBlock(labels)
	id := name + block
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: block, kind: kind}
		mk(s)
		r.series[id] = s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", id, s.kind, kind))
	}
	return s
}

// Counter returns (registering on first use) the counter for name with the
// given alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, counterKind, labels, func(s *series) { s.c = &Counter{} }).c
}

// Gauge returns (registering on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, gaugeKind, labels, func(s *series) { s.g = &Gauge{} }).g
}

// Histogram returns (registering on first use) the histogram for name and
// labels. bounds are the sorted bucket upper bounds; they matter only on
// first registration of the series.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, histogramKind, labels, func(s *series) {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		s.h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}).h
}

// sorted returns the registry's series ordered by (name, labels) - the
// deterministic iteration order every export and merge uses.
func (r *Registry) sorted() []*series {
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Merge folds src's series into r, in src's deterministic series order:
// counters add, gauges take src's value, histograms (which must share
// bucket bounds) add per-bucket. The harness uses it to combine per-job
// registries in job submission order, which keeps floating-point sums
// byte-identical under any worker count.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	entries := src.sorted()
	src.mu.Unlock()
	for _, s := range entries {
		switch s.kind {
		case counterKind:
			dst := r.getRendered(s.name, s.labels, counterKind, func(d *series) { d.c = &Counter{} })
			dst.c.Add(s.c.Value())
		case gaugeKind:
			dst := r.getRendered(s.name, s.labels, gaugeKind, func(d *series) { d.g = &Gauge{} })
			dst.g.Set(s.g.Value())
		case histogramKind:
			s.h.mu.Lock()
			bounds := append([]float64(nil), s.h.bounds...)
			counts := append([]uint64(nil), s.h.counts...)
			sum, n := s.h.sum, s.h.n
			s.h.mu.Unlock()
			dst := r.getRendered(s.name, s.labels, histogramKind, func(d *series) {
				d.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
			})
			dst.h.mu.Lock()
			for i, c := range counts {
				dst.h.counts[i] += c
			}
			dst.h.sum += sum
			dst.h.n += n
			dst.h.mu.Unlock()
		}
	}
}

// AddSnapshot folds a snapshot's series into the registry: counters add,
// gauges take the snapshot's value, histograms add per-bucket. Folding a
// snapshot into a fresh registry reconstructs the snapshotted one exactly
// (bit-identical values, same series order), which is what lets a resumed
// campaign merge journaled per-job metrics as if the jobs had just run.
func (r *Registry) AddSnapshot(snap Snapshot) {
	if r == nil {
		return
	}
	for _, p := range snap.Counters {
		r.getRendered(p.Name, p.Labels, counterKind, func(d *series) { d.c = &Counter{} }).c.Add(p.Value)
	}
	for _, p := range snap.Gauges {
		r.getRendered(p.Name, p.Labels, gaugeKind, func(d *series) { d.g = &Gauge{} }).g.Set(p.Value)
	}
	for _, hp := range snap.Histograms {
		bounds := append([]float64(nil), hp.Bounds...)
		dst := r.getRendered(hp.Name, hp.Labels, histogramKind, func(d *series) {
			d.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		})
		dst.h.mu.Lock()
		for i, c := range hp.Counts {
			if i < len(dst.h.counts) {
				dst.h.counts[i] += c
			}
		}
		dst.h.sum += hp.Sum
		dst.h.n += hp.Count
		dst.h.mu.Unlock()
	}
}

// getRendered is get for a label block that is already canonical.
func (r *Registry) getRendered(name, block, kind string, mk func(*series)) *series {
	id := name + block
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: block, kind: kind}
		mk(s)
		r.series[id] = s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", id, s.kind, kind))
	}
	return s
}

// Point is one counter or gauge sample in a snapshot.
type Point struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Labels is the canonical rendered label block ("" when unlabelled).
	Labels string `json:"labels,omitempty"`
	// Value is the sample.
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot.
type HistogramPoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket and is per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, sorted by (name,
// labels). It is JSON-serialisable and restores exactly via AddSnapshot:
// the harness's checkpoint journal rides on this round trip.
type Snapshot struct {
	Counters   []Point          `json:"counters,omitempty"`
	Gauges     []Point          `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	entries := r.sorted()
	r.mu.Unlock()
	for _, s := range entries {
		switch s.kind {
		case counterKind:
			snap.Counters = append(snap.Counters, Point{s.name, s.labels, s.c.Value()})
		case gaugeKind:
			snap.Gauges = append(snap.Gauges, Point{s.name, s.labels, s.g.Value()})
		case histogramKind:
			s.h.mu.Lock()
			hp := HistogramPoint{
				Name:   s.name,
				Labels: s.labels,
				Bounds: append([]float64(nil), s.h.bounds...),
				Counts: append([]uint64(nil), s.h.counts...),
				Sum:    s.h.sum,
				Count:  s.h.n,
			}
			s.h.mu.Unlock()
			snap.Histograms = append(snap.Histograms, hp)
		}
	}
	return snap
}

// formatFloat renders a metric value the way the exposition format
// expects: shortest round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLE appends an le="bound" label to an already-rendered block.
func withLE(block, bound string) string {
	le := `le="` + bound + `"`
	if block == "" {
		return "{" + le + "}"
	}
	return block[:len(block)-1] + "," + le + "}"
}

// WriteText writes the registry in the Prometheus text exposition format
// (one # TYPE line per metric, series sorted by label block, cumulative
// histogram buckets). The output is deterministic: byte-identical
// registries produce byte-identical text.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := r.sorted()
	r.mu.Unlock()
	lastName := ""
	for _, s := range entries {
		if s.name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			lastName = s.name
		}
		switch s.kind {
		case counterKind:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.c.Value())); err != nil {
				return err
			}
		case gaugeKind:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.g.Value())); err != nil {
				return err
			}
		case histogramKind:
			s.h.mu.Lock()
			bounds := append([]float64(nil), s.h.bounds...)
			counts := append([]uint64(nil), s.h.counts...)
			sum, n := s.h.sum, s.h.n
			s.h.mu.Unlock()
			cum := uint64(0)
			for i, b := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(s.labels, formatFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += counts[len(bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(s.labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatFloat(sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, n); err != nil {
				return err
			}
		}
	}
	return nil
}
