package kernels

import (
	"repro/internal/bench"
	"repro/internal/mp"
	"repro/internal/typedep"
)

// bandedLinEq is the banded linear systems solution kernel (Livermore
// loop 4 lineage): each band row folds a strided dot product of the
// solution vector with the band coefficients back into the solution.
//
// Inventory (Table II: TV=2, TC=1): the solution vector x and coefficient
// vector y are both passed by pointer through the band-update routine, so
// Typeforge places them in one cluster.
//
// The kernel is the suite's bandwidth-bound case: its byte/flop ratio is 8
// and its modelled working set sits just above the L3 capacity at double
// precision but fits after demotion, so the single-precision version gains
// both from halved traffic and from the cache-capacity step - the
// mechanism behind its outsized speedup in the paper's Table III.
type bandedLinEq struct {
	kernel
	vX, vY mp.VarID
}

// Problem shape: rows band rows, each scanning stride-5 over n elements;
// the cost scale models the paper's full problem size (the modelled
// footprint is 2 vectors x n x scale x 8 bytes ~ 31 MiB at double
// precision, 15.5 MiB at single).
const (
	bandedN     = 1 << 16
	bandedRows  = 40
	bandedScale = 30
)

// NewBandedLinEq constructs the kernel.
func NewBandedLinEq() bench.Benchmark {
	g := typedep.NewGraph()
	k := &bandedLinEq{kernel: kernel{
		name:  "banded-lin-eq",
		desc:  "Banded linear systems solution",
		graph: g,
	}}
	k.vX = g.Add("x", "band_update", typedep.ArrayVar)
	k.vY = g.Add("y", "band_update", typedep.ArrayVar)
	g.Connect(k.vX, k.vY)
	return k
}

func (k *bandedLinEq) Run(t *mp.Tape, seed int64) bench.Output {
	t.SetScale(bandedScale)
	rng := t.Rand(seed)
	x := t.NewArray(k.vX, bandedN)
	y := t.NewArray(k.vY, bandedN)
	fillRand(x, rng, 0.05, 0.35)
	fillRand(y, rng, 0.05, 0.35)

	m := (bandedN - 7) / bandedRows
	folds := uint64(0)
	for kk := 6; kk < bandedN; kk += m {
		lw := kk - 6
		temp := x.Get(kk - 1)
		for j := 4; j < bandedN; j += 5 {
			// temp -= x[lw]*y[j]; the fold accumulates in the expression
			// precision and the final store narrows to the cluster's type.
			temp -= x.Get(lw) * y.Get(j)
			folds++
			lw++
			if lw >= bandedN {
				lw = 0
			}
		}
		x.Set(kk-1, y.Get(4)*temp)
	}
	// The product x[lw]*y[j] retires at the cluster's precision; the fold
	// into temp (a local double that no pointer binds, so it keeps its
	// type) retires at double precision, as does the final row scale.
	t.AddFlops(t.Prec(k.vX), folds)
	t.AddFlops(mp.F64, folds+bandedRows)
	return bench.Output{Values: x.Snapshot()}
}
