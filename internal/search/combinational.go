package search

// Combinational is the brute-force strategy (the paper's CB): it tries all
// combinations of clusters and keeps the fastest passing one. It is only
// tractable for the kernel benchmarks, which is exactly the role the paper
// assigns it - ground truth to compare the other strategies against. On a
// large space it simply runs until the analysis budget expires.
//
// Subsets are visited in descending size, so the most aggressive
// configurations (the likeliest big wins) are tested first and an early
// budget expiry still leaves a meaningful best-so-far.
type Combinational struct{}

// Name returns "CB".
func (Combinational) Name() string { return "CB" }

// Mode returns ByCluster.
func (Combinational) Mode() Mode { return ByCluster }

// Search enumerates every non-empty subset of the clusters. Enumeration
// is pure - no subset depends on another's evaluation - so subsets are
// proposed in chunks of searchBatchSize and handed to EvaluateBatch,
// which prewarms the chunk's compiled kernels and then evaluates in
// enumeration order: results, EV counts, and the budget-expiry point are
// byte-identical to the one-at-a-time loop.
func (c Combinational) Search(e *Evaluator) Outcome {
	n := e.Space().NumUnits()
	var (
		best    Set
		bestRes Result
		found   bool
		stopErr error
	)
	batch := make([]Set, 0, searchBatchSize)
	// flush evaluates the buffered chunk; it reports false once the
	// analysis must stop (budget exhausted, canceled, faulted).
	flush := func() bool {
		if len(batch) == 0 {
			return stopErr == nil
		}
		res, err := e.EvaluateBatch(batch)
		for i, r := range res {
			if r.Passed && (!found || r.Speedup > bestRes.Speedup) {
				best, bestRes, found = batch[i], r, true
			}
		}
		batch = batch[:0]
		if err != nil {
			stopErr = err
			return false
		}
		return true
	}
enumeration:
	for size := n; size >= 1; size-- {
		stop := forEachSubsetOfSize(n, size, func(set Set) bool {
			batch = append(batch, set)
			if len(batch) == searchBatchSize {
				return flush()
			}
			return true
		})
		if stop {
			break enumeration
		}
	}
	flush()
	return finish(c.Name(), e, best, bestRes, found, stopErr)
}

// forEachSubsetOfSize visits every subset of {0..n-1} with exactly k
// members in lexicographic order, calling fn for each. fn returns false to
// stop; forEachSubsetOfSize then returns true.
func forEachSubsetOfSize(n, k int, fn func(Set) bool) bool {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := NewSet(n)
		for _, i := range idx {
			set.Add(i)
		}
		if !fn(set) {
			return true
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return false
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
