package runcache

import (
	"bytes"
	"sync"
	"testing"
)

// mapTier is an in-memory Tier for tests: a map keyed by the canonical
// binary key, mimicking how the durable store addresses records.
type mapTier struct {
	mu     sync.Mutex
	m      map[string]int
	loads  int
	stores int
}

func newMapTier() *mapTier { return &mapTier{m: make(map[string]int)} }

func (t *mapTier) Load(k Key) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loads++
	v, ok := t.m[string(k.AppendBinary(nil))]
	return v, ok
}

func (t *mapTier) Store(k Key, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stores++
	t.m[string(k.AppendBinary(nil))] = v
}

func TestTierWarmHitSkipsExecution(t *testing.T) {
	tier := newMapTier()
	tier.Store(key("eos", "01"), 41)
	c := New(Options[int]{Tier: tier})
	executed := 0
	got := c.Do(key("eos", "01"), func() int { executed++; return -1 })
	if got != 41 {
		t.Fatalf("tier hit returned %d, want 41", got)
	}
	if executed != 0 {
		t.Fatal("tier hit still executed fn")
	}
	// Second call is served by the in-memory table, not the tier.
	loadsBefore := tier.loads
	if got := c.Do(key("eos", "01"), func() int { executed++; return -1 }); got != 41 {
		t.Fatalf("memo after tier hit returned %d", got)
	}
	if tier.loads != loadsBefore {
		t.Fatal("second call consulted the tier again")
	}
	s := c.Stats()
	if s.TierHits != 1 || s.TierMisses != 0 || s.TierWrites != 0 || s.Hits != 2 || s.Misses != 0 {
		t.Fatalf("stats after warm hit: %+v", s)
	}
}

func TestTierMissExecutesAndPublishes(t *testing.T) {
	tier := newMapTier()
	c := New(Options[int]{Tier: tier})
	if got := c.Do(key("eos", "2"), func() int { return 7 }); got != 7 {
		t.Fatalf("miss returned %d", got)
	}
	if v, ok := tier.Load(key("eos", "2")); !ok || v != 7 {
		t.Fatalf("fresh execution not published to tier: %d %v", v, ok)
	}
	s := c.Stats()
	if s.TierMisses != 1 || s.TierWrites != 1 || s.Misses != 1 {
		t.Fatalf("stats after tier miss: %+v", s)
	}
	// A second cache over the same tier is warm from the start: the
	// cross-process amortisation the store exists for.
	c2 := New(Options[int]{Tier: tier})
	if got := c2.Do(key("eos", "2"), func() int { t.Fatal("executed despite warm tier"); return 0 }); got != 7 {
		t.Fatalf("warm second cache returned %d", got)
	}
	if s2 := c2.Stats(); s2.TierHits != 1 || s2.Misses != 0 {
		t.Fatalf("second cache stats: %+v", s2)
	}
}

func TestTierSingleflightLoadsOnce(t *testing.T) {
	tier := newMapTier()
	tier.Store(key("eos", "3"), 9)
	c := New(Options[int]{Tier: tier})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := c.Do(key("eos", "3"), func() int { return -1 }); got != 9 {
					t.Errorf("got %d, want 9", got)
				}
			}
		}()
	}
	wg.Wait()
	if tier.loads != 1 {
		t.Fatalf("tier consulted %d times, want 1 (singleflight covers the tier too)", tier.loads)
	}
}

func TestKeyAppendBinaryInjective(t *testing.T) {
	keys := []Key{
		{Bench: "eos", Seed: 42, Semantics: Source, Model: 7, Config: "01"},
		{Bench: "eos", Seed: 42, Semantics: IR, Model: 7, Config: "01"},
		{Bench: "eos", Seed: 43, Semantics: Source, Model: 7, Config: "01"},
		{Bench: "eos", Seed: 42, Semantics: Source, Model: 8, Config: "01"},
		{Bench: "eos", Seed: 42, Semantics: Source, Model: 7, Config: "10"},
		{Bench: "eos2", Seed: 42, Semantics: Source, Model: 7, Config: "01"},
		// The NUL separator keeps (bench, config) splits apart.
		{Bench: "eos0", Seed: 42, Semantics: Source, Model: 7, Config: "1"},
		{Bench: "eos", Seed: 42, Semantics: Source, Model: 7, Config: ""},
	}
	seen := make(map[string]Key)
	for _, k := range keys {
		b := string(k.AppendBinary(nil))
		if prev, dup := seen[b]; dup {
			t.Fatalf("keys %+v and %+v encode identically", prev, k)
		}
		seen[b] = k
	}
	// Appending extends rather than replaces.
	prefix := []byte("prefix")
	out := keys[0].AppendBinary(prefix)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendBinary dropped the destination prefix")
	}
}
