package mp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-2, -2},
		{0.5, 0.5},
		{65504, 65504},       // largest finite half
		{65519.999, 65504},   // just below the overflow boundary
		{65520, math.Inf(1)}, // boundary ties away to infinity
		{-65520, math.Inf(-1)},
		{1e10, math.Inf(1)},
		{6.103515625e-05, 6.103515625e-05}, // smallest normal
		{5.960464477539063e-08, 5.960464477539063e-08}, // smallest subnormal
		{3.1e-08, 5.960464477539063e-08},               // rounds up to min subnormal
		{2.9802322387695312e-08, 0},                    // exact tie at quantum/2: even -> 0
		{1e-12, 0},                                     // flushes to zero
		{1.0 / 3.0, 0.333251953125},                    // 1/3 in binary16
		{0.1, 0.0999755859375},                         // 0.1 in binary16
		{2049, 2048},                                   // 11-bit significand: ties to even
		{2051, 2052},
	}
	for _, c := range cases {
		got := roundToHalf(c.in)
		if math.IsInf(c.want, 0) {
			if !math.IsInf(got, int(math.Copysign(1, c.want))) {
				t.Errorf("roundToHalf(%g) = %g, want %g", c.in, got, c.want)
			}
			continue
		}
		if got != c.want {
			t.Errorf("roundToHalf(%g) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHalfSpecials(t *testing.T) {
	if !math.IsNaN(roundToHalf(math.NaN())) {
		t.Error("NaN not preserved")
	}
	if !math.IsInf(roundToHalf(math.Inf(1)), 1) || !math.IsInf(roundToHalf(math.Inf(-1)), -1) {
		t.Error("infinities not preserved")
	}
	negZero := roundToHalf(math.Copysign(0, -1))
	if negZero != 0 || !math.Signbit(negZero) {
		t.Error("negative zero not preserved")
	}
}

func TestHalfIdempotent(t *testing.T) {
	f := func(x float64) bool {
		once := roundToHalf(x)
		twice := roundToHalf(once)
		if math.IsNaN(once) {
			return math.IsNaN(twice)
		}
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return roundToHalf(a) <= roundToHalf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfBitsRoundTrip(t *testing.T) {
	// Every one of the 65536 bit patterns must decode and re-encode
	// identically (NaN payloads collapse to the canonical quiet NaN).
	for b := 0; b < 1<<16; b++ {
		bits := uint16(b)
		v := halfFromBits(bits)
		back := halfBits(v)
		if math.IsNaN(v) {
			if back&0x7C00 != 0x7C00 || back&0x3FF == 0 {
				t.Fatalf("bits %#04x: NaN re-encoded as %#04x", bits, back)
			}
			continue
		}
		if back != bits {
			t.Fatalf("bits %#04x -> %v -> %#04x", bits, v, back)
		}
	}
}

func TestHalfValuesAreFixedPoints(t *testing.T) {
	// Every decodable half value must round to itself.
	for b := 0; b < 1<<16; b++ {
		v := halfFromBits(uint16(b))
		if math.IsNaN(v) {
			continue
		}
		if got := roundToHalf(v); got != v {
			t.Fatalf("half value %v (bits %#04x) rounds to %v", v, b, got)
		}
	}
}

func TestHalfRoundNearest(t *testing.T) {
	// Exhaustive nearest-value check against the midpoints of consecutive
	// positive finite half values.
	prev := 0.0
	for b := 1; b < 0x7C00; b++ {
		v := halfFromBits(uint16(b))
		mid := (prev + v) / 2
		lo, hi := roundToHalf(math.Nextafter(mid, 0)), roundToHalf(math.Nextafter(mid, v))
		if lo != prev {
			t.Fatalf("below midpoint of (%v, %v): got %v", prev, v, lo)
		}
		if hi != v {
			t.Fatalf("above midpoint of (%v, %v): got %v", prev, v, hi)
		}
		// The exact midpoint ties to the even significand.
		tie := roundToHalf(mid)
		if tie != prev && tie != v {
			t.Fatalf("midpoint of (%v, %v) rounded to %v", prev, v, tie)
		}
		if halfBits(tie)&1 != 0 {
			t.Fatalf("midpoint of (%v, %v) tied to odd significand %v", prev, v, tie)
		}
		prev = v
	}
}

func TestPrecF16Basics(t *testing.T) {
	if F16.Size() != 2 {
		t.Errorf("F16.Size() = %d", F16.Size())
	}
	if F16.String() != "half" {
		t.Errorf("F16.String() = %q", F16.String())
	}
	if got := F16.Round(1.0 / 3.0); got != 0.333251953125 {
		t.Errorf("F16.Round(1/3) = %v", got)
	}
}

func TestHalfIO(t *testing.T) {
	vals := []float64{0, 1, -1.5, 0.1, 65504, 70000, 1e-9}
	var buf bytes.Buffer
	if err := WriteValues(&buf, F16, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*2 {
		t.Fatalf("wrote %d bytes", buf.Len())
	}
	back, err := ReadValues(&buf, F16, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := roundToHalf(v)
		if math.IsInf(want, 0) {
			if !math.IsInf(back[i], 1) {
				t.Errorf("[%d] = %v, want +Inf", i, back[i])
			}
			continue
		}
		if back[i] != want {
			t.Errorf("[%d] = %v, want %v", i, back[i], want)
		}
	}
}

func TestTapeWithHalfPrecision(t *testing.T) {
	tape := NewTape(2)
	tape.SetPrec(0, F16)
	a := tape.NewArray(0, 4)
	a.Set(0, 1.0/3.0)
	if got := a.Get(0); got != 0.333251953125 {
		t.Errorf("half array element = %v", got)
	}
	c := tape.Cost()
	if c.Footprint16 != 8 { // 4 elements x 2 bytes
		t.Errorf("Footprint16 = %d", c.Footprint16)
	}
	if c.Bytes16 != 4 { // one set + one get, 2 bytes each
		t.Errorf("Bytes16 = %d", c.Bytes16)
	}
	tape.AddFlops(F16, 5)
	if tape.Cost().Flops16 != 5 {
		t.Errorf("Flops16 = %d", tape.Cost().Flops16)
	}
	// Mixed half/double expression runs at double and costs a cast.
	tape.Assign(0, 1, 2, 1)
	c = tape.Cost()
	if c.Flops64 != 2 || c.Casts != 1 {
		t.Errorf("mixed expr cost = %+v", c)
	}
	// Half/half expression runs at half.
	tape.SetPrec(1, F16)
	tape.Assign(0, 1, 3, 1)
	if got := tape.Cost().Flops16; got != 8 {
		t.Errorf("Flops16 = %d, want 8", got)
	}
}

// BenchmarkRoundToHalf measures the extension level's rounding cost.
func BenchmarkRoundToHalf(b *testing.B) {
	x := 0.1
	for i := 0; i < b.N; i++ {
		x = roundToHalf(x) + 1e-3
	}
	_ = x
}
