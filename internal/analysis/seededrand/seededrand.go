// Package seededrand defines an analyzer that bans the global math/rand
// source. Every random draw in the repo must flow from an explicit seed
// through a rand.New(rand.NewSource(seed)) generator — that is how the
// fault injector stays a pure function of (seed, job, attempt) and how
// fillRand gives each benchmark reproducible inputs. Package-level
// rand.Intn/Float64/... read shared, time-seeded state and break all of
// that silently.
package seededrand

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// allowed is the shared table (astq.GlobalRandAllowed) of package-level
// functions that do not touch the global source: constructors and pure
// helpers. Everything else exported at package level draws from (or
// reseeds) shared state.
var allowed = astq.GlobalRandAllowed

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid the global math/rand source; all randomness flows from an explicit seed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := astq.PkgFunc(pass.TypesInfo, call, path); ok && !allowed[name] {
					pass.Reportf(call.Pos(), "rand.%s uses the global math/rand source; construct a generator from an explicit seed with rand.New(rand.NewSource(seed))", name)
				}
			}
			return true
		})
	}
	return nil
}
