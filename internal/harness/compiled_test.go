package harness

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// evalCampaign runs the telemetry campaign with the evaluation path and
// caching tier under test, returning the results, the metrics
// exposition, and the event stream.
func evalCampaign(t *testing.T, workers int, interpreted bool, cache *bench.Cache, comp *compile.Compiler) ([]JobResult, string, []telemetry.Event) {
	t.Helper()
	mem := telemetry.NewMemorySink()
	tel := telemetry.New(mem)
	s := Scheduler{Workers: workers, Telemetry: tel, Cache: cache, Interpreted: interpreted, Compiler: comp}
	results := s.Run(telemetryJobs(t))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return results, buf.String(), mem.Events()
}

// TestSchedulerCompiledEquivalence locks the compiler's campaign-level
// byte-identity contract: a campaign evaluated through
// precision-specialized compiled kernels produces reports, metric
// snapshots, and event streams identical to the interpreted baseline -
// at any worker count, with the run cache off, on, or backed by the
// durable store tier. Run under -race with Workers > 1 it also locks
// the shared compile cache's data-race-free claim.
func TestSchedulerCompiledEquivalence(t *testing.T) {
	fp := bench.StoreFingerprint(bench.NewRunner(42).ModelFingerprint())
	for _, workers := range []int{1, 2, 4} {
		baseResults, baseMetrics, baseEvents := evalCampaign(t, workers, true, nil, nil)

		checkEqual := func(label string, results []JobResult, metrics string, events []telemetry.Event) {
			t.Helper()
			if !reflect.DeepEqual(results, baseResults) {
				t.Errorf("workers=%d: %s reports diverge from the interpreted baseline", workers, label)
			}
			if metrics != baseMetrics {
				t.Errorf("workers=%d: %s metric snapshot diverges:\n--- interpreted ---\n%s\n--- %s ---\n%s",
					workers, label, baseMetrics, label, metrics)
			}
			if !reflect.DeepEqual(events, baseEvents) {
				t.Errorf("workers=%d: %s event stream diverges (%d vs %d events)",
					workers, label, len(events), len(baseEvents))
			}
		}

		// Compiled, no run cache: every execution goes through a kernel.
		// A campaign-private compiler proves the kernels were exercised.
		comp := compile.New(nil)
		results, metrics, events := evalCampaign(t, workers, false, nil, comp)
		checkEqual("compiled", results, metrics, events)
		if s := comp.Stats(); s.Kernels == 0 || s.Misses == 0 {
			t.Fatalf("workers=%d: compiled campaign never compiled a kernel: %+v", workers, s)
		} else if s.Hits == 0 {
			t.Errorf("workers=%d: revisited configurations never hit the compile cache: %+v", workers, s)
		}

		// Compiled over the in-memory run cache.
		results, metrics, events = evalCampaign(t, workers, false, bench.NewCache(nil), compile.New(nil))
		checkEqual("compiled+cache", results, metrics, events)

		// Compiled over the durable store tier, cold then warm: the warm
		// generation serves executions from disk, so the kernels only run
		// for what the store has not seen - output still identical.
		dir := filepath.Join(t.TempDir(), "results")
		for _, gen := range []string{"cold", "warm"} {
			st, err := store.Open(dir, store.Options{Fingerprint: fp})
			if err != nil {
				t.Fatalf("workers=%d %s: Open: %v", workers, gen, err)
			}
			results, metrics, events = evalCampaign(t, workers, false, bench.NewStoredCache(nil, st), compile.New(nil))
			checkEqual("compiled+store/"+gen, results, metrics, events)
			if err := st.Close(); err != nil {
				t.Fatalf("workers=%d %s: Close: %v", workers, gen, err)
			}
		}
	}
}
