package report

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/suite"
)

// kernelStudy is shared by the tests; running it once keeps the suite
// fast.
var kernelStudy = Run(Options{Workers: 2, KernelsOnly: true})

func TestTableIListsAllKernels(t *testing.T) {
	out := TableI()
	for _, name := range []string{
		"banded-lin-eq", "diff-predictor", "eos", "gen-lin-recur",
		"hydro-1d", "iccg", "innerprod", "int-predict", "planckian", "tridiag",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
	if !strings.Contains(out, "Banded linear systems solution") {
		t.Error("Table I missing a description")
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	out := TableII()
	// Spot-check the most distinctive rows.
	for _, frag := range []string{"CFD", "195", "Blackscholes", "59", "LavaMD", "47"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table II missing %q", frag)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	s := kernelStudy
	// Every kernel has a report from every algorithm.
	if len(s.Kernel) != 10 {
		t.Fatalf("kernel study covers %d kernels", len(s.Kernel))
	}
	for name, algos := range s.Kernel {
		if len(algos) != 6 {
			t.Errorf("%s: %d algorithm reports", name, len(algos))
		}
		for algo, r := range algos {
			if r.TimedOut {
				t.Errorf("%s/%s timed out on a kernel", name, algo)
			}
		}
	}
	// The paper's headline kernel results, by shape:
	// banded-lin-eq demotes with a cache-step speedup > 2 for every
	// algorithm.
	for _, algo := range KernelAlgorithms {
		if su := s.Kernel["banded-lin-eq"][algo].Speedup; su < 2 {
			t.Errorf("banded-lin-eq/%s speedup = %.2f, want > 2", algo, su)
		}
	}
	// tridiag and gen-lin-recur do not demote: speedups stay near 1.
	for _, k := range []string{"tridiag", "gen-lin-recur", "planckian"} {
		for _, algo := range KernelAlgorithms {
			if su := s.Kernel[k][algo].Speedup; su < 0.9 || su > 1.1 {
				t.Errorf("%s/%s speedup = %.2f, want ~1.0", k, algo, su)
			}
		}
	}
	// Kernel qualities sit at or below the 1e-8 threshold.
	for name, algos := range s.Kernel {
		for algo, r := range algos {
			if math.IsNaN(r.Quality) || r.Quality > KernelThreshold {
				t.Errorf("%s/%s quality = %g exceeds threshold", name, algo, r.Quality)
			}
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := kernelStudy.TableIII()
	for _, frag := range []string{"Quality(1e-9)", "Evaluated Configs", "Speedup", "hydro-1d", "CB", "GA"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table III missing %q", frag)
		}
	}
}

func TestKernelStudyDeterminism(t *testing.T) {
	again := Run(Options{Workers: 2, KernelsOnly: true})
	for name, algos := range kernelStudy.Kernel {
		for algo, r := range algos {
			r2 := again.Kernel[name][algo]
			if r.Evaluated != r2.Evaluated || r.Speedup != r2.Speedup || r.Quality != r2.Quality {
				t.Errorf("%s/%s differs between runs: %+v vs %+v", name, algo, r, r2)
			}
		}
	}
}

func TestFigure3DataFromKernels(t *testing.T) {
	pts := kernelStudy.Figure3Data()
	if len(pts) != 60 { // 10 kernels x 6 algorithms
		t.Fatalf("figure 3 has %d kernel points, want 60", len(pts))
	}
	for _, p := range pts {
		if p.X < 1 {
			t.Errorf("%s/%s: EV = %g < 1", p.Label, p.Algorithm, p.X)
		}
		if p.Y <= 0 || math.IsNaN(p.Y) {
			t.Errorf("%s/%s: speedup = %g", p.Label, p.Algorithm, p.Y)
		}
	}
	csv := FigureCSV("test", pts)
	if !strings.Contains(csv, "label,algorithm,threshold,x,y") {
		t.Error("CSV header missing")
	}
	if strings.Count(csv, "\n") != len(pts)+2 {
		t.Error("CSV row count mismatch")
	}
}

func TestAsciiScatter(t *testing.T) {
	pts := []Point{
		{Label: "a", Algorithm: "DD", X: 1, Y: 1},
		{Label: "b", Algorithm: "GA", X: 100, Y: 2},
	}
	out := asciiScatter(pts, "x", "y", true)
	if !strings.Contains(out, "D") || !strings.Contains(out, "G") {
		t.Errorf("scatter lacks markers:\n%s", out)
	}
	if asciiScatter(nil, "x", "y", false) != "(no data)\n" {
		t.Error("empty scatter output wrong")
	}
}

func TestSortPoints(t *testing.T) {
	pts := []Point{
		{Label: "b", Algorithm: "GA", Threshold: 1e-3},
		{Label: "a", Algorithm: "DD", Threshold: 1e-8},
		{Label: "a", Algorithm: "DD", Threshold: 1e-3},
	}
	SortPoints(pts)
	if pts[0].Algorithm != "DD" || pts[0].Threshold != 1e-3 {
		t.Errorf("sort order wrong: %+v", pts[0])
	}
	if pts[2].Algorithm != "GA" {
		t.Errorf("sort order wrong: %+v", pts[2])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := formatThreshold(1e-3); got != "1e-3" {
		t.Errorf("formatThreshold = %q", got)
	}
	if got := formatThreshold(1e-8); got != "1e-8" {
		t.Errorf("formatThreshold = %q", got)
	}
	if got := formatQuality(math.NaN(), 1); got != "NaN" {
		t.Errorf("NaN quality = %q", got)
	}
	if got := formatQuality(0, 1); got != "0" {
		t.Errorf("zero quality = %q", got)
	}
	if got := formatQuality(5e-9, 1e-9); got != "5" {
		t.Errorf("scaled quality = %q", got)
	}
}

func TestPaperDataCoversSuite(t *testing.T) {
	if len(PaperTableIV) != 7 {
		t.Errorf("paper Table IV rows = %d", len(PaperTableIV))
	}
	if len(PaperTableIIISpeedups) != 10 {
		t.Errorf("paper Table III rows = %d", len(PaperTableIIISpeedups))
	}
	for th, rows := range PaperTableVSpeedups {
		if len(rows) != 7 {
			t.Errorf("paper Table V at %g: %d rows", th, len(rows))
		}
	}
}

func TestTextTablePanicsOnRaggedRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged row")
		}
	}()
	w := newTextTable("a", "b")
	w.row("only-one")
}

// fakeFullStudy builds a minimal synthetic full study so Compare and the
// figure renderers can be tested without the expensive campaign.
func fakeFullStudy() *Study {
	s := Run(Options{Workers: 2, KernelsOnly: true})
	s.App = map[float64]map[string]map[string]harness.Report{}
	for _, th := range AppThresholds {
		s.App[th] = map[string]map[string]harness.Report{}
		for _, a := range suite.Apps() {
			s.App[th][a.Name()] = map[string]harness.Report{}
			for _, algo := range AppAlgorithms {
				rep := harness.Report{
					Benchmark: a.Name(), Algorithm: algo, Threshold: th,
					Evaluated: 10, Speedup: 1.05, Quality: 0, Found: true,
					Clusters: a.Graph().NumClusters(), Variables: a.Graph().NumVars(),
				}
				if a.Name() == "LavaMD" {
					if th == 1e-3 {
						rep.Speedup = 2.5
					} else {
						rep.Speedup = 1.0
					}
				}
				if algo == "CM" && a.Name() == "Blackscholes" {
					rep = harness.Report{Benchmark: a.Name(), Algorithm: algo,
						Threshold: th, TimedOut: true,
						Speedup: math.NaN(), Quality: math.NaN()}
				}
				if algo == "DD" && a.Name() == "Blackscholes" {
					rep.Evaluated = 10 + int(1/th)
				}
				s.App[th][a.Name()][algo] = rep
			}
		}
	}
	s.Conversion = map[string]ConversionRow{}
	for _, a := range suite.Apps() {
		s.Conversion[a.Name()] = ConversionRow{App: a.Name(), Speedup: 1.2,
			Metric: a.Metric(), QualityLoss: 1e-6}
	}
	return s
}

func TestTableIVAndVRendering(t *testing.T) {
	s := fakeFullStudy()
	four := s.TableIV()
	if !strings.Contains(four, "LavaMD") || !strings.Contains(four, "MCR") {
		t.Error("Table IV incomplete")
	}
	five := s.TableV()
	for _, frag := range []string{"threshold 1e-3", "threshold 1e-8", "Blackscholes", "Speedup", "Quality"} {
		if !strings.Contains(five, frag) {
			t.Errorf("Table V missing %q", frag)
		}
	}
}

func TestCellFilled(t *testing.T) {
	if CellFilled(harness.Report{TimedOut: true, Speedup: math.NaN()}) {
		t.Error("pure timeout should render empty")
	}
	if !CellFilled(harness.Report{Found: true, Speedup: 1.2}) {
		t.Error("found report should render")
	}
}

func TestFigure2Data(t *testing.T) {
	s := fakeFullStudy()
	a := s.Figure2aData()
	bp := s.Figure2bData()
	// DD and GA at 3 thresholds x 7 apps, minus nothing (all filled for
	// DD/GA in the fake study).
	if len(a) != 42 || len(bp) != 42 {
		t.Errorf("figure 2 sizes = %d, %d, want 42", len(a), len(bp))
	}
	for _, p := range a {
		if p.Algorithm != "DD" && p.Algorithm != "GA" {
			t.Errorf("figure 2 includes %s", p.Algorithm)
		}
	}
}

func TestCompareMentionsEveryBenchmark(t *testing.T) {
	s := fakeFullStudy()
	out := s.Compare()
	for _, b := range suite.All() {
		if !strings.Contains(out, b.Name()) {
			t.Errorf("comparison missing %s", b.Name())
		}
	}
	for _, frag := range []string{"REPRODUCED", "Table III", "Table IV", "Table V", "Shape summary"} {
		if !strings.Contains(out, frag) {
			t.Errorf("comparison missing %q", frag)
		}
	}
}

func TestFigureRenderersOnFakeStudy(t *testing.T) {
	s := fakeFullStudy()
	for name, out := range map[string]string{
		"2a": s.Figure2a(), "2b": s.Figure2b(), "3": s.Figure3(),
	} {
		if !strings.Contains(out, "label,algorithm,threshold,x,y") {
			t.Errorf("figure %s missing CSV header", name)
		}
		if !strings.Contains(out, "x:") || !strings.Contains(out, "y:") {
			t.Errorf("figure %s missing scatter axes", name)
		}
	}
}

// TestGoldenTables locks the static tables' rendering byte-for-byte: the
// inventory content is the paper's, and the layout is part of the CLI
// contract.
func TestGoldenTables(t *testing.T) {
	cases := map[string]string{
		"testdata/table1.golden": TableI(),
		"testdata/table2.golden": TableII(),
	}
	for path, got := range cases {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got != string(want) {
			t.Errorf("%s: rendering changed;\n got:\n%s\nwant:\n%s", path, got, want)
		}
	}
}

// TestStudyIndependentOfWorkerCount checks that the scheduler's pool size
// never leaks into results: the kernel study must be identical at 1, 2,
// and 4 workers.
func TestStudyIndependentOfWorkerCount(t *testing.T) {
	base := Run(Options{Workers: 1, KernelsOnly: true})
	for _, workers := range []int{2, 4} {
		other := Run(Options{Workers: workers, KernelsOnly: true})
		for name, algos := range base.Kernel {
			for algo, r := range algos {
				o := other.Kernel[name][algo]
				if r.Evaluated != o.Evaluated || r.Speedup != o.Speedup || r.Quality != o.Quality {
					t.Errorf("workers=%d: %s/%s differs: %+v vs %+v", workers, name, algo, r, o)
				}
			}
		}
	}
}
