package mp

import (
	"fmt"
	"math/rand"
)

// Stream is one recorded input trace of a benchmark run: the raw outputs
// of every seeded generator the Run body created through Tape.Rand, and
// the pre-rounding value sequence of every bulk SetEach initialisation.
// Input generation is a pure function of the workload seed for benchmarks
// that declare it (bench.PureIniter) - the draw pattern never depends on
// the precision configuration - so a stream recorded under one
// configuration replays under every other: bulk initialisations become
// straight copies narrowed through the replaying array's precision, and
// scalar draws come back as the recorded generator outputs, skipping the
// generator arithmetic and the per-element closure calls entirely. The
// replayed values are bit-identical to a live run by construction: they
// are the very values the live run produced, captured before rounding.
//
// A Stream is immutable once recorded and safe for concurrent replay;
// per-run replay state lives on the tape.
type Stream struct {
	seeds []int64    // seed of each generator, in creation order
	draws [][]uint64 // raw Source64 outputs per generator, in draw order
	fills []fillRec  // every SetEach, in call order
}

// fillRec is one recorded SetEach: the pre-rounding f(i) outputs and the
// per-generator draw counts after the fill completed, so replay leaves
// every generator exactly where the live run would have.
type fillRec struct {
	values []float64
	after  []int
}

// Draws reports the total recorded generator outputs (diagnostics).
func (s *Stream) Draws() int {
	n := 0
	for _, d := range s.draws {
		n += len(d)
	}
	return n
}

// Fills reports the number of recorded bulk initialisations (diagnostics).
func (s *Stream) Fills() int { return len(s.fills) }

// Rand returns the seeded generator benchmark Run bodies draw their
// inputs from. It is the drop-in form of rand.New(rand.NewSource(seed)):
// with no stream attached (every interpreted run) it constructs exactly
// that generator; under a compiled kernel it additionally records the
// draw stream on the kernel's first run per seed and replays it on every
// later one (see Stream).
func (t *Tape) Rand(seed int64) *rand.Rand {
	if t.rep != nil {
		return rand.New(t.rep.source(seed))
	}
	if t.rec != nil {
		return rand.New(t.rec.source(seed))
	}
	return rand.New(rand.NewSource(seed))
}

// StartRecording begins capturing this run's input trace. The compiled
// kernel calls it on the first run per (benchmark, seed); interpreted
// runs never record.
func (t *Tape) StartRecording() {
	t.rec = &streamRecorder{}
}

// FinishRecording detaches and returns the captured stream.
func (t *Tape) FinishRecording() *Stream {
	rec := t.rec
	t.rec = nil
	if rec == nil || rec.broken {
		return nil
	}
	s := &Stream{seeds: rec.seeds, fills: rec.fills}
	s.draws = make([][]uint64, len(rec.srcs))
	for i, src := range rec.srcs {
		s.draws[i] = src.draws
	}
	return s
}

// Replay serves this run's input generation from a previously recorded
// stream.
func (t *Tape) Replay(s *Stream) {
	t.rep = &streamReplayer{stream: s}
}

// streamRecorder captures a run's generator outputs and bulk fills.
type streamRecorder struct {
	seeds  []int64
	srcs   []*recordSource
	fills  []fillRec
	broken bool
}

// source wraps a fresh seeded generator so its outputs are captured.
func (r *streamRecorder) source(seed int64) rand.Source {
	base := rand.NewSource(seed)
	s64, ok := base.(rand.Source64)
	if !ok {
		// Never the case for math/rand, but fall back to live draws and
		// discard the recording rather than publish a partial stream.
		r.broken = true
		return base
	}
	src := &recordSource{src: s64}
	r.seeds = append(r.seeds, seed)
	r.srcs = append(r.srcs, src)
	return src
}

// fill captures one SetEach: it stores f(i) through the array exactly as
// the live loop would while keeping the pre-rounding values.
func (r *streamRecorder) fill(a *Array, p Prec, f func(i int) float64) {
	vals := make([]float64, len(a.data))
	for i := range a.data {
		x := f(i)
		vals[i] = x
		a.data[i] = p.Round(x)
	}
	after := make([]int, len(r.srcs))
	for i, src := range r.srcs {
		after[i] = len(src.draws)
	}
	r.fills = append(r.fills, fillRec{values: vals, after: after})
}

// recordSource captures every output of the underlying seeded source.
// Int63 and Uint64 results are interleaved in one stream because replay
// issues the identical call sequence.
type recordSource struct {
	src   rand.Source64
	draws []uint64
}

func (s *recordSource) Int63() int64 {
	v := s.src.Int63()
	s.draws = append(s.draws, uint64(v))
	return v
}

func (s *recordSource) Uint64() uint64 {
	v := s.src.Uint64()
	s.draws = append(s.draws, v)
	return v
}

func (s *recordSource) Seed(seed int64) { s.src.Seed(seed) }

// streamReplayer serves a run's input generation from a recorded stream.
type streamReplayer struct {
	stream   *Stream
	srcs     []*replaySource
	nextFill int
}

// source returns the replaying generator for the next Tape.Rand call.
// Creation order and seeds must match the recording run; a mismatch
// means the benchmark's input generation is configuration-dependent,
// which violates the PureInit contract the stream was gated on.
func (r *streamReplayer) source(seed int64) rand.Source {
	k := len(r.srcs)
	if k >= len(r.stream.seeds) || r.stream.seeds[k] != seed {
		panic(fmt.Sprintf("mp: replayed generator %d (seed %d) does not match the recorded run; benchmark input generation is not a pure function of the workload seed", k, seed))
	}
	src := &replaySource{draws: r.stream.draws[k]}
	r.srcs = append(r.srcs, src)
	return src
}

// fill serves one SetEach from the recorded value sequence, narrowing
// through the array's precision, then advances every generator past the
// draws the recorded fill consumed.
func (r *streamReplayer) fill(a *Array) {
	if r.nextFill >= len(r.stream.fills) {
		panic("mp: replayed run performs more bulk initialisations than the recorded run; benchmark input generation is not a pure function of the workload seed")
	}
	rec := &r.stream.fills[r.nextFill]
	r.nextFill++
	if len(rec.values) != len(a.data) {
		panic(fmt.Sprintf("mp: replayed bulk initialisation of %d elements, recorded %d; benchmark input generation is not a pure function of the workload seed", len(a.data), len(rec.values)))
	}
	p := a.roundPrec()
	if p == F64 {
		copy(a.data, rec.values)
	} else {
		for i, x := range rec.values {
			a.data[i] = p.roundNarrow(x)
		}
	}
	for i, src := range r.srcs {
		if i < len(rec.after) {
			src.i = rec.after[i]
		}
	}
}

// replaySource serves the recorded outputs of one seeded generator.
type replaySource struct {
	draws []uint64
	i     int
}

func (s *replaySource) Int63() int64 {
	if s.i >= len(s.draws) {
		panic("mp: replayed generator exhausted its recorded draws; benchmark input generation is not a pure function of the workload seed")
	}
	v := s.draws[s.i]
	s.i++
	return int64(v)
}

func (s *replaySource) Uint64() uint64 {
	if s.i >= len(s.draws) {
		panic("mp: replayed generator exhausted its recorded draws; benchmark input generation is not a pure function of the workload seed")
	}
	v := s.draws[s.i]
	s.i++
	return v
}

func (s *replaySource) Seed(int64) {
	panic("mp: a replayed generator cannot be reseeded")
}
