package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// schemaValidate checks doc against a JSON-Schema subset: type,
// required, properties, additionalProperties:false, items, enum,
// minimum, and $ref into #/definitions. That covers every constraint
// in testdata/sarif-2.1.0-trimmed-schema.json, which restates the
// official SARIF 2.1.0 schema's rules for the objects mixplint emits.
func schemaValidate(path string, schema, doc any, defs map[string]any) []string {
	s, ok := schema.(map[string]any)
	if !ok {
		return []string{fmt.Sprintf("%s: schema node is not an object", path)}
	}
	if ref, ok := s["$ref"].(string); ok {
		name := strings.TrimPrefix(ref, "#/definitions/")
		def, ok := defs[name]
		if !ok {
			return []string{fmt.Sprintf("%s: unresolved $ref %q", path, ref)}
		}
		return schemaValidate(path, def, doc, defs)
	}
	var errs []string
	if enum, ok := s["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("%s: %v is not in enum %v", path, doc, enum))
		}
	}
	switch s["type"] {
	case "object":
		obj, ok := doc.(map[string]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: want object, got %T", path, doc))
		}
		props, _ := s["properties"].(map[string]any)
		if req, ok := s["required"].([]any); ok {
			for _, r := range req {
				if _, ok := obj[r.(string)]; !ok {
					errs = append(errs, fmt.Sprintf("%s: missing required property %q", path, r))
				}
			}
		}
		for k, v := range obj {
			sub, ok := props[k]
			if !ok {
				if ap, has := s["additionalProperties"]; has && ap == false {
					errs = append(errs, fmt.Sprintf("%s: unknown property %q", path, k))
				}
				continue
			}
			errs = append(errs, schemaValidate(path+"."+k, sub, v, defs)...)
		}
	case "array":
		arr, ok := doc.([]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: want array, got %T", path, doc))
		}
		if items, ok := s["items"]; ok {
			for i, v := range arr {
				errs = append(errs, schemaValidate(fmt.Sprintf("%s[%d]", path, i), items, v, defs)...)
			}
		}
	case "string":
		if _, ok := doc.(string); !ok {
			errs = append(errs, fmt.Sprintf("%s: want string, got %T", path, doc))
		}
	case "integer":
		f, ok := doc.(float64)
		if !ok || f != float64(int64(f)) {
			errs = append(errs, fmt.Sprintf("%s: want integer, got %v (%T)", path, doc, doc))
			break
		}
		if min, ok := s["minimum"].(float64); ok && f < min {
			errs = append(errs, fmt.Sprintf("%s: %v below minimum %v", path, f, min))
		}
	}
	return errs
}

func validateSARIF(t *testing.T, data []byte) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "sarif-2.1.0-trimmed-schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema: %v", err)
	}
	defs, _ := schema["definitions"].(map[string]any)
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v", err)
	}
	return schemaValidate("$", schema, doc, defs)
}

func sarifSampleReport() *Report {
	return &Report{
		Module:    "repro",
		Packages:  3,
		Analyzers: []string{"simclock", "puritycheck"},
		Findings: []Finding{
			{File: "internal/kernels/k.go", Line: 12, Col: 7, Analyzer: "simclock", Message: "time.Now called"},
			{File: "internal/apps/a.go", Line: 0, Col: 0, Analyzer: "directive", Message: "mixplint:ignore without justification"},
		},
		Suppressed: []Finding{
			{File: "internal/compile/c.go", Line: 40, Col: 2, Analyzer: "puritycheck", Suppressed: true,
				Message: "map iteration in a Run-reachable path", Justification: "keys sorted on the previous line"},
		},
		PerAnalyzer: map[string]int{"simclock": 1, "directive": 1},
	}
}

func TestSARIFValidatesAgainstSchema(t *testing.T) {
	rep := sarifSampleReport()
	data, err := rep.SARIF(map[string]string{
		"simclock":    "no wall-clock reads inside simulated regions",
		"puritycheck": "Run bodies must be pure functions of the purity key",
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs := validateSARIF(t, data); len(errs) != 0 {
		t.Fatalf("SARIF output violates schema:\n%s\n\noutput:\n%s", strings.Join(errs, "\n"), data)
	}

	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || log.Schema != sarifSchema {
		t.Fatalf("version/schema = %q/%q", log.Version, log.Schema)
	}
	run := log.Runs[0]
	if got := len(run.Results); got != 3 {
		t.Fatalf("want 3 results, got %d", got)
	}
	// The unpositioned directive finding must still satisfy startLine >= 1.
	if l := run.Results[1].Locations[0].PhysicalLocation.Region.StartLine; l != 1 {
		t.Errorf("clamped startLine = %d, want 1", l)
	}
	// Suppressed findings carry the inSource suppression with its justification.
	sup := run.Results[2].Suppressions
	if len(sup) != 1 || sup[0].Kind != "inSource" || sup[0].Justification == "" {
		t.Errorf("suppressions = %+v", sup)
	}
	// Every result's ruleIndex points at its own rule.
	for i, res := range run.Results {
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result %d: ruleIndex %d resolves to %q, want %q",
				i, res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
	}
}

// TestSARIFSchemaValidatorRejects proves the validator is not vacuous:
// a mutated log must fail.
func TestSARIFSchemaValidatorRejects(t *testing.T) {
	data, err := sarifSampleReport().SARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []struct{ old, new string }{
		{`"version": "2.1.0"`, `"version": "2.0.0"`},
		{`"startLine": 12`, `"startLine": 0`},
		{`"kind": "inSource"`, `"kind": "guesswork"`},
		{`"uri": "internal/kernels/k.go"`, `"uri": "internal/kernels/k.go", "sneaky": true`},
	} {
		mutated := strings.Replace(string(data), mut.old, mut.new, 1)
		if mutated == string(data) {
			t.Fatalf("mutation %q not applied; exporter output changed shape", mut.old)
		}
		if errs := validateSARIF(t, []byte(mutated)); len(errs) == 0 {
			t.Errorf("validator accepted mutation %q -> %q", mut.old, mut.new)
		}
	}
}
