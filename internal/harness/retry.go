package harness

import "math"

// RetryPolicy governs how the scheduler re-executes a job attempt that
// died to a transient fault (a flaky evaluation, a crashed node). Backoff
// is charged to the simulated cluster clock - the same clock job spans
// and budget accounting run on - never to wall time, so campaigns with
// retries stay deterministic for any worker count.
//
// The zero value means DefaultRetryPolicy, so existing callers that never
// configure retries keep their behaviour: without injected faults no
// attempt ever fails transiently and the policy is never consulted.
type RetryPolicy struct {
	// MaxAttempts caps executions of one job, first try included
	// (0 = DefaultRetryPolicy's). A job that fails transiently on its
	// final attempt is reported degraded, not retried forever.
	MaxAttempts int
	// BaseSeconds is the simulated wait before the second attempt
	// (0 = default).
	BaseSeconds float64
	// Factor multiplies the wait after each further failure (<1 = default).
	Factor float64
	// MaxSeconds caps a single wait (0 = default).
	MaxSeconds float64
}

// DefaultRetryPolicy is the harness default: up to 3 attempts with
// exponential backoff 30s, 60s, capped at one simulated hour.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseSeconds: 30,
	Factor:      2,
	MaxSeconds:  3600,
}

// normalized fills zero/nonsense fields from DefaultRetryPolicy.
func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseSeconds <= 0 {
		p.BaseSeconds = d.BaseSeconds
	}
	if p.Factor < 1 {
		p.Factor = d.Factor
	}
	if p.MaxSeconds <= 0 {
		p.MaxSeconds = d.MaxSeconds
	}
	return p
}

// Backoff returns the simulated seconds to wait after failed attempt n
// (1-based): min(Base * Factor^(n-1), Max).
func (p RetryPolicy) Backoff(attempt int) float64 {
	p = p.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseSeconds * math.Pow(p.Factor, float64(attempt-1))
	if d > p.MaxSeconds {
		d = p.MaxSeconds
	}
	return d
}

// Attempt records one execution attempt of a job: what fault (if any)
// fired, how it ended, and what the attempt cost on the simulated clock.
// The attempt history survives into the campaign report and the
// checkpoint journal, so a degraded job is diagnosable after the fact.
type Attempt struct {
	// Attempt is the 1-based attempt number.
	Attempt int `json:"attempt"`
	// Fault names the injected fault kind that actually fired on this
	// attempt ("" when the attempt ran undisturbed; a drawn
	// transient/crash fault that the analysis outran is not recorded).
	Fault string `json:"fault,omitempty"`
	// Err is the attempt's error text ("" on success).
	Err string `json:"error,omitempty"`
	// SpentSeconds is the simulated analysis time the attempt consumed -
	// lost work for a failed attempt, the job's final spend for the last.
	SpentSeconds float64 `json:"spent_seconds"`
	// BackoffSeconds is the simulated wait charged after this attempt
	// before the next one (0 on the final attempt).
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
	// BuildSeconds and RunSeconds split the attempt's analysis spend into
	// its phases (they sum to the analysis charge; a straggler fault's
	// surplus lives only in SpentSeconds). Evaluations and CacheHits are
	// the attempt's EV and evaluator-memo-hit counts. All four are
	// deterministic, so the trace layer can rebuild identical phase spans
	// from a journal resume.
	BuildSeconds float64 `json:"build_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
	Evaluations  int     `json:"evaluations,omitempty"`
	CacheHits    int     `json:"cache_hits,omitempty"`
}
