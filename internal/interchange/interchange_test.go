package interchange

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/mp"
	"repro/internal/suite"
)

func TestExportSpaceRoundTrip(t *testing.T) {
	for _, b := range suite.All() {
		doc := ExportSpace(b)
		if err := doc.Validate(); err != nil {
			t.Fatalf("%s: exported space invalid: %v", b.Name(), err)
		}
		if doc.Benchmark != b.Name() || doc.Metric != b.Metric().String() {
			t.Errorf("%s: identity fields wrong", b.Name())
		}
		g, err := doc.Graph()
		if err != nil {
			t.Fatalf("%s: reimport: %v", b.Name(), err)
		}
		orig := b.Graph()
		if g.NumVars() != orig.NumVars() || g.NumClusters() != orig.NumClusters() {
			t.Errorf("%s: reimported %d/%d vars/clusters, want %d/%d",
				b.Name(), g.NumVars(), g.NumClusters(), orig.NumVars(), orig.NumClusters())
		}
		// The partition must be identical, not just equinumerous.
		oc := orig.Clusters()
		rc := g.Clusters()
		for i := range oc {
			if len(oc[i].Members) != len(rc[i].Members) {
				t.Fatalf("%s: cluster %d size differs", b.Name(), i)
			}
			for j := range oc[i].Members {
				if oc[i].Members[j] != rc[i].Members[j] {
					t.Fatalf("%s: cluster %d member %d differs", b.Name(), i, j)
				}
			}
		}
	}
}

func TestWriteReadSpaceJSON(t *testing.T) {
	b, _ := suite.Lookup("hydro-1d")
	var buf bytes.Buffer
	if err := WriteSpace(&buf, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"benchmark": "hydro-1d"`) {
		t.Error("JSON missing benchmark field")
	}
	doc, err := ReadSpace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Variables) != 6 || len(doc.Clusters) != 2 {
		t.Errorf("space = %d vars / %d clusters", len(doc.Variables), len(doc.Clusters))
	}
}

func TestSpaceValidation(t *testing.T) {
	base := func() SpaceDoc {
		b, _ := suite.Lookup("iccg")
		return ExportSpace(b)
	}
	cases := map[string]func(*SpaceDoc){
		"bad version":       func(d *SpaceDoc) { d.Version = 99 },
		"dup id":            func(d *SpaceDoc) { d.Variables[1].ID = 0 },
		"id out of range":   func(d *SpaceDoc) { d.Variables[0].ID = 17 },
		"empty cluster":     func(d *SpaceDoc) { d.Clusters = append(d.Clusters, []int{}) },
		"overlap":           func(d *SpaceDoc) { d.Clusters = [][]int{{0, 1}, {1}} },
		"uncovered":         func(d *SpaceDoc) { d.Clusters = [][]int{{0}} },
		"bad cluster index": func(d *SpaceDoc) { d.Variables[0].Cluster = 5 },
		"wrong cluster":     func(d *SpaceDoc) { d.Variables[0].Cluster = 1; d.Variables[1].Cluster = 0 },
	}
	for name, mutate := range cases {
		d := base()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestGraphRejectsBadKind(t *testing.T) {
	b, _ := suite.Lookup("iccg")
	d := ExportSpace(b)
	d.Variables[0].Kind = "tensor"
	if _, err := d.Graph(); err == nil {
		t.Error("expected unknown-kind error")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := bench.NewConfig(5)
	cfg[1] = mp.F32
	cfg[4] = mp.F32
	doc := ExportConfig("x", cfg)
	if len(doc.Single) != 2 || doc.Single[0] != 1 || doc.Single[1] != 4 {
		t.Fatalf("doc = %+v", doc)
	}
	back, err := doc.Config(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg {
		if back[i] != cfg[i] {
			t.Errorf("config[%d] = %v, want %v", i, back[i], cfg[i])
		}
	}
	if _, err := doc.Config(3); err == nil {
		t.Error("expected out-of-range error")
	}
	doc.Version = 2
	if _, err := doc.Config(5); err == nil {
		t.Error("expected version error")
	}
}

func TestConfigJSONEmptySingleList(t *testing.T) {
	doc := ExportConfig("x", bench.NewConfig(3))
	var buf bytes.Buffer
	if err := WriteReports(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if doc.Single == nil {
		t.Error("Single should serialise as [], not null")
	}
}

func TestReportExport(t *testing.T) {
	r := harness.Report{
		Benchmark: "CFD", Algorithm: "DD", Threshold: 1e-6,
		Evaluated: 12, Speedup: 1.4, Quality: 1e-7,
		Found: true, Demoted: 100, Variables: 195, Clusters: 25,
	}
	var buf bytes.Buffer
	if err := WriteReports(&buf, []harness.Report{r}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{`"benchmark": "CFD"`, `"algorithm": "DD"`, `"evaluated": 12`} {
		if !strings.Contains(s, frag) {
			t.Errorf("report JSON missing %q", frag)
		}
	}
}

func TestReadConfig(t *testing.T) {
	doc, err := ReadConfig(strings.NewReader(`{"version":1,"benchmark":"x","single":[0,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := doc.Config(3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Singles() != 2 {
		t.Errorf("singles = %d", cfg.Singles())
	}
	if _, err := ReadConfig(strings.NewReader("{")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadSpace(strings.NewReader("{")); err == nil {
		t.Error("expected decode error")
	}
}

func TestExternallyAuthoredSpaceDrivesSearch(t *testing.T) {
	// A space document written by hand (as an external tool would produce
	// it) must reconstruct into a usable graph.
	src := `{
		"version": 1,
		"benchmark": "external",
		"metric": "MAE",
		"variables": [
			{"id": 0, "name": "a", "unit": "f", "kind": "array", "cluster": 0},
			{"id": 1, "name": "b", "unit": "f", "kind": "param", "cluster": 0},
			{"id": 2, "name": "c", "unit": "g", "kind": "scalar", "cluster": 1}
		],
		"clusters": [[0, 1], [2]]
	}`
	doc, err := ReadSpace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := doc.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.SameCluster(0, 1) || g.SameCluster(0, 2) {
		t.Error("reconstructed clustering wrong")
	}
}

func TestNaNQualityExportsAsNull(t *testing.T) {
	// JSON has no NaN: a timed-out report's metrics must serialise as
	// null, not corrupt the document.
	r := harness.Report{Benchmark: "SRAD", Algorithm: "DD", TimedOut: true,
		Speedup: math.NaN(), Quality: math.NaN()}
	var buf bytes.Buffer
	if err := WriteReports(&buf, []harness.Report{r}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"speedup": null`) || !strings.Contains(s, `"quality": null`) {
		t.Errorf("NaN metrics not null:\n%s", s)
	}
}

func TestReportExportIncludesArtifact(t *testing.T) {
	cfg := bench.NewConfig(4)
	cfg[2] = mp.F32
	r := harness.Report{Benchmark: "x", Algorithm: "DD", Found: true,
		Speedup: 1.2, Demoted: 1, Variables: 4, Config: cfg}
	doc := ExportReport(r)
	if len(doc.Single) != 1 || doc.Single[0] != 2 {
		t.Errorf("artifact = %v, want [2]", doc.Single)
	}
}

func TestConfigRoundTripProperty(t *testing.T) {
	f := func(mask []bool) bool {
		cfg := bench.NewConfig(len(mask))
		for i, m := range mask {
			if m {
				cfg[i] = mp.F32
			}
		}
		doc := ExportConfig("p", cfg)
		back, err := doc.Config(len(mask))
		if err != nil {
			return false
		}
		for i := range cfg {
			if back[i] != cfg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
