// Package store is a durable, content-addressed result store: the disk
// tier behind the run cache. The paper's campaigns are multi-day cluster
// runs because every evaluation is re-paid from scratch; the in-process
// run cache (internal/runcache) amortises evaluations within one process,
// and this package lifts that amortisation across process generations.
// Every record is keyed by the five-input purity key (bench, seed,
// semantics, machine fingerprint, config), so the space of distinct
// records is finite and a long-lived shared store converges to a
// near-100% hit rate.
//
// Layout: a directory of append-only segments (NNNNNNNN.seg), each a
// checksummed header plus CRC32-C framed records (see segment.go). The
// highest-numbered segment is the active append target; the rest are
// sealed. Writes are write-behind - Put enqueues, a single writer
// goroutine appends in batches and fsyncs once per batch (group commit) -
// and every create/rotate also fsyncs the parent directory, so a record
// acknowledged by Sync can never be lost to a crash.
//
// Recovery: opening a store scans every segment to its longest valid
// checksummed prefix. A scan that stops early in the ACTIVE segment is a
// torn tail (the process died mid-append, before the fsync completed) and
// is truncated away - by construction nothing fsync'd is in the torn
// region. A scan that stops early in a SEALED segment is real corruption
// (sealed segments were fully synced before rotation): its valid prefix
// is rescued into the active segment and the corrupt file is moved to
// quarantine/ rather than refusing to boot. A fingerprint mismatch in a
// segment header refuses the store outright - mirroring the checkpoint
// journal's fingerprint check - because records written under a different
// machine model or result encoding would silently never hit.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Sentinel errors, for errors.Is. Each failure mode of opening a store
// is distinct and actionable: the message says what is wrong with the
// directory and what to do about it.
var (
	// ErrFingerprint refuses a store written under an incompatible
	// machine model or result encoding.
	ErrFingerprint = errors.New("store: fingerprint mismatch")
	// ErrVersion refuses a store written by an incompatible format
	// version of this package.
	ErrVersion = errors.New("store: incompatible segment format version")
	// ErrReadOnly reports a store that cannot be opened for writing, or
	// a mutating operation on a read-only store.
	ErrReadOnly = errors.New("store: not writable")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
)

// Options configures a Store.
type Options struct {
	// Fingerprint identifies the model and encoding the records were
	// produced under. Open refuses a store whose segments carry a
	// different fingerprint (ErrFingerprint): its records would describe
	// a different machine and could silently never match.
	Fingerprint uint64
	// ReadOnly opens the store for reads only: Put drops (counted), no
	// writer goroutine starts, and recovery never modifies the directory
	// (torn tails are tolerated in place, nothing is quarantined or
	// truncated).
	ReadOnly bool
	// MaxSegmentBytes rotates the active segment when it grows past this
	// size (default 8 MiB).
	MaxSegmentBytes int64
	// MaxBytes, when positive, is the live-data budget: compaction
	// evicts the oldest records until live bytes fit under it.
	MaxBytes int64
	// CompactFraction triggers background compaction when dead bytes
	// (superseded duplicates) exceed this fraction of the store
	// (default 0.5).
	CompactFraction float64
	// NoSync disables fsync (tests only; a crash may lose records).
	NoSync bool
}

// location addresses one record inside a segment.
type location struct {
	seg        uint64
	off        int64
	klen, vlen uint32
}

// segment is one open segment file.
type segment struct {
	id   uint64
	f    *os.File
	size int64
}

// Stats is a point-in-time view of the store's contents and health.
// WriteErrors, LastError, and Quarantined feed the mixpd /healthz
// endpoint: a store that cannot persist records any more is a daemon a
// load balancer should stop routing to.
type Stats struct {
	// Records is the number of live records.
	Records uint64 `json:"records"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// LiveBytes and DeadBytes split the on-disk record bytes into
	// reachable records and superseded duplicates awaiting compaction.
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	// Gets counts lookups; GetHits the ones served.
	Gets    uint64 `json:"gets"`
	GetHits uint64 `json:"get_hits"`
	// Puts counts records appended durably; DroppedPuts counts puts
	// discarded because the store is read-only, failed, or closed.
	Puts        uint64 `json:"puts"`
	DroppedPuts uint64 `json:"dropped_puts"`
	// WriteErrors counts append/fsync failures. The first one marks the
	// store failed: reads keep working, writes drop.
	WriteErrors uint64 `json:"write_errors"`
	// ReadErrors counts record reads that failed checksum or IO.
	ReadErrors uint64 `json:"read_errors"`
	// Recovery counters from Open: segments moved aside, torn-tail bytes
	// truncated from the active segment, records salvaged out of corrupt
	// sealed segments.
	Quarantined    int   `json:"quarantined"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	RescuedRecords int   `json:"rescued_records"`
	// Compactions counts completed compaction passes; Evicted the
	// records dropped to fit MaxBytes.
	Compactions uint64 `json:"compactions"`
	Evicted     uint64 `json:"evicted"`
	// ReadOnly reports the open mode.
	ReadOnly bool `json:"read_only"`
	// Healthy is false once a write error marked the store failed.
	Healthy bool `json:"healthy"`
	// LastError describes the most recent write failure.
	LastError string `json:"last_error,omitempty"`
}

// putReq is one queued writer-goroutine request: a record append, a
// Sync barrier (flush), or a compaction request (compact). Routing
// compaction through the writer serialises it with appends, so no two
// goroutines ever touch the active segment.
type putReq struct {
	key, val []byte
	flush    chan error
	compact  chan error
}

// rescueSeg is a corrupt sealed segment awaiting salvage at Open.
type rescueSeg struct {
	seg  *segment
	recs []scanned
}

// Store is a durable content-addressed result store. All methods are
// safe for concurrent use; a nil *Store is a valid empty read-only store
// (Get misses, Put drops), so callers can thread an optional store
// without nil checks.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	index   map[string]location
	segs    map[uint64]*segment
	active  *segment
	nextID  uint64
	stats   Stats
	failed  bool
	lastErr error

	closing    atomic.Bool
	putWG      sync.WaitGroup
	putCh      chan putReq
	writerDone chan struct{}
}

// Open opens (or creates) the store at dir, replaying every segment into
// the in-memory index - the cache warm-up that makes a restarted daemon
// serve its previous generation's results. See the package comment for
// the recovery rules.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 8 << 20
	}
	if opts.CompactFraction <= 0 {
		opts.CompactFraction = 0.5
	}
	if !opts.ReadOnly {
		if err := EnsureDir(dir); err != nil {
			return nil, fmt.Errorf("%w: create %s: %v; fix permissions or open read-only", ErrReadOnly, dir, err)
		}
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		index:      make(map[string]location),
		segs:       make(map[uint64]*segment),
		nextID:     1,
		putCh:      make(chan putReq, 256),
		writerDone: make(chan struct{}),
	}
	s.stats.ReadOnly = opts.ReadOnly
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	if !opts.ReadOnly {
		if s.active == nil {
			if err := s.newSegment(); err != nil {
				s.closeFiles()
				return nil, err
			}
		}
		go s.writer()
	}
	return s, nil
}

// load scans the directory and rebuilds the index.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: read %s: %w", s.dir, err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && !s.opts.ReadOnly {
			// Leftover of a crashed rotation or compaction; it was never
			// renamed into place, so nothing references it.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var rescues []rescueSeg
	for i, id := range ids {
		if err := s.loadSegment(id, i == len(ids)-1, &rescues); err != nil {
			return err
		}
	}
	if len(ids) > 0 {
		s.nextID = ids[len(ids)-1] + 1
	}

	// Salvage the valid prefixes of corrupt sealed segments: re-append
	// their still-reachable records to the active segment so the next
	// generation does not depend on the corrupt file, then move it to
	// quarantine. Runs after every segment is indexed because a later
	// segment may supersede a rescued record.
	for _, r := range rescues {
		for _, rec := range r.recs {
			loc, ok := s.index[string(rec.key)]
			if !ok || loc.seg != r.seg.id {
				continue
			}
			val, err := readValue(r.seg.f, loc)
			if err != nil {
				s.stats.ReadErrors++
				s.dropLocked(string(rec.key), loc)
				continue
			}
			if err := s.appendDirect(rec.key, val); err != nil {
				return err
			}
			s.stats.RescuedRecords++
		}
		s.quarantine(r.seg)
	}
	return nil
}

// loadSegment opens and scans one segment. last marks the active
// (highest-numbered) segment, whose torn tail is truncated rather than
// quarantined.
func (s *Store) loadSegment(id uint64, last bool, rescues *[]rescueSeg) error {
	path := s.segPath(id)
	flags := os.O_RDONLY
	if !s.opts.ReadOnly {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if !s.opts.ReadOnly {
			return fmt.Errorf("%w: open %s for writing: %v; fix permissions or open read-only", ErrReadOnly, path, err)
		}
		return fmt.Errorf("store: open %s: %w", path, err)
	}
	hdr := make([]byte, headerLen)
	n, _ := f.ReadAt(hdr, 0)
	fp, err := parseHeader(hdr[:n])
	if err != nil {
		if errors.Is(err, ErrVersion) {
			f.Close()
			return fmt.Errorf("%w (%s); this store was written by an incompatible build - migrate it or point at a fresh directory", err, path)
		}
		// Unreadable header: nothing in the segment is trustworthy.
		s.quarantine(&segment{id: id, f: f})
		return nil
	}
	if fp != s.opts.Fingerprint {
		f.Close()
		return fmt.Errorf("%w: segment %s was written under fingerprint %016x, this process computes %016x; the machine model or result encoding changed - point at a fresh store directory",
			ErrFingerprint, path, fp, s.opts.Fingerprint)
	}
	res, err := scanSegment(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: scan %s: %w", path, err)
	}
	seg := &segment{id: id, f: f, size: res.validLen}
	if res.torn != nil && !s.opts.ReadOnly {
		if last {
			// Torn tail of the active segment: the crash happened
			// mid-append. Truncating to the longest valid prefix loses
			// nothing that was ever fsync'd.
			info, statErr := f.Stat()
			if statErr != nil {
				f.Close()
				return fmt.Errorf("store: stat %s: %w", path, statErr)
			}
			if err := f.Truncate(res.validLen); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
			}
			if err := s.sync(f); err != nil {
				f.Close()
				return fmt.Errorf("store: sync truncated %s: %w", path, err)
			}
			s.stats.TruncatedBytes += info.Size() - res.validLen
		} else {
			// Corruption inside a sealed segment: index its valid prefix
			// now and queue it for salvage + quarantine.
			s.indexRecords(seg, res.recs)
			*rescues = append(*rescues, rescueSeg{seg: seg, recs: res.recs})
			return nil
		}
	}
	s.indexRecords(seg, res.recs)
	s.segs[id] = seg
	if last {
		s.active = seg
	}
	return nil
}

// indexRecords folds one segment's scanned records into the index.
// Later segments override earlier ones (the key is pure, so duplicate
// values are identical; the override just retires dead bytes).
func (s *Store) indexRecords(seg *segment, recs []scanned) {
	for _, rec := range recs {
		loc := location{seg: seg.id, off: rec.off, klen: rec.klen, vlen: rec.vlen}
		if old, ok := s.index[string(rec.key)]; ok {
			s.dropLocked(string(rec.key), old)
		}
		s.index[string(rec.key)] = loc
		s.stats.Records++
		s.stats.LiveBytes += recordSize(int(rec.klen), int(rec.vlen))
	}
}

// dropLocked removes one record from the index; its bytes become dead.
func (s *Store) dropLocked(key string, loc location) {
	delete(s.index, key)
	s.stats.Records--
	sz := recordSize(int(loc.klen), int(loc.vlen))
	s.stats.LiveBytes -= sz
	s.stats.DeadBytes += sz
}

// quarantine moves a corrupt segment file into quarantine/ so the store
// boots without it but an operator can still inspect the bytes.
func (s *Store) quarantine(seg *segment) {
	seg.f.Close()
	s.stats.Quarantined++
	if s.opts.ReadOnly {
		return
	}
	qdir := filepath.Join(s.dir, "quarantine")
	src := s.segPath(seg.id)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(src, filepath.Join(qdir, filepath.Base(src))); err == nil && !s.opts.NoSync {
			SyncDir(qdir)
			SyncDir(s.dir)
		}
	}
}

// segPath names segment id's file.
func (s *Store) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.seg", id))
}

// newSegment creates the next segment and makes it active: header
// written and fsync'd under a temporary name, renamed into place, parent
// directory fsync'd - so a crash anywhere leaves either no new segment
// or a complete empty one, never a half-written header.
func (s *Store) newSegment() error {
	id := s.nextID
	path := s.segPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%w: create segment %s: %v; fix permissions or open read-only", ErrReadOnly, tmp, err)
	}
	if _, err := f.Write(appendHeader(nil, s.opts.Fingerprint)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write segment header: %w", err)
	}
	if err := s.sync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync segment header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: install segment: %w", err)
	}
	if !s.opts.NoSync {
		if err := SyncDir(s.dir); err != nil {
			f.Close()
			return fmt.Errorf("store: sync %s: %w", s.dir, err)
		}
	}
	seg := &segment{id: id, f: f, size: headerLen}
	s.segs[id] = seg
	s.active = seg
	s.nextID = id + 1
	return nil
}

// appendDirect writes one record synchronously. Only used during Open's
// salvage pass, before the writer goroutine exists.
func (s *Store) appendDirect(key, val []byte) error {
	if s.active == nil {
		if err := s.newSegment(); err != nil {
			return err
		}
	}
	buf := appendRecord(nil, key, val)
	if _, err := s.active.f.WriteAt(buf, s.active.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.sync(s.active.f); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	loc := location{seg: s.active.id, off: s.active.size, klen: uint32(len(key)), vlen: uint32(len(val))}
	s.active.size += int64(len(buf))
	if old, ok := s.index[string(key)]; ok {
		s.dropLocked(string(key), old)
	}
	s.index[string(key)] = loc
	s.stats.Records++
	s.stats.LiveBytes += recordSize(len(key), len(val))
	return nil
}

// sync fsyncs a file unless NoSync is set.
func (s *Store) sync(f *os.File) error {
	if s.opts.NoSync {
		return nil
	}
	return f.Sync()
}

// Get returns the value for key, or false. Every read re-verifies the
// record checksum; a record that fails verification counts as a read
// error and a miss, never a wrong answer.
func (s *Store) Get(key []byte) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	atomic.AddUint64(&s.stats.Gets, 1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, false
	}
	seg, ok := s.segs[loc.seg]
	if !ok {
		return nil, false
	}
	val, err := readValue(seg.f, loc)
	if err != nil {
		atomic.AddUint64(&s.stats.ReadErrors, 1)
		return nil, false
	}
	atomic.AddUint64(&s.stats.GetHits, 1)
	return val, true
}

// Put enqueues one record for durable append. The write is behind: Put
// returns immediately and the writer goroutine batches appends with one
// fsync per batch (group commit). Call Sync to wait for durability. Puts
// on a read-only, failed, or closed store are dropped and counted -
// degrading the store never degrades the campaign.
func (s *Store) Put(key, val []byte) {
	if s == nil {
		return
	}
	if s.opts.ReadOnly {
		atomic.AddUint64(&s.stats.DroppedPuts, 1)
		return
	}
	// The WaitGroup + closing flag make Put/Close race-free without a
	// lock around the channel: a Put that registers before Close flips
	// closing is guaranteed the channel stays open until it sends
	// (Close waits on the group before closing the channel); a Put that
	// observes closing drops instead of sending.
	s.putWG.Add(1)
	defer s.putWG.Done()
	if s.closing.Load() {
		atomic.AddUint64(&s.stats.DroppedPuts, 1)
		return
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(val))
	copy(v, val)
	s.putCh <- putReq{key: k, val: v}
}

// Sync blocks until every Put enqueued before it is durable (written
// and fsync'd), returning the store's write error if it has failed.
func (s *Store) Sync() error {
	return s.barrier(func(ch chan error) putReq { return putReq{flush: ch} })
}

// Compact forces a compaction pass: live records are rewritten into a
// fresh segment oldest-first, old segments are removed, and (under a
// MaxBytes budget) the oldest records are evicted. Compaction also runs
// automatically after growth when dead bytes pass CompactFraction; the
// export exists for tests and operational tooling.
func (s *Store) Compact() error {
	if s != nil && s.opts.ReadOnly {
		return fmt.Errorf("%w: compact", ErrReadOnly)
	}
	return s.barrier(func(ch chan error) putReq { return putReq{compact: ch} })
}

// barrier sends one control request through the writer goroutine and
// waits for its answer, following the same close-safety protocol as Put.
func (s *Store) barrier(mk func(chan error) putReq) error {
	if s == nil || s.opts.ReadOnly {
		return nil
	}
	s.putWG.Add(1)
	if s.closing.Load() {
		s.putWG.Done()
		return ErrClosed
	}
	ch := make(chan error, 1)
	s.putCh <- mk(ch)
	s.putWG.Done()
	return <-ch
}

// writer is the single append goroutine: it drains the queue in batches,
// writes every record of a batch, fsyncs once, then publishes the
// locations. Rotation and compaction run here too, so no other goroutine
// ever touches the active segment.
func (s *Store) writer() {
	defer close(s.writerDone)
	for req := range s.putCh {
		batch := []putReq{req}
	drain:
		for len(batch) < 128 {
			select {
			case more, ok := <-s.putCh:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		s.runBatch(batch)
	}
}

// runBatch appends one batch of queued puts, answers its barriers, and
// runs any requested or triggered compaction.
func (s *Store) runBatch(batch []putReq) {
	var flushes, compacts []chan error
	var recs []putReq
	s.mu.RLock()
	failed, lastErr := s.failed, s.lastErr
	for _, req := range batch {
		switch {
		case req.flush != nil:
			flushes = append(flushes, req.flush)
		case req.compact != nil:
			compacts = append(compacts, req.compact)
		case failed:
			atomic.AddUint64(&s.stats.DroppedPuts, 1)
		default:
			if _, dup := s.index[string(req.key)]; !dup {
				recs = append(recs, req)
			}
			// A duplicate is silently satisfied: the key is pure, so the
			// existing record already holds this exact value.
		}
	}
	s.mu.RUnlock()

	err := s.writeRecords(recs)
	if err != nil {
		s.mu.Lock()
		s.failed = true
		s.lastErr = err
		s.stats.WriteErrors++
		s.stats.DroppedPuts += uint64(len(recs))
		s.mu.Unlock()
	} else if failed {
		err = lastErr
	}
	for _, ch := range flushes {
		ch <- err
	}
	if err == nil && len(compacts) == 0 && s.shouldCompact() {
		if cerr := s.compact(); cerr != nil {
			s.noteWriteError(cerr)
		}
	}
	for _, ch := range compacts {
		if err != nil {
			ch <- err
		} else {
			ch <- s.compact()
		}
	}
}

// noteWriteError marks the store failed after a background write error.
func (s *Store) noteWriteError(err error) {
	s.mu.Lock()
	s.failed = true
	s.lastErr = err
	s.stats.WriteErrors++
	s.mu.Unlock()
}

// writeRecords appends the records to the active segment, fsyncs, then
// publishes their locations and rotates if the segment is full. Runs on
// the writer goroutine only.
func (s *Store) writeRecords(recs []putReq) error {
	if len(recs) == 0 {
		return nil
	}
	// Dedup inside the batch too: two workers can race the same key into
	// the queue before either is indexed.
	seen := make(map[string]bool, len(recs))
	type placed struct {
		req putReq
		off int64
	}
	var buf []byte
	var placedRecs []placed
	base := s.active.size
	for _, req := range recs {
		if seen[string(req.key)] {
			continue
		}
		seen[string(req.key)] = true
		placedRecs = append(placedRecs, placed{req: req, off: base + int64(len(buf))})
		buf = appendRecord(buf, req.key, req.val)
	}
	// WriteAt, not Write: a segment reopened by recovery has file offset
	// zero, and appends must land at its logical end regardless.
	if _, err := s.active.f.WriteAt(buf, base); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.sync(s.active.f); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.mu.Lock()
	for _, p := range placedRecs {
		loc := location{seg: s.active.id, off: p.off, klen: uint32(len(p.req.key)), vlen: uint32(len(p.req.val))}
		if old, ok := s.index[string(p.req.key)]; ok {
			s.dropLocked(string(p.req.key), old)
		}
		s.index[string(p.req.key)] = loc
		s.stats.Records++
		s.stats.LiveBytes += recordSize(len(p.req.key), len(p.req.val))
		s.stats.Puts++
	}
	s.active.size += int64(len(buf))
	rotate := s.active.size >= s.opts.MaxSegmentBytes
	var err error
	if rotate {
		err = s.newSegment()
	}
	s.mu.Unlock()
	return err
}

// shouldCompact reports whether dead bytes or the size budget call for
// a compaction pass.
func (s *Store) shouldCompact() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.failed {
		return false
	}
	total := s.stats.LiveBytes + s.stats.DeadBytes
	if total == 0 {
		return false
	}
	if s.stats.DeadBytes > 64<<10 && float64(s.stats.DeadBytes)/float64(total) > s.opts.CompactFraction {
		return true
	}
	return s.opts.MaxBytes > 0 && total > s.opts.MaxBytes
}

// compact rewrites the live records into a fresh segment and retires
// every old one. Runs on the writer goroutine (serialised with appends);
// holds the write lock for the whole pass, which is acceptable at
// result-store sizes and keeps Get trivially consistent.
func (s *Store) compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Order live records oldest-first (segment id, then offset): the
	// eviction budget drops from the front, and the rewrite preserves
	// age order so future evictions stay meaningful.
	type liveRec struct {
		key string
		loc location
	}
	live := make([]liveRec, 0, len(s.index))
	for k, loc := range s.index {
		live = append(live, liveRec{key: k, loc: loc})
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].loc.seg != live[j].loc.seg {
			return live[i].loc.seg < live[j].loc.seg
		}
		return live[i].loc.off < live[j].loc.off
	})
	if s.opts.MaxBytes > 0 {
		total := s.stats.LiveBytes
		for len(live) > 0 && total > s.opts.MaxBytes {
			total -= recordSize(int(live[0].loc.klen), int(live[0].loc.vlen))
			s.stats.Evicted++
			live = live[1:]
		}
	}

	id := s.nextID
	path := s.segPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	buf := appendHeader(nil, s.opts.Fingerprint)
	newIndex := make(map[string]location, len(live))
	var liveBytes int64
	for _, r := range live {
		val, err := readValue(s.segs[r.loc.seg].f, r.loc)
		if err != nil {
			atomic.AddUint64(&s.stats.ReadErrors, 1)
			continue
		}
		newIndex[r.key] = location{seg: id, off: int64(len(buf)), klen: r.loc.klen, vlen: uint32(len(val))}
		buf = appendRecord(buf, []byte(r.key), val)
		liveBytes += recordSize(len(r.key), len(val))
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact write: %w", err)
	}
	if err := s.sync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact install: %w", err)
	}
	if !s.opts.NoSync {
		if err := SyncDir(s.dir); err != nil {
			f.Close()
			return fmt.Errorf("store: compact sync dir: %w", err)
		}
	}
	// The new segment is durable; retire every old one. A crash between
	// the rename and the removals leaves duplicate records, which the
	// next Open resolves (later segment wins; values are identical by
	// purity), so there is no unsafe window.
	for oldID, seg := range s.segs {
		seg.f.Close()
		os.Remove(s.segPath(oldID))
	}
	if !s.opts.NoSync {
		SyncDir(s.dir)
	}
	newSeg := &segment{id: id, f: f, size: int64(len(buf))}
	s.segs = map[uint64]*segment{id: newSeg}
	s.active = newSeg
	s.nextID = id + 1
	s.index = newIndex
	s.stats.Records = uint64(len(newIndex))
	s.stats.LiveBytes = liveBytes
	s.stats.DeadBytes = 0
	s.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{ReadOnly: true, Healthy: true}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Gets = atomic.LoadUint64(&s.stats.Gets)
	st.GetHits = atomic.LoadUint64(&s.stats.GetHits)
	st.ReadErrors = atomic.LoadUint64(&s.stats.ReadErrors)
	st.DroppedPuts = atomic.LoadUint64(&s.stats.DroppedPuts)
	st.Segments = len(s.segs)
	st.Healthy = !s.failed
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// Healthy reports whether the store can still persist records.
func (s *Store) Healthy() bool {
	if s == nil {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.failed
}

// Dir returns the store's directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Close flushes the write queue, fsyncs, and closes every segment.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	if s.closing.Swap(true) {
		return ErrClosed
	}
	if !s.opts.ReadOnly {
		s.putWG.Wait()
		close(s.putCh)
		<-s.writerDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.active != nil && !s.failed {
		if err := s.sync(s.active.f); err != nil {
			first = err
		}
	}
	s.closeFilesLocked(&first)
	return first
}

// closeFiles closes every open segment (Open's error paths, pre-writer).
func (s *Store) closeFiles() {
	var first error
	s.closeFilesLocked(&first)
}

// closeFilesLocked closes segment files, keeping the first error.
func (s *Store) closeFilesLocked(first *error) {
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && *first == nil {
			*first = err
		}
	}
	s.segs = map[uint64]*segment{}
	s.active = nil
}
